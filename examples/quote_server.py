"""Serve a synthetic quote stream through the QuoteService.

Simulates a serving day in three phases: a cold coalesced warm-up of the
whole book, a Zipf-distributed request stream against the warm cache, and
an async ``submit``/``flush`` round that shows in-flight dedup and
coalescing.  Prints throughput and cache statistics as the stream runs.

    python examples/quote_server.py --steps 256 --requests 400
"""

from __future__ import annotations

import argparse
import dataclasses
import os
import sys
import time

import numpy as np

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
)

from repro.options.contract import Right, paper_benchmark_spec  # noqa: E402
from repro.service import QuoteService  # noqa: E402


def build_book(n: int) -> list:
    spec = paper_benchmark_spec()
    return [
        dataclasses.replace(
            spec,
            strike=float(k),
            right=Right.PUT if i % 2 else Right.CALL,
        )
        for i, k in enumerate(np.linspace(100.0, 170.0, n))
    ]


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--steps", type=int, default=256)
    parser.add_argument("--requests", type=int, default=400)
    parser.add_argument("--book", type=int, default=16)
    parser.add_argument("--workers", type=int, default=1)
    parser.add_argument(
        "--backend", default="serial", choices=["process", "thread", "serial"]
    )
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args()

    book = build_book(args.book)
    service = QuoteService(
        steps_default=args.steps, workers=args.workers, backend=args.backend
    )

    # ---- phase 1: cold warm-up, one coalesced batch ------------------- #
    t0 = time.perf_counter()
    service.quote_many(book)
    warmup_s = time.perf_counter() - t0
    stats = service.stats()["service"]
    print(
        f"warm-up: {len(book)} contracts in {warmup_s * 1e3:.1f} ms — "
        f"{stats['batches']} coalesced batch(es), max batch "
        f"{stats['max_batch']}"
    )

    # ---- phase 2: Zipf request stream against the warm cache ---------- #
    rng = np.random.default_rng(args.seed)
    ranks = (rng.zipf(1.2, size=args.requests) - 1) % len(book)
    # a few off-book clones (rescaled contracts) exercise scale invariance
    clones = [
        dataclasses.replace(s, spot=s.spot * 2.0, strike=s.strike * 2.0)
        for s in book[:4]
    ]
    t0 = time.perf_counter()
    for i, r in enumerate(ranks):
        spec = clones[r % 4] if i % 50 == 49 else book[r]
        service.quote(spec)
    stream_s = time.perf_counter() - t0
    cache = service.stats()["cache"]
    print(
        f"stream: {args.requests} requests in {stream_s * 1e3:.1f} ms "
        f"({args.requests / stream_s:,.0f} quotes/s) — "
        f"hit ratio {cache['hit_ratio']:.3f}, "
        f"{cache['size']} cached solves"
    )

    # ---- phase 3: async submits, deduped and coalesced ---------------- #
    fresh = [
        dataclasses.replace(s, volatility=s.volatility * 1.1) for s in book[:6]
    ]
    tickets = [service.submit(s) for s in fresh + fresh]  # each key twice
    print(
        f"submitted {len(tickets)} requests -> {service.pending} pending "
        "solves (in-flight dedup)"
    )
    served = service.flush()
    mid = tickets[0].result().price
    stats = service.stats()["service"]
    print(
        f"flush served {served} solves; first vol-bumped quote {mid:.4f}; "
        f"merged {stats['merged_requests']} duplicate requests so far"
    )
    print(
        f"totals: {stats['quotes']} quotes, {stats['solves']} solves "
        f"({stats['quotes'] / stats['solves']:.1f} quotes per solve)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
