#!/usr/bin/env python
"""Price an option chain (a realistic desk workload) with the fast solvers.

Builds a book of American calls and puts across a strike ladder and three
expiries on one underlying, prices every contract with the O(T log²T)
solvers (puts via exact put–call symmetry), and prints the chain with
European reference values and early-exercise premia — the intro's "rapid
changes in financial markets" workload, where thousands of contracts must be
re-priced on every underlying tick.

Usage:  python examples/portfolio.py [--steps N]
"""

from __future__ import annotations

import argparse
import dataclasses
import time

from repro import OptionSpec, Right, Style, paper_benchmark_spec, price_many
from repro.core import AdvanceEngine
from repro.util.tables import format_table


def build_chain(base: OptionSpec) -> list[OptionSpec]:
    chain = []
    for expiry in (63.0, 126.0, 252.0):
        for strike_ratio in (0.8, 0.9, 1.0, 1.1, 1.2):
            for right in (Right.CALL, Right.PUT):
                chain.append(
                    dataclasses.replace(
                        base,
                        strike=round(base.spot * strike_ratio, 2),
                        expiry_days=expiry,
                        right=right,
                    )
                )
    return chain


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--steps", type=int, default=1024)
    args = parser.parse_args(argv)

    base = paper_benchmark_spec()
    chain = build_chain(base)

    t0 = time.perf_counter()
    # One shared plan-caching engine across the whole book: same-expiry
    # contracts reuse kernel spectra, and the European reference strip
    # collapses into batched advance_many transforms.
    engine = AdvanceEngine()
    americans = price_many(chain, args.steps, engine=engine)
    eu_chain = [dataclasses.replace(s, style=Style.EUROPEAN) for s in chain]
    europeans = price_many(eu_chain, args.steps, engine=engine)
    rows = []
    for spec, am_r, eu_r in zip(chain, americans, europeans):
        rows.append(
            [
                spec.right.value,
                spec.strike,
                int(spec.expiry_days),
                am_r.price,
                eu_r.price,
                am_r.price - eu_r.price,
            ]
        )
    elapsed = time.perf_counter() - t0

    info = engine.cache_info()
    print(
        f"Priced {len(chain)} American contracts at T={args.steps} in "
        f"{elapsed:.2f}s ({elapsed / len(chain) * 1e3:.1f} ms/contract); "
        f"kernel-spectrum cache: {info['spectrum_hits']} hits / "
        f"{info['spectrum_misses']} transforms\n"
    )
    print(
        format_table(
            ["right", "strike", "expiry (d)", "american", "european", "early-ex premium"],
            rows,
            float_fmt=".4f",
        )
    )
    print(
        "\nEvery early-exercise premium is nonnegative; call premia come "
        "from the dividend yield, put premia from the interest on the "
        "strike — both priced by the same nonlinear-stencil machinery."
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
