"""Tiered quotes: serve a ~1e-3 spectral answer now, lattice-exact next.

Walks the full tier ladder on one American put:

1. ``tier="fast"`` — the first quote pays a ~ms Chebyshev collocation
   solve instead of a lattice sweep, is stamped ``meta["tier"]`` /
   ``meta["tolerance"]``, and queues the exact lattice upgrade behind
   itself on the service's pending queue.
2. ``flush()`` drains the queue; the *same* contract now serves from the
   exact slot — ``tier="auto"`` picks it up bit-identical to a plain
   lattice quote, tolerance 0.
3. Graceful degradation — with ``spectral_fallback=True`` a quote whose
   deadline is already spent serves the marked spectral answer
   (``meta["degraded_to"]``) instead of raising.
4. A mixed :class:`~repro.risk.grid.ScenarioGrid`: per-cell backends
   route the deep-OTM wing cells to the spectral pricer while the rest
   stay on the exact lattice, each result labelled ``meta["backend"]``.

Run: ``python examples/tiered_quotes.py --steps 256``
"""

from __future__ import annotations

import argparse
import os
import sys
import time

sys.path.insert(
    0,
    os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"),
)

from repro.options.contract import OptionSpec, Right, Style
from repro.resilience import Deadline
from repro.risk import ScenarioEngine, ScenarioGrid
from repro.service import QuoteService
from repro.util.tables import format_table


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--steps", type=int, default=256)
    args = parser.parse_args()

    put = OptionSpec(
        spot=100.0, strike=100.0, rate=0.04, volatility=0.25,
        dividend_yield=0.02, expiry_days=252.0, right=Right.PUT,
        style=Style.AMERICAN,
    )

    # -- 1 + 2: fast now, exact next ----------------------------------- #
    svc = QuoteService(steps_default=args.steps)

    t0 = time.perf_counter()
    fast = svc.quote(put, tier="fast")
    fast_ms = (time.perf_counter() - t0) * 1e3
    print(
        f"tier=fast   price {fast.price:.6f}  "
        f"(tolerance {fast.meta['tolerance']:g}, "
        f"backend {fast.meta['backend']}, {fast_ms:.2f} ms)"
    )
    print(f"pending exact upgrades queued: {svc.health()['pending']}")

    svc.flush()  # drain the upgrade; the exact slot is now warm

    t0 = time.perf_counter()
    exact = svc.quote(put, tier="auto")
    exact_ms = (time.perf_counter() - t0) * 1e3
    print(
        f"tier={exact.meta['tier']}  price {exact.price:.6f}  "
        f"(tolerance {exact.meta['tolerance']:g}, cache "
        f"{exact.meta['cache']}, {exact_ms:.3f} ms)"
    )
    rel = abs(fast.price - exact.price) / exact.price
    print(f"fast vs exact relative error: {rel:.2e}\n")

    # -- 3: graceful degradation --------------------------------------- #
    degraded_svc = QuoteService(
        steps_default=args.steps, spectral_fallback=True
    )
    spent = Deadline(0.0)  # budget already gone before the solve starts
    result = degraded_svc.quote(put, deadline=spent)
    print(
        f"spent deadline served anyway: degraded_to="
        f"{result.meta['degraded_to']} "
        f"(reason {result.meta['degrade_reason']}, "
        f"tolerance {result.meta['tolerance']:g})\n"
    )

    # -- 4: mixed per-cell backends on one scenario grid ---------------- #
    grid = ScenarioGrid.cartesian(
        put, spot_bumps=(-0.3, -0.15, 0.0, 0.15, 0.3)
    ).with_backends(
        # deep wings tolerate the ~1e-3 tier; the core stays exact
        lambda cell: "spectral" if abs(cell.spec.spot / put.strike - 1.0) > 0.2
        else None
    )
    engine = ScenarioEngine(backend="serial")
    sweep = engine.price_grid(grid, args.steps)

    print("mixed grid, per-cell backends:")
    rows = [
        [f"{cell.spec.spot:.2f}", f"{r.price:.6f}", r.meta["backend"]]
        for cell, r in zip(grid.cells, sweep.results)
    ]
    print(format_table(["spot", "price", "backend"], rows))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
