#!/usr/bin/env python
"""Quickstart: price the paper's benchmark option every way the library can.

Runs the paper's §5 contract (S=127.62, K=130, R=0.163%, V=20%, Y=1.63%,
E=252 days) through all three models and both algorithm families, printing a
comparison table — the fastest possible tour of the public API.

Usage:  python examples/quickstart.py [--steps N]
"""

from __future__ import annotations

import argparse
import dataclasses
import time

from repro import Right, paper_benchmark_spec, price_american, price_european
from repro.options.analytic import black_scholes
from repro.util.tables import format_table


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--steps", type=int, default=2048, help="time steps T")
    args = parser.parse_args(argv)
    T = args.steps

    call = paper_benchmark_spec()
    put = dataclasses.replace(call, right=Right.PUT, dividend_yield=0.0)

    rows = []
    for label, spec, model in [
        ("American call / binomial", call, "binomial"),
        ("American call / trinomial", call, "trinomial"),
        ("American put  / BSM-FD", put, "bsm-fd"),
    ]:
        timings = {}
        prices = {}
        for method in ("fft", "loop"):
            t0 = time.perf_counter()
            prices[method] = price_american(spec, T, model=model, method=method).price
            timings[method] = time.perf_counter() - t0
        rows.append(
            [
                label,
                prices["fft"],
                prices["loop"],
                abs(prices["fft"] - prices["loop"]),
                f"{timings['fft'] * 1e3:.1f}",
                f"{timings['loop'] * 1e3:.1f}",
            ]
        )

    print(f"Paper benchmark contract at T = {T} steps\n")
    print(
        format_table(
            ["contract/model", "fft price", "loop price", "|diff|", "fft ms", "loop ms"],
            rows,
            float_fmt=".8f",
        )
    )

    eu = price_european(call, T, method="fft").price
    bs = black_scholes(call.with_style(call.style)).price
    print()
    print(f"European call (single O(T log T) FFT jump): {eu:.6f}")
    print(f"Black–Scholes closed form:                  {bs:.6f}")
    print(f"American premium over European:             "
          f"{rows[0][1] - eu:.6f}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
