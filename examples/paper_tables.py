#!/usr/bin/env python
"""Regenerate every paper table/figure series in one run.

Thin command-line front end over the experiment registry: lists the
registered artefacts and rebuilds the requested ones (default: a quick,
laptop-friendly subset), printing the paper-shaped tables and writing CSVs
under ``results/``.

Usage:
    python examples/paper_tables.py --list
    python examples/paper_tables.py agreement table5 fig7-bopm
    python examples/paper_tables.py --all          # the full evaluation
    REPRO_BENCH_FAST=1 python examples/paper_tables.py --all   # quick pass
"""

from __future__ import annotations

import argparse

from repro.experiments import REGISTRY, list_experiments, run_experiment

QUICK_SET = ["agreement", "table2", "table5", "fig7-bopm"]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("ids", nargs="*", help="experiment ids to run")
    parser.add_argument("--list", action="store_true", help="list and exit")
    parser.add_argument("--all", action="store_true", help="run everything")
    args = parser.parse_args(argv)

    if args.list:
        for id_, title, ref in list_experiments():
            print(f"{id_:16s} {title}  [{ref}]")
        return 0

    ids = args.ids or (sorted(REGISTRY) if args.all else QUICK_SET)
    for id_ in ids:
        run_experiment(id_)
    print(f"\nCSV series written under results/ for: {', '.join(ids)}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
