#!/usr/bin/env python
"""Mini Figure 5: measure the fft solver against the Θ(T²) baselines.

Sweeps T over powers of two, timing fft-bopm against the strongest baseline
(zb-bopm) and the QuantLib-style engine, printing measured speedups and the
greedy-scheduler-modeled p=48 projections — a single-machine rendition of
the paper's headline result (§5.1).

Usage:  python examples/speedup_demo.py [--min-exp 10] [--max-exp 15]
"""

from __future__ import annotations

import argparse

from repro.baselines import ql_bopm, zb_bopm
from repro.core.tree_solver import solve_tree_fft
from repro.options.contract import paper_benchmark_spec
from repro.options.params import BinomialParams
from repro.parallel.runtime_model import RuntimeModel
from repro.util.tables import format_table
from repro.util.timing import measure


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--min-exp", type=int, default=10)
    parser.add_argument("--max-exp", type=int, default=15)
    args = parser.parse_args(argv)

    spec = paper_benchmark_spec()
    rows = []
    for e in range(args.min_exp, args.max_exp + 1):
        T = 2**e
        t_fft, r_fft = measure(
            lambda: solve_tree_fft(BinomialParams.from_spec(spec, T)), min_time=0.05
        )
        t_zb, r_zb = measure(lambda: zb_bopm(spec, T), min_time=0.05)
        t_ql, r_ql = measure(lambda: ql_bopm(spec, T), min_time=0.05)
        assert abs(r_fft.price - r_zb.price) < 1e-6

        p48 = {}
        for name, secs, ws in [
            ("fft", t_fft, r_fft.workspan),
            ("ql", t_ql, r_ql.workspan),
        ]:
            model = RuntimeModel.from_measurement(ws, secs)
            p48[name] = model.predict_seconds(ws, 48)

        rows.append(
            [
                T,
                t_fft,
                t_zb,
                t_ql,
                t_zb / t_fft,
                t_ql / t_fft,
                p48["ql"] / p48["fft"],
            ]
        )

    print("fft-bopm vs Θ(T²) baselines (single core, this machine)\n")
    print(
        format_table(
            [
                "T",
                "fft (s)",
                "zb (s)",
                "ql (s)",
                "speedup vs zb",
                "speedup vs ql",
                "modeled p=48 speedup vs ql",
            ],
            rows,
            float_fmt=".4g",
        )
    )
    print(
        "\nThe serial speedup grows without bound in T (work Θ(T²) vs "
        "Θ(T log²T)); the paper reports 16x at T≈10³ and >500x at T≈5·10⁵ "
        "on its C++/48-core testbed — our crossover sits later because the "
        "baseline rows are vectorised C while the fft recursion pays "
        "CPython overhead per trapezoid."
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
