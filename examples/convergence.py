#!/usr/bin/env python
"""Convergence study: all three discretisations against closed forms.

Demonstrates (a) the European limits (lattices → Black–Scholes), (b) the
binomial/trinomial American values converging to a common limit with TOPM
needing roughly half the steps (paper §3, citing Langat et al.), and (c)
Richardson extrapolation on the American binomial value — all computed with
the fast O(T log²T) solvers, which is what makes the large-T rows cheap.

Usage:  python examples/convergence.py [--max-exp 13]
"""

from __future__ import annotations

import argparse
import dataclasses

from repro import Right, paper_benchmark_spec, price_american, price_european
from repro.options.analytic import european_price
from repro.util.tables import format_table


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--max-exp", type=int, default=13, help="largest T = 2^e")
    args = parser.parse_args(argv)

    call = paper_benchmark_spec()
    put = dataclasses.replace(call, right=Right.PUT, dividend_yield=0.0)
    bs = european_price(call)

    rows = []
    prev = None
    for e in range(7, args.max_exp + 1):
        T = 2**e
        eu = price_european(call, T, method="fft").price
        am_b = price_american(call, T, model="binomial", method="fft").price
        am_t = price_american(call, T // 2, model="trinomial", method="fft").price
        am_p = price_american(put, T, model="bsm-fd", method="fft").price
        richardson = None if prev is None else 2 * am_b - prev
        rows.append(
            [T, eu, eu - bs, am_b, am_t, am_t - am_b, richardson, am_p]
        )
        prev = am_b

    print(f"Black–Scholes European call (closed form): {bs:.6f}\n")
    print(
        format_table(
            [
                "T",
                "euro (fft)",
                "euro-BS err",
                "amer binomial",
                "amer trinomial @T/2",
                "tri-bin gap",
                "Richardson(bin)",
                "amer put (bsm-fd)",
            ],
            rows,
            float_fmt=".6f",
        )
    )
    print(
        "\nNotes: the European column converges to the closed form at O(1/T); "
        "the trinomial column uses HALF the steps of the binomial one and "
        "lands equally close to the common American limit (the paper's §3 "
        "claim); Richardson extrapolation accelerates the binomial sequence."
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
