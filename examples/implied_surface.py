#!/usr/bin/env python
"""Calibrate a vol surface from American quotes and sweep scenarios off it.

The closed market loop in miniature: synthesize an American option quote
grid from a known smile, invert every quote back to an implied volatility
(`calibrate_surface`: warm-started Newton–Brent on the O(T log²T) solver),
run the static no-arbitrage diagnostics on the fitted
total-variance-interpolated surface, and feed the surface straight into a
`ScenarioGrid` so a scenario sweep prices with per-cell calibrated vols.

Usage:  python examples/implied_surface.py [--steps N] [--strikes M]
        [--workers P] [--backend process|thread|serial]
"""

from __future__ import annotations

import argparse
import dataclasses
import math

from repro import (
    MarketQuote,
    OptionSpec,
    Right,
    ScenarioEngine,
    ScenarioGrid,
    calibrate_surface,
    price_american,
)
from repro.util.tables import format_table


def true_smile(strike: float, spot: float, years: float) -> float:
    """The 'market' this example synthesizes: a skewed smile rising in T."""
    k = math.log(strike / spot)
    return 0.22 - 0.10 * k + 0.25 * k * k + 0.02 * years


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--steps", type=int, default=256)
    parser.add_argument("--strikes", type=int, default=7)
    parser.add_argument("--workers", type=int, default=1)
    parser.add_argument(
        "--backend", choices=("process", "thread", "serial"), default="serial"
    )
    args = parser.parse_args(argv)

    base = OptionSpec(
        spot=100.0, strike=100.0, rate=0.03, volatility=0.2,
        dividend_yield=0.02, expiry_days=252.0, right=Right.PUT,
    )
    expiries_days = (126.0, 252.0, 378.0)
    strikes = [
        85.0 + 30.0 * i / max(args.strikes - 1, 1)
        for i in range(args.strikes)
    ]

    # --- synthesize the quote grid from the true smile ------------------
    quotes = []
    for e in expiries_days:
        for k in strikes:
            spec = dataclasses.replace(
                base, strike=k, expiry_days=e,
                volatility=true_smile(k, base.spot, e / 252.0),
            )
            quotes.append(
                MarketQuote(spec, price_american(spec, args.steps).price)
            )

    # --- calibrate ------------------------------------------------------
    surface, report = calibrate_surface(
        quotes, args.steps, workers=args.workers, backend=args.backend
    )
    headers = ["strike \\ T"] + [f"{e / 252.0:.2f}y" for e in expiries_days]
    rows = [
        [f"{k:.1f}"]
        + [f"{surface.vol(k, e / 252.0):.4f}" for e in expiries_days]
        for k in strikes
    ]
    print(f"calibrated implied vol surface ({report.n_quotes} quotes)\n")
    print(format_table(headers, rows))

    worst = max(
        abs(surface.vol(q.spec.strike, q.spec.years) - q.spec.volatility)
        for q in quotes
    )
    print(
        f"\nfit: {report.solves_per_quote:.1f} solves/quote, "
        f"max price residual {report.max_residual:.2e}, "
        f"max vol error vs generator {worst:.2e}"
    )
    print(
        f"no-arbitrage diagnostics: {len(report.violations)} violation(s) "
        "(calendar + butterfly)"
    )
    for v in report.violations[:3]:
        print(f"  {v}")

    # --- feed the surface into a scenario sweep -------------------------
    contracts = [dataclasses.replace(base, strike=k) for k in strikes]
    grid = ScenarioGrid.cartesian(
        contracts, expiry_bumps=(-126.0, 0.0), vols=surface
    )
    result = ScenarioEngine(
        backend=args.backend, workers=args.workers
    ).price_grid(grid, args.steps)
    print(
        f"\nscenario sweep off the surface: {len(grid)} cells priced, "
        f"wall {result.meta['wall_s']:.3f} s"
    )
    sample = grid.cells[1]
    print(
        f"sample cell (K={sample.spec.strike:.1f}, "
        f"E={sample.spec.expiry_days:.0f}d) drew surface vol "
        f"{sample.labels['surface_vol']:.4f} -> price "
        f"{result.results[1].price:.4f}"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
