#!/usr/bin/env python
"""Extract and display the early-exercise (red–green) boundary.

The divider the paper's algorithms exploit *is* the early-exercise boundary
of quantitative finance.  This example computes it densely with the vanilla
sweep, sparsely with the fast solver (verifying both agree wherever both are
defined), and prints the boundary asset-price curve as an ASCII profile for
the binomial call and the BSM put.

Usage:  python examples/exercise_boundary.py [--steps N]
"""

from __future__ import annotations

import argparse
import dataclasses

import numpy as np

from repro import Right, exercise_boundary, paper_benchmark_spec
from repro.util.tables import format_table


def ascii_profile(values: np.ndarray, width: int = 48) -> list[str]:
    lo, hi = float(np.min(values)), float(np.max(values))
    span = max(hi - lo, 1e-12)
    return ["#" * (1 + int((v - lo) / span * (width - 1))) for v in values]


def show(spec, model: str, steps: int, n_rows: int = 16) -> None:
    dense = exercise_boundary(spec, steps, model=model, method="loop")
    sparse = exercise_boundary(spec, steps, model=model, method="fft")
    dense_map = dict(zip(dense.rows.tolist(), dense.indices.tolist()))
    agree = sum(
        1
        for r, i in zip(sparse.rows.tolist(), sparse.indices.tolist())
        if dense_map.get(r) == i
    )
    print(
        f"\n=== {model}: {spec.right.value} (T={steps}) — fast solver resolved "
        f"{len(sparse.rows)} rows exactly, {agree} match the dense sweep ==="
    )
    if len(dense.rows) == 0:
        print("no early-exercise region inside the grid for this contract")
        return
    pick = np.linspace(0, len(dense.rows) - 1, min(n_rows, len(dense.rows))).astype(int)
    rows = []
    bars = ascii_profile(dense.prices[pick])
    for k, bar in zip(pick, bars):
        rows.append(
            [
                int(dense.rows[k]),
                f"{dense.times_years[k]:.3f}",
                f"{dense.prices[k]:.2f}",
                bar,
            ]
        )
    print(
        format_table(
            ["row", "t (years)", "boundary price", "profile"],
            rows,
        )
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--steps", type=int, default=512)
    args = parser.parse_args(argv)

    call = paper_benchmark_spec()
    put = dataclasses.replace(call, right=Right.PUT, dividend_yield=0.0)

    show(call, "binomial", args.steps)
    show(put, "bsm-fd", args.steps)
    print(
        "\nThe call boundary sits above the strike (exercise when deep ITM "
        "before dividends leak away); the put boundary climbs toward the "
        "strike as expiry nears (paper Theorems 4.2/4.3)."
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
