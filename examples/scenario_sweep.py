#!/usr/bin/env python
"""Price a spot x vol scenario surface on the ScenarioEngine worker pool.

A risk desk's overnight job in miniature: shock the paper's benchmark
contract across a spot ladder and a vol surface, price every cell with the
O(T log²T) solver on a multi-worker pool, and print the price surface plus
the engine's measured-vs-predicted speedup — the executed counterpart of
the paper's Table 2 work–span analysis.

Usage:  python examples/scenario_sweep.py [--steps N] [--workers P]
        [--backend process|thread|serial]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro import paper_benchmark_spec
from repro.options.greeks import greeks_many
from repro.risk import ScenarioEngine, ScenarioGrid
from repro.util.tables import format_table


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--steps", type=int, default=512)
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument(
        "--backend", choices=("process", "thread", "serial"), default="process"
    )
    args = parser.parse_args(argv)

    base = paper_benchmark_spec()
    spot_bumps = np.linspace(-0.10, 0.10, 9)
    vol_bumps = np.linspace(-0.25, 0.25, 5)
    grid = ScenarioGrid.cartesian(
        base, spot_bumps=spot_bumps, vol_bumps=vol_bumps
    )

    engine = ScenarioEngine(backend=args.backend, workers=args.workers)
    result = engine.price_grid(grid, args.steps)
    surface = result.prices_grid()[0, :, :, 0, 0]

    headers = ["spot \\ vol"] + [
        f"{base.volatility * (1 + bv):.3f}" for bv in vol_bumps
    ]
    rows = [
        [f"{base.spot * (1 + bs):.2f}"] + [f"{v:.4f}" for v in surface[i]]
        for i, bs in enumerate(spot_bumps)
    ]
    print(f"American call price surface (T={args.steps}, {len(grid)} cells)\n")
    print(format_table(headers, rows))

    m = result.meta
    print(
        f"\nbackend={m['backend']} workers={m['workers']} "
        f"chunks={m['n_chunks']}  wall {m['wall_s']:.3f} s"
    )
    print(
        f"measured concurrency {m['measured_speedup']:.2f}x   "
        f"Brent-predicted speedup {m['predicted_speedup']:.2f}x "
        f"(parallelism {m['parallelism']:.0f})"
    )

    # The same machinery drives whole-book Greek ladders:
    greeks = greeks_many([base, base.symmetric_dual()], args.steps, engine=engine)
    print("\nGreek ladders (engine-shared bump grid):")
    for spec, g in zip((base, base.symmetric_dual()), greeks):
        print(
            f"  {spec.right.value:>4} K={spec.strike:<7.2f} "
            f"price {g.price:7.4f}  delta {g.delta:+.4f}  gamma {g.gamma:.5f}"
            f"  vega {g.vega:7.4f}  theta {g.theta:+.5f}  rho {g.rho:+.4f}"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
