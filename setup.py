"""Setuptools shim.

All metadata lives in pyproject.toml; this file exists so that
``pip install -e . --no-use-pep517`` (the legacy editable path) works in
fully offline environments that lack the ``wheel`` package required by
PEP-517 editable builds.
"""

from setuptools import setup

setup()
