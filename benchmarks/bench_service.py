"""QuoteService throughput: cold vs warm, coalescing on/off, Zipf streams.

Writes ``BENCH_service.json`` (repo root by default) with four measurements:

1. **Cold vs warm** — a strike/right book quoted cold (every request a
   canonical solve) and again warm (every request an LRU hit), in
   quotes/sec.  The acceptance gates: warm ≥ 10x faster per quote than the
   cold solve, and warm prices *bit-identical* to cold at quantization
   tolerance 0.
2. **Coalescing** — the same unique book through ``quote_many``
   (coalesced), ``coalesce=False`` (per-request solves), and direct
   ``price_many`` (no service layer).  Gate: the coalesced path is no
   slower than direct ``price_many`` (≤ 5% measurement-noise allowance on
   the min-of-repeats).
3. **Symmetry fold** — N calls plus their N McDonald–Schroder dual puts:
   2N requests, N canonical solves.
4. **Zipf stream** — a synthetic heavy-traffic tail (rank-frequency
   exponent 1.2) against the cache; reports hit ratio and the speedup over
   pricing every request from scratch.

Run ``python benchmarks/bench_service.py`` for the full sizes or
``--smoke`` for the CI pass.
"""

from __future__ import annotations

import argparse
import dataclasses
import os
import sys
import time

import numpy as np

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
)
sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from conftest import bench_report, telemetry_section, write_bench_report  # noqa: E402
from repro.core.api import price_many  # noqa: E402
from repro.options.contract import Right, paper_benchmark_spec  # noqa: E402
from repro.service import QuoteService  # noqa: E402

SPEC = paper_benchmark_spec()


def build_book(n: int) -> list:
    """``n`` distinct contracts: a strike ladder alternating call/put."""
    return [
        dataclasses.replace(
            SPEC,
            strike=float(k),
            right=Right.PUT if i % 2 else Right.CALL,
        )
        for i, k in enumerate(np.linspace(100.0, 170.0, n))
    ]


def best_of(repeats: int, fn) -> tuple[float, object]:
    """(min wall seconds, last return value) over ``repeats`` runs of ``fn``."""
    best = float("inf")
    value = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - t0)
    return best, value


def bench_cold_warm(book: list, steps: int, repeats: int) -> dict:
    svc = QuoteService()
    t_cold = time.perf_counter()
    cold = svc.quote_many(book, steps)
    t_cold = time.perf_counter() - t_cold
    t_warm, warm = best_of(repeats, lambda: svc.quote_many(book, steps))
    t_warm_single, _ = best_of(
        repeats, lambda: [svc.quote(s, steps) for s in book]
    )
    max_abs_diff = max(
        abs(w.price - c.price) for w, c in zip(warm, cold)
    )
    return {
        "n_quotes": len(book),
        "cold_wall_s": t_cold,
        "warm_wall_s": t_warm,
        "warm_single_wall_s": t_warm_single,
        "cold_qps": len(book) / t_cold,
        "warm_qps": len(book) / t_warm,
        "warm_single_qps": len(book) / t_warm_single,
        "warm_speedup_vs_cold": t_cold / t_warm,
        "warm_max_abs_diff_vs_cold": max_abs_diff,
    }


def bench_coalescing(book: list, steps: int, repeats: int) -> dict:
    t_direct, direct = best_of(repeats, lambda: price_many(book, steps))
    t_coalesced, served = best_of(
        repeats, lambda: QuoteService().quote_many(book, steps)
    )
    t_uncoalesced, _ = best_of(
        repeats, lambda: QuoteService(coalesce=False).quote_many(book, steps)
    )
    max_rel = max(
        abs(s.price - d.price) / abs(d.price) for s, d in zip(served, direct)
    )
    return {
        "n_unique": len(book),
        "direct_price_many_wall_s": t_direct,
        "coalesced_wall_s": t_coalesced,
        "uncoalesced_wall_s": t_uncoalesced,
        "coalesced_vs_direct": t_direct / t_coalesced,
        "coalesced_vs_uncoalesced": t_uncoalesced / t_coalesced,
        "max_rel_diff_vs_direct": max_rel,
    }


def bench_symmetry_fold(n: int, steps: int) -> dict:
    calls = [
        dataclasses.replace(SPEC, strike=float(k))
        for k in np.linspace(105.0, 155.0, n)
    ]
    traffic = calls + [c.symmetric_dual() for c in calls]
    svc = QuoteService()
    t0 = time.perf_counter()
    svc.quote_many(traffic, steps)
    wall = time.perf_counter() - t0
    stats = svc.stats()["service"]
    return {
        "n_requests": len(traffic),
        "n_solves": stats["solves"],
        "wall_s": wall,
        "fold_ratio": len(traffic) / stats["solves"],
    }


def bench_zipf(
    population_n: int, n_requests: int, steps: int, seed: int = 7
) -> dict:
    rng = np.random.default_rng(seed)
    population = build_book(population_n)
    ranks = (rng.zipf(1.2, size=n_requests) - 1) % population_n
    svc = QuoteService()
    t0 = time.perf_counter()
    for r in ranks:
        svc.quote(population[r], steps)
    wall = time.perf_counter() - t0
    stats = svc.stats()
    solves = stats["service"]["solves"]
    # what the same stream would cost with no cache: every request at the
    # measured per-contract cost of solving the whole population once
    t_population, _ = best_of(1, lambda: price_many(population, steps))
    per_solve = t_population / population_n
    return {
        "population": population_n,
        "n_requests": n_requests,
        "wall_s": wall,
        "qps": n_requests / wall,
        "hit_ratio": stats["cache"]["hit_ratio"],
        "solves": solves,
        "estimated_uncached_wall_s": per_solve * n_requests,
        "speedup_vs_uncached_estimate": per_solve * n_requests / wall,
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", "--quick", action="store_true", dest="smoke",
        help="tiny sizes for the CI smoke pass",
    )
    parser.add_argument("--steps", type=int, default=None)
    parser.add_argument(
        "--out",
        default=os.path.join(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
            "BENCH_service.json",
        ),
    )
    args = parser.parse_args()

    steps = args.steps or (64 if args.smoke else 512)
    book = build_book(6 if args.smoke else 24)
    repeats = 2 if args.smoke else 5

    report = bench_report("quote_service", smoke=args.smoke, steps=steps)

    cw = bench_cold_warm(book, steps, repeats)
    report["cold_vs_warm"] = cw
    print(
        f"cold {cw['cold_qps']:9.1f} q/s   warm {cw['warm_qps']:9.1f} q/s "
        f"({cw['warm_speedup_vs_cold']:.0f}x)   "
        f"warm-vs-cold max |diff| {cw['warm_max_abs_diff_vs_cold']:.2e}"
    )
    # Accuracy gates always hold; wall-clock ratio gates only on the full
    # run — at smoke sizes a single scheduling hiccup on a busy CI host can
    # swing a ~4 ms measurement past any reasonable threshold.
    assert cw["warm_max_abs_diff_vs_cold"] == 0.0, (
        "tol-0 cache hits must be bit-identical"
    )
    if not args.smoke:
        assert cw["warm_speedup_vs_cold"] >= 10.0, "warm cache under 10x"

    co = bench_coalescing(book, steps, repeats)
    report["coalescing"] = co
    print(
        f"direct {co['direct_price_many_wall_s']*1e3:7.1f} ms   coalesced "
        f"{co['coalesced_wall_s']*1e3:7.1f} ms "
        f"({co['coalesced_vs_direct']:.2f}x)   uncoalesced "
        f"{co['uncoalesced_wall_s']*1e3:7.1f} ms   rel-diff "
        f"{co['max_rel_diff_vs_direct']:.2e}"
    )
    assert co["max_rel_diff_vs_direct"] <= 1e-12, "service prices drifted"
    if not args.smoke:
        # repeated runs on a quiet host show statistical parity (ratio
        # 0.94-1.3 around 1.0); 0.90 is below the measured scheduling-noise
        # floor of a busy 1-CPU container, so only a real regression trips it
        assert co["coalesced_vs_direct"] >= 0.90, (
            "coalesced quote_many slower than direct price_many beyond noise"
        )

    sf = bench_symmetry_fold(4 if args.smoke else 12, steps)
    report["symmetry_fold"] = sf
    print(
        f"symmetry fold: {sf['n_requests']} requests -> {sf['n_solves']} "
        f"solves ({sf['fold_ratio']:.1f}x)"
    )
    assert sf["fold_ratio"] >= 2.0, "dual puts failed to fold onto calls"

    zipf = bench_zipf(
        12 if args.smoke else 64,
        100 if args.smoke else 1500,
        64 if args.smoke else 256,
    )
    report["zipf_stream"] = zipf
    print(
        f"zipf: {zipf['n_requests']} reqs over {zipf['population']} names   "
        f"{zipf['qps']:9.1f} q/s   hit ratio {zipf['hit_ratio']:.3f}   "
        f"~{zipf['speedup_vs_uncached_estimate']:.1f}x vs uncached"
    )

    report["summary"] = {
        "warm_speedup_vs_cold": cw["warm_speedup_vs_cold"],
        "warm_qps": cw["warm_qps"],
        "bit_identical_at_tol0": cw["warm_max_abs_diff_vs_cold"] == 0.0,
        "coalesced_vs_direct": co["coalesced_vs_direct"],
        "symmetry_fold_ratio": sf["fold_ratio"],
        "zipf_hit_ratio": zipf["hit_ratio"],
        "zipf_speedup_vs_uncached": zipf["speedup_vs_uncached_estimate"],
    }
    report["telemetry"] = telemetry_section(
        quotes_per_sec=zipf["qps"],
        hit_rate=zipf["hit_ratio"],
    )
    write_bench_report(
        args.out,
        report,
        speedup=cw["warm_speedup_vs_cold"],
        drift=cw["warm_max_abs_diff_vs_cold"],
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
