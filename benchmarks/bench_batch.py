"""Lockstep BatchSolver: multi-kernel batched grids and ladders vs serial.

Writes ``BENCH_batch.json`` (repo root by default) with three measurements:

1. **American scenario grid** — a 1024-cell vol × rate × spot grid (every
   cell a *different* kernel) priced through the
   :class:`~repro.risk.engine.ScenarioEngine` serial path, which now rides
   ``price_many`` -> ``solve_batch`` -> lockstep ``advance_batch``, against
   the per-cell ``price_american`` loop on one shared engine (the pre-batch
   behaviour).  Acceptance gates: bit-level agreement (≤ 1e-12 relative),
   the grid's engine counters showing ``advance_batch`` rounds, and the
   Python-level transform-call consolidation (one batched call per lockstep
   round instead of one per cell-advance).
2. **European scenario grid** — the same cells European: the whole grid
   collapses into a single multi-kernel jump.
3. **64-quote implied-vol ladder** — ``implied_vol_many(lockstep=True)``
   against the per-quote serial ``implied_vol`` loop (identical algorithm,
   batched evaluations; fitted vols must agree to ≤ 1e-12) with the
   warm-start ladder timed alongside for context.

Run ``python benchmarks/bench_batch.py`` for the full sizes or ``--smoke``
for the CI pass (timing gates are skipped at smoke sizes — a busy CI host
makes wall-clock ratios meaningless; the counter and agreement gates are
asserted at every size).
"""

from __future__ import annotations

import argparse
import dataclasses
import math
import os
import sys
import time

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
)
sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import numpy as np  # noqa: E402

from conftest import bench_report, telemetry_section, write_bench_report  # noqa: E402

from repro.core.api import price_american, price_european, price_many  # noqa: E402
from repro.core.fftstencil import AdvanceEngine  # noqa: E402
from repro.market.implied import implied_vol, implied_vol_many  # noqa: E402
from repro.options.contract import OptionSpec, Right, Style  # noqa: E402
from repro.risk.engine import ScenarioEngine  # noqa: E402


def build_grid(n_cells: int, style: Style) -> list[OptionSpec]:
    """``n_cells`` contracts, every one with its own vol/rate/spot kernel."""
    base = OptionSpec(
        spot=100.0, strike=100.0, rate=0.03, volatility=0.2,
        dividend_yield=0.02, expiry_days=252.0, right=Right.CALL, style=style,
    )
    rng = np.random.default_rng(7)
    return [
        dataclasses.replace(
            base,
            spot=float(s),
            volatility=float(v),
            rate=float(r),
        )
        for s, v, r in zip(
            rng.uniform(90.0, 110.0, size=n_cells),
            rng.uniform(0.12, 0.45, size=n_cells),
            rng.uniform(0.0, 0.08, size=n_cells),
        )
    ]


def _best_of(repeats, fn):
    best, out = math.inf, None
    for _ in range(repeats):
        t0 = time.perf_counter()
        out = fn()
        best = min(best, time.perf_counter() - t0)
    return best, out


def _best_of_interleaved(repeats, *fns):
    """Best-of timings with the contenders alternated round-robin.

    Timing all of A's repeats before any of B's hands B the hotter,
    throttled core on small hosts; alternating A,B,A,B gives every
    contender the same thermal conditions.
    """
    bests = [math.inf] * len(fns)
    outs = [None] * len(fns)
    for _ in range(repeats):
        for i, fn in enumerate(fns):
            t0 = time.perf_counter()
            outs[i] = fn()
            bests[i] = min(bests[i], time.perf_counter() - t0)
    return [(b, o) for b, o in zip(bests, outs)]


def bench_american_grid(n_cells: int, steps: int, repeats: int) -> dict:
    specs = build_grid(n_cells, Style.AMERICAN)

    def run_serial():
        engine = AdvanceEngine()
        return [price_american(s, steps, engine=engine) for s in specs]

    def run_batch():
        scenario = ScenarioEngine(
            workers=1, backend="serial", chunk_size=len(specs)
        )
        return scenario.price_grid(specs, steps)

    (serial_wall, serial_results), (batch_wall, batch_result) = (
        _best_of_interleaved(repeats, run_serial, run_batch)
    )

    max_rel = max(
        abs(a.price - b.price) / s.strike
        for a, b, s in zip(serial_results, batch_result.results, specs)
    )
    info = batch_result.meta["engine"]
    serial_engine = AdvanceEngine()
    for s in specs[: min(8, n_cells)]:
        price_american(s, steps, engine=serial_engine)
    return {
        "n_cells": n_cells,
        "steps": steps,
        "serial_wall_s": serial_wall,
        "batch_wall_s": batch_wall,
        "batch_speedup": serial_wall / batch_wall,
        "max_rel_diff": max_rel,
        "batch_rounds": info["batch_advances"],
        "batched_rows": info["batched_inputs"],
        # Python-level transform calls: one per lockstep round vs one per
        # cell-advance — the consolidation advance_batch buys
        "transform_calls_batched": info["advances"],
        "transform_calls_serial_equiv": info["batched_inputs"],
        "call_consolidation": (
            info["batched_inputs"] / info["advances"]
            if info["advances"]
            else 1.0
        ),
        # naive base-case rows: serial runs one Python-level row per cell
        # per step; lockstep serves every live solver's row from one
        # base_rows_batch call per round (DESIGN.md §7.6)
        "base_rows_total": info["base_batch_rows"],
        "base_row_batched_calls": info["base_batch_calls"],
        "base_row_consolidation": (
            info["base_batch_rows"] / info["base_batch_calls"]
            if info["base_batch_calls"]
            else 1.0
        ),
        "base_block_hits": info["base_block_hits"],
    }


def bench_european_grid(n_cells: int, steps: int, repeats: int) -> dict:
    specs = build_grid(n_cells, Style.EUROPEAN)

    def run_serial():
        engine = AdvanceEngine()
        return [price_european(s, steps, engine=engine) for s in specs]

    def run_batch():
        engine = AdvanceEngine()
        results = price_many(specs, steps, engine=engine)
        return results, engine.cache_info()

    (serial_wall, serial_results), (batch_wall, (batch_results, info)) = (
        _best_of_interleaved(repeats, run_serial, run_batch)
    )
    max_rel = max(
        abs(a.price - b.price) / s.strike
        for a, b, s in zip(serial_results, batch_results, specs)
    )
    return {
        "n_cells": n_cells,
        "steps": steps,
        "serial_wall_s": serial_wall,
        "batch_wall_s": batch_wall,
        "batch_speedup": serial_wall / batch_wall,
        "max_rel_diff": max_rel,
        "batch_rounds": info["batch_advances"],
    }


def smile_vol(strike: float, spot: float, years: float) -> float:
    k = math.log(strike / spot)
    return 0.22 - 0.10 * k + 0.25 * k * k + 0.02 * years


def bench_ladder(n_quotes: int, steps: int, repeats: int) -> dict:
    base = OptionSpec(
        spot=100.0, strike=100.0, rate=0.03, volatility=0.2,
        dividend_yield=0.02, expiry_days=252.0, right=Right.CALL,
    )
    specs = []
    for i in range(n_quotes):
        strike = 80.0 + 40.0 * i / max(n_quotes - 1, 1)
        specs.append(
            dataclasses.replace(
                base, strike=strike,
                volatility=smile_vol(strike, base.spot, base.years),
            )
        )
    quotes = [r.price for r in price_many(specs, steps)]

    def run_serial():
        engine = AdvanceEngine()
        return [
            implied_vol(q, s, steps, engine=engine)
            for s, q in zip(specs, quotes)
        ]

    def run_warm():
        return implied_vol_many(specs, quotes, steps, engine=AdvanceEngine())

    def run_lockstep():
        engine = AdvanceEngine()
        report = implied_vol_many(
            specs, quotes, steps, engine=engine, lockstep=True
        )
        return report, engine.cache_info()

    (
        (serial_wall, serial_results),
        (warm_wall, warm_report),
        (lockstep_wall, (lockstep_report, info)),
    ) = _best_of_interleaved(repeats, run_serial, run_warm, run_lockstep)

    max_vol_diff = max(
        abs(a.vol - b.vol)
        for a, b in zip(serial_results, lockstep_report.results)
    )
    return {
        "n_quotes": n_quotes,
        "steps": steps,
        "serial_wall_s": serial_wall,
        "warm_start_wall_s": warm_wall,
        "lockstep_wall_s": lockstep_wall,
        "lockstep_speedup_vs_serial": serial_wall / lockstep_wall,
        "lockstep_speedup_vs_warm_start": warm_wall / lockstep_wall,
        "lockstep_rounds": lockstep_report.meta["rounds"],
        "lockstep_solves_per_quote": lockstep_report.solves / n_quotes,
        "warm_start_solves_per_quote": warm_report.solves / n_quotes,
        "max_abs_vol_diff_vs_serial": max_vol_diff,
        "batch_rounds": info["batch_advances"],
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", "--quick", action="store_true", dest="smoke",
        help="tiny sizes for the CI smoke pass",
    )
    parser.add_argument("--steps", type=int, default=None)
    parser.add_argument(
        "--out",
        default=os.path.join(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
            "BENCH_batch.json",
        ),
    )
    args = parser.parse_args()

    steps = args.steps or (64 if args.smoke else 256)
    n_cells = 64 if args.smoke else 1024
    n_quotes = 12 if args.smoke else 64
    repeats = 1 if args.smoke else 2
    report = bench_report("batch_solver", smoke=args.smoke, steps=steps)

    am = bench_american_grid(n_cells, steps, repeats)
    report["american_grid"] = am
    print(
        f"american grid ({am['n_cells']} cells, {am['steps']} steps): "
        f"{am['batch_speedup']:.2f}x wall, "
        f"{am['call_consolidation']:.1f}x fewer transform calls, "
        f"{am['base_row_consolidation']:.1f}x fewer base-row calls, "
        f"max rel diff {am['max_rel_diff']:.1e}"
    )
    assert am["max_rel_diff"] <= 1e-12, "batched grid drifted past 1e-12"
    assert am["batch_rounds"] > 0, "grid did not route through advance_batch"
    assert am["call_consolidation"] > 4.0, (
        "lockstep rounds did not consolidate the per-cell advance calls"
    )
    # Machine-independent half of the base-row tentpole: every naive row
    # still runs, but B-wide rounds shrink the Python-level call count by
    # the live batch width.  Asserted at every size (counters, not walls).
    assert am["base_row_batched_calls"] > 0, (
        "grid did not route through base_rows_batch"
    )
    assert am["base_row_consolidation"] >= 10.0, (
        f"base rows under-consolidated: {am['base_row_consolidation']:.1f} "
        "rows/call (expect >= 10x fewer Python-level base-row calls)"
    )

    eu = bench_european_grid(n_cells, steps, repeats)
    report["european_grid"] = eu
    print(
        f"european grid ({eu['n_cells']} cells): {eu['batch_speedup']:.2f}x "
        f"wall, max rel diff {eu['max_rel_diff']:.1e}"
    )
    assert eu["max_rel_diff"] <= 1e-12, "batched European grid drifted"
    assert eu["batch_rounds"] > 0, "European grid skipped advance_batch"

    lad = bench_ladder(n_quotes, steps, repeats)
    report["ladder"] = lad
    print(
        f"ladder ({lad['n_quotes']} quotes): lockstep "
        f"{lad['lockstep_speedup_vs_serial']:.2f}x vs serial "
        f"({lad['lockstep_rounds']} rounds, "
        f"{lad['lockstep_solves_per_quote']:.2f} solves/quote), "
        f"{lad['lockstep_speedup_vs_warm_start']:.2f}x vs warm-start, "
        f"vol diff {lad['max_abs_vol_diff_vs_serial']:.1e}"
    )
    assert lad["max_abs_vol_diff_vs_serial"] <= 1e-12, (
        "lockstep ladder vols drifted from the serial path"
    )
    assert lad["batch_rounds"] > 0, "ladder did not route through advance_batch"
    assert lad["lockstep_rounds"] < lad["n_quotes"] * max(
        lad["lockstep_solves_per_quote"], 1.0
    ), "lockstep made as many pool passes as serial solves"

    if not args.smoke:
        # Wall gates only at full size on a quiet host; the counter gates
        # above are the machine-independent half of the speedup.  With
        # base rows batched (DESIGN.md §7.6) the American grid lands at
        # ~1.4-1.6x serial wall on one quiet core; the gate sits below
        # that with headroom for host noise.
        assert am["batch_speedup"] >= 1.2, (
            f"American grid batching regressed: {am['batch_speedup']:.2f}x "
            "(expected ~1.4-1.6x on a quiet host)"
        )
        assert eu["batch_speedup"] >= 1.3, (
            f"European grid batching under 1.3x: {eu['batch_speedup']:.2f}x"
        )
        # Like the American grid, the ladder's lattice solves are
        # base-case-bound, so lockstep lands at 1.0-1.2x wall on one core
        # depending on host noise; the rounds/consolidation gates above
        # are the stable evidence.
        assert lad["lockstep_speedup_vs_serial"] >= 0.9, (
            f"lockstep ladder regressed: "
            f"{lad['lockstep_speedup_vs_serial']:.2f}x"
        )

    report["summary"] = {
        "american_grid_speedup": am["batch_speedup"],
        "american_grid_call_consolidation": am["call_consolidation"],
        "american_grid_base_row_consolidation": am["base_row_consolidation"],
        "european_grid_speedup": eu["batch_speedup"],
        "ladder_lockstep_speedup_vs_serial": lad["lockstep_speedup_vs_serial"],
        "ladder_lockstep_rounds": lad["lockstep_rounds"],
        "bit_agreement_within_1e12": True,
    }
    report["telemetry"] = telemetry_section(
        cells_per_sec=am["n_cells"] / am["batch_wall_s"],
    )
    write_bench_report(
        args.out,
        report,
        speedup=am["batch_speedup"],
        drift=max(
            am["max_rel_diff"],
            eu["max_rel_diff"],
            lad["max_abs_vol_diff_vs_serial"],
        ),
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
