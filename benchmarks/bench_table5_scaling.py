"""Table 5 and Proposition 1.1: strong scaling under the greedy-scheduler model."""

from __future__ import annotations

import pytest

from repro.experiments import is_fast_mode, run_experiment
from repro.parallel import GreedyScheduler, TaskGraph


def _chain_graph(n: int) -> TaskGraph:
    g = TaskGraph()
    prev: list[str] = []
    for i in range(n):
        g.add(f"t{i}", 1.0, prev)
        prev = [f"t{i}"]
    return g


def test_scheduler_throughput(benchmark):
    """Event-driven list-scheduler speed on a 1000-task chain."""
    g = _chain_graph(1000)
    makespan = benchmark(GreedyScheduler(4).run, g)
    assert makespan == pytest.approx(1000.0)


def test_table5(benchmark):
    result = benchmark.pedantic(run_experiment, args=("table5",), rounds=1, iterations=1)
    fft = next(k for k in result.series if k.startswith("fft"))
    ql = next(k for k in result.series if k.startswith("ql"))
    assert set(result.series[fft]) == set(result.series[ql])
    if not is_fast_mode():
        # §5.4 structure: ql-bopm keeps gaining to p=48 far more than
        # fft-bopm, whose Theta(log^2 T) parallelism saturates early
        fft_gain = result.series[fft][1] / result.series[fft][48]
        ql_gain = result.series[ql][1] / result.series[ql][48]
        assert ql_gain > fft_gain


def test_prop11(benchmark):
    result = benchmark.pedantic(
        run_experiment, args=("prop1.1",), rounds=1, iterations=1
    )
    for label, series in result.series.items():
        xs = sorted(series)
        # the new/old T_p ratio must decrease as T grows, for every p
        assert series[xs[-1]] < series[xs[0]], label
