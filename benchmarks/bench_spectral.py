"""Spectral fast tier: cold tiered quotes vs cold lattice quotes.

Writes ``BENCH_spectral.json`` (repo root by default) with three
measurements:

1. **Cold quote latency** — ``QuoteService.quote(tier="fast")`` on a cold
   cache and a cold spectral plan (every contract carries a distinct vol,
   so each quote pays a full Chebyshev collocation solve) against the
   cold exact-lattice quote at *matched accuracy*: the spectral tier's
   worst measured error against a converged lattice is ~1e-4, which the
   CRR lattice only reaches at thousands of steps, so the full-size
   comparison prices the lattice at 8192 steps.  Acceptance gate (full
   sizes only): the cold fast quote is **>= 50x** faster.
2. **Accuracy sweep** — spectral vs a converged lattice across a
   moneyness x vol x expiry grid of genuinely-American puts and calls.
   Acceptance gate (every size): relative error <= 1e-3 at the default
   collocation order.
3. **Warm fast-tier throughput** — quotes/sec and hit rate over a warm
   fast-slot stream, for the shared telemetry section.

Run ``python benchmarks/bench_spectral.py`` for the full sizes or
``--smoke`` for the CI pass (wall gates are skipped at smoke sizes — a
busy CI host makes wall-clock ratios meaningless; the accuracy gates are
asserted at every size).
"""

from __future__ import annotations

import argparse
import dataclasses
import math
import os
import sys
import time

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
)
sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from conftest import bench_report, telemetry_section, write_bench_report  # noqa: E402

from repro.core.api import price_american  # noqa: E402
from repro.core.backend import get_backend  # noqa: E402
from repro.options.contract import OptionSpec, Right, Style  # noqa: E402
from repro.service.service import QuoteService  # noqa: E402

BASE = OptionSpec(
    spot=100.0, strike=100.0, rate=0.04, volatility=0.25,
    dividend_yield=0.02, expiry_days=252.0, right=Right.PUT,
    style=Style.AMERICAN,
)


def cold_specs(n: int, salt: int) -> list[OptionSpec]:
    """``n`` contracts whose vols are unique across the whole run, so
    every fast-tier quote builds a fresh spectral plan (the registered
    backend's plan cache is keyed on exact market data) and every
    lattice quote is a genuine cold solve."""
    return [
        dataclasses.replace(
            BASE,
            volatility=0.22 + 1e-4 * (salt * 1000 + i),
            spot=95.0 + i,
        )
        for i in range(n)
    ]


def bench_cold_quotes(steps: int, n: int, repeats: int) -> dict:
    """Best-of interleaved cold-quote walls, fast tier vs exact lattice."""
    fast_best = exact_best = math.inf
    for rep in range(repeats):
        specs = cold_specs(n, salt=2 * rep)
        svc = QuoteService(steps_default=steps)
        t0 = time.perf_counter()
        for spec in specs:
            svc.quote(spec, tier="fast")
        fast_best = min(fast_best, time.perf_counter() - t0)

        specs = cold_specs(n, salt=2 * rep + 1)
        svc = QuoteService(steps_default=steps)
        t0 = time.perf_counter()
        for spec in specs:
            svc.quote(spec)
        exact_best = min(exact_best, time.perf_counter() - t0)
    return {
        "steps": steps,
        "n_quotes": n,
        "fast_wall_s": fast_best,
        "lattice_wall_s": exact_best,
        "fast_quote_ms": fast_best / n * 1e3,
        "lattice_quote_ms": exact_best / n * 1e3,
        "cold_speedup": exact_best / fast_best,
    }


def bench_accuracy(steps_ref: int) -> dict:
    """Spectral vs converged lattice over a moneyness x vol x expiry
    grid; relative error against ``max(price, 1% of strike)`` so deep
    out-of-the-money cents do not blow up the ratio."""
    spectral = get_backend("spectral")
    worst = 0.0
    worst_case = None
    cases = 0
    for right in (Right.PUT, Right.CALL):
        for moneyness in (0.85, 1.0, 1.15):
            for vol in (0.2, 0.35):
                for days in (126.0, 378.0):
                    spec = dataclasses.replace(
                        BASE,
                        right=right,
                        spot=100.0 * moneyness,
                        volatility=vol,
                        expiry_days=days,
                    )
                    approx = spectral.price_spec(spec, steps_ref).price
                    exact = price_american(spec, steps_ref).price
                    rel = abs(approx - exact) / max(exact, 0.01 * spec.strike)
                    cases += 1
                    if rel > worst:
                        worst = rel
                        worst_case = {
                            "right": right.name,
                            "moneyness": moneyness,
                            "vol": vol,
                            "expiry_days": days,
                            "spectral": approx,
                            "lattice": exact,
                        }
    return {
        "steps_ref": steps_ref,
        "cases": cases,
        "max_rel_err": worst,
        "worst_case": worst_case,
        "tolerance": spectral.tolerance,
    }


def bench_warm_throughput(steps: int, n_quotes: int) -> dict:
    """Warm fast-slot stream: every quote after the first per contract is
    a fast-tier cache hit."""
    specs = cold_specs(8, salt=999)
    svc = QuoteService(steps_default=steps)
    for spec in specs:
        svc.quote(spec, tier="fast")  # seed the fast slots
    t0 = time.perf_counter()
    for i in range(n_quotes):
        svc.quote(specs[i % len(specs)], tier="fast")
    wall = time.perf_counter() - t0
    cache = svc.stats()["cache"]
    return {
        "steps": steps,
        "n_quotes": n_quotes,
        "wall_s": wall,
        "quotes_per_sec": n_quotes / wall,
        "hit_rate": cache["hit_ratio"],
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", "--quick", action="store_true", dest="smoke",
        help="tiny sizes for the CI smoke pass",
    )
    parser.add_argument("--steps", type=int, default=None)
    parser.add_argument(
        "--out",
        default=os.path.join(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
            "BENCH_spectral.json",
        ),
    )
    args = parser.parse_args()

    # Matched accuracy: the spectral tier's worst error vs a converged
    # lattice is ~1e-4, which the CRR lattice itself only reaches at
    # O(8k) steps — so that is the honest cold-latency comparison point.
    steps = args.steps or (1024 if args.smoke else 8192)
    steps_ref = 2048 if args.smoke else 4096
    n_cold = 2 if args.smoke else 4
    repeats = 1 if args.smoke else 2
    n_warm = 200 if args.smoke else 2000
    report = bench_report("spectral_tier", smoke=args.smoke, steps=steps)

    cold = bench_cold_quotes(steps, n_cold, repeats)
    report["cold_quotes"] = cold
    print(
        f"cold quotes ({cold['n_quotes']} contracts, {steps} lattice "
        f"steps): fast {cold['fast_quote_ms']:.2f} ms vs lattice "
        f"{cold['lattice_quote_ms']:.1f} ms -> "
        f"{cold['cold_speedup']:.1f}x"
    )

    acc = bench_accuracy(steps_ref)
    report["accuracy"] = acc
    print(
        f"accuracy ({acc['cases']} cases vs {steps_ref}-step lattice): "
        f"max rel err {acc['max_rel_err']:.2e} "
        f"(stated tolerance {acc['tolerance']:g})"
    )
    assert acc["max_rel_err"] <= acc["tolerance"], (
        f"spectral drifted past its stated tolerance: "
        f"{acc['max_rel_err']:.2e} > {acc['tolerance']:g} "
        f"at {acc['worst_case']}"
    )

    warm = bench_warm_throughput(steps, n_warm)
    report["warm_throughput"] = warm
    print(
        f"warm fast tier: {warm['quotes_per_sec']:.0f} quotes/s "
        f"(hit rate {warm['hit_rate']:.2f})"
    )

    if not args.smoke:
        # Wall gate only at full size on a quiet host.  At matched
        # accuracy (8192-step lattice) the cold fast quote lands ~70-90x
        # faster; the gate sits at the issue's 50x floor.
        assert cold["cold_speedup"] >= 50.0, (
            f"cold fast-tier quote under 50x the cold lattice quote: "
            f"{cold['cold_speedup']:.1f}x"
        )

    report["summary"] = {
        "cold_speedup": cold["cold_speedup"],
        "fast_quote_ms": cold["fast_quote_ms"],
        "lattice_quote_ms": cold["lattice_quote_ms"],
        "accuracy_cases": acc["cases"],
        "within_stated_tolerance": True,
    }
    report["telemetry"] = telemetry_section(
        quotes_per_sec=warm["quotes_per_sec"],
        hit_rate=warm["hit_rate"],
    )
    write_bench_report(
        args.out, report,
        speedup=cold["cold_speedup"],
        drift=acc["max_rel_err"],
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
