"""Old-vs-new advance throughput for the plan-caching AdvanceEngine.

Measures three things across ``T in {2^10 .. 2^17}`` and writes
``BENCH_advance_engine.json`` (repo root by default):

1. **Repeated same-height advances** — the kernel-spectrum cache-hit path
   (one rFFT + pointwise multiply + irFFT against a cached conjugated
   kernel spectrum) versus the legacy stateless ``fftconvolve`` path (three
   transforms of a larger pad plus a reversed-kernel copy per call).  This
   is the access pattern of the trapezoid recursion, which requests the
   same ``(taps, h)`` kernel at every level.
2. **Full solves** — ``solve_tree_fft`` with a warm plan-caching engine
   versus ``AdvanceEngine(reuse=False)`` (the exact pre-engine behaviour),
   with the price agreement checked to 1e-10 relative.
3. **Batched portfolio jumps** — ``advance_many`` over a strike strip
   versus the same advances issued sequentially.

Run ``python benchmarks/bench_advance_engine.py`` for the full sweep or
``--quick`` for a CI smoke pass (not a substitute for the pytest suite).
"""

from __future__ import annotations

import argparse
import os
import sys
import time

import numpy as np

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
)
sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from conftest import bench_report, write_bench_report  # noqa: E402
from repro.core.fftstencil import AdvanceEngine  # noqa: E402
from repro.core.tree_solver import solve_tree_fft  # noqa: E402
from repro.options.contract import paper_benchmark_spec  # noqa: E402
from repro.options.params import BinomialParams  # noqa: E402

SPEC = paper_benchmark_spec()


def _best_of(fn, repeats: int) -> float:
    """Best wall-clock of ``repeats`` timed calls (seconds)."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def bench_repeated_advance(T: int, inner: int, repeats: int) -> dict:
    """Same-height advance issued ``inner`` times: legacy vs warm engine."""
    params = BinomialParams.from_spec(SPEC, T)
    h = T // 2
    rng = np.random.default_rng(0)
    x = rng.uniform(0.0, 100.0, size=T + 1)

    legacy = AdvanceEngine(reuse=False)
    warm = AdvanceEngine()
    warm.advance(x, params.taps, h, scale=SPEC.strike)  # materialise the plan

    def run(engine):
        for _ in range(inner):
            engine.advance(x, params.taps, h, scale=SPEC.strike)

    t_legacy = _best_of(lambda: run(legacy), repeats) / inner
    t_cached = _best_of(lambda: run(warm), repeats) / inner
    y_old, _ = legacy.advance(x, params.taps, h)
    y_new, _ = warm.advance(x, params.taps, h)
    rel_err = float(np.max(np.abs(y_new - y_old)) / np.max(np.abs(y_old)))
    return {
        "T": T,
        "h": h,
        "input_len": len(x),
        "legacy_s": t_legacy,
        "cached_s": t_cached,
        "speedup": t_legacy / t_cached,
        "max_rel_err": rel_err,
    }


def bench_full_solve(T: int, repeats: int) -> dict:
    """solve_tree_fft with plan caching vs the stateless legacy path."""
    params = BinomialParams.from_spec(SPEC, T)
    t_legacy = _best_of(
        lambda: solve_tree_fft(params, engine=AdvanceEngine(reuse=False)), repeats
    )
    shared = AdvanceEngine()
    solve_tree_fft(params, engine=shared)  # warm (batch-of-solves scenario)
    t_engine = _best_of(lambda: solve_tree_fft(params, engine=shared), repeats)
    r_old = solve_tree_fft(params, engine=AdvanceEngine(reuse=False))
    r_new = solve_tree_fft(params, engine=AdvanceEngine())
    rel = abs(r_new.price - r_old.price) / abs(r_old.price)
    return {
        "T": T,
        "legacy_s": t_legacy,
        "engine_s": t_engine,
        "speedup": t_legacy / t_engine,
        "price_legacy": r_old.price,
        "price_engine": r_new.price,
        "price_rel_err": rel,
        "spectrum_hits": r_new.stats.spectrum_hits,
        "spectrum_misses": r_new.stats.spectrum_misses,
        "fft_calls": r_new.stats.fft_calls,
    }


def bench_batched(T: int, batch: int, repeats: int) -> dict:
    """advance_many over a strike strip vs sequential same-kernel advances."""
    params = BinomialParams.from_spec(SPEC, T)
    h = T
    rng = np.random.default_rng(1)
    xs = [rng.uniform(0.0, 100.0, size=T + h + 1) for _ in range(batch)]
    engine = AdvanceEngine()
    engine.advance(xs[0], params.taps, h, scale=SPEC.strike)  # warm

    t_seq = _best_of(
        lambda: [engine.advance(x, params.taps, h, scale=SPEC.strike) for x in xs],
        repeats,
    )
    t_batch = _best_of(
        lambda: engine.advance_many(xs, params.taps, h, scale=SPEC.strike), repeats
    )
    return {
        "T": T,
        "batch": batch,
        "sequential_s": t_seq,
        "batched_s": t_batch,
        "speedup": t_seq / t_batch,
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="small sweep for CI smoke runs"
    )
    parser.add_argument(
        "--out",
        default=os.path.join(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
            "BENCH_advance_engine.json",
        ),
    )
    args = parser.parse_args()

    if args.quick:
        sizes = [2**10, 2**12]
        repeats, inner = 2, 4
    else:
        sizes = [2**k for k in range(10, 18)]
        repeats, inner = 3, 8

    report = bench_report(
        "advance_engine",
        smoke=args.quick,
        quick=args.quick,
        sizes=sizes,
        repeated_advance=[],
        full_solve=[],
        batched=[],
    )
    for T in sizes:
        row = bench_repeated_advance(T, inner, repeats)
        report["repeated_advance"].append(row)
        print(
            f"advance  T={T:>7} h={row['h']:>6}  legacy {row['legacy_s']*1e3:8.3f} ms"
            f"  cached {row['cached_s']*1e3:8.3f} ms  speedup {row['speedup']:5.2f}x"
        )
    for T in sizes:
        row = bench_full_solve(T, repeats)
        report["full_solve"].append(row)
        print(
            f"solve    T={T:>7}  legacy {row['legacy_s']:8.3f} s"
            f"  engine {row['engine_s']:8.3f} s  speedup {row['speedup']:5.2f}x"
            f"  rel_err {row['price_rel_err']:.2e}"
        )
        assert row["price_rel_err"] <= 1e-10, "engine price drifted from legacy"
    for T in sizes[: len(sizes) // 2 + 1]:
        row = bench_batched(T, batch=16, repeats=repeats)
        report["batched"].append(row)
        print(
            f"batch    T={T:>7} x16  sequential {row['sequential_s']*1e3:8.3f} ms"
            f"  batched {row['batched_s']*1e3:8.3f} ms  speedup {row['speedup']:5.2f}x"
        )

    report["summary"] = {
        "max_advance_speedup": max(
            r["speedup"] for r in report["repeated_advance"]
        ),
        "max_solve_speedup": max(r["speedup"] for r in report["full_solve"]),
        "max_price_rel_err": max(
            r["price_rel_err"] for r in report["full_solve"]
        ),
    }
    write_bench_report(
        args.out,
        report,
        speedup=report["summary"]["max_solve_speedup"],
        drift=report["summary"]["max_price_rel_err"],
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
