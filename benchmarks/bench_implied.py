"""Implied-vol inversion: batched fast path vs naive per-quote Brent.

Writes ``BENCH_implied.json`` (repo root by default) with three measurements:

1. **Batch vs naive** — a strike ladder inverted through
   ``implied_vol_many`` (shared plan-caching engine, European-seeded Newton
   fast path, neighbour warm starts) against the naive baseline (fresh
   engine per quote, no seed, fixed-bracket Brent).  Acceptance gates:
   ≥ 2x wall-clock speedup on the full-size run, and *every* round trip
   satisfying ``|price(implied) - quote| <= 1e-8 · K`` on both paths.
2. **Service-cached inversion** — the same quote inverted twice through
   ``QuoteService.implied_vol``: the second run's objective evaluations are
   all canonical-key cache hits.
3. **Surface calibration** — a strikes × expiries quote grid through
   ``calibrate_surface`` (solves per quote, residuals, no-arbitrage
   diagnostics of the fitted surface).

Run ``python benchmarks/bench_implied.py`` for the full sizes or
``--smoke`` for the CI pass (timing gates are skipped at smoke sizes — a
busy CI host makes wall-clock ratios meaningless; solver *counts* are
asserted instead, which is the machine-independent half of the speedup).
"""

from __future__ import annotations

import argparse
import dataclasses
import math
import os
import sys
import time

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
)
sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from conftest import bench_report, write_bench_report  # noqa: E402
from repro.core.api import price_american, price_many  # noqa: E402
from repro.core.fftstencil import AdvanceEngine  # noqa: E402
from repro.market.calibrate import MarketQuote, calibrate_surface  # noqa: E402
from repro.market.implied import implied_vol, implied_vol_many  # noqa: E402
from repro.options.contract import OptionSpec, Right  # noqa: E402
from repro.service.service import QuoteService  # noqa: E402

#: The naive baseline's fixed bracket — the textbook setup a per-quote
#: Brent inversion starts from when nothing seeds it.
NAIVE_BRACKET = (0.05, 2.0)


def smile_vol(strike: float, spot: float, years: float) -> float:
    """A synthetic but realistic skewed smile in (log-moneyness, T)."""
    k = math.log(strike / spot)
    return 0.22 - 0.10 * k + 0.25 * k * k + 0.02 * years


def build_ladder(n: int, steps: int) -> tuple[list[OptionSpec], list[float]]:
    """``n`` American calls on one dividend-paying underlying (real lattice
    solves — zero-dividend calls would take the closed-form shortcut) with
    quotes generated from the smile."""
    base = OptionSpec(
        spot=100.0, strike=100.0, rate=0.03, volatility=0.2,
        dividend_yield=0.02, expiry_days=252.0, right=Right.CALL,
    )
    specs = []
    for i in range(n):
        strike = 80.0 + 40.0 * i / max(n - 1, 1)  # 80% .. 120% moneyness
        specs.append(
            dataclasses.replace(
                base, strike=strike,
                volatility=smile_vol(strike, base.spot, base.years),
            )
        )
    quotes = [r.price for r in price_many(specs, steps)]
    return specs, quotes


def bench_batch_vs_naive(n: int, steps: int, repeats: int) -> dict:
    specs, quotes = build_ladder(n, steps)

    def run_naive():
        out = []
        for spec, quote in zip(specs, quotes):
            out.append(
                implied_vol(
                    quote, spec, steps,
                    engine=AdvanceEngine(),  # cold engine per quote
                    newton=False, deamericanize=False, bracket=NAIVE_BRACKET,
                )
            )
        return out

    def run_batch():
        return implied_vol_many(
            specs, quotes, steps, engine=AdvanceEngine()
        ).results

    naive_wall, batch_wall = math.inf, math.inf
    naive_results = batch_results = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        naive_results = run_naive()
        naive_wall = min(naive_wall, time.perf_counter() - t0)
        t0 = time.perf_counter()
        batch_results = run_batch()
        batch_wall = min(batch_wall, time.perf_counter() - t0)

    def residuals(results):
        return [
            abs(
                price_american(
                    dataclasses.replace(s, volatility=r.vol), steps
                ).price
                - q
            )
            / s.strike
            for s, q, r in zip(specs, quotes, results)
        ]

    max_vol_diff = max(
        abs(a.vol - b.vol) for a, b in zip(naive_results, batch_results)
    )
    return {
        "n_quotes": n,
        "naive_wall_s": naive_wall,
        "batch_wall_s": batch_wall,
        "batch_speedup": naive_wall / batch_wall,
        "naive_solves": sum(r.solves for r in naive_results),
        "batch_solves": sum(r.solves for r in batch_results),
        "naive_solves_per_quote": sum(r.solves for r in naive_results) / n,
        "batch_solves_per_quote": sum(r.solves for r in batch_results) / n,
        "batch_warm_starts": sum(1 for r in batch_results if r.warm_start),
        "batch_newton_rate": sum(1 for r in batch_results if r.newton) / n,
        "max_roundtrip_residual_over_k_naive": max(residuals(naive_results)),
        "max_roundtrip_residual_over_k_batch": max(residuals(batch_results)),
        "max_abs_vol_diff_batch_vs_naive": max_vol_diff,
    }


def bench_service_cache(steps: int) -> dict:
    specs, quotes = build_ladder(1, steps)
    spec, quote = specs[0], quotes[0]
    svc = QuoteService(steps_default=steps)
    t0 = time.perf_counter()
    cold = svc.implied_vol(quote, spec)
    cold_wall = time.perf_counter() - t0
    solves_cold = svc.stats()["service"]["solves"]
    t0 = time.perf_counter()
    warm = svc.implied_vol(quote, spec)
    warm_wall = time.perf_counter() - t0
    return {
        "cold_wall_s": cold_wall,
        "warm_wall_s": warm_wall,
        "warm_speedup": cold_wall / warm_wall if warm_wall > 0 else float("inf"),
        "evaluations": warm.solves,
        "engine_solves_cold": solves_cold,
        "engine_solves_warm_delta": svc.stats()["service"]["solves"]
        - solves_cold,
        "vol_identical": warm.vol == cold.vol,
    }


def bench_calibration(n_strikes: int, n_expiries: int, steps: int) -> dict:
    base = OptionSpec(
        spot=100.0, strike=100.0, rate=0.03, volatility=0.2,
        dividend_yield=0.02, expiry_days=252.0, right=Right.PUT,
    )
    quotes = []
    for j in range(n_expiries):
        expiry = 126.0 + 126.0 * j
        for i in range(n_strikes):
            strike = 85.0 + 30.0 * i / max(n_strikes - 1, 1)
            spec = dataclasses.replace(
                base, strike=strike, expiry_days=expiry,
                volatility=smile_vol(strike, base.spot, expiry / 252.0),
            )
            quotes.append(MarketQuote(spec, price_american(spec, steps).price))
    t0 = time.perf_counter()
    surface, report = calibrate_surface(quotes, steps)
    wall = time.perf_counter() - t0
    # per-quote residual over its own strike (fits are expiry-major,
    # strike-sorted — the same order build loops above produce)
    strikes_sorted = sorted({q.spec.strike for q in quotes})
    max_residual_over_k = max(
        r.residual / k
        for fit in report.fits
        for r, k in zip(fit.results, strikes_sorted)
    )
    max_vol_err = max(
        abs(
            surface.vol(q.spec.strike, q.spec.years)
            - q.spec.volatility
        )
        for q in quotes
    )
    return {
        "n_quotes": len(quotes),
        "n_strikes": n_strikes,
        "n_expiries": n_expiries,
        "wall_s": wall,
        "solves_per_quote": report.solves_per_quote,
        "max_residual_over_k": max_residual_over_k,
        "max_vol_error_vs_generator": max_vol_err,
        "arbitrage_violations": len(report.violations),
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", "--quick", action="store_true", dest="smoke",
        help="tiny sizes for the CI smoke pass",
    )
    parser.add_argument("--steps", type=int, default=None)
    parser.add_argument(
        "--out",
        default=os.path.join(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
            "BENCH_implied.json",
        ),
    )
    args = parser.parse_args()

    steps = args.steps or (64 if args.smoke else 256)
    n = 12 if args.smoke else 64
    repeats = 1 if args.smoke else 3
    report = bench_report("implied_vol", smoke=args.smoke, steps=steps)

    bn = bench_batch_vs_naive(n, steps, repeats)
    report["batch_vs_naive"] = bn
    print(
        f"batch vs naive ({n} quotes, {steps} steps): "
        f"{bn['batch_speedup']:.2f}x wall "
        f"({bn['naive_solves_per_quote']:.1f} -> "
        f"{bn['batch_solves_per_quote']:.1f} solves/quote, "
        f"newton rate {bn['batch_newton_rate']:.2f})"
    )
    assert bn["max_roundtrip_residual_over_k_naive"] <= 1e-8, (
        "naive round trip exceeded 1e-8*K"
    )
    assert bn["max_roundtrip_residual_over_k_batch"] <= 1e-8, (
        "batched round trip exceeded 1e-8*K"
    )
    # the machine-independent half of the speedup: the fast path must do
    # strictly less solver work per quote, at every size
    assert bn["batch_solves"] < bn["naive_solves"], "fast path saved no solves"
    if not args.smoke:
        assert bn["batch_speedup"] >= 2.0, (
            f"batched inversion under 2x: {bn['batch_speedup']:.2f}"
        )

    sc = bench_service_cache(steps)
    report["service_cache"] = sc
    print(
        f"service-cached inversion: warm {sc['warm_speedup']:.1f}x, "
        f"{sc['engine_solves_warm_delta']} new engine solves on repeat"
    )
    assert sc["vol_identical"], "cached inversion drifted"
    assert sc["engine_solves_warm_delta"] == 0, (
        "repeat inversion hit the engines instead of the cache"
    )

    cal = bench_calibration(
        4 if args.smoke else 8, 2 if args.smoke else 4, steps
    )
    report["calibration"] = cal
    print(
        f"calibration ({cal['n_quotes']} quotes): "
        f"{cal['solves_per_quote']:.1f} solves/quote, "
        f"max vol err {cal['max_vol_error_vs_generator']:.2e}, "
        f"{cal['arbitrage_violations']} violations"
    )
    assert cal["max_residual_over_k"] <= 1e-8, "calibration round trip drifted"
    assert cal["arbitrage_violations"] == 0, (
        "smooth synthetic smile calibrated with arbitrage"
    )

    report["summary"] = {
        "batch_speedup": bn["batch_speedup"],
        "batch_solves_per_quote": bn["batch_solves_per_quote"],
        "naive_solves_per_quote": bn["naive_solves_per_quote"],
        "roundtrip_within_1e8_k": True,
        "service_warm_engine_solves": sc["engine_solves_warm_delta"],
        "calibration_solves_per_quote": cal["solves_per_quote"],
    }
    write_bench_report(
        args.out,
        report,
        speedup=bn["batch_speedup"],
        drift=bn["max_abs_vol_diff_batch_vs_naive"],
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
