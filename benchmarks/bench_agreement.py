"""Correctness agreement sweep: fft vs vanilla prices on the paper's contract."""

from __future__ import annotations

from repro.experiments import run_experiment


def test_agreement(benchmark):
    result = benchmark.pedantic(
        run_experiment, args=("agreement",), rounds=1, iterations=1
    )
    for label, series in result.series.items():
        for T, diff in series.items():
            assert diff < 1e-8, (label, T, diff)
