"""Table 2: work/span of the four algorithm families, with exponent fits."""

from __future__ import annotations

import pytest

from repro.experiments import is_fast_mode, run_experiment
from repro.experiments.calibration import fit_power_law


def test_table2(benchmark):
    result = benchmark.pedantic(run_experiment, args=("table2",), rounds=1, iterations=1)
    # Baselines must fit ~T^2; the fft solver clearly sub-quadratic.  Fast
    # mode samples only tiny T where transition regimes (tile overlap
    # onset, direct-convolution small-kernel paths) bias the fits, so the
    # bands are wider there.
    base_band = (1.8, 2.3) if is_fast_mode() else (1.85, 2.15)
    fft_cap = 1.75 if is_fast_mode() else 1.6
    for impl in ("vanilla-bopm", "tiled-bopm"):
        data = result.series[f"{impl} work"]
        xs = sorted(data)
        a, _ = fit_power_law(xs, [data[x] for x in xs])
        assert base_band[0] <= a <= base_band[1], (impl, a)
    data = result.series["fft-bopm work"]
    xs = sorted(data)
    a, _ = fit_power_law(xs, [data[x] for x in xs])
    assert a <= fft_cap, a
    # span: the fft solver's span is Theta(T) with small constants; the
    # nested loop's span is Theta(T log T) — larger at every sampled T
    top = max(xs)
    assert (
        result.series["fft-bopm span"][top] < result.series["vanilla-bopm span"][top]
    )
