"""Resilience layer: dispatch overhead, fault-recovery cost, degraded serving.

Writes ``BENCH_resilience.json`` (repo root by default) with three
measurements:

1. **Resilient-dispatch overhead** — the same American scenario grid
   through the :class:`~repro.risk.engine.ScenarioEngine` serial path
   plain, and again with a never-firing resilience configuration (a
   generous :class:`~repro.resilience.deadline.Deadline` plus a
   :class:`~repro.resilience.retry.RetryPolicy` that never triggers).
   The resilient path must stay bit-identical and its overhead bounded.
   The dominant cost is structural, not bookkeeping: resilient serial
   dispatch prices cell-by-cell (per-cell isolation is what makes
   per-cell recovery and markers possible), giving up the lockstep batch
   consolidation.
2. **Fault-recovery cost** — a seeded
   :class:`~repro.resilience.faults.FaultPlan` crashes ~25% of cells once
   each; the retrying dispatch must converge to the clean run's prices
   exactly, and the report records what the re-solves cost relative to a
   fault-free resilient run.
3. **Degraded serving** — a :class:`~repro.service.QuoteService` with a
   stale grace on an expired cache under deadline pressure: a stale serve
   is a dict lookup plus a copy, so it must be orders of magnitude
   cheaper than the cold solve it stands in for.

Run ``python benchmarks/bench_resilience.py`` for the full sizes or
``--smoke`` for the CI pass (wall-clock ratio gates are skipped at smoke
sizes — a busy CI host makes them meaningless; the bit-identity and
recovery-counter gates are asserted at every size).
"""

from __future__ import annotations

import argparse
import dataclasses
import math
import os
import sys
import time

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
)
sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import numpy as np  # noqa: E402

from conftest import bench_report, write_bench_report  # noqa: E402

from repro.options.contract import OptionSpec, Right, Style  # noqa: E402
from repro.resilience import (  # noqa: E402
    Deadline,
    FaultPlan,
    RetryPolicy,
)
from repro.risk.engine import ScenarioEngine  # noqa: E402
from repro.service import QuoteService  # noqa: E402


def build_grid(n_cells: int) -> list[OptionSpec]:
    base = OptionSpec(
        spot=100.0, strike=100.0, rate=0.03, volatility=0.2,
        dividend_yield=0.02, expiry_days=252.0, right=Right.CALL,
        style=Style.AMERICAN,
    )
    rng = np.random.default_rng(7)
    return [
        dataclasses.replace(
            base, spot=float(s), volatility=float(v), rate=float(r)
        )
        for s, v, r in zip(
            rng.uniform(90.0, 110.0, size=n_cells),
            rng.uniform(0.12, 0.45, size=n_cells),
            rng.uniform(0.0, 0.08, size=n_cells),
        )
    ]


def _best_of(repeats, fn):
    best, out = math.inf, None
    for _ in range(repeats):
        t0 = time.perf_counter()
        out = fn()
        best = min(best, time.perf_counter() - t0)
    return best, out


def _quiet_retry(attempts: int = 3) -> RetryPolicy:
    return RetryPolicy(
        max_attempts=attempts, base_delay=0.0, jitter=0.0, seed=1,
        sleep=lambda s: None,
    )


def bench_dispatch_overhead(n_cells: int, steps: int, repeats: int) -> dict:
    specs = build_grid(n_cells)
    eng = ScenarioEngine(backend="serial")

    def run_plain():
        return eng.price_grid(specs, steps)

    def run_resilient():
        # a budget no solve will ever miss and a policy no solve will ever
        # invoke: pure dispatch overhead
        return eng.price_grid(
            specs, steps, deadline=Deadline(3600.0), retry=_quiet_retry()
        )

    plain_wall, plain = _best_of(repeats, run_plain)
    resilient_wall, resilient = _best_of(repeats, run_resilient)
    max_abs = max(
        abs(a.price - b.price)
        for a, b in zip(plain.results, resilient.results)
    )
    rmeta = resilient.meta["resilience"]
    return {
        "n_cells": n_cells,
        "steps": steps,
        "plain_wall_s": plain_wall,
        "resilient_wall_s": resilient_wall,
        "overhead_ratio": resilient_wall / plain_wall,
        "max_abs_diff": max_abs,
        "retries": rmeta["retries"],
        "timeouts": len(rmeta["timeouts"]),
    }


def bench_fault_recovery(n_cells: int, steps: int, repeats: int) -> dict:
    specs = build_grid(n_cells)
    eng = ScenarioEngine(backend="serial")
    clean = eng.price_grid(specs, steps)
    plan = FaultPlan.random(42, n_cells, crash_rate=0.25, attempts=1)

    def run_clean_resilient():
        return eng.price_grid(specs, steps, retry=_quiet_retry())

    def run_faulted():
        return eng.price_grid(
            specs, steps, retry=_quiet_retry(), fault_plan=plan
        )

    base_wall, _ = _best_of(repeats, run_clean_resilient)
    fault_wall, faulted = _best_of(repeats, run_faulted)
    max_abs = max(
        abs(a.price - b.price)
        for a, b in zip(clean.results, faulted.results)
    )
    rmeta = faulted.meta["resilience"]
    return {
        "n_cells": n_cells,
        "steps": steps,
        "crashed_cells": len(plan.crashes),
        "fault_free_wall_s": base_wall,
        "faulted_wall_s": fault_wall,
        "recovery_cost_ratio": fault_wall / base_wall,
        "expected_cost_ratio": 1.0 + len(plan.crashes) / n_cells,
        "max_abs_diff_vs_clean": max_abs,
        "retries": rmeta["retries"],
        "failed_cells": len(rmeta["failed"]),
    }


def bench_degraded_serving(n_quotes: int, steps: int) -> dict:
    class _Clock:
        now = 0.0

        def __call__(self):
            return self.now

    clock = _Clock()
    svc = QuoteService(ttl=10.0, stale_grace=3600.0, clock=clock)
    specs = build_grid(n_quotes)

    t0 = time.perf_counter()
    for s in specs:
        svc.quote(s, steps)
    cold_wall = time.perf_counter() - t0

    clock.now += 20.0  # every entry expired into its grace
    spent = Deadline(0.0, clock=clock)
    t0 = time.perf_counter()
    stale = [svc.quote(s, steps, deadline=spent) for s in specs]
    stale_wall = time.perf_counter() - t0

    assert all(r.meta.get("stale") for r in stale)
    return {
        "n_quotes": n_quotes,
        "steps": steps,
        "cold_wall_s": cold_wall,
        "stale_wall_s": stale_wall,
        "stale_speedup_vs_cold": cold_wall / stale_wall,
        "stale_qps": n_quotes / stale_wall,
        "refreshes_enqueued": svc.stats()["resilience"]["refreshes"],
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", "--quick", action="store_true", dest="smoke",
        help="tiny sizes for the CI smoke pass",
    )
    parser.add_argument("--steps", type=int, default=None)
    parser.add_argument(
        "--out",
        default=os.path.join(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
            "BENCH_resilience.json",
        ),
    )
    args = parser.parse_args()

    steps = args.steps or (64 if args.smoke else 256)
    n_cells = 16 if args.smoke else 128
    repeats = 2 if args.smoke else 3

    report = bench_report("resilience", smoke=args.smoke, steps=steps)

    ov = bench_dispatch_overhead(n_cells, steps, repeats)
    report["dispatch_overhead"] = ov
    print(
        f"dispatch: plain {ov['plain_wall_s']*1e3:7.1f} ms   resilient "
        f"{ov['resilient_wall_s']*1e3:7.1f} ms "
        f"({ov['overhead_ratio']:.3f}x)   max |diff| {ov['max_abs_diff']:.2e}"
    )
    assert ov["max_abs_diff"] == 0.0, "resilient dispatch drifted"
    assert ov["retries"] == 0 and ov["timeouts"] == 0
    if not args.smoke:
        # the resilient serial path prices cell-by-cell (per-cell isolation
        # is what makes per-cell recovery and markers possible), giving up
        # the lockstep batch consolidation — measured ~1.3x at these sizes;
        # past 1.6x means work beyond the lost batching leaked in
        assert ov["overhead_ratio"] <= 1.6, "resilient dispatch overhead"

    fr = bench_fault_recovery(n_cells, steps, repeats)
    report["fault_recovery"] = fr
    print(
        f"recovery: {fr['crashed_cells']}/{fr['n_cells']} cells crashed   "
        f"{fr['fault_free_wall_s']*1e3:7.1f} -> {fr['faulted_wall_s']*1e3:7.1f} ms "
        f"({fr['recovery_cost_ratio']:.2f}x, expected ~"
        f"{fr['expected_cost_ratio']:.2f}x)   retries {fr['retries']}"
    )
    assert fr["max_abs_diff_vs_clean"] == 0.0, "recovered prices drifted"
    assert fr["retries"] == fr["crashed_cells"]
    assert fr["failed_cells"] == 0

    dg = bench_degraded_serving(8 if args.smoke else 32, steps)
    report["degraded_serving"] = dg
    print(
        f"degraded: cold {dg['cold_wall_s']*1e3:7.1f} ms   stale "
        f"{dg['stale_wall_s']*1e3:7.1f} ms "
        f"({dg['stale_speedup_vs_cold']:.0f}x, {dg['stale_qps']:.0f} q/s)"
    )
    if not args.smoke:
        assert dg["stale_speedup_vs_cold"] >= 10.0, "stale serve too slow"

    report["summary"] = {
        "dispatch_overhead_ratio": ov["overhead_ratio"],
        "bit_identical_resilient_dispatch": ov["max_abs_diff"] == 0.0,
        "recovery_cost_ratio": fr["recovery_cost_ratio"],
        "bit_identical_after_recovery": fr["max_abs_diff_vs_clean"] == 0.0,
        "stale_speedup_vs_cold": dg["stale_speedup_vs_cold"],
    }
    write_bench_report(
        args.out,
        report,
        speedup=dg["stale_speedup_vs_cold"],
        drift=max(ov["max_abs_diff"], fr["max_abs_diff_vs_clean"]),
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
