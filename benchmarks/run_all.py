"""One runnable benchmark suite: every bench, one trajectory row.

Runs each standalone benchmark script as a subprocess (its own process
keeps pool/fork state clean and its asserted gates meaningful), validates
every ``BENCH_*.json`` it produced against the shared schema
(``conftest.validate_report``), folds the headline numbers into one
trajectory row, and appends it to ``BENCH_TRAJECTORY.jsonl``
(:mod:`trajectory`).  Also exports the observability artifacts CI
uploads: the bench run's own Perfetto trace
(``results/run_all_trace.json``).

Usage::

    python benchmarks/run_all.py            # full sizes (slow, quiet host)
    python benchmarks/run_all.py --smoke    # CI sizes
    python benchmarks/run_all.py --smoke --check             # gate, exit 1
    python benchmarks/run_all.py --smoke --check --no-fail   # report-only

``--check`` compares the new row against the last row with the same
smoke flag and flags any headline rate (cells/sec, quotes/sec, hit rate,
headline speedup) that fell more than ``--threshold`` (default 20%).
CI runs it ``--no-fail``: the regression report lands in the job log and
the row is recorded either way — a noisy runner must not block merges.
"""

from __future__ import annotations

import argparse
import importlib.util
import json
import os
import subprocess
import sys
import time

BENCH_DIR = os.path.dirname(os.path.abspath(__file__))
REPO_ROOT = os.path.dirname(BENCH_DIR)


def _load_sibling(name: str, filename: str):
    """Import a ``benchmarks/`` module by path under a prefixed name.

    The bare name ``conftest`` is taken by whichever conftest pytest
    imported first, so importing this file from a test would otherwise
    resolve ``from conftest import ...`` against the wrong module.
    """
    if name in sys.modules:
        return sys.modules[name]
    spec = importlib.util.spec_from_file_location(
        name, os.path.join(BENCH_DIR, filename)
    )
    mod = importlib.util.module_from_spec(spec)
    sys.modules[name] = mod
    spec.loader.exec_module(mod)
    return mod


validate_report = _load_sibling("bench_conftest", "conftest.py").validate_report
trajectory = _load_sibling("bench_trajectory", "trajectory.py")
TRAJECTORY_PATH = trajectory.TRAJECTORY_PATH
append_row = trajectory.append_row
upsert_row = trajectory.upsert_row
build_row = trajectory.build_row
check_regression = trajectory.check_regression
last_comparable = trajectory.last_comparable
load_rows = trajectory.load_rows

#: The suite: (name, script, smoke flag the script understands).  Every
#: entry writes ``BENCH_<name>.json`` via ``--out`` and exits nonzero
#: when one of its own gates fails.
BENCHES = (
    ("advance_engine", "bench_advance_engine.py", "--quick"),
    ("scenario_engine", "bench_scenario_engine.py", "--quick"),
    ("batch", "bench_batch.py", "--smoke"),
    ("service", "bench_service.py", "--smoke"),
    ("implied", "bench_implied.py", "--smoke"),
    ("resilience", "bench_resilience.py", "--smoke"),
    ("obs", "bench_obs.py", "--smoke"),
    ("spectral", "bench_spectral.py", "--smoke"),
)


def run_suite(
    *,
    smoke: bool,
    out_dir: str = REPO_ROOT,
    bench_dir: str = BENCH_DIR,
    benches=BENCHES,
    python: str = sys.executable,
    timeout: float = 1800.0,
) -> tuple:
    """Run every bench; returns ``(reports, failures)``.

    ``reports`` maps bench name to its validated ``BENCH_*.json`` dict;
    ``failures`` is a list of ``(name, detail)`` for benches that exited
    nonzero, timed out, or produced an invalid report.  The suite always
    runs to completion — one broken bench must not hide the others'
    numbers.
    """
    reports: dict = {}
    failures: list = []
    for name, script, flag in benches:
        out_path = os.path.join(out_dir, f"BENCH_{name}.json")
        cmd = [python, os.path.join(bench_dir, script), "--out", out_path]
        if smoke:
            cmd.append(flag)
        t0 = time.perf_counter()
        try:
            proc = subprocess.run(
                cmd, capture_output=True, text=True, timeout=timeout,
            )
        except subprocess.TimeoutExpired:
            failures.append((name, f"timed out after {timeout:g}s"))
            print(f"[run_all] {name}: TIMEOUT", flush=True)
            continue
        wall = time.perf_counter() - t0
        if proc.returncode != 0:
            tail = "\n".join(
                (proc.stdout + "\n" + proc.stderr).strip().splitlines()[-8:]
            )
            failures.append(
                (name, f"exit {proc.returncode}:\n{tail}")
            )
            print(f"[run_all] {name}: FAILED (exit {proc.returncode})",
                  flush=True)
            continue
        try:
            with open(out_path) as fh:
                report = json.load(fh)
            validate_report(report)
        except (OSError, ValueError) as exc:
            failures.append((name, f"invalid report: {exc}"))
            print(f"[run_all] {name}: INVALID REPORT", flush=True)
            continue
        reports[name] = report
        speedup = report["summary"]["headline_speedup"]
        print(
            f"[run_all] {name}: ok in {wall:6.1f}s  "
            f"(headline_speedup {speedup:.3g})",
            flush=True,
        )
    return reports, failures


def export_suite_trace(reports: dict, out_path: str) -> None:
    """A small Perfetto trace of the suite run itself — one track, one
    span per bench sized by its report's wall numbers where available —
    exercising the exporter end to end so CI always uploads a loadable
    trace artifact."""
    sys.path.insert(0, os.path.join(REPO_ROOT, "src"))
    from repro.obs import Telemetry, chrome_trace, write_chrome_trace

    tel = Telemetry()
    with tel.span("run_all", benches=len(reports)):
        for name, report in sorted(reports.items()):
            with tel.span(name, smoke=report.get("smoke")):
                pass
    write_chrome_trace(out_path, chrome_trace(tel.tracer))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", "--quick", action="store_true", dest="smoke",
        help="CI sizes for every bench",
    )
    parser.add_argument(
        "--out-dir", default=REPO_ROOT,
        help="directory for the BENCH_*.json artifacts (default: repo root)",
    )
    parser.add_argument(
        "--trajectory", default=TRAJECTORY_PATH,
        help="trajectory JSONL to append to",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="compare against the last comparable row; regressions fail",
    )
    parser.add_argument(
        "--threshold", type=float, default=0.20,
        help="relative drop that counts as a regression (default 0.20)",
    )
    parser.add_argument(
        "--no-fail", action="store_true",
        help="with --check: report regressions but exit 0 (CI report-only)",
    )
    parser.add_argument(
        "--force", action="store_true",
        help="re-measuring an already-recorded commit+mode replaces its "
        "trajectory row instead of being skipped",
    )
    parser.add_argument(
        "--trace-out",
        default=os.path.join(REPO_ROOT, "results", "run_all_trace.json"),
        help="Perfetto trace artifact for the suite run",
    )
    args = parser.parse_args(argv)

    reports, failures = run_suite(smoke=args.smoke, out_dir=args.out_dir)
    row = build_row(reports, smoke=args.smoke)

    history = load_rows(args.trajectory)
    baseline = last_comparable(history, row)
    outcome = upsert_row(args.trajectory, row, force=args.force)
    if outcome == "skipped":
        print(
            f"[run_all] commit {row.get('commit')} (smoke={row['smoke']}) "
            f"already recorded in {args.trajectory}; --force replaces it"
        )
    elif outcome == "replaced":
        print(
            f"[run_all] replaced trajectory row for commit "
            f"{row.get('commit')} in {args.trajectory}"
        )
    else:
        print(
            f"[run_all] appended row {len(history) + 1} to {args.trajectory}"
        )

    os.makedirs(os.path.dirname(args.trace_out), exist_ok=True)
    export_suite_trace(reports, args.trace_out)
    print(f"[run_all] wrote {args.trace_out}")

    status = 0
    if failures:
        print(f"[run_all] {len(failures)} bench(es) failed:")
        for name, detail in failures:
            print(f"  - {name}: {detail}")
        status = 1
    if args.check:
        if baseline is None:
            print("[run_all] --check: no comparable baseline row; skipping")
        else:
            flags = check_regression(baseline, row, args.threshold)
            if flags:
                print(
                    f"[run_all] REGRESSIONS vs commit "
                    f"{baseline.get('commit')}:"
                )
                for flag in flags:
                    print(f"  - {flag}")
                if not args.no_fail:
                    status = 1
            else:
                print(
                    f"[run_all] no regressions vs commit "
                    f"{baseline.get('commit')} "
                    f"(threshold {args.threshold * 100:.0f}%)"
                )
    return status


if __name__ == "__main__":
    raise SystemExit(main())
