"""Figure 6 (a,b,c) and Figure 10: energy consumption (RAPL-model substitute).

The energy model composes measured runtime, counted work and modeled DRAM
traffic; these benchmarks time the model evaluation itself (cheap) and
regenerate the paper's energy series, including the §5.2 savings
percentages and the supplementary pkg/RAM split.
"""

from __future__ import annotations

import pytest

from repro.energy import DEFAULT_ENERGY_MODEL
from repro.experiments import is_fast_mode, run_experiment
from repro.experiments.figures import _measure_impl, MODEL_KEY
from repro.parallel.workspan import WorkSpan


@pytest.mark.parametrize("impl", ["fft-bopm", "ql-bopm", "zb-bopm"])
def test_energy_model_eval(benchmark, impl):
    """Model evaluation cost (the measurement itself is cached)."""
    secs, ws = _measure_impl(impl, 1024)
    result = benchmark(
        DEFAULT_ENERGY_MODEL.energy_from_model, MODEL_KEY[impl], 1024, ws, secs
    )
    assert result.total_joules > 0


@pytest.mark.parametrize("model", ["bopm", "topm", "bsm"])
def test_fig6_series(benchmark, model):
    result = benchmark.pedantic(
        run_experiment, args=(f"fig6-{model}",), rounds=1, iterations=1
    )
    impls = list(result.series)
    fft = impls[0]
    top = max(result.series[fft])
    if not is_fast_mode():
        # §5.2 shape: the fft solver consumes less energy than the paper's
        # primary benchmark (ql-bopm / vanilla-*) at the top of the sweep.
        # The zb-bopm crossover sits beyond the default sweep on this
        # substrate (vectorised-C baseline vs CPython recursion overhead);
        # EXPERIMENTS.md records where it lands.
        assert result.series[fft][top] < result.series[impls[1]][top]


@pytest.mark.parametrize("exp", ["fig10-bopm", "fig10-bopm-ram"])
def test_fig10_series(benchmark, exp):
    result = benchmark.pedantic(run_experiment, args=(exp,), rounds=1, iterations=1)
    assert result.series
