"""Figure 7 (a–f): L1/L2 cache-miss comparison via trace-driven simulation."""

from __future__ import annotations

import pytest

from repro.experiments import run_experiment
from repro.experiments.figures import simulate_cache


@pytest.mark.parametrize("impl", ["fft-bopm", "ql-bopm", "zb-bopm"])
def test_cache_sim_speed(benchmark, impl):
    """Simulator throughput on a small trace (the sweep builders reuse it)."""
    l1, l2 = benchmark.pedantic(
        simulate_cache, args=(impl, 128), rounds=3, iterations=1
    )
    assert l1 >= l2 >= 0


@pytest.mark.parametrize("model", ["bopm", "topm", "bsm"])
def test_fig7_series(benchmark, model):
    result = benchmark.pedantic(
        run_experiment, args=(f"fig7-{model}",), rounds=1, iterations=1
    )
    labels = list(result.series)
    fft_l1 = next(k for k in labels if k.startswith("fft") and k.endswith("L1"))
    top = max(result.series[fft_l1])
    if model == "bopm":
        # paper §5.3: fft-bopm incurs far fewer L1 misses than both
        # Par-bin-ops implementations
        for k in labels:
            if k.endswith("L1") and not k.startswith("fft"):
                assert result.series[fft_l1][top] < result.series[k][top]
