"""Ablation: recursion base-case height (paper §5.1 says 8 is optimal in C++)."""

from __future__ import annotations

import pytest

from repro.core.tree_solver import solve_tree_fft
from repro.experiments import run_experiment
from repro.options.contract import paper_benchmark_spec
from repro.options.params import BinomialParams

SPEC = paper_benchmark_spec()


@pytest.mark.parametrize("base", [4, 8, 32, 128])
def test_fft_bopm_base(benchmark, base):
    params = BinomialParams.from_spec(SPEC, 4096)
    result = benchmark(solve_tree_fft, params, base=base)
    assert result.price > 0


def test_ablation_table(benchmark):
    result = benchmark.pedantic(
        run_experiment, args=("ablation-base",), rounds=1, iterations=1
    )
    assert result.series["fft-bopm (s)"]
