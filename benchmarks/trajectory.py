"""Per-commit performance trajectory: append-only JSONL + regression gate.

``benchmarks/run_all.py`` folds one suite run — every ``BENCH_*.json`` it
produced — into a single **trajectory row** and appends it to
``BENCH_TRAJECTORY.jsonl`` at the repo root.  Each row is one line of
JSON: commit, timestamp, host context, the smoke flag, and per-benchmark
headline numbers (speedup, drift, throughput rates).  The file is the
repo's long-term performance memory — plot it, diff it, or gate on it.

:func:`check_regression` is the gate: given the current row and the last
*comparable* row (same smoke flag — smoke sizes and full sizes are not
comparable), it flags every higher-is-better metric that fell by more
than the threshold (default 20%).  ``run_all.py --check`` turns the
flags into a nonzero exit; CI runs it report-only so a noisy runner
cannot block a merge, while the row itself is still recorded.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import time
from typing import Optional

#: Layout version of a trajectory row.
TRAJECTORY_SCHEMA = 1

#: Default trajectory file, at the repo root next to the BENCH_*.json.
TRAJECTORY_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_TRAJECTORY.jsonl",
)

#: Higher-is-better metrics compared by :func:`check_regression`.
RATE_METRICS = (
    "headline_speedup", "cells_per_sec", "quotes_per_sec", "hit_rate",
)


def current_commit(cwd: Optional[str] = None) -> Optional[str]:
    """Short hash of HEAD, or ``None`` outside a git checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=cwd or os.path.dirname(TRAJECTORY_PATH),
            capture_output=True, text=True, timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    return out.stdout.strip() or None if out.returncode == 0 else None


def build_row(
    reports: dict,
    *,
    smoke: bool,
    commit: Optional[str] = None,
    timestamp: Optional[float] = None,
) -> dict:
    """Fold one suite run's reports (``{name: BENCH dict}``) into a row.

    Per benchmark the row keeps the queryable headline only — the full
    reports stay in their own artifacts: ``headline_speedup`` /
    ``max_drift`` from ``summary`` and the three throughput rates from
    the shared ``telemetry`` section (``None`` where a bench does not
    measure that rate).
    """
    benches = {}
    for name, report in sorted(reports.items()):
        summary = report.get("summary", {})
        tele = report.get("telemetry", {})
        benches[name] = {
            "headline_speedup": summary.get("headline_speedup"),
            "max_drift": summary.get("max_drift"),
            "cells_per_sec": tele.get("cells_per_sec"),
            "quotes_per_sec": tele.get("quotes_per_sec"),
            "hit_rate": tele.get("hit_rate"),
        }
    return {
        "schema": TRAJECTORY_SCHEMA,
        "timestamp": time.time() if timestamp is None else timestamp,
        "commit": commit if commit is not None else current_commit(),
        "smoke": bool(smoke),
        "host": {
            "cpus": os.cpu_count(),
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
        "benches": benches,
    }


def append_row(path: str, row: dict) -> None:
    """Append one row as a single JSONL line (the file is append-only —
    history is the point)."""
    with open(path, "a") as fh:
        fh.write(json.dumps(row, sort_keys=True) + "\n")


def upsert_row(path: str, row: dict, *, force: bool = False) -> str:
    """Record ``row``, deduplicating re-runs of the same experiment.

    A row duplicates an existing one when both ``commit`` and ``smoke``
    match — same code, same sizes — so re-running the suite on an
    unchanged checkout would otherwise stack identical-key rows and skew
    per-commit plots.  Duplicates are **skipped** by default;
    ``force=True`` replaces the last matching row in place (history
    order preserved) for deliberately re-measuring a commit, e.g. on a
    quieter host.  Rows with no commit (outside a git checkout) are
    always appended — there is nothing to key on.  Returns what
    happened: ``"appended"``, ``"skipped"`` or ``"replaced"``.
    """
    commit = row.get("commit")
    if commit is not None:
        rows = load_rows(path)
        matches = [
            i
            for i, prev in enumerate(rows)
            if prev.get("commit") == commit
            and prev.get("smoke") == row.get("smoke")
        ]
        if matches:
            if not force:
                return "skipped"
            rows[matches[-1]] = row
            tmp = path + ".tmp"
            with open(tmp, "w") as fh:
                for prev in rows:
                    fh.write(json.dumps(prev, sort_keys=True) + "\n")
            os.replace(tmp, path)
            return "replaced"
    append_row(path, row)
    return "appended"


def load_rows(path: str) -> list:
    """All rows, oldest first; a missing file is an empty history."""
    if not os.path.exists(path):
        return []
    rows = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if line:
                rows.append(json.loads(line))
    return rows


def last_comparable(rows: list, row: dict) -> Optional[dict]:
    """The most recent prior row with the same smoke flag — smoke sizes
    and full sizes are different experiments and never compared."""
    for prev in reversed(rows):
        if prev.get("smoke") == row.get("smoke"):
            return prev
    return None


def check_regression(
    prev: dict, cur: dict, threshold: float = 0.20
) -> list:
    """Flag every per-bench rate metric that fell by more than
    ``threshold`` (relative) since ``prev``.

    Returns human-readable flag strings (empty = no regression).  Only
    metrics present and non-``None`` in *both* rows are compared, so
    adding a benchmark — or a bench gaining a new rate — never flags.
    """
    if not 0.0 < threshold < 1.0:
        raise ValueError(f"threshold must be in (0, 1), got {threshold}")
    flags = []
    prev_benches = prev.get("benches", {})
    for name, cur_b in sorted(cur.get("benches", {}).items()):
        prev_b = prev_benches.get(name)
        if prev_b is None:
            continue
        for metric in RATE_METRICS:
            old, new = prev_b.get(metric), cur_b.get(metric)
            if old is None or new is None or old <= 0:
                continue
            drop = 1.0 - new / old
            if drop > threshold:
                flags.append(
                    f"{name}.{metric}: {old:.4g} -> {new:.4g} "
                    f"({drop * 100:.1f}% drop > {threshold * 100:.0f}% "
                    "threshold)"
                )
    return flags
