"""Multi-worker scenario-grid throughput for the ScenarioEngine.

Prices a >= 1k-cell spot x vol x rate scenario grid (calls and puts around
the paper's benchmark contract) and writes ``BENCH_scenario_engine.json``
(repo root by default) with three measurements:

1. **Backend sweep** — serial reference, then process workers in {2, 4}
   and a 4-thread pool, each reporting wall-clock, the measured speedup
   (sum of in-worker solve seconds / pool wall), and the Brent-bound
   prediction from the grid's instrumented work/span — the model the
   paper's Table 2 analysis rests on, now next to an executed number.
2. **Agreement** — every backend's prices against the serial reference
   (max relative difference; the engine contract is <= 1e-12).
3. **Greeks refactor check** — ``american_greeks`` (engine-shared bump
   grid) against an independent per-reprice reference ladder, <= 1e-10.

The report records ``host_cpus``; measured speedups are only meaningful
when the host grants at least as many cores as workers (a 1-core CI
container will show ~1x measured regardless of the predicted speedup).

Run ``python benchmarks/bench_scenario_engine.py`` for the full grid or
``--quick`` for a CI smoke pass (tiny grid, 2 workers).
"""

from __future__ import annotations

import argparse
import dataclasses
import os
import sys

import numpy as np

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
)
sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from conftest import bench_report, write_bench_report  # noqa: E402
from repro.core.api import price_american  # noqa: E402
from repro.options.contract import Right, paper_benchmark_spec  # noqa: E402
from repro.options.greeks import american_greeks  # noqa: E402
from repro.risk import ScenarioEngine, ScenarioGrid  # noqa: E402

SPEC = paper_benchmark_spec()


def build_grid(quick: bool) -> ScenarioGrid:
    """Calls+puts x spot ladder x vol surface x rate shocks."""
    specs = [SPEC, SPEC.with_right(Right.PUT)]
    if quick:
        return ScenarioGrid.cartesian(
            specs, spot_bumps=np.linspace(-0.05, 0.05, 4), vol_bumps=(-0.1, 0.1)
        )
    return ScenarioGrid.cartesian(
        specs,
        spot_bumps=np.linspace(-0.15, 0.15, 16),
        vol_bumps=np.linspace(-0.25, 0.25, 8),
        rate_bumps=(-0.001, 0.0, 0.001, 0.002),
    )


def run_backend(
    grid: ScenarioGrid, steps: int, backend: str, workers: int
) -> dict:
    engine = ScenarioEngine(backend=backend, workers=workers)
    result = engine.price_grid(grid, steps)
    m = result.meta
    return {
        "backend": backend,
        "workers": workers,
        "wall_s": m["wall_s"],
        "cells_wall_s": m["cells_wall_s"],
        "measured_speedup": m["measured_speedup"],
        "predicted_speedup": m["predicted_speedup"],
        "parallelism": m["parallelism"],
        "n_chunks": m["n_chunks"],
        "prices": result.prices,
    }


def reference_greeks(spec, steps):
    """Pre-refactor ladder: ten independent solves, fresh engine each."""

    def reprice(s):
        return price_american(s, steps).price

    base = reprice(spec)
    h_s = spec.spot * 1e-3
    delta = (
        reprice(dataclasses.replace(spec, spot=spec.spot + h_s))
        - reprice(dataclasses.replace(spec, spot=spec.spot - h_s))
    ) / (2 * h_s)
    h_g = spec.spot * 2e-2
    gamma = (
        reprice(dataclasses.replace(spec, spot=spec.spot + h_g))
        - 2 * base
        + reprice(dataclasses.replace(spec, spot=spec.spot - h_g))
    ) / (h_g * h_g)
    h_v = max(spec.volatility * 1e-3, 1e-5)
    vega = (
        reprice(dataclasses.replace(spec, volatility=spec.volatility + h_v))
        - reprice(dataclasses.replace(spec, volatility=spec.volatility - h_v))
    ) / (2 * h_v)
    h_r = max(spec.rate * 1e-3, 1e-6)
    up = dataclasses.replace(spec, rate=spec.rate + h_r)
    dn = dataclasses.replace(spec, rate=max(spec.rate - h_r, 0.0))
    rho = (reprice(up) - reprice(dn)) / (up.rate - dn.rate)
    h_days = max(spec.expiry_days * 1e-3, 0.5)
    theta = (
        reprice(dataclasses.replace(spec, expiry_days=spec.expiry_days - h_days))
        - base
    ) / h_days
    return {
        "price": base, "delta": delta, "gamma": gamma,
        "vega": vega, "theta": theta, "rho": rho,
    }


def bench_greeks_agreement(steps: int) -> dict:
    ref = reference_greeks(SPEC, steps)
    new = american_greeks(SPEC, steps)
    diffs = {
        k: abs(getattr(new, k) - v) / max(abs(v), 1e-30)
        for k, v in ref.items()
    }
    return {
        "steps": steps,
        "max_rel_diff": max(diffs.values()),
        "per_greek_rel_diff": diffs,
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="tiny grid + 2 workers (CI smoke)"
    )
    parser.add_argument("--steps", type=int, default=None)
    parser.add_argument(
        "--out",
        default=os.path.join(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
            "BENCH_scenario_engine.json",
        ),
    )
    args = parser.parse_args()

    steps = args.steps or (64 if args.quick else 256)
    grid = build_grid(args.quick)
    runs = (
        [("serial", 1), ("process", 2)]
        if args.quick
        else [("serial", 1), ("process", 2), ("process", 4), ("thread", 4)]
    )

    report = bench_report(
        "scenario_engine",
        smoke=args.quick,
        quick=args.quick,
        steps=steps,
        n_cells=len(grid),
        grid_shape=list(grid.shape),
        backends=[],
    )
    serial_prices = None
    serial_wall = None
    for backend, workers in runs:
        row = run_backend(grid, steps, backend, workers)
        prices = row.pop("prices")
        if backend == "serial":
            serial_prices, serial_wall = prices, row["wall_s"]
            row["speedup_vs_serial"] = 1.0
            row["max_rel_diff_vs_serial"] = 0.0
        else:
            row["speedup_vs_serial"] = serial_wall / row["wall_s"]
            row["max_rel_diff_vs_serial"] = float(
                np.max(np.abs(prices - serial_prices) / np.abs(serial_prices))
            )
        report["backends"].append(row)
        print(
            f"{backend:>8} x{workers}  wall {row['wall_s']:7.3f} s"
            f"  vs-serial {row['speedup_vs_serial']:5.2f}x"
            f"  measured {row['measured_speedup']:5.2f}x"
            f"  brent-predicted {row['predicted_speedup']:5.2f}x"
            f"  rel-diff {row['max_rel_diff_vs_serial']:.2e}"
        )
        assert row["max_rel_diff_vs_serial"] <= 1e-12, "backends disagree"

    greeks = bench_greeks_agreement(steps=512 if not args.quick else 128)
    report["greeks_refactor"] = greeks
    print(f"greeks engine-shared vs reference: {greeks['max_rel_diff']:.2e}")
    assert greeks["max_rel_diff"] <= 1e-10, "greeks refactor drifted"

    procs = [r for r in report["backends"] if r["backend"] == "process"]
    report["summary"] = {
        "best_speedup_vs_serial": max(
            r["speedup_vs_serial"] for r in report["backends"]
        ),
        "speedup_vs_serial_at_4_process_workers": next(
            (r["speedup_vs_serial"] for r in procs if r["workers"] == 4), None
        ),
        "measured_concurrency_at_4_workers": next(
            (r["measured_speedup"] for r in procs if r["workers"] == 4), None
        ),
        "brent_predicted_at_4_workers": next(
            (r["predicted_speedup"] for r in procs if r["workers"] == 4), None
        ),
        "max_backend_rel_diff": max(
            r["max_rel_diff_vs_serial"] for r in report["backends"]
        ),
        "greeks_max_rel_diff": greeks["max_rel_diff"],
    }
    if os.cpu_count() and os.cpu_count() < 4:
        report["summary"]["note"] = (
            f"host exposes only {os.cpu_count()} CPU(s); measured multi-worker "
            "speedup is bounded by the hardware, not the engine — "
            "predicted_speedup records what the work-span model expects "
            "given real cores"
        )
    write_bench_report(
        args.out,
        report,
        speedup=report["summary"]["best_speedup_vs_serial"],
        drift=max(
            report["summary"]["max_backend_rel_diff"],
            report["summary"]["greeks_max_rel_diff"],
        ),
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
