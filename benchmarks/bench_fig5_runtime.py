"""Figure 5 (a,b,c): parallel running-time comparison.

Raw benchmarks time each implementation at representative step counts; the
``*_series`` benchmarks regenerate the full figure series (measured p=1 +
greedy-scheduler-modeled p=48) and the §5.1 headline-speedup table, writing
``results/fig5-*.csv``.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.core.bsm_solver import solve_bsm_fft
from repro.core.tree_solver import solve_tree_fft
from repro.experiments import run_experiment, sweep
from repro.lattice import price_binomial, price_bsm_fd, price_trinomial
from repro.baselines import ql_bopm, zb_bopm
from repro.options.contract import Right, paper_benchmark_spec
from repro.options.params import BinomialParams, BSMGridParams, TrinomialParams

SPEC = paper_benchmark_spec()
PUT_SPEC = dataclasses.replace(SPEC, right=Right.PUT, dividend_yield=0.0)
BENCH_T = [sweep("runtime")[0], sweep("runtime")[-1]]


@pytest.mark.parametrize("T", BENCH_T)
def test_fft_bopm(benchmark, T):
    params = BinomialParams.from_spec(SPEC, T)
    result = benchmark(solve_tree_fft, params)
    assert result.price > 0


@pytest.mark.parametrize("T", BENCH_T)
def test_ql_bopm(benchmark, T):
    result = benchmark(ql_bopm, SPEC, T)
    assert result.price > 0


@pytest.mark.parametrize("T", BENCH_T)
def test_zb_bopm(benchmark, T):
    result = benchmark(zb_bopm, SPEC, T)
    assert result.price > 0


@pytest.mark.parametrize("T", BENCH_T)
def test_fft_topm(benchmark, T):
    params = TrinomialParams.from_spec(SPEC, T)
    result = benchmark(solve_tree_fft, params)
    assert result.price > 0


@pytest.mark.parametrize("T", BENCH_T)
def test_vanilla_topm(benchmark, T):
    result = benchmark(price_trinomial, SPEC, T)
    assert result.price > 0


@pytest.mark.parametrize("T", BENCH_T)
def test_fft_bsm(benchmark, T):
    params = BSMGridParams.from_spec(PUT_SPEC, T)
    result = benchmark(solve_bsm_fft, params)
    assert result.price > 0


@pytest.mark.parametrize("T", BENCH_T)
def test_vanilla_bsm(benchmark, T):
    result = benchmark(price_bsm_fd, PUT_SPEC, T)
    assert result.price > 0


@pytest.mark.parametrize("T", BENCH_T)
def test_vanilla_bopm(benchmark, T):
    result = benchmark(price_binomial, SPEC, T)
    assert result.price > 0


@pytest.mark.parametrize("model", ["bopm", "topm", "bsm"])
def test_fig5_series(benchmark, model):
    """Regenerate the full Figure 5 panel (one-shot; prints with -s)."""
    result = benchmark.pedantic(
        run_experiment, args=(f"fig5-{model}",), rounds=1, iterations=1
    )
    # the fft solver must win at the top of the sweep, at least serially
    fft_label = next(k for k in result.series if k.startswith("fft") and "p=1" in k)
    top = max(result.series[fft_label])
    others = [
        result.series[k][top]
        for k in result.series
        if "p=1" in k and not k.startswith("fft")
    ]
    assert result.series[fft_label][top] > 0
    assert min(others) > 0
