"""Shared fixtures/configuration for the benchmark suite.

Every ``bench_*.py`` regenerates one of the paper's tables/figures: raw
pytest-benchmark timings for the underlying solver calls plus a one-shot
"table" benchmark that prints the paper-shaped series (run with ``-s`` to
see them; the CSVs land in ``results/`` either way).

Environment knobs (see ``repro.experiments.sweeps``):
``REPRO_BENCH_FAST=1`` for a quick pass, ``REPRO_BENCH_SCALE=n`` to push the
sweeps toward paper scale.
"""

import os

import pytest

# Keep benchmark collection deterministic and the tables readable.
collect_ignore_glob: list[str] = []


@pytest.fixture(scope="session", autouse=True)
def _results_dir():
    os.environ.setdefault(
        "REPRO_RESULTS_DIR",
        os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "results"),
    )
    yield
