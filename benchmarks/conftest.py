"""Shared fixtures/configuration for the benchmark suite.

Every ``bench_*.py`` regenerates one of the paper's tables/figures: raw
pytest-benchmark timings for the underlying solver calls plus a one-shot
"table" benchmark that prints the paper-shaped series (run with ``-s`` to
see them; the CSVs land in ``results/`` either way).

Environment knobs (see ``repro.experiments.sweeps``):
``REPRO_BENCH_FAST=1`` for a quick pass, ``REPRO_BENCH_SCALE=n`` to push the
sweeps toward paper scale.
"""

import json
import os

import pytest

# Keep benchmark collection deterministic and the tables readable.
collect_ignore_glob: list[str] = []

#: Version of the shared BENCH_*.json layout below.  Bump when the
#: required header/summary keys change so dashboards can dispatch.
#: v2: every report carries a ``telemetry`` section (throughput rates).
BENCH_SCHEMA = 2

#: Keys every BENCH_*.json must carry at the top level.
_REQUIRED_HEADER = ("benchmark", "schema", "smoke", "host_cpus", "telemetry")

#: Keys the ``telemetry`` section always carries; ``None`` marks a rate
#: the benchmark does not measure (a grid bench has no quote stream).
_TELEMETRY_KEYS = ("cells_per_sec", "quotes_per_sec", "hit_rate")


def telemetry_section(
    *, cells_per_sec=None, quotes_per_sec=None, hit_rate=None
) -> dict:
    """The throughput block every BENCH_*.json carries under ``telemetry``.

    One queryable shape across all benchmarks: ``cells_per_sec`` (solve
    throughput of the headline grid/batch run), ``quotes_per_sec``
    (service-tier quote throughput) and ``hit_rate`` (cache hit ratio over
    the measured stream).  A benchmark fills what it measures and leaves
    the rest ``None`` — consumers test for ``None`` rather than key
    absence.
    """
    return {
        "cells_per_sec": None if cells_per_sec is None else float(cells_per_sec),
        "quotes_per_sec": None if quotes_per_sec is None else float(quotes_per_sec),
        "hit_rate": None if hit_rate is None else float(hit_rate),
    }


def bench_report(name: str, *, smoke: bool = False, **header) -> dict:
    """The standard ``BENCH_*.json`` skeleton.

    Every standalone ``bench_*`` script builds its report through this
    helper so the artifacts share one queryable header: ``benchmark``
    (the script's name), ``schema`` (layout version), ``smoke`` (CI smoke
    sizes vs the full run) and ``host_cpus`` (wall-clock context — a
    speedup means nothing without knowing the host).  Extra keyword
    arguments land as additional top-level keys.
    """
    report: dict = {
        "benchmark": name,
        "schema": BENCH_SCHEMA,
        "smoke": bool(smoke),
        "host_cpus": os.cpu_count(),
    }
    report.update(header)
    return report


def write_bench_report(path: str, report: dict, *, speedup, drift) -> None:
    """Attach the canonical summary keys, validate, and write ``path``.

    ``speedup`` is the run's headline ratio (the one number a dashboard
    plots per benchmark); ``drift`` is the worst batched-vs-reference
    disagreement the run measured (0.0 = bit-identical).  Both land under
    ``summary`` next to whatever benchmark-specific keys the script
    already recorded, so existing consumers keep their fields.
    """
    summary = report.setdefault("summary", {})
    summary["headline_speedup"] = float(speedup)
    summary["max_drift"] = float(drift)
    report.setdefault("telemetry", telemetry_section())
    missing = [k for k in _REQUIRED_HEADER if k not in report]
    if missing:
        raise ValueError(f"bench report missing header keys: {missing}")
    bad = [k for k in _TELEMETRY_KEYS if k not in report["telemetry"]]
    if bad:
        raise ValueError(f"bench telemetry section missing keys: {bad}")
    with open(path, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    print(f"wrote {path}")


def validate_report(report: dict) -> None:
    """Raise ``ValueError`` unless ``report`` is a well-formed
    ``BENCH_*.json`` under the current schema — the gate
    ``benchmarks/run_all.py`` applies to every artifact the suite
    produced before folding it into the trajectory."""
    if not isinstance(report, dict):
        raise ValueError("bench report must be a dict")
    missing = [k for k in _REQUIRED_HEADER if k not in report]
    if missing:
        raise ValueError(f"bench report missing header keys: {missing}")
    if report["schema"] != BENCH_SCHEMA:
        raise ValueError(
            f"bench report schema {report['schema']!r} != {BENCH_SCHEMA}"
        )
    bad = [k for k in _TELEMETRY_KEYS if k not in report["telemetry"]]
    if bad:
        raise ValueError(f"bench telemetry section missing keys: {bad}")
    summary = report.get("summary")
    if not isinstance(summary, dict):
        raise ValueError("bench report missing 'summary' section")
    for key in ("headline_speedup", "max_drift"):
        if key not in summary:
            raise ValueError(f"bench summary missing {key!r}")


@pytest.fixture(scope="session", autouse=True)
def _results_dir():
    os.environ.setdefault(
        "REPRO_RESULTS_DIR",
        os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "results"),
    )
    yield
