"""Telemetry overhead: the instrument panel must not slow the solves.

Writes ``BENCH_obs.json`` (repo root by default) timing the 1024-cell
heterogeneous American grid — the same grid ``bench_batch.py`` measures —
through the :class:`~repro.risk.engine.ScenarioEngine` serial path under
three telemetry configurations:

1. **off** — no telemetry handle at all (the pre-instrumentation hot path:
   every call site takes its ``telemetry is None`` branch).
2. **disabled** — a :meth:`~repro.obs.Telemetry.disabled` handle passed in.
   ``active()`` normalises it to ``None`` at construction, so this must be
   indistinguishable from *off*; the gate pins the no-op fast path at
   <= 2% overhead.
3. **enabled** — a live :class:`~repro.obs.Telemetry`: spans around every
   lockstep round, batch-width histograms, chunk timings, counter folds,
   and the flight-recorder journal armed (its emit sites are cold-path
   only, so a clean run journals nothing — that *is* the design being
   gated).  Gate: <= 10% overhead over *off*.

Prices must be bit-identical across all three runs (telemetry observes,
never perturbs).  Run ``python benchmarks/bench_obs.py`` for the full
sizes or ``--smoke`` for the CI pass (wall-clock ratio gates are skipped
at smoke sizes — a busy CI host makes a 2% bound meaningless on a ~10 ms
measurement; the agreement and instrumentation-fired gates always hold).
"""

from __future__ import annotations

import argparse
import os
import sys
import time

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
)
sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from bench_batch import build_grid  # noqa: E402
from conftest import bench_report, telemetry_section, write_bench_report  # noqa: E402

from repro.obs import Telemetry, chrome_trace, validate_chrome_trace  # noqa: E402
from repro.options.contract import Style  # noqa: E402
from repro.risk.engine import ScenarioEngine  # noqa: E402


def _run_grid(specs, steps, telemetry):
    scenario = ScenarioEngine(
        workers=1, backend="serial", chunk_size=len(specs),
        telemetry=telemetry,
    )
    return scenario.price_grid(specs, steps)


def bench_overhead(n_cells: int, steps: int, repeats: int) -> dict:
    specs = build_grid(n_cells, Style.AMERICAN)
    modes = [
        ("off", lambda: None),
        ("disabled", Telemetry.disabled),
        ("enabled", Telemetry),
    ]
    walls = {name: float("inf") for name, _ in modes}
    prices = {}
    last_tel = None
    # interleave the modes within each repeat so drift in host load hits
    # all three configurations evenly, and keep per-mode best-of walls
    for _ in range(repeats):
        for name, make_tel in modes:
            tel = make_tel()
            t0 = time.perf_counter()
            result = _run_grid(specs, steps, tel)
            walls[name] = min(walls[name], time.perf_counter() - t0)
            prices[name] = [r.price for r in result.results]
            if name == "enabled":
                last_tel = tel
    snap = last_tel.snapshot()
    return {
        "n_cells": n_cells,
        "steps": steps,
        "wall_off_s": walls["off"],
        "wall_disabled_s": walls["disabled"],
        "wall_enabled_s": walls["enabled"],
        "disabled_overhead": walls["disabled"] / walls["off"] - 1.0,
        "enabled_overhead": walls["enabled"] / walls["off"] - 1.0,
        "max_abs_diff_disabled": max(
            abs(a - b) for a, b in zip(prices["off"], prices["disabled"])
        ),
        "max_abs_diff_enabled": max(
            abs(a - b) for a, b in zip(prices["off"], prices["enabled"])
        ),
        # proof the enabled run actually instrumented the solves
        "enabled_metric_series": len(snap["metrics"]),
        "enabled_collected_advances": sum(
            m["value"]
            for m in snap["metrics"]
            if m["name"] == "risk_engine_advances"
        ),
        "enabled_round_spans": last_tel.tracer.phase_breakdown()
        .get("lockstep_round", {})
        .get("count", 0),
        # the journal is armed but must stay silent on a clean run —
        # its emit sites are recovery/degradation paths only
        "enabled_journal_events": last_tel.journal.stats()["emitted"],
        "trace_events": _validated_trace_events(last_tel),
    }


def _validated_trace_events(tel: Telemetry) -> int:
    """Perfetto-export the run's trace forest through the format gate."""
    trace = chrome_trace(tel.tracer)
    validate_chrome_trace(trace)
    return len(trace["traceEvents"])


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true", help="CI sizes")
    parser.add_argument("--steps", type=int, default=None)
    parser.add_argument(
        "--out",
        default=os.path.join(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
            "BENCH_obs.json",
        ),
    )
    args = parser.parse_args()

    steps = args.steps or (64 if args.smoke else 256)
    n_cells = 64 if args.smoke else 1024
    repeats = 2 if args.smoke else 3
    report = bench_report("telemetry_overhead", smoke=args.smoke, steps=steps)

    ov = bench_overhead(n_cells, steps, repeats)
    report["overhead"] = ov
    print(
        f"grid ({ov['n_cells']} cells, {ov['steps']} steps): "
        f"off {ov['wall_off_s']*1e3:7.1f} ms   "
        f"disabled {ov['disabled_overhead']*100:+5.1f}%   "
        f"enabled {ov['enabled_overhead']*100:+5.1f}%"
    )

    # Telemetry observes, never perturbs: bit-identical at every size.
    assert ov["max_abs_diff_disabled"] == 0.0, (
        "disabled telemetry changed solve results"
    )
    assert ov["max_abs_diff_enabled"] == 0.0, (
        "enabled telemetry changed solve results"
    )
    # The enabled run must actually have measured something.
    assert ov["enabled_metric_series"] > 0, "no metric series recorded"
    assert ov["enabled_collected_advances"] > 0, (
        "engine counters were not folded into the registry"
    )
    assert ov["enabled_round_spans"] > 0, "no lockstep_round spans recorded"
    # Clean runs never touch the flight recorder's cold paths.
    assert ov["enabled_journal_events"] == 0, (
        "journal events emitted on a fault-free run — an emit site leaked "
        "onto the hot path"
    )
    # The Perfetto export of the run's trace forest must validate.
    assert ov["trace_events"] > 0, "trace export produced no events"

    if not args.smoke:
        # Wall gates only at full size on a quiet host: the disabled path
        # must be free (<= 2%), the enabled path — flight recorder armed —
        # cheap (<= 10%).
        assert ov["disabled_overhead"] <= 0.02, (
            f"disabled telemetry costs {ov['disabled_overhead']*100:.1f}% "
            "(gate: 2%)"
        )
        assert ov["enabled_overhead"] <= 0.10, (
            f"enabled telemetry costs {ov['enabled_overhead']*100:.1f}% "
            "(gate: 10%)"
        )

    report["summary"] = {
        "disabled_overhead": ov["disabled_overhead"],
        "enabled_overhead": ov["enabled_overhead"],
        "bit_identical": True,
    }
    report["telemetry"] = telemetry_section(
        cells_per_sec=ov["n_cells"] / ov["wall_enabled_s"],
    )
    write_bench_report(
        args.out,
        report,
        speedup=1.0 / max(1.0 + ov["enabled_overhead"], 1e-12),
        drift=max(ov["max_abs_diff_disabled"], ov["max_abs_diff_enabled"]),
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
