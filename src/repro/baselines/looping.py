"""Nested-loop baselines (the paper's Figure 1).

Two fidelities:

* :func:`binomial_nested_loop_pure` — a literal, cell-by-cell transcription
  of Figure 1's pseudocode in pure Python.  It exists as the most readable
  executable specification of BOPM American call pricing and as the oracle
  of oracles for tiny ``T`` (everything else in the library must agree with
  it bit-for-bit up to summation order).
* :func:`binomial_vectorised_loop` — the per-row vectorised sweep (delegates
  to :func:`repro.lattice.price_binomial`), the practical ``vanilla``
  baseline used in the runtime figures.
"""

from __future__ import annotations

import math

from repro.lattice.binomial import price_binomial
from repro.lattice.common import LatticeResult
from repro.options.contract import OptionSpec, Right, Style
from repro.options.params import BinomialParams
from repro.parallel.workspan import WorkSpan, rows_cost
from repro.util.validation import ValidationError, check_integer


def binomial_nested_loop_pure(spec: OptionSpec, steps: int) -> LatticeResult:
    """Paper Figure 1, line by line (pure Python; use only for small ``T``).

    ``BOPM-American-Call(S, K, R, V, Y, E, T)``:

    1. derive ``dt, u, d, p, m, s0, s1``;
    2. fill the expiry row ``G[T][j] = max(0, S u^{2j-T} - K)``;
    3. for each earlier row, ``G[i][j] = max(s0 G[i+1][j] + s1 G[i+1][j+1],
       S u^{2j-i} - K)``;
    4. return ``G[0][0]``.
    """
    if spec.right is not Right.CALL or spec.style is not Style.AMERICAN:
        raise ValidationError("Figure 1 prices American calls")
    steps = check_integer("steps", steps, minimum=1)
    p = BinomialParams.from_spec(spec, steps)
    s, k, u = spec.spot, spec.strike, p.up
    log_u = math.log(u)
    s0, s1 = p.s0, p.s1

    row = [max(0.0, s * math.exp((2 * j - steps) * log_u) - k) for j in range(steps + 1)]
    cells = steps + 1
    ws = rows_cost(1, steps + 1, 1)
    for i in range(steps - 1, -1, -1):
        nxt = [
            max(
                s0 * row[j] + s1 * row[j + 1],
                s * math.exp((2 * j - i) * log_u) - k,
            )
            for j in range(i + 1)
        ]
        row = nxt
        cells += i + 1
        ws = ws.then(rows_cost(1, i + 1, 2))
    return LatticeResult(
        price=row[0],
        steps=steps,
        workspan=ws,
        cells=cells,
        meta={"model": "binomial", "impl": "nested-loop-pure"},
    )


def binomial_vectorised_loop(spec: OptionSpec, steps: int) -> LatticeResult:
    """The practical vanilla baseline: per-row NumPy sweep (Θ(T²) work)."""
    result = price_binomial(spec, steps)
    result.meta["impl"] = "nested-loop-vectorised"
    return result
