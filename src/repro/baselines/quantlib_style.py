"""``ql-bopm``: the QuantLib-style binomial engine, as wrapped by Par-bin-ops.

QuantLib's ``BinomialVanillaEngine`` with a Cox–Ross–Rubinstein tree walks the
lattice back level by level, but — unlike the stencil-style formulation —
*re-derives the asset price at every node of every level* from the tree
parameters (``underlying * u^(2j - i)``), and rolls the option values through
a per-level temporary array.  That is exactly the extra arithmetic and memory
traffic that makes ``ql-bopm`` the slowest baseline in the paper's Figure 5
even though it shares the Θ(T²) cell count, and why Par-bin-ops reports a
139× gap to its optimised variants at large T.

This module reproduces that *algorithmic shape* faithfully: per-level price
re-derivation (one exp per node), fresh per-level arrays, discounting applied
per node rather than folded into the weights.
"""

from __future__ import annotations

import numpy as np

from repro.lattice.common import LatticeResult
from repro.options.contract import OptionSpec, Right, Style
from repro.options.params import BinomialParams
from repro.parallel.workspan import WorkSpan, rows_cost
from repro.util.validation import ValidationError, check_integer


def ql_bopm(spec: OptionSpec, steps: int) -> LatticeResult:
    """American call pricing in the QuantLib engine's evaluation order.

    Work Θ(T²) with a ~3× higher per-cell constant than the stencil-style
    baselines (price re-derivation via ``exp`` each level, explicit
    per-node discounting) plus one fresh allocation per level.
    """
    if spec.right is not Right.CALL or spec.style is not Style.AMERICAN:
        raise ValidationError("ql_bopm reproduces the paper's American-call baseline")
    steps = check_integer("steps", steps, minimum=1)
    p = BinomialParams.from_spec(spec, steps)
    log_u = np.log(p.up)
    pu, pd = p.prob_up, 1.0 - p.prob_up
    disc = p.discount

    # QuantLib: tree.underlying(i, j) = S * exp((2 j - i) ln u), recomputed
    # from scratch whenever asked.
    def underlying(i: int) -> np.ndarray:
        j = np.arange(i + 1, dtype=np.float64)
        return spec.spot * np.exp((2.0 * j - i) * log_u)

    values = np.maximum(underlying(steps) - spec.strike, 0.0)
    cells = steps + 1
    ws = rows_cost(1, steps + 1, 1)
    for i in range(steps - 1, -1, -1):
        # rollback: fresh array, per-node discounting (QuantLib's
        # DiscretizedAsset::rollback applies the discount separately).
        continuation = disc * (pd * values[: i + 1] + pu * values[1 : i + 2])
        exercise = underlying(i) - spec.strike
        values = np.maximum(continuation, exercise)
        cells += i + 1
        # ~3 flops of price re-derivation + 2-tap stencil + discount per cell
        ws = ws.then(rows_cost(1, (i + 1) * 3, 2))
    return LatticeResult(
        price=float(values[0]),
        steps=steps,
        workspan=ws,
        cells=cells,
        meta={"model": "binomial", "impl": "ql-bopm"},
    )
