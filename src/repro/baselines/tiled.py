"""Cache-aware tiled-loop baseline (Table 2 row 2; Par-bin-ops' tiling).

The Θ(T²)-work sweep restructured into row blocks of height ``B`` and column
tiles of width ``W`` so each tile's working set (``W + B`` cells plus the
incremental price vector) fits in a target cache level.  Within a tile the
``B`` rows are descended locally; tiles are processed left to right along a
block, blocks top to bottom.  Total work is ``Θ(T² (1 + B/W))`` — identical
asymptotics to the nested loop with a bounded constant — while the cache
traffic drops from ``Θ(T²/L)`` line fetches to ``Θ(T²/L · (L/(W+B) + 1))``
-ish, the effect the paper's Figure 7 measures via PAPI and our
:mod:`repro.cachesim` reproduces via traces.

The tile shape is a right trapezoid: computing columns ``[a, b)`` of the
block's bottom row needs columns ``[a, b + B)`` of its top row (the
dependency cone leans right by one column per step).
"""

from __future__ import annotations

import numpy as np

from repro.lattice.common import LatticeResult
from repro.options.contract import OptionSpec, Right, Style
from repro.options.params import BinomialParams
from repro.parallel.workspan import WorkSpan, rows_cost
from repro.util.validation import ValidationError, check_integer

#: Default tile geometry: ~(256+256) doubles per tile ≈ 4 KB working set,
#: comfortably inside the paper's 32 KB Skylake L1.
DEFAULT_BLOCK_ROWS = 256
DEFAULT_TILE_WIDTH = 256


def tiled_bopm(
    spec: OptionSpec,
    steps: int,
    *,
    block_rows: int = DEFAULT_BLOCK_ROWS,
    tile_width: int = DEFAULT_TILE_WIDTH,
) -> LatticeResult:
    """American call pricing with the cache-aware tiled sweep.

    Produces results identical to the nested loop (every cell sees the same
    two parents and the same max rule; only the evaluation order changes).
    """
    if spec.right is not Right.CALL or spec.style is not Style.AMERICAN:
        raise ValidationError("tiled_bopm reproduces the paper's American-call baseline")
    steps = check_integer("steps", steps, minimum=1)
    block_rows = check_integer("block_rows", block_rows, minimum=1)
    tile_width = check_integer("tile_width", tile_width, minimum=1)
    p = BinomialParams.from_spec(spec, steps)
    s0, s1, u = p.s0, p.s1, p.up
    log_u = np.log(u)

    j = np.arange(steps + 1, dtype=np.float64)
    row = np.maximum(spec.spot * np.exp((2.0 * j - steps) * log_u) - spec.strike, 0.0)
    cells = steps + 1
    ws = rows_cost(1, steps + 1, 1)

    i_top = steps
    while i_top > 0:
        b = min(block_rows, i_top)
        i_bot = i_top - b
        new_row = np.empty(i_bot + 1)
        block_cells = 0
        for a in range(0, i_bot + 1, tile_width):
            hi = min(a + tile_width, i_bot + 1)
            # trapezoid tile: needs top-row columns [a, hi + b)
            window = row[a : hi + b].copy()
            for d in range(1, b + 1):
                i_cur = i_top - d
                n = len(window) - 1
                jj = np.arange(a, a + n, dtype=np.float64)
                exercise = spec.spot * np.exp((2.0 * jj - i_cur) * log_u) - spec.strike
                window = np.maximum(s0 * window[:-1] + s1 * window[1:], exercise)
                block_cells += n
            new_row[a:hi] = window[: hi - a]
        row = new_row
        cells += block_cells
        # work counts the cells actually touched (including the b/W tile
        # overlap); rows are sequential, tiles within a row run in parallel
        ws = ws.then(
            WorkSpan(
                4.0 * block_cells,
                b * (np.log2(tile_width + b + 2.0) + 1.0),
            )
        )
        i_top = i_bot

    return LatticeResult(
        price=float(row[0]),
        steps=steps,
        workspan=ws,
        cells=cells,
        meta={
            "model": "binomial",
            "impl": "tiled",
            "block_rows": block_rows,
            "tile_width": tile_width,
        },
    )
