"""Θ(T²) baseline implementations (the paper's comparison targets)."""

from repro.baselines.looping import binomial_nested_loop_pure, binomial_vectorised_loop
from repro.baselines.oblivious import oblivious_bopm
from repro.baselines.quantlib_style import ql_bopm
from repro.baselines.registry import BASELINES, get_baseline
from repro.baselines.tiled import tiled_bopm
from repro.baselines.zubair import zb_bopm

__all__ = [
    "binomial_nested_loop_pure",
    "binomial_vectorised_loop",
    "oblivious_bopm",
    "ql_bopm",
    "tiled_bopm",
    "zb_bopm",
    "BASELINES",
    "get_baseline",
]
