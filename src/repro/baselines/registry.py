"""Name → implementation registry for the BOPM baseline family.

Mirrors the paper's Table 4 legends plus the Table 2 algorithm families, so
benchmarks and the public API dispatch by the same strings the paper uses.
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.baselines.looping import binomial_nested_loop_pure, binomial_vectorised_loop
from repro.baselines.oblivious import oblivious_bopm
from repro.baselines.quantlib_style import ql_bopm
from repro.baselines.tiled import tiled_bopm
from repro.baselines.zubair import zb_bopm
from repro.lattice.common import LatticeResult
from repro.options.contract import OptionSpec
from repro.util.validation import ValidationError

BaselineFn = Callable[[OptionSpec, int], LatticeResult]

#: All Θ(T²) binomial American-call baselines by their paper-style name.
BASELINES: Dict[str, BaselineFn] = {
    "loop": binomial_vectorised_loop,
    "loop-pure": binomial_nested_loop_pure,
    "tiled": tiled_bopm,
    "oblivious": oblivious_bopm,
    "ql": ql_bopm,
    "zb": zb_bopm,
}


def get_baseline(name: str) -> BaselineFn:
    """Look up a baseline by name; raises with the valid choices listed."""
    try:
        return BASELINES[name]
    except KeyError:
        raise ValidationError(
            f"unknown baseline {name!r}; choose one of {sorted(BASELINES)}"
        ) from None
