"""``zb-bopm``: Zubair & Mukkamala's cache-optimised binomial pricing.

Zubair & Mukkamala (ICCSA 2008; the stencil-based variant used by
Par-bin-ops) restructure the binomial sweep for memory performance:

* a single value buffer updated *in place* (the row-``i`` values overwrite
  the row-``i+1`` prefix), halving the traffic of the two-array rollback;
* asset prices maintained *incrementally* — the row-``i`` price at column
  ``j`` is the row-``i+1`` price at column ``j`` times ``u``
  (``S u^{2j-(i+1)} * u = S u^{2j-i}``), so no ``exp`` in the loop;
* discount folded into the transition weights once (``s0, s1``).

This is the strongest Θ(T²) baseline in the paper's Figure 5(a).
"""

from __future__ import annotations

import numpy as np

from repro.lattice.common import LatticeResult
from repro.options.contract import OptionSpec, Right, Style
from repro.options.params import BinomialParams
from repro.parallel.workspan import WorkSpan, rows_cost
from repro.util.validation import ValidationError, check_integer


def zb_bopm(spec: OptionSpec, steps: int) -> LatticeResult:
    """American call pricing with the Zubair-style in-place stencil sweep."""
    if spec.right is not Right.CALL or spec.style is not Style.AMERICAN:
        raise ValidationError("zb_bopm reproduces the paper's American-call baseline")
    steps = check_integer("steps", steps, minimum=1)
    p = BinomialParams.from_spec(spec, steps)
    s0, s1, u = p.s0, p.s1, p.up

    j = np.arange(steps + 1, dtype=np.float64)
    prices = spec.spot * np.exp((2.0 * j - steps) * np.log(u))
    values = np.maximum(prices - spec.strike, 0.0)
    cells = steps + 1
    ws = rows_cost(1, steps + 1, 1)
    for i in range(steps - 1, -1, -1):
        n = i + 1
        # single-buffer stencil: the RHS is evaluated into a temporary before
        # the assignment, so the old neighbour values are read correctly
        values[:n] = s0 * values[:n] + s1 * values[1 : n + 1]
        # incremental price update: row-i prices = row-(i+1) prices * u
        np.multiply(prices[:n], u, out=prices[:n])
        np.maximum(values[:n], prices[:n] - spec.strike, out=values[:n])
        cells += n
        ws = ws.then(rows_cost(1, n, 2))
    return LatticeResult(
        price=float(values[0]),
        steps=steps,
        workspan=ws,
        cells=cells,
        meta={"model": "binomial", "impl": "zb-bopm"},
    )
