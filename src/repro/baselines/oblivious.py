"""Cache-oblivious recursive trapezoidal baseline (Frigo–Strumpen).

Table 2 row 3: the recursive space–time decomposition of Frigo & Strumpen
(ICS'05) applied to the binomial American-call grid.  Work Θ(T²); the
parallel variant has span Θ(T^{log2 3}); cache misses are
``O(T²/(M·L) + ...)`` *without knowing* the cache parameters — the property
the paper contrasts with its own O(T log²T)-work algorithm.

The recursion operates in the upward time coordinate ``t = T - i`` (``t = 0``
is the expiry row) on a single in-place value buffer ``v`` where ``v[x]``
holds the newest computed value of column ``x``.  The stencil's dependency
offsets are ``{0, +1}`` (cell ``(t, x)`` reads ``(t-1, x)`` and
``(t-1, x+1)``), so:

* within one row, ascending ``x`` is in-place safe;
* a *space cut* along a line of slope −1 (one column left per time step) is
  safe with the left piece first: the right piece's leftmost dependency at
  each level was produced by the left piece one level earlier;
* a *time cut* (bottom half then top half) is always safe.

Pure-Python per-cell evaluation: this baseline is the reference access
pattern for :mod:`repro.cachesim` and a correctness cross-check; use the
vectorised baselines for timing sweeps.
"""

from __future__ import annotations

import math
import sys

import numpy as np

from repro.lattice.common import LatticeResult
from repro.options.contract import OptionSpec, Right, Style
from repro.options.params import BinomialParams
from repro.parallel.workspan import WorkSpan
from repro.util.validation import ValidationError, check_integer


def oblivious_bopm(spec: OptionSpec, steps: int, *, base_height: int = 8) -> LatticeResult:
    """American call pricing in cache-oblivious trapezoidal order."""
    if spec.right is not Right.CALL or spec.style is not Style.AMERICAN:
        raise ValidationError(
            "oblivious_bopm reproduces the paper's American-call baseline"
        )
    steps = check_integer("steps", steps, minimum=1)
    base_height = check_integer("base_height", base_height, minimum=1)
    p = BinomialParams.from_spec(spec, steps)
    s0, s1, u = p.s0, p.s1, p.up
    s, k = spec.spot, spec.strike

    # green(t, x) = S * u^(2x - (T - t)) - K = S * leaf[x] * u^t - K
    leaf = [u ** (2 * x - steps) for x in range(steps + 1)]
    upow = [u**t for t in range(steps + 1)]
    v = [max(0.0, s * leaf[x] - k) for x in range(steps + 1)]
    cells = steps + 1

    def compute_row(t: int, x0: int, x1: int) -> None:
        """In-place update of columns [x0, x1) from time t-1 to t."""
        nonlocal cells
        su_t = s * upow[t]
        for x in range(x0, x1):
            cont = s0 * v[x] + s1 * v[x + 1]
            exercise = su_t * leaf[x] - k
            v[x] = cont if cont >= exercise else exercise
        cells += x1 - x0

    def walk(t0: int, t1: int, x0: int, dx0: int, x1: int, dx1: int) -> None:
        """Compute the trapezoid {(t, x): t0 <= t < t1,
        x0 + dx0(t-t0) <= x < x1 + dx1(t-t0)}."""
        h = t1 - t0
        if h <= 0:
            return
        if h <= base_height:
            xl, xr = x0, x1
            for t in range(t0, t1):
                if xl < xr:
                    compute_row(t, xl, xr)
                xl += dx0
                xr += dx1
            return
        half = h // 2
        width_bottom = x1 - x0
        width_top = (x1 + dx1 * (h - 1)) - (x0 + dx0 * (h - 1))
        if width_bottom + width_top >= 4 * h:
            # space cut along a slope -1 line through the bottom midpoint
            xm = (x0 + x1) // 2
            walk(t0, t1, x0, dx0, xm, -1)  # left piece first
            walk(t0, t1, xm, -1, x1, dx1)
        else:
            # time cut
            walk(t0, t0 + half, x0, dx0, x1, dx1)
            walk(
                t0 + half,
                t1,
                x0 + dx0 * half,
                dx0,
                x1 + dx1 * half,
                dx1,
            )

    old_limit = sys.getrecursionlimit()
    sys.setrecursionlimit(max(old_limit, 4 * steps + 100))
    try:
        # global region: time t in [1, T], columns [0, T - t + 1)
        walk(1, steps + 1, 0, 0, steps, -1)
    finally:
        sys.setrecursionlimit(old_limit)

    work = 4.0 * cells
    span = 8.0 * steps ** math.log2(3.0)  # Frigo–Strumpen parallel span
    return LatticeResult(
        price=v[0],
        steps=steps,
        workspan=WorkSpan(work, span),
        cells=cells,
        meta={"model": "binomial", "impl": "cache-oblivious", "base_height": base_height},
    )
