"""Experiment harness: registry + builders for every paper table/figure."""

from repro.experiments.harness import (
    REGISTRY,
    Experiment,
    ExperimentResult,
    list_experiments,
    run_experiment,
)
from repro.experiments.sweeps import PROCESSOR_GRID, is_fast_mode, sweep

# importing the builder modules populates the registry
from repro.experiments import figures as _figures  # noqa: F401
from repro.experiments import ablation as _ablation  # noqa: F401

__all__ = [
    "REGISTRY",
    "Experiment",
    "ExperimentResult",
    "list_experiments",
    "run_experiment",
    "PROCESSOR_GRID",
    "is_fast_mode",
    "sweep",
]
