"""Experiment registry, table printing and CSV export.

Every table and figure of the paper's §5 has an entry in :data:`REGISTRY`
(populated by :mod:`repro.experiments.figures`); each benchmark file calls
:func:`run_experiment` to regenerate the corresponding rows/series, print
them in the paper's layout, and drop a CSV under ``results/``.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Callable, Dict, Mapping, Optional

from repro.util.tables import format_series, format_table, to_csv
from repro.util.validation import ValidationError


@dataclass
class ExperimentResult:
    """Series (one column per paper legend) plus free-form notes."""

    experiment_id: str
    title: str
    series: Mapping[str, Mapping[int, float]]
    x_name: str = "T"
    notes: list = field(default_factory=list)
    extra_tables: list = field(default_factory=list)  # (title, headers, rows)

    def render(self) -> str:
        parts = [format_series(self.series, x_name=self.x_name, title=self.title)]
        for title, headers, rows in self.extra_tables:
            parts.append("")
            parts.append(format_table(headers, rows, title=title))
        if self.notes:
            parts.append("")
            parts.extend(f"note: {n}" for n in self.notes)
        return "\n".join(parts)


@dataclass(frozen=True)
class Experiment:
    """A registered paper artefact (figure or table)."""

    id: str
    title: str
    paper_ref: str
    builder: Callable[..., ExperimentResult]


REGISTRY: Dict[str, Experiment] = {}


def register(id: str, title: str, paper_ref: str):
    """Decorator adding a builder to the registry under ``id``."""

    def wrap(fn: Callable[..., ExperimentResult]) -> Callable[..., ExperimentResult]:
        if id in REGISTRY:
            raise ValidationError(f"duplicate experiment id {id!r}")
        REGISTRY[id] = Experiment(id=id, title=title, paper_ref=paper_ref, builder=fn)
        return fn

    return wrap


def results_dir() -> str:
    """Directory for CSV exports (created on demand)."""
    here = os.environ.get("REPRO_RESULTS_DIR")
    if here is None:
        here = os.path.join(os.getcwd(), "results")
    os.makedirs(here, exist_ok=True)
    return here


def run_experiment(
    id: str, *, print_output: bool = True, write_csv: bool = True, **kwargs
) -> ExperimentResult:
    """Build, print and export one registered experiment."""
    try:
        exp = REGISTRY[id]
    except KeyError:
        raise ValidationError(
            f"unknown experiment {id!r}; registered: {sorted(REGISTRY)}"
        ) from None
    result = exp.builder(**kwargs)
    if print_output:
        print()
        print(f"=== {exp.id}: {exp.title}  [{exp.paper_ref}] ===")
        print(result.render())
    if write_csv:
        path = os.path.join(results_dir(), f"{exp.id}.csv")
        with open(path, "w") as fh:
            fh.write(to_csv(result.series, x_name=result.x_name))
    return result


def list_experiments() -> list[tuple[str, str, str]]:
    """(id, title, paper_ref) rows for discovery / README generation."""
    return [(e.id, e.title, e.paper_ref) for e in REGISTRY.values()]
