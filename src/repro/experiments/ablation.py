"""Ablation of the recursion base-case height (paper §5.1).

The paper reports: "We have found empirically that a base case size of 8
steps yields the best running times" for their C++/OpenMP implementation.
This ablation sweeps the base-case height of our solvers so the claim can be
re-examined on this substrate — in CPython the per-call overhead is far
higher than in C++, so the optimum is expected to sit at a larger base (the
EXPERIMENTS.md entry records what we find).
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.core.bsm_solver import solve_bsm_fft
from repro.core.tree_solver import solve_tree_fft
from repro.experiments.figures import PUT_SPEC, SPEC
from repro.experiments.harness import ExperimentResult, register
from repro.experiments.sweeps import is_fast_mode
from repro.options.params import BinomialParams, BSMGridParams
from repro.util.timing import measure

DEFAULT_BASES: Sequence[int] = (4, 8, 16, 32, 64, 128, 256)


@register("ablation-base", "base-case height ablation", "paper §5.1")
def ablation_base(
    T: int | None = None, bases: Sequence[int] = DEFAULT_BASES
) -> ExperimentResult:
    if T is None:
        T = 2**12 if is_fast_mode() else 2**15
    bopm: Dict[int, float] = {}
    bsm: Dict[int, float] = {}
    params_b = BinomialParams.from_spec(SPEC, T)
    params_p = BSMGridParams.from_spec(PUT_SPEC, T)
    prices = set()
    for base in bases:
        if base > T:
            continue
        secs, res = measure(lambda: solve_tree_fft(params_b, base=base), min_time=0.05)
        bopm[base] = secs
        prices.add(round(res.price, 9))
        secs, _ = measure(lambda: solve_bsm_fft(params_p, base=base), min_time=0.05)
        bsm[base] = secs
    assert len(prices) == 1, f"base-case height changed the price: {prices}"
    best = min(bopm, key=bopm.get)
    return ExperimentResult(
        experiment_id="ablation-base",
        title=f"base-case height ablation at T = {T} (seconds)",
        series={"fft-bopm (s)": bopm, "fft-bsm (s)": bsm},
        x_name="base",
        notes=[
            f"best BOPM base on this substrate: {best} "
            "(paper's C++ optimum: 8; CPython's per-call overhead pushes the "
            "optimum upward)",
            "prices are identical across all bases (asserted).",
        ],
    )
