"""Scaling-law fits used by the Table 2 reproduction and the test suite."""

from __future__ import annotations

import math
from typing import Mapping, Sequence, Tuple

import numpy as np

from repro.util.validation import ValidationError


def fit_power_law(xs: Sequence[float], ys: Sequence[float]) -> Tuple[float, float]:
    """Least-squares fit ``y = c · x^a`` in log–log space → ``(a, c)``.

    Used to verify that counted work scales like ``T²`` for the baselines and
    like ``T·polylog`` for the FFT solvers (fitted exponent ≈ 1 + o(1)).
    """
    if len(xs) != len(ys) or len(xs) < 2:
        raise ValidationError("need at least two (x, y) points to fit")
    with np.errstate(divide="ignore", invalid="ignore"):
        lx = np.log(np.asarray(xs, dtype=np.float64))
        ly = np.log(np.asarray(ys, dtype=np.float64))
    if not (np.all(np.isfinite(lx)) and np.all(np.isfinite(ly))):
        raise ValidationError("power-law fit requires positive finite data")
    a, logc = np.polyfit(lx, ly, 1)
    return float(a), float(math.exp(logc))


def fit_t_logsq(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Best constant ``c`` for ``y ≈ c · x log2(x)²`` (FFT-solver work law)."""
    if len(xs) != len(ys) or not xs:
        raise ValidationError("need at least one (x, y) point to fit")
    basis = np.array([x * math.log2(x) ** 2 for x in xs])
    ys_arr = np.asarray(ys, dtype=np.float64)
    return float(np.dot(basis, ys_arr) / np.dot(basis, basis))


def relative_spread(series: Mapping[int, float]) -> float:
    """``max/min`` of a positive series — 1.0 means perfectly flat.

    Handy for checking that ``work / (T log²T)`` is nearly constant.
    """
    vals = [v for v in series.values() if v > 0]
    if not vals:
        raise ValidationError("series has no positive entries")
    return max(vals) / min(vals)
