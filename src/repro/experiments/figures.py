"""Builders for every table and figure of the paper's evaluation (§5).

Each builder regenerates one artefact's rows/series at laptop scale (see
:mod:`repro.experiments.sweeps` for the knobs), using:

* measured single-core seconds of our implementations (runtime figures);
* the greedy-scheduler model over instrumented work/span (parallel columns,
  Table 5, Proposition 1.1);
* the RAPL-style energy model (Fig 6 / Fig 10);
* the trace-driven cache simulator (Fig 7).

The benchmark files under ``benchmarks/`` are thin wrappers that time the
underlying solver calls with pytest-benchmark and then invoke these builders
to print the paper-shaped tables.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, Mapping, Tuple

import numpy as np

from repro.baselines import ql_bopm, tiled_bopm, zb_bopm, oblivious_bopm
from repro.cachesim import CacheConfig, CacheHierarchy, SKYLAKE_L1, SKYLAKE_L2
from repro.cachesim import trace as tracemod
from repro.core.bsm_solver import solve_bsm_fft
from repro.core.tree_solver import solve_tree_fft
from repro.energy import DEFAULT_ENERGY_MODEL
from repro.cachesim.model import dram_bytes
from repro.experiments.calibration import fit_power_law
from repro.experiments.harness import ExperimentResult, register
from repro.experiments.sweeps import PROCESSOR_GRID, sweep
from repro.lattice import price_binomial, price_bsm_fd, price_trinomial
from repro.options.contract import Right, paper_benchmark_spec
from repro.options.params import BinomialParams, BSMGridParams, TrinomialParams
from repro.parallel.workspan import WorkSpan
from repro.parallel.runtime_model import RuntimeModel
from repro.util.timing import measure
from repro.util.validation import ValidationError

SPEC = paper_benchmark_spec()
PUT_SPEC = dataclasses.replace(SPEC, right=Right.PUT, dividend_yield=0.0)


# --------------------------------------------------------------------------- #
# Implementation runners: name -> (callable returning obj with .workspan)
# --------------------------------------------------------------------------- #
def _run_fft_bopm(T: int):
    return solve_tree_fft(BinomialParams.from_spec(SPEC, T))


def _run_fft_topm(T: int):
    return solve_tree_fft(TrinomialParams.from_spec(SPEC, T))


def _run_fft_bsm(T: int):
    return solve_bsm_fft(BSMGridParams.from_spec(PUT_SPEC, T))


RUNNERS: Dict[str, Callable[[int], object]] = {
    "fft-bopm": _run_fft_bopm,
    "ql-bopm": lambda T: ql_bopm(SPEC, T),
    "zb-bopm": lambda T: zb_bopm(SPEC, T),
    "vanilla-bopm": lambda T: price_binomial(SPEC, T),
    "tiled-bopm": lambda T: tiled_bopm(SPEC, T),
    "oblivious-bopm": lambda T: oblivious_bopm(SPEC, T),
    "fft-topm": _run_fft_topm,
    "vanilla-topm": lambda T: price_trinomial(SPEC, T),
    "fft-bsm": _run_fft_bsm,
    "vanilla-bsm": lambda T: price_bsm_fd(PUT_SPEC, T),
}

#: legend -> analytic cache/energy model key
MODEL_KEY = {
    "fft-bopm": "fft-bopm",
    "ql-bopm": "ql",
    "zb-bopm": "zb",
    "vanilla-bopm": "loop",
    "tiled-bopm": "tiled",
    "oblivious-bopm": "oblivious",
    "fft-topm": "fft-topm",
    "vanilla-topm": "loop",
    "fft-bsm": "fft-bsm",
    "vanilla-bsm": "loop",
}

FIG5_IMPLS = {
    "bopm": ("fft-bopm", "ql-bopm", "zb-bopm"),
    "topm": ("fft-topm", "vanilla-topm"),
    "bsm": ("fft-bsm", "vanilla-bsm"),
}


#: (impl, T) -> (seconds, workspan); Figures 5, 6 and 10 share measurements.
_MEASUREMENT_CACHE: Dict[Tuple[str, int], Tuple[float, WorkSpan]] = {}


def _measure_impl(impl: str, T: int) -> Tuple[float, WorkSpan]:
    """(seconds, workspan) for one implementation at one step count."""
    key = (impl, T)
    if key in _MEASUREMENT_CACHE:
        return _MEASUREMENT_CACHE[key]
    try:
        fn = RUNNERS[impl]
    except KeyError:
        raise ValidationError(
            f"unknown implementation {impl!r}; choose from {sorted(RUNNERS)}"
        ) from None
    secs, result = measure(lambda: fn(T), min_time=0.02)
    _MEASUREMENT_CACHE[key] = (secs, result.workspan)
    return secs, result.workspan


def _modeled_parallel_seconds(secs: float, ws: WorkSpan, p: int) -> float:
    """Greedy-scheduler prediction calibrated so p=1 equals the measurement."""
    model = RuntimeModel.from_measurement(ws, secs)
    return model.predict_seconds(ws, p)


# --------------------------------------------------------------------------- #
# Figure 5: parallel running times (+ §5.1 headline speedups)
# --------------------------------------------------------------------------- #
def _fig5_builder(model: str, processors: int = 48) -> ExperimentResult:
    impls = FIG5_IMPLS[model]
    series: Dict[str, Dict[int, float]] = {}
    for impl in impls:
        series[f"{impl} p=1 (s)"] = {}
        series[f"{impl} p={processors} (s, modeled)"] = {}
    for T in sweep("runtime"):
        for impl in impls:
            secs, ws = _measure_impl(impl, T)
            series[f"{impl} p=1 (s)"][T] = secs
            series[f"{impl} p={processors} (s, modeled)"][T] = (
                _modeled_parallel_seconds(secs, ws, processors)
            )
    fft = impls[0]
    rows = []
    for T in sweep("runtime"):
        best_base = min(
            series[f"{impl} p=1 (s)"][T] for impl in impls[1:]
        )
        rows.append(
            [
                T,
                best_base / series[f"{fft} p=1 (s)"][T],
                min(series[f"{impl} p={processors} (s, modeled)"][T] for impl in impls[1:])
                / series[f"{fft} p={processors} (s, modeled)"][T],
            ]
        )
    extra = [
        (
            "speedup of the fft solver over the best baseline (§5.1)",
            ["T", "serial speedup", f"p={processors} modeled speedup"],
            rows,
        )
    ]
    return ExperimentResult(
        experiment_id=f"fig5-{model}",
        title=f"Figure 5 ({model.upper()}): running time vs T",
        series=series,
        extra_tables=extra,
        notes=[
            "p=1 columns are measured on this machine; p=48 columns apply the "
            "greedy-scheduler bound T1/p + Tinf to the instrumented work/span "
            "(the paper's Table 2 model), calibrated so p=1 matches the "
            "measurement."
        ],
    )


@register("fig5-bopm", "Fig 5(a): BOPM running time", "paper Fig 5a")
def fig5_bopm() -> ExperimentResult:
    return _fig5_builder("bopm")


@register("fig5-topm", "Fig 5(b): TOPM running time", "paper Fig 5b")
def fig5_topm() -> ExperimentResult:
    return _fig5_builder("topm")


@register("fig5-bsm", "Fig 5(c): BSM running time", "paper Fig 5c")
def fig5_bsm() -> ExperimentResult:
    return _fig5_builder("bsm")


# --------------------------------------------------------------------------- #
# Figure 6 + Figure 10: energy
# --------------------------------------------------------------------------- #
def _fig6_builder(model: str, domain: str = "total") -> ExperimentResult:
    impls = FIG5_IMPLS[model]
    series: Dict[str, Dict[int, float]] = {impl: {} for impl in impls}
    for T in sweep("energy"):
        for impl in impls:
            secs, ws = _measure_impl(impl, T)
            breakdown = DEFAULT_ENERGY_MODEL.energy_from_model(
                MODEL_KEY[impl], T, ws, secs
            )
            value = {
                "total": breakdown.total_joules,
                "pkg": breakdown.pkg_joules,
                "ram": breakdown.ram_joules,
            }[domain]
            series[impl][T] = value
    fft = impls[0]
    rows = []
    for T in sweep("energy"):
        base = min(series[impl][T] for impl in impls[1:])
        rows.append([T, 100.0 * (1.0 - series[fft][T] / base)])
    extra = [
        (
            "energy saved by the fft solver vs best baseline (%)",
            ["T", "saving %"],
            rows,
        )
    ]
    return ExperimentResult(
        experiment_id=f"fig6-{model}-{domain}",
        title=f"Figure {'6' if domain == 'total' else '10'} ({model.upper()}): "
        f"{domain} energy (J, modeled)",
        series=series,
        extra_tables=extra,
        notes=[
            "RAPL-substitute model: static power x measured runtime + "
            "dynamic energy x counted work + DRAM energy x modeled traffic."
        ],
    )


@register("fig6-bopm", "Fig 6(a): BOPM total energy", "paper Fig 6a")
def fig6_bopm() -> ExperimentResult:
    return _fig6_builder("bopm", "total")


@register("fig6-topm", "Fig 6(b): TOPM total energy", "paper Fig 6b")
def fig6_topm() -> ExperimentResult:
    return _fig6_builder("topm", "total")


@register("fig6-bsm", "Fig 6(c): BSM total energy", "paper Fig 6c")
def fig6_bsm() -> ExperimentResult:
    return _fig6_builder("bsm", "total")


@register("fig10-bopm", "Fig 10: BOPM energy by domain (pkg)", "paper Fig 10a")
def fig10_bopm_pkg() -> ExperimentResult:
    return _fig6_builder("bopm", "pkg")


@register("fig10-bopm-ram", "Fig 10: BOPM energy by domain (RAM)", "paper Fig 10a")
def fig10_bopm_ram() -> ExperimentResult:
    return _fig6_builder("bopm", "ram")


# --------------------------------------------------------------------------- #
# Figure 7: cache misses (trace-driven simulation)
# --------------------------------------------------------------------------- #
def _tree_boundary(model: str, T: int) -> np.ndarray:
    if model == "bopm":
        return price_binomial(SPEC, T, return_boundary=True).boundary
    if model == "topm":
        return price_trinomial(SPEC, T, return_boundary=True).boundary
    raise ValidationError(f"no tree boundary for {model!r}")


def _trace_for(impl: str, T: int):
    if impl == "fft-bopm":
        return tracemod.trace_fft_tree(T, _tree_boundary("bopm", T), q=1)
    if impl == "fft-topm":
        return tracemod.trace_fft_tree(T, _tree_boundary("topm", T), q=2)
    if impl == "fft-bsm":
        b = price_bsm_fd(PUT_SPEC, T, return_boundary=True).boundary
        return tracemod.trace_fft_bsm(T, b)
    if impl == "ql-bopm":
        return tracemod.trace_ql_bopm(T)
    if impl == "zb-bopm":
        return tracemod.trace_zb_bopm(T)
    if impl == "vanilla-bopm":
        return tracemod.trace_loop_bopm(T)
    if impl == "tiled-bopm":
        return tracemod.trace_tiled_bopm(T)
    if impl == "oblivious-bopm":
        return tracemod.trace_oblivious_bopm(T)
    if impl == "vanilla-topm":
        return tracemod.trace_loop_trinomial(T)
    if impl == "vanilla-bsm":
        return tracemod.trace_loop_bsm(T)
    raise ValidationError(f"no trace generator for {impl!r}")


#: Scaled-down geometry for the trace sweeps.  The paper's PAPI curves turn
#: over where the Θ(T) working set crosses each cache's capacity (32 KB / 1 MB
#: on Skylake, i.e. T ≈ 2^12 / 2^17) — far beyond per-access simulation
#: budgets.  Dividing both capacities by 16/64 moves the *same* capacity
#: regimes into the traceable range (T ≈ 2^8 / 2^10) while keeping the
#: line size and associativity structure; pass ``scaled=False`` for the
#: true Skylake geometry.
SCALED_L1 = CacheConfig(size_bytes=2 * 1024, line_bytes=64, ways=8, name="L1/16")
SCALED_L2 = CacheConfig(size_bytes=16 * 1024, line_bytes=64, ways=16, name="L2/64")


def simulate_cache(impl: str, T: int, *, scaled: bool = True) -> Tuple[int, int]:
    """(L1 misses, L2 misses) of one implementation at one step count."""
    if scaled:
        hier = CacheHierarchy(SCALED_L1, SCALED_L2)
    else:
        hier = CacheHierarchy(SKYLAKE_L1, SKYLAKE_L2)
    for chunk in _trace_for(impl, T):
        hier.access_elements(chunk)
    c = hier.counters()
    return c.l1_misses, c.l2_misses


def _fig7_builder(model: str, *, scaled: bool = True) -> ExperimentResult:
    impls = FIG5_IMPLS[model]
    series: Dict[str, Dict[int, float]] = {}
    for impl in impls:
        series[f"{impl} L1"] = {}
        series[f"{impl} L2"] = {}
    for T in sweep("cache"):
        for impl in impls:
            l1, l2 = simulate_cache(impl, T, scaled=scaled)
            series[f"{impl} L1"][T] = float(l1)
            series[f"{impl} L2"][T] = float(l2)
    geom = "1/16-scale Skylake" if scaled else "Skylake"
    return ExperimentResult(
        experiment_id=f"fig7-{model}",
        title=f"Figure 7 ({model.upper()}): simulated L1/L2 cache misses "
        f"({geom} geometry)",
        series=series,
        notes=[
            "set-associative LRU simulation driven by exact per-algorithm "
            "access traces (paper: PAPI on hardware).  Capacities are scaled "
            "down with T so the same working-set/capacity regimes appear at "
            "traceable step counts; repro.cachesim.model extends the curves "
            "to full scale analytically."
        ],
    )


@register("fig7-bopm", "Fig 7(a,d): BOPM cache misses", "paper Fig 7a/7d")
def fig7_bopm() -> ExperimentResult:
    return _fig7_builder("bopm")


@register("fig7-topm", "Fig 7(b,e): TOPM cache misses", "paper Fig 7b/7e")
def fig7_topm() -> ExperimentResult:
    return _fig7_builder("topm")


@register("fig7-bsm", "Fig 7(c,f): BSM cache misses", "paper Fig 7c/7f")
def fig7_bsm() -> ExperimentResult:
    return _fig7_builder("bsm")


# --------------------------------------------------------------------------- #
# Table 5: strong scaling at fixed T, and Proposition 1.1
# --------------------------------------------------------------------------- #
@register("table5", "Table 5: runtime (ms) vs p at fixed T", "paper Table 5")
def table5() -> ExperimentResult:
    (T,) = sweep("scaling")
    series: Dict[str, Dict[int, float]] = {}
    par_rows = []
    for impl in ("fft-bopm", "ql-bopm"):
        secs, ws = _measure_impl(impl, T)
        model = RuntimeModel.from_measurement(ws, secs)
        series[f"{impl} (ms, modeled)"] = {
            p: 1e3 * model.predict_seconds(ws, p) for p in PROCESSOR_GRID
        }
        par_rows.append([impl, ws.parallelism])
    return ExperimentResult(
        experiment_id="table5",
        title=f"Table 5: modeled parallel runtime at T = {T}",
        series=series,
        x_name="p",
        extra_tables=[
            ("instrumented parallelism", ["implementation", "T1/Tinf"], par_rows)
        ],
        notes=[
            "fft-bopm's tiny span-bound parallelism (Theta(log^2 T), §5.4) "
            "caps its scaling almost immediately, while ql-bopm scales ~p; "
            "the paper's measured Table 5 shows the same structure "
            "(fft flat at ~30 ms, ql dropping 26552 -> 1191 ms).",
        ],
    )


@register(
    "prop1.1",
    "Proposition 1.1: modeled T_p ratio new/old for all p",
    "paper Prop 1.1",
)
def prop11() -> ExperimentResult:
    series: Dict[str, Dict[int, float]] = {}
    Ts = sweep("workspan")
    for p in (1, 8, 48, 1024):
        series[f"T_p(fft)/T_p(zb) p={p}"] = {}
    for T in Ts:
        ws_new = RUNNERS["fft-bopm"](T).workspan
        ws_old = RUNNERS["zb-bopm"](T).workspan
        for p in (1, 8, 48, 1024):
            series[f"T_p(fft)/T_p(zb) p={p}"][T] = ws_new.brent_time(
                p
            ) / ws_old.brent_time(p)
    return ExperimentResult(
        experiment_id="prop1.1",
        title="Proposition 1.1: T_p(new)/T_p(old) -> 0 as T grows, for every p",
        series=series,
        notes=["ratios computed from instrumented work/span under Brent's bound"],
    )


# --------------------------------------------------------------------------- #
# Table 2: work/span counters and fitted exponents
# --------------------------------------------------------------------------- #
@register("table2", "Table 2: work/span scaling of the four families", "paper Table 2")
def table2() -> ExperimentResult:
    impls = ("vanilla-bopm", "tiled-bopm", "oblivious-bopm", "fft-bopm")
    Ts = sweep("workspan")
    series: Dict[str, Dict[int, float]] = {}
    for impl in impls:
        series[f"{impl} work"] = {}
        series[f"{impl} span"] = {}
    for T in Ts:
        for impl in impls:
            if impl == "oblivious-bopm" and T > 4096:
                continue  # pure-python per-cell baseline: keep runtimes sane
            ws = RUNNERS[impl](T).workspan
            series[f"{impl} work"][T] = ws.work
            series[f"{impl} span"][T] = ws.span
    rows = []
    for impl in impls:
        data = series[f"{impl} work"]
        xs = sorted(data)
        exp, _ = fit_power_law(xs, [data[x] for x in xs])
        rows.append([impl, exp])
    extra = [
        (
            "fitted work exponents (paper: Theta(T^2) for all baselines, "
            "Theta(T log^2 T) => exponent ~1.1-1.3 at these T for fft)",
            ["implementation", "work ~ T^a: fitted a"],
            rows,
        )
    ]
    return ExperimentResult(
        experiment_id="table2",
        title="Table 2: instrumented work/span (flop-equivalents)",
        series=series,
        extra_tables=extra,
    )


# --------------------------------------------------------------------------- #
# Correctness agreement (implicit in the paper; explicit here)
# --------------------------------------------------------------------------- #
@register("agreement", "fft vs vanilla price agreement", "correctness")
def agreement() -> ExperimentResult:
    series: Dict[str, Dict[int, float]] = {
        "bopm |fft-loop|": {},
        "topm |fft-loop|": {},
        "bsm |fft-loop|": {},
    }
    for T in sweep("agreement"):
        series["bopm |fft-loop|"][T] = abs(
            _run_fft_bopm(T).price - price_binomial(SPEC, T).price
        )
        series["topm |fft-loop|"][T] = abs(
            _run_fft_topm(T).price - price_trinomial(SPEC, T).price
        )
        series["bsm |fft-loop|"][T] = abs(
            _run_fft_bsm(T).price - price_bsm_fd(PUT_SPEC, T).price
        )
    return ExperimentResult(
        experiment_id="agreement",
        title="absolute price difference, fft vs vanilla (paper params)",
        series=series,
        notes=["differences are pure floating-point noise (<< option tick size)"],
    )
