"""Default step-count sweeps for the benchmark harness.

The paper sweeps ``T`` over powers of two up to 2^19 (runtime/energy) on a
48-core node; our defaults are laptop-scale and environment-tunable:

* ``REPRO_BENCH_FAST=1`` — tiny sweeps for CI / the test suite;
* ``REPRO_BENCH_SCALE=<int>`` — shift every sweep's maximum exponent up
  (e.g. ``2`` turns 2^14 into 2^16) to approach paper scale when you have
  the minutes to spend.
"""

from __future__ import annotations

import os
from typing import List

from repro.util.validation import ValidationError

_DEFAULT_MAX_EXP = {
    "runtime": 14,
    "energy": 14,
    "cache": 11,
    "scaling": 14,
    "workspan": 13,
    "agreement": 12,
}
_DEFAULT_MIN_EXP = {
    "runtime": 8,
    "energy": 8,
    "cache": 7,
    "scaling": 14,
    "workspan": 8,
    "agreement": 6,
}
_FAST_MAX_EXP = {
    "runtime": 10,
    "energy": 10,
    "cache": 8,
    "scaling": 10,
    "workspan": 10,
    "agreement": 8,
}


def _env_scale() -> int:
    raw = os.environ.get("REPRO_BENCH_SCALE", "0")
    try:
        return int(raw)
    except ValueError:
        raise ValidationError(f"REPRO_BENCH_SCALE must be an integer, got {raw!r}")


def is_fast_mode() -> bool:
    return os.environ.get("REPRO_BENCH_FAST", "") not in ("", "0")


def sweep(kind: str) -> List[int]:
    """Powers-of-two step counts for an experiment ``kind``."""
    if kind not in _DEFAULT_MAX_EXP:
        raise ValidationError(
            f"unknown sweep kind {kind!r}; choose from {sorted(_DEFAULT_MAX_EXP)}"
        )
    if is_fast_mode():
        hi = _FAST_MAX_EXP[kind]
        lo = min(_DEFAULT_MIN_EXP[kind], hi - 2)
    else:
        hi = _DEFAULT_MAX_EXP[kind] + _env_scale()
        lo = _DEFAULT_MIN_EXP[kind] + (0 if kind == "scaling" else 0)
        lo = min(lo, hi)
    if kind == "scaling":
        return [2 ** min(hi, 15 + _env_scale())]  # Table 5 uses a single T
    return [2**e for e in range(lo, hi + 1)]


PROCESSOR_GRID = (1, 2, 4, 8, 16, 32, 48)  # paper Table 5 columns
