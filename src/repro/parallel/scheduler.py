"""Greedy (list) scheduler simulation over task DAGs.

This is the execution substrate standing in for the paper's 48-core OpenMP
runtime.  Two levels of fidelity are provided:

* :func:`simulate_brent` — the closed-form greedy-scheduler bound
  ``T_p = T1/p + T_inf`` used directly by the paper's Table 2 analysis.
* :class:`GreedyScheduler` — an event-driven list-scheduling simulator over an
  explicit task DAG, which realises an actual greedy schedule and therefore
  always lands inside Brent's window ``[max(T1/p, T_inf), T1/p + T_inf]``.
  The property-based tests exercise this invariant; the figure builders use
  it to model the trapezoid-decomposition DAG of the FFT solvers.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence

from repro.parallel.workspan import WorkSpan
from repro.util.validation import ValidationError, check_integer


def simulate_brent(workspan: WorkSpan, p: int) -> float:
    """Greedy-scheduler running time ``T1/p + T_inf`` (flop-equivalents)."""
    p = check_integer("p", p, minimum=1)
    return workspan.brent_time(p)


@dataclass(frozen=True)
class Task:
    """A unit of sequential work in a task DAG.

    ``deps`` are the ids of tasks that must complete before this one starts
    (the 'solved one after the other' edges of the trapezoid decomposition).
    """

    id: str
    cost: float
    deps: tuple[str, ...] = ()


@dataclass
class TaskGraph:
    """A DAG of :class:`Task` objects with validation and aggregate metrics."""

    tasks: Dict[str, Task] = field(default_factory=dict)

    def add(self, id: str, cost: float, deps: Iterable[str] = ()) -> Task:
        """Add a task; dependencies must already exist (forces acyclicity)."""
        if id in self.tasks:
            raise ValidationError(f"duplicate task id {id!r}")
        if cost < 0:
            raise ValidationError(f"task cost must be >= 0, got {cost}")
        deps = tuple(deps)
        for d in deps:
            if d not in self.tasks:
                raise ValidationError(
                    f"task {id!r} depends on unknown task {d!r} "
                    "(add dependencies first)"
                )
        task = Task(id=id, cost=float(cost), deps=deps)
        self.tasks[id] = task
        return task

    @property
    def work(self) -> float:
        """T1 — total cost."""
        return sum(t.cost for t in self.tasks.values())

    @property
    def span(self) -> float:
        """T_inf — critical-path cost (longest weighted path)."""
        memo: Dict[str, float] = {}
        # tasks were added deps-first, so insertion order is a topological order
        for tid, task in self.tasks.items():
            memo[tid] = task.cost + max((memo[d] for d in task.deps), default=0.0)
        return max(memo.values(), default=0.0)

    def workspan(self) -> WorkSpan:
        return WorkSpan(self.work, self.span)


class GreedyScheduler:
    """Event-driven list scheduling on ``p`` identical processors.

    At every scheduling point, all ready tasks are assigned to idle
    processors (FIFO among ready tasks — any greedy policy satisfies Brent's
    bound).  Returns the makespan.
    """

    def __init__(self, p: int):
        self.p = check_integer("p", p, minimum=1)

    def run(self, graph: TaskGraph) -> float:
        """Simulate the schedule; returns the makespan in cost units."""
        indeg: Dict[str, int] = {tid: len(t.deps) for tid, t in graph.tasks.items()}
        children: Dict[str, List[str]] = {tid: [] for tid in graph.tasks}
        for tid, task in graph.tasks.items():
            for d in task.deps:
                children[d].append(tid)

        # deque: wide DAGs push thousands of ready tasks and pop them FIFO;
        # list.pop(0) made that drain O(n²) across the schedule.
        ready: deque[str] = deque(tid for tid, deg in indeg.items() if deg == 0)
        running: List[tuple[float, int, str]] = []  # (finish_time, tiebreak, id)
        tiebreak = 0
        now = 0.0
        free = self.p
        completed = 0

        while ready or running:
            while ready and free > 0:
                tid = ready.popleft()
                heapq.heappush(running, (now + graph.tasks[tid].cost, tiebreak, tid))
                tiebreak += 1
                free -= 1
            if not running:
                break  # all remaining tasks blocked — impossible in a DAG
            # retire every task finishing at the next event instant
            now = running[0][0]
            while running and running[0][0] == now:
                _, _, tid = heapq.heappop(running)
                free += 1
                completed += 1
                for child in children[tid]:
                    indeg[child] -= 1
                    if indeg[child] == 0:
                        ready.append(child)

        if completed != len(graph.tasks):
            raise ValidationError("task graph contains a cycle or orphan deps")
        return now


def speedup_curve(
    workspan: WorkSpan, processors: Sequence[int]
) -> Dict[int, float]:
    """Modeled ``T_1 / T_p`` for each ``p`` under the Brent bound."""
    t1 = workspan.brent_time(1)
    return {p: t1 / workspan.brent_time(p) for p in processors}
