"""Work–span instrumentation and greedy-scheduler runtime modeling."""

from repro.parallel.workspan import (
    WorkSpan,
    fft_cost,
    fft_convolution_cost,
    rows_cost,
    stencil_cell_flops,
    FFT_FLOP_FACTOR,
)
from repro.parallel.scheduler import GreedyScheduler, Task, TaskGraph, simulate_brent
from repro.parallel.runtime_model import RuntimeModel, calibrate_flop_rate

__all__ = [
    "WorkSpan",
    "fft_cost",
    "fft_convolution_cost",
    "rows_cost",
    "stencil_cell_flops",
    "FFT_FLOP_FACTOR",
    "GreedyScheduler",
    "Task",
    "TaskGraph",
    "simulate_brent",
    "RuntimeModel",
    "calibrate_flop_rate",
]
