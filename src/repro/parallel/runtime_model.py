"""Calibrated conversion of work–span counts to modeled wall-clock seconds.

The paper reports measured seconds on a 48-core Skylake node (Table 3).  Our
substitution measures *single-core* seconds of each implementation on this
machine, calibrates an effective flop rate from (measured seconds, counted
work), and then predicts ``T_p`` for any ``p`` via the greedy-scheduler bound
the paper's own analysis uses.  Predictions carry a per-parallel-region
overhead term so tiny-span algorithms do not show impossible super-scaling.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.parallel.workspan import WorkSpan
from repro.util.validation import ValidationError, check_integer, check_positive


def calibrate_flop_rate(workspan: WorkSpan, measured_seconds: float) -> float:
    """Effective flop-equivalents per second from one measured serial run.

    Calibrated against ``brent_time(1) = work + span`` so that the model's
    p=1 prediction reproduces the measurement exactly.
    """
    check_positive("measured_seconds", measured_seconds)
    if workspan.work <= 0:
        raise ValidationError("cannot calibrate from zero counted work")
    return workspan.brent_time(1) / measured_seconds


@dataclass(frozen=True)
class RuntimeModel:
    """Predicts parallel running times from instrumented work/span.

    Parameters
    ----------
    flop_rate:
        Effective flop-equivalents per second on one core (calibrated).
    sync_overhead_s:
        Fixed per-run scheduling/synchronisation overhead added for p > 1;
        models the OpenMP fork-join cost that bounds strong scaling at small
        T (visible in the paper's Table 5, where fft-bopm *slows down* past
        p = 4).
    per_core_overhead_s:
        Overhead growing linearly with p (barrier traffic).
    """

    flop_rate: float
    sync_overhead_s: float = 5e-5
    per_core_overhead_s: float = 1e-5

    def predict_seconds(self, workspan: WorkSpan, p: int = 1) -> float:
        """Modeled ``T_p`` in seconds under a greedy scheduler."""
        p = check_integer("p", p, minimum=1)
        base = workspan.brent_time(p) / self.flop_rate
        if p == 1:
            return base
        return base + self.sync_overhead_s + self.per_core_overhead_s * p

    def predict_curve(
        self, workspan: WorkSpan, processors: Sequence[int]
    ) -> Mapping[int, float]:
        """Modeled ``T_p`` for each ``p`` (the paper's Table 5 row shape)."""
        return {p: self.predict_seconds(workspan, p) for p in processors}

    @classmethod
    def from_measurement(
        cls,
        workspan: WorkSpan,
        measured_seconds: float,
        **overheads: float,
    ) -> "RuntimeModel":
        """Build a model whose p=1 prediction reproduces the measurement."""
        return cls(calibrate_flop_rate(workspan, measured_seconds), **overheads)
