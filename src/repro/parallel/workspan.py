"""Work–span accounting (the paper's analysis model, §1 and Table 2).

The paper analyses every algorithm in the work–span model [CLRS]: ``T1``
(work) is the serial operation count, ``T_inf`` (span) the critical-path
length, and a greedy scheduler on ``p`` cores achieves
``T_p = Theta(T1/p + T_inf)`` (Brent's bound).

Our hardware substitute for the paper's 48-core node is to *instrument* every
solver with these quantities: each routine composes a :class:`WorkSpan` for
itself and its children using serial (``then``) and parallel (``beside``)
composition, mirroring the recurrences in the proofs of Theorems 2.8 / 4.4 /
A.7.  :mod:`repro.parallel.scheduler` then converts ``(T1, T_inf)`` into
modeled parallel running times.

Cost units are *flop-equivalents*: one fused multiply-add on a grid cell
counts ~2, an N-point FFT counts ``FFT_FLOP_FACTOR * N * log2(N)`` (the
standard 5 N log N real-FFT estimate), and a parallel reduction/scan of width
w contributes ``log2(w)`` to span.
"""

from __future__ import annotations

import math
from typing import NamedTuple

#: flops per point-log-point of a (real) FFT — the classical 5 N log2 N.
FFT_FLOP_FACTOR = 5.0

#: flops per cell of a (q+1)-tap stencil update: q+1 multiplies, q adds, 1 max.
def stencil_cell_flops(num_taps: int) -> float:
    return 2.0 * num_taps


class WorkSpan(NamedTuple):
    """An immutable (work, span) pair with composition operators.

    ``a.then(b)``   — run a, then b (serial): work adds, span adds.
    ``a.beside(b)`` — run a and b in parallel: work adds, span maxes.

    A named tuple rather than a frozen dataclass: solvers compose one
    instance per recursion node and per advance record, and tuple
    construction skips the ``object.__setattr__`` per field that frozen
    dataclasses pay — measurable on 100k+ compositions per batch solve.
    ``WorkSpan.ZERO`` (set below) is the shared additive identity.
    """

    work: float = 0.0
    span: float = 0.0

    def then(self, other: "WorkSpan") -> "WorkSpan":
        """Serial composition."""
        return WorkSpan(self.work + other.work, self.span + other.span)

    def beside(self, other: "WorkSpan") -> "WorkSpan":
        """Parallel composition."""
        return WorkSpan(self.work + other.work, max(self.span, other.span))

    def __add__(self, other: "WorkSpan") -> "WorkSpan":  # type: ignore[override]
        return self.then(other)

    def __or__(self, other: "WorkSpan") -> "WorkSpan":
        return self.beside(other)

    @property
    def parallelism(self) -> float:
        """``T1 / T_inf`` — the quantity §5.4 blames for the scaling plateau."""
        if self.span <= 0.0:
            return float("inf") if self.work > 0.0 else 1.0
        return self.work / self.span

    def brent_time(self, p: int) -> float:
        """Greedy-scheduler running-time bound ``T1/p + T_inf`` in flop units."""
        if p < 1:
            raise ValueError(f"p must be >= 1, got {p}")
        return self.work / p + self.span


WorkSpan.ZERO = WorkSpan(0.0, 0.0)


def fft_cost(n: int) -> WorkSpan:
    """Work/span of one length-``n`` FFT: ``5 n log n`` work, ``O(log n loglog n)`` span.

    The span matches the bound the paper quotes for the [1] subroutine.
    """
    if n <= 1:
        return WorkSpan(1.0, 1.0)
    log_n = math.log2(n)
    return WorkSpan(FFT_FLOP_FACTOR * n * log_n, log_n * max(math.log2(log_n), 1.0))


def fft_convolution_cost(n_out: int, n_in: int, n_kernel: int) -> WorkSpan:
    """Cost of an FFT-based valid-mode convolution (3 FFTs + pointwise mult)."""
    n = max(n_in + n_kernel - 1, 2)
    three_ffts = fft_cost(n)
    # three transforms run back-to-back; each is internally parallel
    total = WorkSpan(3.0 * three_ffts.work + 6.0 * n, 3.0 * three_ffts.span + 1.0)
    del n_out
    return total


def rows_cost(num_rows: int, width: float, num_taps: int) -> WorkSpan:
    """Cost of ``num_rows`` sequential vectorised stencil rows of ``width`` cells.

    Each row is a parallel-for over cells (span O(log width) including the
    boundary-locating reduction), rows are sequential — the structure of the
    paper's Figure 1 nested loop, giving span Theta(T log T) for the full
    sweep, matching Table 2's first line.
    """
    width = max(width, 1.0)
    per_row_span = math.log2(width + 2.0) + 1.0
    return WorkSpan(
        num_rows * width * stencil_cell_flops(num_taps),
        num_rows * per_row_span,
    )
