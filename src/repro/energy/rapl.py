"""RAPL-style energy model (the paper's perf/RAPL substitute, §5.2, Fig 6/10).

The paper measures package (pkg) and DRAM (RAM) energy through the RAPL MSRs
while each implementation runs.  Our substitute composes energy from the
quantities we *can* measure or count deterministically:

    ``E_pkg = P_static_pkg · t_run + e_flop · W``
    ``E_ram = P_static_ram · t_run + e_line · DRAM_lines``

where ``t_run`` is the (measured or modeled) running time, ``W`` the counted
flop-equivalent work, and ``DRAM_lines`` the simulated or modeled
last-level-cache miss count.  This reproduces the paper's observation that
the energy gap tracks the *work* gap (§5.2/§5.4): at large ``T`` the
Θ(T²)-work baselines burn ~``T²`` dynamic + static·``T²``-time joules while
the FFT solvers pay ~``T log²T`` on both axes — hence the >99% savings.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cachesim.model import dram_bytes
from repro.energy import constants as C
from repro.parallel.workspan import WorkSpan
from repro.util.validation import check_nonnegative


@dataclass(frozen=True)
class EnergyBreakdown:
    """Joules per RAPL domain (pkg + RAM = the paper's 'total')."""

    pkg_joules: float
    ram_joules: float

    @property
    def total_joules(self) -> float:
        return self.pkg_joules + self.ram_joules


@dataclass(frozen=True)
class EnergyModel:
    """Configurable RAPL-style model; defaults from :mod:`constants`.

    ``pkg_nj_per_flop`` covers core+uncore dynamic energy per counted
    flop-equivalent; the static terms integrate idle power over the runtime.
    """

    pkg_nj_per_flop: float = C.PKG_NJ_PER_FLOP
    ram_nj_per_line: float = C.RAM_NJ_PER_LINE
    pkg_static_watts: float = C.PKG_STATIC_WATTS
    ram_static_watts: float = C.RAM_STATIC_WATTS

    def energy(
        self,
        workspan: WorkSpan,
        runtime_seconds: float,
        dram_lines: float,
    ) -> EnergyBreakdown:
        """Energy for one run given counted work, runtime and DRAM traffic."""
        check_nonnegative("runtime_seconds", runtime_seconds)
        check_nonnegative("dram_lines", dram_lines)
        pkg = (
            self.pkg_static_watts * runtime_seconds
            + self.pkg_nj_per_flop * 1e-9 * workspan.work
        )
        ram = (
            self.ram_static_watts * runtime_seconds
            + self.ram_nj_per_line * 1e-9 * dram_lines
        )
        return EnergyBreakdown(pkg_joules=pkg, ram_joules=ram)

    def energy_from_model(
        self,
        impl: str,
        steps: int,
        workspan: WorkSpan,
        runtime_seconds: float,
    ) -> EnergyBreakdown:
        """Energy with DRAM traffic from the analytic cache model.

        ``impl`` must be one of :data:`repro.cachesim.model.MODELED_IMPLS`.
        """
        lines = dram_bytes(impl, steps) / C.LINE_BYTES
        return self.energy(workspan, runtime_seconds, lines)


DEFAULT_ENERGY_MODEL = EnergyModel()
