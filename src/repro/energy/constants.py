"""Energy-model constants (Skylake-class server, RAPL-domain granularity).

Values are order-of-magnitude figures from the published literature on
Skylake-SP power characteristics; the *ratios* (static vs dynamic, pkg vs
RAM) are what shape the paper's Figure 6/Figure 10 curves, and the model is
calibrated against measured runtime anyway (see :mod:`repro.energy.rapl`).

Sources for the ballparks: RAPL characterisation studies report ~0.5–2 nJ
per double-precision op end-to-end on Skylake-SP at scale, DRAM access
energy ~10–20 pJ/bit (≈ 6–13 nJ per 64-byte line), and idle/uncore package
power of tens of watts per socket.
"""

#: package-domain energy per flop-equivalent (nJ) — core + uncore dynamic
PKG_NJ_PER_FLOP = 1.2

#: DRAM energy per 64-byte line transferred (nJ)
RAM_NJ_PER_LINE = 10.0

#: static/idle package power while the job runs (W); 2 sockets in Table 3
PKG_STATIC_WATTS = 60.0

#: DRAM background power (refresh etc.) while the job runs (W)
RAM_STATIC_WATTS = 6.0

#: cache line size used by the traffic models (bytes)
LINE_BYTES = 64
