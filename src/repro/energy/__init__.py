"""RAPL-style energy modeling (perf/RAPL substitute; Fig 6 and Fig 10)."""

from repro.energy.rapl import DEFAULT_ENERGY_MODEL, EnergyBreakdown, EnergyModel
from repro.energy import constants

__all__ = ["DEFAULT_ENERGY_MODEL", "EnergyBreakdown", "EnergyModel", "constants"]
