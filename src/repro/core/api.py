"""Public pricing API: one entry point per exercise style, any model/method.

``price_american(spec, steps, model=..., method=...)`` is the library's front
door.  ``model`` selects the discretisation (paper sections): ``"binomial"``
(§2), ``"trinomial"`` (§3), ``"bsm-fd"`` (§4).  ``method`` selects the
algorithm family (paper Table 2 / Table 4 legends):

=============  ==========================================================
``fft``        the paper's O(T log²T) nonlinear-stencil solver
``loop``       vectorised nested loop (``vanilla-*``)
``loop-pure``  literal Figure-1 pseudocode (binomial only; tiny T)
``tiled``      cache-aware tiled loop (binomial only)
``oblivious``  cache-oblivious recursive trapezoid (binomial only)
``ql``         QuantLib-style engine (binomial only; ``ql-bopm``)
``zb``         Zubair-style cache-optimised sweep (binomial only; ``zb-bopm``)
=============  ==========================================================

Every call returns a :class:`PricingResult` carrying the price, the
instrumented work/span, solver statistics, and (on request) the red–green
exercise divider.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Sequence

import numpy as np

from repro.baselines.registry import BASELINES
from repro.core.backend import get_backend, register_backend
from repro.core.bermudan import (
    price_bsm_european_fft,
    price_tree_bermudan_fft,
    price_tree_european_fft,
)
from repro.core.bsm_solver import DEFAULT_BSM_BASE, solve_bsm_fft, solve_bsm_fft_batch
from repro.core.fftstencil import DEFAULT_POLICY, AdvanceEngine, AdvancePolicy
from repro.core.metrics import SolveStats
from repro.core.symmetry import solve_put_via_symmetry
from repro.core.tree_solver import DEFAULT_BASE, solve_tree_fft, solve_tree_fft_batch
from repro.lattice.binomial import price_binomial
from repro.lattice.blackscholes_fd import price_bsm_fd
from repro.lattice.trinomial import price_trinomial
from repro.options.analytic import black_scholes, no_early_exercise_call
from repro.options.contract import OptionSpec, Right, Style
from repro.options.params import BinomialParams, BSMGridParams, TrinomialParams
from repro.options.payoff import terminal_payoff
from repro.parallel.workspan import WorkSpan, rows_cost
from repro.util.validation import ValidationError, check_integer

MODELS = ("binomial", "trinomial", "bsm-fd")
TREE_METHODS = ("fft",) + tuple(BASELINES)


@dataclass
class PricingResult:
    """Uniform result envelope for every pricing path.

    Attributes
    ----------
    price:      option value at the valuation date.
    steps:      time steps ``T`` used.
    model:      ``"binomial" | "trinomial" | "bsm-fd"``.
    method:     algorithm family used (see module docstring).
    workspan:   instrumented work/span in flop-equivalents.
    stats:      solver-structure counters (FFT calls, trapezoids, …).
    boundary:   optional divider data (dense array for vanilla methods,
                sparse ``{row: index}`` for the fft methods).
    meta:       solver-specific extras.
    """

    price: float
    steps: int
    model: str
    method: str
    workspan: WorkSpan = field(default_factory=lambda: WorkSpan.ZERO)
    stats: dict = field(default_factory=dict)
    boundary: Optional[object] = None
    meta: dict = field(default_factory=dict)

    def scaled(self, factor: float) -> "PricingResult":
        """Copy with the price multiplied by ``factor`` (value homogeneity).

        The work/span passes through (immutable, scale-free), while the
        stats dict, the divider container and ``meta`` are shallow-copied:
        the quote service stores one canonical result and hands out scaled
        copies per request, so a caller mutating a served copy must never
        corrupt the cached original.
        """
        boundary = self.boundary
        if isinstance(boundary, dict):
            boundary = dict(boundary)
        elif isinstance(boundary, np.ndarray):
            boundary = boundary.copy()
        return replace(
            self, price=self.price * factor, stats=dict(self.stats),
            boundary=boundary, meta=dict(self.meta),
        )


def check_model_method(model: str, method: str) -> None:
    """Validate a ``(model, method)`` pair (raises :class:`ValidationError`).

    Public hook for front ends that build request keys before pricing
    (:mod:`repro.service.canonical`), so a malformed request fails at
    submission rather than deep inside a coalesced batch.
    """
    _check_model_method(model, method)


def _check_model_method(model: str, method: str) -> None:
    if model not in MODELS:
        raise ValidationError(f"unknown model {model!r}; choose one of {MODELS}")
    if model == "binomial":
        valid = TREE_METHODS
    else:
        valid = ("fft", "loop")
    if method not in valid:
        raise ValidationError(
            f"method {method!r} not available for model {model!r}; "
            f"choose one of {valid}"
        )


def price_american(
    spec: OptionSpec,
    steps: int,
    *,
    model: str = "binomial",
    method: str = "fft",
    base: Optional[int] = None,
    lam: Optional[float] = None,
    policy: AdvancePolicy = DEFAULT_POLICY,
    engine: Optional[AdvanceEngine] = None,
    return_boundary: bool = False,
    backend: str = "lattice",
) -> PricingResult:
    """Price an American option (see module docstring for model/method).

    Notes
    -----
    * ``model="bsm-fd"`` requires a put (paper §4); American calls on
      dividend-paying stock should use the tree models.
    * Puts under tree models with ``method="fft"`` are priced through the
      exact put–call symmetry (:mod:`repro.core.symmetry`).
    * ``base`` overrides the recursion base-case height (paper default 8 for
      trees, 10 for BSM); ``lam`` the FD parabolic ratio.
    * ``engine`` supplies a shared plan-caching
      :class:`~repro.core.fftstencil.AdvanceEngine` for the fft methods
      (see :func:`price_many`); default is a fresh engine per solve.
    * ``backend`` selects the registered
      :class:`~repro.core.backend.PricerBackend`: ``"lattice"`` (default)
      is *this* module's historical solve path — exact, bit-identical to
      every release before the registry existed — while ``"spectral"``
      answers from the Chebyshev-collocation fast pricer
      (:mod:`repro.core.spectral`) within its stated tolerance.  Every
      result records the serving backend as ``meta["backend"]``.
    * American calls on a zero-dividend underlying are never exercised
      early (Merton 1973,
      :func:`repro.options.analytic.no_early_exercise_call`), so the tree
      models answer them from the European closed form without a lattice
      solve — ``meta["closed_form"]`` marks such results.  Pass
      ``return_boundary=True`` to force the lattice (the analytic path
      has no divider to report).  The symmetric-dual fact — zero-*rate*
      puts (:func:`~repro.options.analytic.no_early_exercise_put`) — is
      deliberately **not** shortcut: finite-difference ladders bump the
      rate (Greeks rho legs, scenario ``rate_bumps``), and a ladder whose
      clamped ``r=0`` leg answered analytically while its ``r=h`` leg
      lattice-solved would divide the discretisation gap by ``h``.  The
      dividend is never a bump axis, so the call shortcut cannot mix.
    """
    return get_backend(backend).price_spec(
        spec, steps, model=model, method=method, base=base, lam=lam,
        policy=policy, engine=engine, return_boundary=return_boundary,
    )


def _lattice_price_spec(
    spec: OptionSpec,
    steps: int,
    *,
    model: str = "binomial",
    method: str = "fft",
    base: Optional[int] = None,
    lam: Optional[float] = None,
    policy: AdvancePolicy = DEFAULT_POLICY,
    engine: Optional[AdvanceEngine] = None,
    return_boundary: bool = False,
) -> PricingResult:
    """The lattice backend's single-contract solve — the historical body
    of :func:`price_american`, byte-for-byte."""
    steps = check_integer("steps", steps, minimum=1)
    _check_model_method(model, method)
    spec = spec.with_style(Style.AMERICAN)

    if (
        model in ("binomial", "trinomial")
        and not return_boundary
        and no_early_exercise_call(spec)
    ):
        # zero-dividend American call == European call == the closed form;
        # the whole O(T log²T) (or Θ(T²)) solve would only rediscover it
        return PricingResult(
            black_scholes(spec).price, steps, model, method,
            meta={"closed_form": "black-scholes", "no_early_exercise": True},
        )

    if model == "bsm-fd":
        if method == "fft":
            params = BSMGridParams.from_spec(spec, steps, lam=lam)
            r = solve_bsm_fft(
                params,
                base=DEFAULT_BSM_BASE if base is None else base,
                policy=policy,
                engine=engine,
                record_boundary=return_boundary,
            )
            return PricingResult(
                r.price, steps, model, method, r.workspan, r.stats.as_dict(),
                r.boundary.points if r.boundary else None, r.meta,
            )
        r = price_bsm_fd(spec, steps, lam=lam, return_boundary=return_boundary)
        return PricingResult(
            r.price, steps, model, method, r.workspan,
            {"cells_evaluated": r.cells}, r.boundary, r.meta,
        )

    # tree models
    if method == "fft":
        if spec.right is Right.PUT:
            r = solve_put_via_symmetry(
                spec, steps, model=model,
                base=DEFAULT_BASE if base is None else base,
                policy=policy, engine=engine,
                record_boundary=return_boundary,
            )
        else:
            params = (
                BinomialParams.from_spec(spec, steps)
                if model == "binomial"
                else TrinomialParams.from_spec(spec, steps)
            )
            r = solve_tree_fft(
                params,
                base=DEFAULT_BASE if base is None else base,
                policy=policy,
                engine=engine,
                record_boundary=return_boundary,
            )
        return PricingResult(
            r.price, steps, model, method, r.workspan, r.stats.as_dict(),
            r.boundary.points if r.boundary else None, r.meta,
        )

    if model == "trinomial":
        r = price_trinomial(spec, steps, return_boundary=return_boundary)
        return PricingResult(
            r.price, steps, model, method, r.workspan,
            {"cells_evaluated": r.cells}, r.boundary, r.meta,
        )

    # binomial baselines; only 'loop' supports puts and boundary extraction
    if method == "loop":
        r = price_binomial(spec, steps, return_boundary=return_boundary)
        return PricingResult(
            r.price, steps, model, method, r.workspan,
            {"cells_evaluated": r.cells}, r.boundary, r.meta,
        )
    if spec.right is Right.PUT:
        raise ValidationError(
            f"baseline {method!r} implements the paper's American-call "
            "benchmark; use method='loop' or 'fft' for puts"
        )
    if return_boundary:
        raise ValidationError(
            f"baseline {method!r} does not track the exercise divider; "
            "use method='loop' or 'fft'"
        )
    r = BASELINES[method](spec, steps)
    return PricingResult(
        r.price, steps, model, method, r.workspan,
        {"cells_evaluated": r.cells}, None, r.meta,
    )


def price_european(
    spec: OptionSpec,
    steps: int,
    *,
    model: str = "binomial",
    method: str = "fft",
    lam: Optional[float] = None,
    policy: AdvancePolicy = DEFAULT_POLICY,
    engine: Optional[AdvanceEngine] = None,
) -> PricingResult:
    """European pricing: ``fft`` = one O(T log T) jump; ``loop`` = sweep."""
    steps = check_integer("steps", steps, minimum=1)
    _check_model_method(model, method)
    if method not in ("fft", "loop"):
        raise ValidationError("European pricing supports methods 'fft' and 'loop'")
    spec = spec.with_style(Style.EUROPEAN)

    if model == "bsm-fd":
        if method == "fft":
            params = BSMGridParams.from_spec(spec, steps, lam=lam)
            r = price_bsm_european_fft(params, policy=policy, engine=engine)
            return PricingResult(
                r.price, steps, model, method, r.workspan, r.stats.as_dict(), None, r.meta
            )
        lr = price_bsm_fd(spec, steps, lam=lam)
        return PricingResult(
            lr.price, steps, model, method, lr.workspan,
            {"cells_evaluated": lr.cells}, None, lr.meta,
        )

    if method == "fft":
        params = (
            BinomialParams.from_spec(spec, steps)
            if model == "binomial"
            else TrinomialParams.from_spec(spec, steps)
        )
        r = price_tree_european_fft(params, policy=policy, engine=engine)
        return PricingResult(
            r.price, steps, model, method, r.workspan, r.stats.as_dict(), None, r.meta
        )
    lr = (
        price_binomial(spec, steps)
        if model == "binomial"
        else price_trinomial(spec, steps)
    )
    return PricingResult(
        lr.price, steps, model, method, lr.workspan,
        {"cells_evaluated": lr.cells}, None, lr.meta,
    )


def price_bermudan(
    spec: OptionSpec,
    steps: int,
    exercise_steps: Sequence[int],
    *,
    model: str = "binomial",
    method: str = "fft",
    policy: AdvancePolicy = DEFAULT_POLICY,
    engine: Optional[AdvanceEngine] = None,
) -> PricingResult:
    """Bermudan pricing: ``fft`` = O((k+1) T log T) jump chain; ``loop`` sweep."""
    steps = check_integer("steps", steps, minimum=1)
    if model == "bsm-fd":
        raise ValidationError("Bermudan exercise is not defined for the FD model")
    _check_model_method(model, method)
    if method not in ("fft", "loop"):
        raise ValidationError("Bermudan pricing supports methods 'fft' and 'loop'")
    spec = spec.with_style(Style.BERMUDAN)

    if method == "fft":
        params = (
            BinomialParams.from_spec(spec, steps)
            if model == "binomial"
            else TrinomialParams.from_spec(spec, steps)
        )
        r = price_tree_bermudan_fft(
            params, exercise_steps, policy=policy, engine=engine
        )
        return PricingResult(
            r.price, steps, model, method, r.workspan, r.stats.as_dict(), None, r.meta
        )
    lr = (
        price_binomial(spec, steps, exercise_steps=exercise_steps)
        if model == "binomial"
        else price_trinomial(spec, steps, exercise_steps=exercise_steps)
    )
    return PricingResult(
        lr.price, steps, model, method, lr.workspan,
        {"cells_evaluated": lr.cells}, None, lr.meta,
    )


def _batch_european_tree_fft(
    specs: Sequence[OptionSpec],
    steps: int,
    model: str,
    engine: AdvanceEngine,
) -> list[PricingResult]:
    """Batched European tree pricing: one multi-kernel jump for the batch.

    Every spec's expiry row is advanced ``steps`` rows to the root by its
    *own* lattice kernel in a single
    :meth:`~repro.core.fftstencil.AdvanceEngine.advance_batch` call — a
    scenario grid that varies volatility/rate per cell batches exactly as
    well as a strike strip on one underlying (which used to be the only
    batched case, via the same-kernel ``advance_many`` path).  Per-row
    records keep each contract's method/spectrum accounting truthful.
    """
    cls = BinomialParams if model == "binomial" else TrinomialParams
    params_list = [
        cls.from_spec(s.with_style(Style.EUROPEAN), steps) for s in specs
    ]
    if not params_list:
        return []
    q = len(params_list[0].taps) - 1
    j = np.arange(q * steps + 1, dtype=np.float64)
    xs = [
        terminal_payoff(p.spec, p.asset_price(steps, j)) for p in params_list
    ]
    ys, rec = engine.advance_batch(
        xs,
        [(p.taps, steps) for p in params_list],
        scales=[p.spec.strike for p in params_list],
    )
    row_ws = rows_cost(1, q * steps + 1, 1)
    results: list[PricingResult] = []
    for r, p in enumerate(params_list):
        row = rec.rows[r]  # type: ignore[index]
        stats = SolveStats()
        stats.cells_evaluated += q * steps + 1
        stats.note_advance(row.method, row.input_len, row.spectrum_hit)
        results.append(
            PricingResult(
                price=float(ys[r][0]),
                steps=steps,
                model=model,
                method="fft",
                workspan=row_ws.then(row.workspan),
                stats=stats.as_dict(),
                boundary=None,
                meta={
                    "style": "european",
                    "batched": True,
                    "batch_size": len(specs),
                    "params": p,
                },
            )
        )
    return results


def _batch_european_bsm_fft(
    specs: Sequence[OptionSpec],
    steps: int,
    lam: Optional[float],
    engine: AdvanceEngine,
) -> list[PricingResult]:
    """Batched European FD-grid puts: one multi-kernel cone jump.

    Mirrors :func:`repro.core.bermudan.price_bsm_european_fft` per row
    (same payoff row, same single ``steps``-row jump, same apex scaling),
    with all rows advanced by one ``advance_batch`` call.
    """
    params_list = [
        BSMGridParams.from_spec(s.with_style(Style.EUROPEAN), steps, lam=lam)
        for s in specs
    ]
    if not params_list:
        return []
    k = np.arange(-steps, steps + 1)
    xs = [np.maximum(p.payoff(k), 0.0) for p in params_list]
    ys, rec = engine.advance_batch(
        xs, [(p.taps, steps) for p in params_list], scales=1.0
    )
    row_ws = rows_cost(1, 2 * steps + 1, 1)
    results: list[PricingResult] = []
    for r, p in enumerate(params_list):
        row = rec.rows[r]  # type: ignore[index]
        stats = SolveStats()
        stats.note_advance(row.method, row.input_len, row.spectrum_hit)
        results.append(
            PricingResult(
                price=float(p.spec.strike * ys[r][0]),
                steps=steps,
                model="bsm-fd",
                method="fft",
                workspan=row_ws.then(row.workspan),
                stats=stats.as_dict(),
                boundary=None,
                meta={
                    "style": "european",
                    "batched": True,
                    "batch_size": len(specs),
                    "params": p,
                },
            )
        )
    return results


def _wrap_tree_batch(
    r, spec: OptionSpec, steps: int, model: str, dualized: bool
) -> PricingResult:
    """Envelope one lockstep tree solve exactly as price_american would."""
    if dualized:
        r.meta["symmetric_dual_of"] = spec
        r.meta["note"] = (
            "priced as the dual American call C(K, S, Y, R); "
            "exact on CRR lattices"
        )
    return PricingResult(
        r.price, steps, model, "fft", r.workspan, r.stats.as_dict(),
        r.boundary.points if r.boundary else None, r.meta,
    )


def solve_batch(
    specs: Sequence[OptionSpec],
    steps: int,
    *,
    model: str = "binomial",
    method: str = "fft",
    base: Optional[int] = None,
    lam: Optional[float] = None,
    policy: AdvancePolicy = DEFAULT_POLICY,
    engine: Optional[AdvanceEngine] = None,
    backend: str = "lattice",
) -> list[PricingResult]:
    """Price a batch of contracts in lockstep; results in input order.

    The batch core behind :func:`price_many` (and, through it, scenario
    grids, Greek bump ladders and coalesced service buckets): contracts
    sharing a *step schedule* — the same exercise structure over the same
    ``steps``, not the same spec — march together, each on its **own**
    kernel, through :meth:`~repro.core.fftstencil.AdvanceEngine.advance_batch`:

    * **European tree/FD contracts** share one multi-kernel jump from the
      expiry row to the root (one batched rFFT pair for the whole group);
    * **American tree contracts** run their trapezoid recursions in
      lockstep (:func:`~repro.core.tree_solver.solve_tree_fft_batch`); puts
      join the same batch as their McDonald–Schroder dual calls, exactly as
      :func:`price_american` prices them serially;
    * **American FD puts** run their cone recursions in lockstep
      (:func:`~repro.core.bsm_solver.solve_bsm_fft_batch`);
    * zero-dividend American calls keep the closed-form shortcut and skip
      the lattice entirely.

    Every result is bit-identical to the corresponding per-contract
    :func:`price_american` / :func:`price_european` call (batched rows
    transform exactly as their standalone advances).  Non-``fft`` methods
    have no batched kernel to share and fall back to the per-contract loop.
    Bermudan contracts need explicit dates — use :func:`price_bermudan`.

    ``backend`` routes the whole batch to another registered
    :class:`~repro.core.backend.PricerBackend` (``"spectral"`` loops the
    fast pricer over the batch, amortising its plan cache); the default
    ``"lattice"`` is this module's historical lockstep path, bit-identical.
    """
    return get_backend(backend).price_batch(
        specs, steps, model=model, method=method, base=base, lam=lam,
        policy=policy, engine=engine,
    )


def _lattice_price_batch(
    specs: Sequence[OptionSpec],
    steps: int,
    *,
    model: str = "binomial",
    method: str = "fft",
    base: Optional[int] = None,
    lam: Optional[float] = None,
    policy: AdvancePolicy = DEFAULT_POLICY,
    engine: Optional[AdvanceEngine] = None,
) -> list[PricingResult]:
    """The lattice backend's lockstep batch — the historical body of
    :func:`solve_batch`, byte-for-byte."""
    steps = check_integer("steps", steps, minimum=1)
    _check_model_method(model, method)
    for spec in specs:
        if spec.style is Style.BERMUDAN:
            raise ValidationError(
                "solve_batch handles American and European styles; Bermudan "
                "contracts need exercise dates — call price_bermudan directly"
            )
    if engine is None:
        engine = AdvanceEngine(policy)
    results: list[Optional[PricingResult]] = [None] * len(specs)
    if method != "fft":
        for i, spec in enumerate(specs):
            if spec.style is Style.EUROPEAN:
                results[i] = price_european(
                    spec, steps, model=model, method=method, lam=lam,
                    policy=policy, engine=engine,
                )
            else:
                # through the module-global front door (not the private
                # lattice body): callers monkeypatch price_american to
                # count per-contract solves, and the indirection costs one
                # registry lookup on a path that is per-contract anyway
                results[i] = price_american(
                    spec, steps, model=model, method=method, base=base,
                    lam=lam, policy=policy, engine=engine,
                )
        return results  # type: ignore[return-value]

    euro_idx = [i for i, s in enumerate(specs) if s.style is Style.EUROPEAN]
    amer_idx = [i for i, s in enumerate(specs) if s.style is not Style.EUROPEAN]

    if model in ("binomial", "trinomial"):
        if euro_idx:
            for i, r in zip(
                euro_idx,
                _batch_european_tree_fft(
                    [specs[i] for i in euro_idx], steps, model, engine
                ),
            ):
                results[i] = r
        lattice_idx: list[int] = []
        params_list: list = []
        dualized: list[bool] = []
        cls = BinomialParams if model == "binomial" else TrinomialParams
        for i in amer_idx:
            spec = specs[i].with_style(Style.AMERICAN)
            if no_early_exercise_call(spec):
                # the closed form needs no lattice — answer it directly,
                # via the patchable module-global front door (see above)
                results[i] = price_american(
                    spec, steps, model=model, method=method, base=base,
                    lam=lam, policy=policy, engine=engine,
                )
                continue
            dual = spec.right is Right.PUT
            params_list.append(
                cls.from_spec(spec.symmetric_dual() if dual else spec, steps)
            )
            dualized.append(dual)
            lattice_idx.append(i)
        if lattice_idx:
            tree_results = solve_tree_fft_batch(
                params_list,
                base=DEFAULT_BASE if base is None else base,
                policy=policy,
                engine=engine,
            )
            for i, r, dual in zip(lattice_idx, tree_results, dualized):
                results[i] = _wrap_tree_batch(r, specs[i], steps, model, dual)
        return results  # type: ignore[return-value]

    # bsm-fd: the FD grid prices puts (from_spec validates per contract)
    if euro_idx:
        for i, r in zip(
            euro_idx,
            _batch_european_bsm_fft(
                [specs[i] for i in euro_idx], steps, lam, engine
            ),
        ):
            results[i] = r
    if amer_idx:
        bsm_params = [
            BSMGridParams.from_spec(
                specs[i].with_style(Style.AMERICAN), steps, lam=lam
            )
            for i in amer_idx
        ]
        bsm_results = solve_bsm_fft_batch(
            bsm_params,
            base=DEFAULT_BSM_BASE if base is None else base,
            policy=policy,
            engine=engine,
        )
        for i, r in zip(amer_idx, bsm_results):
            results[i] = PricingResult(
                r.price, steps, "bsm-fd", "fft", r.workspan,
                r.stats.as_dict(),
                r.boundary.points if r.boundary else None, r.meta,
            )
    return results  # type: ignore[return-value]


def price_many(
    specs: Sequence[OptionSpec],
    steps: int,
    *,
    model: str = "binomial",
    method: str = "fft",
    base: Optional[int] = None,
    lam: Optional[float] = None,
    policy: AdvancePolicy = DEFAULT_POLICY,
    engine: Optional[AdvanceEngine] = None,
    workers: Optional[int] = None,
    backend: str = "process",
    pricer: Optional[str] = None,
) -> list[PricingResult]:
    """Price a portfolio of contracts, amortising FFT plans across solves.

    Each spec is priced per its own ``style`` (American or European;
    Bermudan contracts need explicit dates — use :func:`price_bermudan`).
    All solves share one plan-caching
    :class:`~repro.core.fftstencil.AdvanceEngine`, and with
    ``method="fft"`` the whole portfolio routes through
    :func:`solve_batch`: contracts are grouped by *step schedule* (style),
    not by identical spec, and each group marches in lockstep through
    multi-kernel :meth:`~repro.core.fftstencil.AdvanceEngine.advance_batch`
    transforms — a scenario grid, an implied-vol ladder or a Greek bump
    grid whose cells all differ in vol/rate batches exactly as well as a
    strike strip on one underlying.  Bit-identical repeated contracts are
    solved once and the result fanned out in input order (duplicates carry
    ``meta["deduplicated_of"]``).

    ``workers`` > 1 delegates the batch fan-out to a
    :class:`~repro.risk.engine.ScenarioEngine` over the given ``backend``
    (``"process"`` | ``"thread"`` | ``"serial"``): the portfolio is chunked
    across a real worker pool, each worker amortising its own plan-caching
    engine.  Incompatible with a shared ``engine`` (each worker owns one).

    ``pricer`` names a registered :class:`~repro.core.backend.PricerBackend`
    for the whole portfolio (``None`` keeps the exact ``"lattice"`` path,
    bit-identical to before the backend registry existed).  Note the
    distinction: ``backend`` here picks the *worker pool kind*, ``pricer``
    picks the *numerical method*.

    Returns results in input order.
    """
    steps = check_integer("steps", steps, minimum=1)
    _check_model_method(model, method)
    # Imported lazily: repro.risk.engine imports this module.
    from repro.risk.engine import BACKENDS

    if backend not in BACKENDS:
        raise ValidationError(
            f"unknown backend {backend!r}; choose one of {BACKENDS}"
        )
    if pricer is not None:
        get_backend(pricer)  # fail fast on unknown names
    if workers is not None:
        workers = check_integer("workers", workers, minimum=1)

    # Dedupe bit-identical requests: OptionSpec is a frozen dataclass, so
    # equality means every field matches bit-for-bit and duplicates are
    # guaranteed the same solve.  Price each distinct contract once and fan
    # the envelope out in input order (duplicates get a shallow copy marked
    # ``meta["deduplicated_of"]`` = index of the solved occurrence; price,
    # workspan and stats are the primary's).
    first_at: dict[OptionSpec, int] = {}
    unique: list[OptionSpec] = []
    first_input: list[int] = []
    inverse: list[int] = []
    for i, s in enumerate(specs):
        u = first_at.setdefault(s, len(unique))
        if u == len(unique):
            unique.append(s)
            first_input.append(i)
        inverse.append(u)
    if len(unique) < len(inverse):
        primaries = price_many(
            unique, steps, model=model, method=method, base=base, lam=lam,
            policy=policy, engine=engine, workers=workers, backend=backend,
            pricer=pricer,
        )
        fanned: list[PricingResult] = []
        seen: set[int] = set()
        for u in inverse:
            if u in seen:
                # scaled(1.0) is a bit-identical copy with independent
                # stats/boundary/meta containers — mutating one sibling must
                # never corrupt another.
                dup = primaries[u].scaled(1.0)
                dup.meta["deduplicated_of"] = first_input[u]
                fanned.append(dup)
            else:
                seen.add(u)
                fanned.append(primaries[u])
        return fanned

    if workers is not None and workers > 1:
        if engine is not None:
            raise ValidationError(
                "workers fan-out gives each worker its own AdvanceEngine; "
                "a shared engine cannot cross process boundaries"
            )
        if not specs:
            return []
        from repro.risk.engine import ScenarioEngine

        scenario_engine = ScenarioEngine(
            workers=workers, backend=backend, model=model, method=method,
            base=base, lam=lam, policy=policy,
        )
        return scenario_engine.price_specs(list(specs), steps, pricer=pricer)
    if engine is None:
        engine = AdvanceEngine(policy)
    for spec in specs:
        if spec.style is Style.BERMUDAN:
            raise ValidationError(
                "price_many handles American and European styles; Bermudan "
                "contracts need exercise dates — call price_bermudan directly"
            )
    return solve_batch(
        specs, steps, model=model, method=method, base=base, lam=lam,
        policy=policy, engine=engine, backend=pricer or "lattice",
    )


@dataclass
class BoundaryCurve:
    """The early-exercise (red–green) divider in financially meaningful units.

    ``rows[i]`` is a time row, ``indices[i]`` the divider's grid position at
    that row, ``times_years[i]`` the calendar time from valuation, and
    ``prices[i]`` the asset price at the divider node — the early-exercise
    boundary the quant-finance literature plots.
    """

    rows: np.ndarray
    indices: np.ndarray
    times_years: np.ndarray
    prices: np.ndarray
    model: str
    method: str


def exercise_boundary(
    spec: OptionSpec,
    steps: int,
    *,
    model: str = "binomial",
    method: str = "loop",
) -> BoundaryCurve:
    """Compute the early-exercise boundary curve.

    ``method="loop"`` yields the divider at every row (dense); ``"fft"``
    yields the rows the fast solver resolves exactly (sparse) — a useful
    cross-check that both agree where both are defined.

    ``prices`` holds the asset price of the *first exercise-optimal node*
    adjacent to the divider — the early-exercise boundary curve of the
    quant-finance literature (from above for calls, from below for puts).
    """
    steps = check_integer("steps", steps, minimum=1)
    _check_model_method(model, method)
    if method not in ("fft", "loop"):
        raise ValidationError("exercise_boundary supports methods 'fft' and 'loop'")
    if model == "bsm-fd" and spec.right is not Right.PUT:
        raise ValidationError("the bsm-fd model prices puts")

    result = price_american(
        spec, steps, model=model, method=method, return_boundary=True
    )
    dt_years = spec.years / steps

    if model == "bsm-fd":
        params = BSMGridParams.from_spec(spec.with_style(Style.AMERICAN), steps)
        if method == "loop":
            dense = np.asarray(result.boundary)
            rows = np.arange(steps + 1)
            mask = dense > -(steps + 1)
            rows, idx = rows[mask], dense[mask]
        else:
            points = dict(result.boundary or {})
            rows = np.array(sorted(points), dtype=np.int64)
            idx = np.array([points[r] for r in rows], dtype=np.int64)
        # row n is time-to-expiry tau = n*dtau, i.e. calendar time (T-n)*dt
        times = (steps - rows) * dt_years
        prices = spec.strike * np.exp(params.s_values(idx))
        return BoundaryCurve(rows, idx, times, prices, model, method)

    params_tree = (
        BinomialParams.from_spec(spec.with_style(Style.AMERICAN), steps)
        if model == "binomial"
        else TrinomialParams.from_spec(spec.with_style(Style.AMERICAN), steps)
    )
    q = 1 if model == "binomial" else 2
    if method == "loop":
        dense = np.asarray(result.boundary)
        rows = np.arange(steps + 1)
        mask = dense >= 0
        rows, idx = rows[mask], dense[mask]
    else:
        points = dict(result.boundary or {})
        rows = np.array(sorted(points), dtype=np.int64)
        idx = np.array([points[r] for r in rows], dtype=np.int64)
        if spec.right is Right.PUT:
            # fft puts are solved on the mirrored dual call: map the dual's
            # last-red column j' back to the put's last-green column i - j' - 1
            idx = q * rows - idx - 1
        keep = (idx >= 0) & (idx <= q * rows)
        rows, idx = rows[keep], idx[keep]
    if spec.right is Right.CALL:
        # divider = last continuation column; exercise starts one to its
        # right.  Rows that are entirely red (divider at the row end) have
        # no exercise node and are dropped from the curve.
        keep = idx < q * rows
        rows, idx = rows[keep], idx[keep]
        node_cols = idx + 1
    else:
        # divider = last exercise column (loop solvers report it directly)
        node_cols = idx
    times = rows * dt_years  # tree row i is calendar time i*dt from valuation
    prices = (
        np.asarray(params_tree.asset_price(rows, node_cols), dtype=np.float64)
        if len(rows)
        else np.empty(0, dtype=np.float64)
    )
    return BoundaryCurve(rows, idx, times, prices, model, method)


class LatticeBackend:
    """The paper's solvers as a registered :class:`PricerBackend`.

    ``price_spec`` / ``price_batch`` *are* the historical bodies of
    :func:`price_american` / :func:`solve_batch` — routing through this
    backend is bit-identical to calling them before the registry existed.
    The only addition is the ``meta["backend"]`` provenance stamp.
    """

    name = "lattice"
    tolerance = 0.0
    supports_boundary = True
    supports_divider = True
    supports_batching = True

    def price_spec(
        self,
        spec: OptionSpec,
        steps: int,
        *,
        model: str = "binomial",
        method: str = "fft",
        base: Optional[int] = None,
        lam: Optional[float] = None,
        policy: Optional[AdvancePolicy] = None,
        engine: Optional[AdvanceEngine] = None,
        return_boundary: bool = False,
    ) -> PricingResult:
        result = _lattice_price_spec(
            spec, steps, model=model, method=method, base=base, lam=lam,
            policy=DEFAULT_POLICY if policy is None else policy,
            engine=engine, return_boundary=return_boundary,
        )
        result.meta.setdefault("backend", self.name)
        return result

    def price_batch(
        self,
        specs: Sequence[OptionSpec],
        steps: int,
        *,
        model: str = "binomial",
        method: str = "fft",
        base: Optional[int] = None,
        lam: Optional[float] = None,
        policy: Optional[AdvancePolicy] = None,
        engine: Optional[AdvanceEngine] = None,
    ) -> list[PricingResult]:
        results = _lattice_price_batch(
            specs, steps, model=model, method=method, base=base, lam=lam,
            policy=DEFAULT_POLICY if policy is None else policy,
            engine=engine,
        )
        for result in results:
            result.meta.setdefault("backend", self.name)
        return results


register_backend(LatticeBackend())
