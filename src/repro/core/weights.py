"""h-step stencil weights (the kernel of Ahmad et al. [1]'s FFT algorithm).

Applying a linear ``(q+1)``-tap stencil ``y_c = sum_k s_k x_{c+k}`` for ``h``
consecutive time steps composes into a *single* correlation whose kernel is
the coefficient vector of the polynomial ``(s_0 + s_1 z + ... + s_q z^q)^h``
(length ``q*h + 1``).  This module computes that kernel three ways:

* :func:`binomial_weights` — exact log-space evaluation for 2-tap stencils
  (``C(h,k) s0^(h-k) s1^k`` via lgamma), stable for any practical ``h``;
* :func:`symbol_power_weights` — FFT of the taps, pointwise ``h``-th power,
  inverse FFT.  Works for any tap count; numerically stable whenever the taps
  are nonnegative with sum <= 1 (discounted transition weights / monotone
  explicit schemes), because the symbol then has modulus <= 1 on the unit
  circle so no spectral blow-up occurs;
* :func:`convolution_power_weights` — iterated ``np.convolve`` (O(q^2 h^2)),
  the brute-force oracle used by the tests.

:func:`hstep_weights` picks the best method automatically and caches results
(the trapezoid decomposition requests the same heights repeatedly at each
recursion level).
"""

from __future__ import annotations

import math
from functools import lru_cache
from typing import Sequence

import numpy as np
from scipy import fft as sfft

from repro.util.logconv import binomial_pmf_weights
from repro.util.validation import ValidationError, check_integer

#: Tap vectors whose entries are nonnegative and sum to at most this are
#: treated as 'substochastic' — the regime where the symbol-power method is
#: provably stable.  Slightly above 1 to tolerate rounding in user inputs.
_SUBSTOCHASTIC_TOL = 1.0 + 1e-9


def _as_taps(taps: Sequence[float]) -> tuple[float, ...]:
    t = tuple(float(v) for v in taps)
    if len(t) < 2:
        raise ValidationError(f"need at least 2 taps, got {len(t)}")
    for v in t:
        if not math.isfinite(v):
            raise ValidationError(f"taps must be finite, got {taps!r}")
    return t


def binomial_weights(s0: float, s1: float, h: int) -> np.ndarray:
    """Exact 2-tap kernel ``w_k = C(h,k) s0^(h-k) s1^k``, ``k = 0..h``.

    Requires strictly positive taps (log space); zero taps degenerate to a
    shifted identity handled by the caller.
    """
    h = check_integer("h", h, minimum=0)
    if h == 0:
        return np.ones(1)
    if s0 <= 0.0 or s1 <= 0.0:
        raise ValidationError("binomial_weights requires s0, s1 > 0")
    return binomial_pmf_weights(h, math.log(s0), math.log(s1))


def symbol_power_weights(taps: Sequence[float], h: int) -> np.ndarray:
    """Kernel of ``(sum_k s_k z^k)^h`` via FFT symbol power.

    Pads the taps to a fast transform length >= ``q*h + 1``, transforms,
    raises pointwise to the ``h``-th power and inverts.  Tiny negative
    round-off values are clipped to zero when the taps are nonnegative (the
    true kernel is then a nonnegative measure).
    """
    taps = _as_taps(taps)
    h = check_integer("h", h, minimum=0)
    if h == 0:
        return np.ones(1)
    q = len(taps) - 1
    out_len = q * h + 1
    n = sfft.next_fast_len(out_len)
    spectrum = sfft.rfft(np.asarray(taps, dtype=np.float64), n=n)
    powered = spectrum**h
    w = sfft.irfft(powered, n=n)[:out_len]
    if all(v >= 0.0 for v in taps):
        np.maximum(w, 0.0, out=w)
    return w


def convolution_power_weights(taps: Sequence[float], h: int) -> np.ndarray:
    """Brute-force kernel by repeated convolution — O(q^2 h^2) test oracle."""
    taps = _as_taps(taps)
    h = check_integer("h", h, minimum=0)
    w = np.ones(1)
    base = np.asarray(taps, dtype=np.float64)
    for _ in range(h):
        w = np.convolve(w, base)
    return w


#: Sized for lockstep batches: a heterogeneous B-solve grid touches
#: ~B x log T *distinct* (taps, h) keys — ~12k for a 1024-cell grid at
#: T=256 — and the round-robin access pattern is LRU's worst case, so a
#: bound below the working set degrades to ~0% hits.  Entries are tiny
#: (a kernel is q*h+1 floats, ~2 KB at T=256), so hold the whole set.
@lru_cache(maxsize=32768)
def _cached_weights(taps: tuple[float, ...], h: int) -> np.ndarray:
    if len(taps) == 2 and taps[0] > 0.0 and taps[1] > 0.0:
        w = binomial_weights(taps[0], taps[1], h)
    else:
        w = symbol_power_weights(taps, h)
    w.setflags(write=False)  # cached array must not be mutated by callers
    return w


def hstep_weights(taps: Sequence[float], h: int) -> np.ndarray:
    """The ``h``-step kernel for ``taps``, cached, read-only.

    Nonnegative substochastic taps are required — that is exactly the class
    arising from discounted risk-neutral lattices and monotone explicit FD
    schemes (paper §2.1/§3/§4.2), and it is the regime where both the exact
    binomial and the symbol-power evaluations are stable.
    """
    taps = _as_taps(taps)
    h = check_integer("h", h, minimum=0)
    total = sum(taps)
    if any(v < 0.0 for v in taps) or total > _SUBSTOCHASTIC_TOL:
        raise ValidationError(
            f"taps must be nonnegative with sum <= 1 (got sum {total:.6g}); "
            "this solver targets discounted transition weights"
        )
    return _cached_weights(taps, h)


def weights_checksum(taps: Sequence[float], h: int) -> float:
    """``sum(kernel) = (sum(taps))^h`` — identity the tests verify."""
    return float(sum(_as_taps(taps))) ** h
