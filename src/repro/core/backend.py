"""Pricer backends: one protocol over every way this library prices.

A :class:`PricerBackend` is a named, registered strategy for answering
``price_spec`` / ``price_batch`` calls.  The abstraction exists so the
layers above the solvers — :mod:`repro.core.api`, the scenario engine and
the quote service — can route a request to *any* pricer without knowing
its internals, and so approximate/exact tiering is expressible at all:

``"lattice"``
    The paper's solvers, exactly as they always ran: the O(T log²T)
    nonlinear-stencil recursions, the Θ(T²) baselines, the lockstep batch
    solver.  ``tolerance == 0.0`` — this backend *defines* exactness, and
    its routing is bit-identical to calling
    :func:`repro.core.api.price_american` / ``solve_batch`` directly
    (it literally is those code paths).
``"spectral"``
    The Chebyshev-collocation fast pricer (:mod:`repro.core.spectral`):
    near-O(n) per solve, a stated non-zero ``tolerance``, no divider.

Capability flags let a router decide *before* dispatch whether a backend
can serve a request shape:

``supports_boundary``
    ``price_spec(return_boundary=True)`` records the exercise divider.
``supports_divider``
    results can carry divider data at all (dense or sparse).
``supports_batching``
    ``price_batch`` is a genuine lockstep batch (multi-kernel
    ``advance_batch`` transforms), not a loop over ``price_spec``.

Registration is lazy: :func:`get_backend` imports the module that owns a
known name on first use, so ``repro.core.backend`` itself imports no
solver code (the api module imports *us*, not the reverse) and worker
processes resolve names without any setup call.
"""

from __future__ import annotations

import importlib
import threading
from typing import Optional, Protocol, Sequence, runtime_checkable

from repro.util.validation import ValidationError

#: name -> owning module, for lazy first-use registration.  The module's
#: import side effect must call :func:`register_backend`.
_LAZY_MODULES = {
    "lattice": "repro.core.api",
    "spectral": "repro.core.spectral",
}

_REGISTRY: dict = {}
_REGISTRY_LOCK = threading.Lock()


@runtime_checkable
class PricerBackend(Protocol):
    """What every pricing backend exposes (structural; no inheritance needed).

    Attributes
    ----------
    name:
        Registry name (``"lattice"``, ``"spectral"``, …).
    tolerance:
        Stated worst-case *relative* price error versus the exact lattice
        answer at the same ``steps`` (``0.0`` = exact).  Served quotes
        surface it as ``meta["tolerance"]`` so a consumer can decide
        whether an approximate tier is acceptable.
    supports_boundary / supports_divider / supports_batching:
        Capability flags (module docstring).
    """

    name: str
    tolerance: float
    supports_boundary: bool
    supports_divider: bool
    supports_batching: bool

    def price_spec(
        self,
        spec,
        steps: int,
        *,
        model: str = "binomial",
        method: str = "fft",
        base: Optional[int] = None,
        lam: Optional[float] = None,
        policy=None,
        engine=None,
        return_boundary: bool = False,
    ):  # -> PricingResult
        """Price one contract; must stamp ``meta["backend"] = self.name``."""
        ...

    def price_batch(
        self,
        specs: Sequence,
        steps: int,
        *,
        model: str = "binomial",
        method: str = "fft",
        base: Optional[int] = None,
        lam: Optional[float] = None,
        policy=None,
        engine=None,
    ) -> list:
        """Price a batch in input order; every result stamped like
        :meth:`price_spec`'s."""
        ...


def register_backend(backend: PricerBackend) -> PricerBackend:
    """Register ``backend`` under ``backend.name`` (last registration wins,
    so tests can shadow a name with a fake and restore the original)."""
    name = getattr(backend, "name", None)
    if not name or not isinstance(name, str):
        raise ValidationError(
            "a pricer backend must carry a non-empty string 'name'"
        )
    with _REGISTRY_LOCK:
        _REGISTRY[name] = backend
    return backend


def get_backend(name: str) -> PricerBackend:
    """The registered backend for ``name``; lazily imports the owning
    module for the built-in names, raises :class:`ValidationError` for
    unknown ones."""
    backend = _REGISTRY.get(name)
    if backend is not None:
        return backend
    module = _LAZY_MODULES.get(name)
    if module is not None:
        importlib.import_module(module)
        backend = _REGISTRY.get(name)
        if backend is not None:
            return backend
    raise ValidationError(
        f"unknown pricer backend {name!r}; choose one of {backend_names()}"
    )


def backend_names() -> tuple:
    """Every resolvable backend name (registered or lazily importable)."""
    with _REGISTRY_LOCK:
        names = set(_REGISTRY)
    names.update(_LAZY_MODULES)
    return tuple(sorted(names))
