"""The paper's contribution: FFT-accelerated nonlinear stencil solvers."""

from repro.core.api import (
    BoundaryCurve,
    LatticeBackend,
    PricingResult,
    exercise_boundary,
    price_american,
    price_bermudan,
    price_european,
    price_many,
    solve_batch,
)
from repro.core.backend import (
    PricerBackend,
    backend_names,
    get_backend,
    register_backend,
)
from repro.core.bermudan import (
    price_bsm_european_fft,
    price_tree_bermudan_fft,
    price_tree_bermudan_fft_batch,
    price_tree_european_fft,
)
from repro.core.bsm_solver import BSMFFTResult, solve_bsm_fft, solve_bsm_fft_batch
from repro.core.fftstencil import (
    AdvanceEngine,
    AdvancePolicy,
    DEFAULT_POLICY,
    advance,
)
from repro.core.symmetry import solve_put_via_symmetry
from repro.core.tree_solver import TreeFFTResult, solve_tree_fft, solve_tree_fft_batch
from repro.core.weights import (
    binomial_weights,
    convolution_power_weights,
    hstep_weights,
    symbol_power_weights,
)

__all__ = [
    "BoundaryCurve",
    "LatticeBackend",
    "PricerBackend",
    "PricingResult",
    "backend_names",
    "get_backend",
    "register_backend",
    "exercise_boundary",
    "price_american",
    "price_bermudan",
    "price_european",
    "price_many",
    "solve_batch",
    "price_bsm_european_fft",
    "price_tree_bermudan_fft",
    "price_tree_bermudan_fft_batch",
    "price_tree_european_fft",
    "BSMFFTResult",
    "solve_bsm_fft",
    "solve_bsm_fft_batch",
    "AdvanceEngine",
    "AdvancePolicy",
    "DEFAULT_POLICY",
    "advance",
    "solve_put_via_symmetry",
    "TreeFFTResult",
    "solve_tree_fft",
    "solve_tree_fft_batch",
    "binomial_weights",
    "convolution_power_weights",
    "hstep_weights",
    "symbol_power_weights",
]
