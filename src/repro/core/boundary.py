"""Red–green divider utilities (paper §2.2, Appendix A.2, §4.2).

The correctness of the trapezoid decomposition rests on three structural
facts about the divider between the 'red' (continuation) and 'green'
(exercise) regions:

* contiguity — each time row is a red prefix followed by a green suffix
  (tree models; Corollary 2.7 / A.6) or a green prefix followed by a red
  suffix (BSM put; Theorem 4.3);
* monotone single-step movement — the divider moves by at most one cell per
  time step, and only towards the red side;
* closed-form green values — green cells never need storage.

This module provides the divider scan used by the solvers plus the invariant
checks the property-based tests (and the solvers' optional self-verification
mode) run against full vanilla sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np


def scan_prefix_boundary(mask: np.ndarray) -> int:
    """Largest index of the leading ``True`` prefix of ``mask`` (-1 if empty).

    The solvers classify cells red by ``continuation >= exercise`` and rely
    on the theoretical prefix structure; scanning for the *first* ``False``
    (rather than the last ``True``) makes the result well-defined even under
    floating-point noise exactly at the divider.
    """
    if mask.size == 0:
        return -1
    first_false = int(np.argmin(mask))
    if mask[first_false]:  # no False at all
        return mask.size - 1
    return first_false - 1


def is_prefix_mask(mask: np.ndarray) -> bool:
    """True when ``mask`` is of the form ``True^a False^b`` (contiguity)."""
    if mask.size == 0:
        return True
    # A prefix mask never increases: diff may only be -1 transitions.
    as_int = mask.astype(np.int8)
    return bool(np.all(np.diff(as_int) <= 0))


@dataclass
class BoundaryRecorder:
    """Sparse collection of exactly-known divider positions by time row.

    The FFT solvers learn the divider only at trapezoid interfaces and naive
    rows; the recorder keeps whatever is known.  ``as_array(T)`` expands to a
    dense array with ``fill`` where unknown.
    """

    points: Dict[int, int] = field(default_factory=dict)

    def record(self, row: int, boundary: int) -> None:
        self.points[int(row)] = int(boundary)

    def as_array(self, steps: int, fill: int = np.iinfo(np.int64).min) -> np.ndarray:
        out = np.full(steps + 1, fill, dtype=np.int64)
        for row, b in self.points.items():
            if 0 <= row <= steps:
                out[row] = b
        return out


@dataclass(frozen=True)
class BoundaryViolation:
    """A detected breach of the divider invariants (test diagnostics)."""

    row: int
    kind: str
    detail: str


def check_tree_boundary_invariants(
    boundary: np.ndarray, *, steps: int, columns_per_row: int
) -> list[BoundaryViolation]:
    """Validate Corollary 2.7 / A.6 on a dense divider array.

    ``boundary[i]`` = last red column of row ``i`` (-1 when all green);
    ``columns_per_row`` = q (1 binomial, 2 trinomial), so row ``i`` spans
    columns ``0..q*i``.  Checks, for ``i in [0, T-2]``:
    ``min(j_{i+1} - 1, q*i) <= j_i <= j_{i+1}`` — the paper's one-cell
    movement bound with the divider clamped to the row end when an entire
    row is red (for q=2 the row shrinks by two columns per backward step, so
    a fully-red region keeps the divider pinned at ``q*i``) — plus range
    sanity.  Returns all violations (empty list = invariants hold).
    """
    violations: list[BoundaryViolation] = []
    for i in range(steps + 1):
        j = int(boundary[i])
        if j < -1 or j > columns_per_row * i:
            violations.append(
                BoundaryViolation(i, "range", f"j_{i}={j} outside [-1, {columns_per_row * i}]")
            )
    for i in range(steps - 1):
        j_i, j_next = int(boundary[i]), int(boundary[i + 1])
        if j_i == -1 and j_next == -1:
            continue
        low = min(j_next - 1, columns_per_row * i)
        if not (low <= j_i <= j_next):
            violations.append(
                BoundaryViolation(
                    i,
                    "movement",
                    f"j_{i}={j_i} not in [min(j_{i + 1}-1, row_end), j_{i + 1}] = "
                    f"[{low}, {j_next}]",
                )
            )
    return violations


def check_bsm_boundary_invariants(
    boundary: np.ndarray, *, steps: int, missing: Optional[int] = None
) -> list[BoundaryViolation]:
    """Validate Theorem 4.3 on the BSM divider: ``0 <= k_n - k_{n+1} <= 1``.

    ``boundary[n]`` = largest green spatial index at time row ``n`` in
    absolute ``k`` units; entries equal to ``missing`` are skipped (rows
    where the cone no longer contains the green zone).
    """
    violations: list[BoundaryViolation] = []
    for n in range(steps):
        k_n, k_next = int(boundary[n]), int(boundary[n + 1])
        if missing is not None and (k_n == missing or k_next == missing):
            continue
        drop = k_n - k_next
        if not (0 <= drop <= 1):
            violations.append(
                BoundaryViolation(
                    n, "movement", f"k_{n}={k_n}, k_{n + 1}={k_next}: drop {drop} not in [0, 1]"
                )
            )
    return violations
