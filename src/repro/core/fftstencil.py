"""FFT-accelerated multi-step advance of linear 1-D stencils.

This is our implementation of the aperiodic ('valid-mode') form of the
linear-stencil algorithm of Ahmad et al. (SPAA 2021) — reference [1] of the
paper — which the nonlinear solvers invoke on provably-all-red trapezoids:

    ``advance(x, taps, h)[c] = (A^h x)[c] = sum_{k=0}^{q h} W_k x_{c+k}``

where ``A`` is the one-step stencil operator and ``W`` the h-step kernel from
:mod:`repro.core.weights`.  The result covers exactly the cells whose full
dependency cone lies inside ``x`` (output length ``len(x) - q*h``).

Plan caching (docs/DESIGN.md §3): the trapezoid decomposition requests the
same ``(taps, h)`` kernels at every recursion level — hundreds of
identical-shape advances per solve — so :class:`AdvanceEngine` amortises the
kernel's forward transform across reuses (as [1] does): it caches the
*conjugated rFFT of the kernel* keyed by ``(taps, h, padded_n)``, memoises
``next_fast_len`` pad sizes, and reuses zero-padded scratch buffers.  A warm
advance is then one forward rFFT of ``x``, one pointwise multiply, one
inverse — versus ``fftconvolve``'s three transforms of a larger padded
length plus a reversed-kernel copy.  :meth:`AdvanceEngine.advance_many`
additionally stacks same-kernel advances into one batched
``scipy.fft.rfft(axis=-1)`` call for portfolio workloads, and
:meth:`AdvanceEngine.advance_batch` generalises that to B inputs with B
*different* kernels — the lockstep batch solver's workhorse
(docs/DESIGN.md §7): rows group by padded length, multiply row-wise by a
cached stacked kernel-spectrum block, and transform in one batched pair,
with per-row robustness decisions and per-row accounting.

Numerical-robustness extension (documented in docs/DESIGN.md §1): FFT
convolution carries an *absolute* error ~``eps * ||x||_2 * ||W||_2``, so when
the input's magnitude dwarfs the caller's meaningful output scale the routine
falls back to direct correlation, whose error is relative to each output's
own positive term sum.  The paper's evaluated regime (bounded red values)
never triggers the fallback; the Y=0 all-red regime does.
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass
from typing import Callable, Iterable, Literal, Optional, Sequence, Tuple

import numpy as np
from scipy import fft as sfft
from scipy.signal import fftconvolve

from repro.core.boundary import scan_prefix_boundary
from repro.core.weights import hstep_weights
from repro.parallel.workspan import WorkSpan, fft_cost
from repro.util.validation import ValidationError, check_integer


@dataclass(frozen=True)
class AdvancePolicy:
    """Controls the FFT-vs-direct decision of :func:`advance`.

    Parameters
    ----------
    mode:
        ``"auto"`` (default) — FFT unless the amplification guard trips;
        ``"fft"`` — always FFT; ``"direct"`` — always direct correlation.
    max_amplification:
        In auto mode, fall back to direct correlation when
        ``max|x| > max_amplification * scale`` (``scale`` is the caller's
        meaningful output magnitude, e.g. the strike).  The default tolerates
        twelve orders of magnitude of headroom above the price scale before
        the ~1e-16 relative FFT noise could reach ~1e-4 of the price.
    min_fft_size:
        Below this many kernel taps direct correlation is faster anyway.
    """

    mode: Literal["auto", "fft", "direct"] = "auto"
    max_amplification: float = 1e12
    min_fft_size: int = 32

    def choose(self, x_max: float, scale: float, kernel_len: int) -> str:
        if self.mode != "auto":
            return self.mode
        if kernel_len < self.min_fft_size:
            return "direct"
        if scale > 0.0 and x_max > self.max_amplification * scale:
            return "direct"
        return "fft"


DEFAULT_POLICY = AdvancePolicy()

#: Spectrum blocks larger than this many complex elements (32 MiB) are
#: assembled but not cached — rebuilding one from the per-row spectrum
#: cache is cheap, while a handful of resident giant blocks is not.
MAX_BLOCK_ELEMENTS = 1 << 21

#: Soft byte budget for the kernel-spectrum cache.  ``advance_batch``
#: scales the entry bound with the batch width (B interleaved solves need
#: ~B x log T live spectra to keep per-solve repeats warm), so a byte
#: bound — not just an entry count — keeps wide batches of long kernels
#: from pinning unbounded memory.
MAX_SPECTRA_BYTES = 64 * (1 << 20)

#: Byte budget for the batched-transform input stacks, the engine's
#: largest scratch buffers: each ratchets to the widest batch seen for its
#: padded length, so a long-lived shared engine must not keep every size
#: it ever served.  Sized above the working set of a 1024-wide lockstep
#: batch (~40 live pad lengths x a few MB) — a tighter budget makes the
#: eviction loop churn fresh allocations every round and costs more than
#: it saves.
MAX_STACK_BYTES = 256 * (1 << 20)

#: Byte budget for the flat green/payoff-table block behind
#: :meth:`AdvanceEngine.base_rows_batch`.  Tables are per-solve (a fresh
#: batch registers fresh tables), so the block is cleared wholesale when
#: it outgrows the budget — registration is one memcpy per table and the
#: next round simply re-registers whatever is still live.
MAX_TABLE_BYTES = 64 * (1 << 20)

#: Longest kernel the stacked direct path may serve with the broadcast
#: multiply-accumulate.  ``np.correlate`` accumulates left-to-right (the
#: MAC's order) only through numpy's ``small_correlate`` fast path, which
#: covers kernels of up to 11 taps; above that it switches to a
#: differently-ordered dot and the stacked result would drift by an ulp.
#: Measured, not documented — the bit-agreement tests re-verify it.
MAC_STACK_MAX_KERNEL = 11

#: Environment flag enabling the optional Numba fast path of
#: :meth:`AdvanceEngine.base_rows_batch` (a compiled multiply-accumulate +
#: divider scan over the stacked rows).  Off by default; silently falls
#: back to the vectorised NumPy kernel when Numba is not installed — the
#: two paths accumulate in the same order and are bit-identical.
NUMBA_ENV_FLAG = "REPRO_NUMBA"

_numba_checked = False
_numba_mac_kernel: Optional[Callable] = None

#: Shared zero-length reply for degenerate (empty-window) base rows —
#: nothing to mutate, so one instance serves every caller.
#: dtype singleton for the advance_batch contiguity fast path
_F64 = np.dtype(np.float64)

_EMPTY_ROW = np.empty(0, dtype=np.float64)
_EMPTY_ROW.setflags(write=False)


def _load_numba_mac() -> Optional[Callable]:
    """Compile (once) the Numba base-row MAC kernel; None when unavailable."""
    global _numba_checked, _numba_mac_kernel
    if _numba_checked:
        return _numba_mac_kernel
    _numba_checked = True
    try:
        import numba
    except Exception:
        return None

    @numba.njit(cache=False, fastmath=False)  # fastmath off: bit-identity
    def _mac(X, tc, out):
        G, n = out.shape
        nt = tc.shape[1]
        for r in range(G):
            for j in range(n):
                acc = tc[r, 0] * X[r, j]
                for k in range(1, nt):
                    acc += tc[r, k] * X[r, j + k]
                out[r, j] = acc

    _numba_mac_kernel = _mac
    return _mac


@dataclass
class BaseRowsRecord:
    """Bookkeeping for one :meth:`AdvanceEngine.base_rows_batch` call."""

    rows: int
    groups: int
    workspan: WorkSpan


@dataclass
class AdvanceRecord:
    """Bookkeeping for one advance call (aggregated into solver stats).

    ``spectrum_hit`` is ``True``/``False`` when the engine's kernel-spectrum
    cache was consulted (hit/miss), ``None`` on paths that never touch it
    (direct correlation, h=0 copies, the legacy ``fftconvolve`` path, and
    batch rows served from a cached *spectrum block* — the block counters
    cover those).  For batched records it is ``True`` only when every
    consulted group hit.  ``spectrum_hits``/``spectrum_misses`` carry the
    exact per-call counts (a batched advance consults the cache once per
    length group — :meth:`AdvanceEngine.advance_batch` once per *distinct*
    per-row kernel).  ``batch`` counts the inputs a single batched
    transform carried (1 for plain advances).  ``method`` is ``"mixed"``
    when a batch's rows resolved to different methods.

    Batched calls additionally report:

    ``block_hits`` / ``block_misses``
        consultations of the stacked spectrum-*block* cache (one per FFT
        group of an :meth:`AdvanceEngine.advance_batch` call);
    ``rows``
        per-input sub-records, in input order — each row mirrors exactly
        what a standalone :meth:`AdvanceEngine.advance` of that input would
        have recorded (method, lengths, work/span share), so per-solve
        statistics stay truthful under lockstep batching.
    """

    method: str
    input_len: int
    h: int
    workspan: WorkSpan
    spectrum_hit: Optional[bool] = None
    spectrum_hits: int = 0
    spectrum_misses: int = 0
    batch: int = 1
    block_hits: int = 0
    block_misses: int = 0
    rows: Optional[list["AdvanceRecord"]] = None


def _direct_correlate(x: np.ndarray, w: np.ndarray) -> np.ndarray:
    """Valid-mode correlation sum_k w_k x_{c+k} via np.correlate (C speed)."""
    return np.correlate(x, w, mode="valid")


#: Public alias for the solvers' naive base rows: one ``np.correlate`` call
#: replaces their former Python per-tap accumulation loop.  np.correlate
#: accumulates each output cell left-to-right over the taps — the same
#: order as the loop — so the swap is bit-identical (the bit-agreement
#: tests pin this).  The q+1-tap kernels sit far below
#: ``AdvancePolicy.min_fft_size``, so this mirrors exactly what
#: ``advance_many``'s fft-vs-direct guard would choose for a 1-step row.
row_correlate = _direct_correlate


def _fft_correlate(x: np.ndarray, w: np.ndarray) -> np.ndarray:
    """Legacy valid-mode correlation (convolve with reversed kernel).

    Kept as the ``reuse=False`` reference path: it re-transforms the kernel
    on every call, exactly the behaviour the plan cache amortises away.  The
    old-vs-new benchmark (``benchmarks/bench_advance_engine.py``) times this
    against the cached path.
    """
    return fftconvolve(x, w[::-1], mode="valid")


def _legacy_fft_workspan(input_len: int, kernel_len: int) -> WorkSpan:
    """Work/span of the fftconvolve path: 3 transforms of the padded length."""
    n = sfft.next_fast_len(input_len + kernel_len - 1)
    one_fft = fft_cost(n)
    return WorkSpan(3.0 * one_fft.work + 2.0 * n, 3.0 * one_fft.span + 1.0)


class AdvanceEngine:
    """Stateful, plan-caching multi-step advance (docs/DESIGN.md §3).

    Each solver instantiates one engine per solve — or shares one across a
    batch of solves (:func:`repro.core.api.price_many`) — and calls
    :meth:`advance` where it previously called the free function.  The engine
    caches, across calls:

    * the conjugated kernel spectrum ``conj(rfft(W, n))`` keyed by
      ``(taps, h, n)`` — one forward kernel transform per distinct shape,
      however many advances reuse it;
    * memoised ``next_fast_len`` pad sizes (one lookup per distinct input
      length, i.e. per recursion level);
    * zero-padded scratch buffers keyed by pad size, so warm advances do not
      allocate the padded input.

    Correlation uses the conjugate trick: ``irfft(rfft(x, n) * conj(rfft(W,
    n)))[c] = sum_k W_k x_{c+k}`` for ``c <= len(x) - len(W)`` whenever
    ``n >= len(x)`` (no circular wrap can reach the valid prefix), so the pad
    length is ``next_fast_len(len(x))`` — smaller than ``fftconvolve``'s
    ``next_fast_len(len(x) + len(W) - 1)`` — and no reversed-kernel copy is
    ever made.

    Parameters
    ----------
    policy:
        FFT-vs-direct robustness policy applied per call.
    reuse:
        ``False`` disables every cache and routes FFT advances through the
        legacy ``fftconvolve`` path — the exact pre-engine behaviour, kept
        for the old-vs-new benchmark and regression comparisons.

    An engine is **not thread-safe** (the scratch buffers are shared across
    its calls); use one engine per solve/thread.  The module-level
    :func:`advance` wrapper keeps one default engine per thread.
    max_spectra / max_scratch / max_blocks:
        Bounds on the caches (oldest-first eviction); a single solve stays
        far below them, the defaults only matter for long-lived shared
        engines.  ``max_blocks`` bounds the stacked spectrum-*block* cache
        of :meth:`advance_batch` — blocks are ``(B, n_rfft)`` complex
        arrays, much larger than single spectra, so the bound is tight.
    """

    def __init__(
        self,
        policy: AdvancePolicy = DEFAULT_POLICY,
        *,
        reuse: bool = True,
        max_spectra: int = 512,
        max_scratch: int = 64,
        max_blocks: int = 16,
        max_weights: int = 4096,
        use_numba: Optional[bool] = None,
    ):
        self.policy = policy
        self.reuse = reuse
        self.max_spectra = max_spectra
        self.max_scratch = max_scratch
        self.max_blocks = max_blocks
        self.max_weights = max_weights
        if use_numba is None:
            use_numba = os.environ.get(NUMBA_ENV_FLAG, "") not in ("", "0")
        self._numba_mac = _load_numba_mac() if use_numba else None
        #: Optional zero-arg cooperative-interrupt hook, invoked at every
        #: advance entry (see :meth:`_tick`).  The resilience tier binds a
        #: deadline here (``engine.checkpoint = deadline.checkpoint``) so a
        #: long *serial* solve — which nothing can preempt — observes its
        #: budget within one advance and aborts by raising from the hook.
        self.checkpoint: Optional[Callable[[], None]] = None
        self._spectra: dict[tuple, np.ndarray] = {}
        self._spectra_bytes = 0
        self._scratch: dict[int, np.ndarray] = {}
        self._stack_scratch: dict[int, np.ndarray] = {}
        self._stack_scratch_bytes = 0
        self._fast_len: dict[int, int] = {}
        self._weights: dict[tuple, np.ndarray] = {}
        self._blocks: dict[tuple, np.ndarray] = {}
        # Flat green/payoff-table block for base_rows_batch: per-solver
        # tables are registered once (id-keyed; the entry holds a reference
        # so the id stays valid) and copied into one growable buffer the
        # stacked green gathers index.
        self._tables: dict[int, tuple[np.ndarray, int]] = {}
        self._table_buf: Optional[np.ndarray] = None
        self._table_used = 0
        # epoch token for request-side offset caching (BaseRowRequest.bkey);
        # replaced whenever registered offsets are invalidated
        self._ckey: object = object()
        # shared arange scratch for the stacked green gathers (views of a
        # growable buffer replace one np.arange per group per round)
        self._ar: Optional[np.ndarray] = None
        self._xscratch: Optional[np.ndarray] = None
        # per-group stacked taps, reused across rounds: a descent serves
        # the same solver set for ~base consecutive rounds, and taps are
        # fixed per request, so the (G, nt) matrix recurs call after call.
        # Validated per use by element-identity against the group's tap
        # arrays — any membership churn rebuilds.
        self._tc_cache: dict[int, tuple[list, np.ndarray]] = {}
        # Block keys seen exactly once: a block is only materialised (rows
        # stacked into one array) when its key *recurs* — one-shot batch
        # shapes (a heterogeneous grid priced once) never pay the copies.
        self._block_seen: dict[tuple, None] = {}
        # Counters (exposed through SolveStats / cache_info for benchmarks).
        self.spectrum_hits = 0
        self.spectrum_misses = 0
        self.advances = 0
        self.batched_inputs = 0
        self.batch_advances = 0
        self.block_hits = 0
        self.block_misses = 0
        self.base_batch_calls = 0
        self.base_batch_rows = 0
        self.base_block_hits = 0
        self.base_block_misses = 0
        self.checkpoints = 0
        #: Normalised telemetry handle (``None`` when disabled) — see
        #: :meth:`set_telemetry`.  Hot paths guard on ``is not None`` so
        #: the disabled engine pays one attribute test per *batch* call.
        self.telemetry = None
        self._h_batch_rows = None
        self._h_base_rows = None

    def set_telemetry(self, telemetry, *, register: bool = True) -> None:
        """Attach (or detach, with ``None``) a telemetry handle.

        The engine's existing counters re-register into the registry as
        an ``engine_*`` collector — the registry reads :meth:`cache_info`
        live at export time, so there is no second set of books — and the
        two batch entry points gain batch-width histograms.  The lockstep
        driver reads ``engine.telemetry`` to place its round spans, so
        attaching here instruments every solve run through this engine.

        ``register=False`` skips the collector: the registry keeps a
        strong reference to each collector, so *per-call* engines (one
        grid, one coalesced bucket) must not register — their owner folds
        the counter delta into plain counters instead — while still
        getting spans and batch-width histograms.
        """
        from .. import obs

        tel = obs.active(telemetry)
        self.telemetry = tel
        if tel is None:
            self._h_batch_rows = None
            self._h_base_rows = None
            return
        if register:
            tel.registry.register_collector("engine", self.cache_info)
        self._h_batch_rows = tel.histogram(
            "engine_advance_batch_rows", help="rows per advance_batch call"
        )
        self._h_base_rows = tel.histogram(
            "engine_base_rows_batch_rows",
            help="rows per base_rows_batch call",
        )

    def _tick(self) -> None:
        """Run the cooperative-interrupt hook (if any) and count it.

        Called once per advance entry — frequent enough that a deadline
        bound here fires within one advance of expiring, cheap enough
        (one attribute read when unset) to leave on every path.
        """
        cb = self.checkpoint
        if cb is not None:
            self.checkpoints += 1
            cb()

    # ------------------------------------------------------------------ #
    # Plan helpers
    # ------------------------------------------------------------------ #
    def fast_len(self, n: int) -> int:
        """Memoised ``scipy.fft.next_fast_len`` (one lookup per level)."""
        cached = self._fast_len.get(n)
        if cached is None:
            cached = sfft.next_fast_len(n)
            self._fast_len[n] = cached
        return cached

    def _hstep(self, taps_t: tuple, h: int) -> np.ndarray:
        """Engine-local ``hstep_weights`` cache.

        The module-level LRU behind :func:`hstep_weights` is sized for a
        handful of interleaved solves; a 1024-wide lockstep batch touches
        ~B x log T distinct ``(taps, h)`` kernels between repeats and
        thrashes it, recomputing kernels every round on the direct paths.
        The engine keeps its own dict (entry bound scaled with the batch
        width alongside ``max_spectra``) and skips the wrapper's per-call
        validation — the taps were validated on first sight.
        """
        key = (taps_t, h)
        w = self._weights.get(key)
        if w is None:
            w = hstep_weights(taps_t, h)
            self._weights[key] = w
            while len(self._weights) > self.max_weights:
                self._weights.pop(next(iter(self._weights)))
        return w

    def prepare(
        self, taps: Sequence[float], jobs: Iterable[Tuple[int, int]]
    ) -> None:
        """Precompute full plans for known ``(h, input_len)`` advance shapes.

        Drivers whose advance shapes are known up front — the Bermudan jump
        chain advances full rows of statically known widths — pass them here
        to materialise the h-step kernel, the ``next_fast_len`` pad size,
        *and* the kernel spectrum before the solve starts.  Shapes that only
        emerge at runtime (the trapezoid recursion's divider-dependent
        windows) plan themselves on first use instead.
        """
        taps_t = tuple(float(v) for v in taps)
        for h, input_len in jobs:
            h = int(h)
            if h <= 0:
                continue
            w = hstep_weights(taps_t, h)
            if len(w) <= input_len:
                self._kernel_spectrum(taps_t, h, self.fast_len(int(input_len)), w)

    def cache_info(self) -> dict:
        """Counters for benchmarks and the engine regression tests."""
        return {
            "spectrum_hits": self.spectrum_hits,
            "spectrum_misses": self.spectrum_misses,
            "cached_spectra": len(self._spectra),
            "cached_scratch": len(self._scratch),
            "cached_blocks": len(self._blocks),
            "advances": self.advances,
            "batched_inputs": self.batched_inputs,
            "batch_advances": self.batch_advances,
            "block_hits": self.block_hits,
            "block_misses": self.block_misses,
            "base_batch_calls": self.base_batch_calls,
            "base_batch_rows": self.base_batch_rows,
            "base_block_hits": self.base_block_hits,
            "base_block_misses": self.base_block_misses,
            "checkpoints": self.checkpoints,
        }

    def _kernel_spectrum(
        self, taps_t: tuple, h: int, n: int, w: Optional[np.ndarray] = None
    ) -> tuple[np.ndarray, bool]:
        """Cached ``conj(rfft(W, n))``; the kernel ``w`` is only
        materialised on a miss (warm advances never touch the weights)."""
        key = (taps_t, h, n)
        spec = self._spectra.get(key)
        if spec is not None:
            self.spectrum_hits += 1
            return spec, True
        self.spectrum_misses += 1
        if w is None:
            w = hstep_weights(taps_t, h)
        spec = np.conj(sfft.rfft(w, n=n))
        self._spectra[key] = spec
        self._spectra_bytes += spec.nbytes
        while len(self._spectra) > 1 and (
            len(self._spectra) > self.max_spectra
            or self._spectra_bytes > MAX_SPECTRA_BYTES
        ):
            old = self._spectra.pop(next(iter(self._spectra)))
            self._spectra_bytes -= old.nbytes
        return spec, False

    def _padded_stack(self, rows: int, n: int) -> np.ndarray:
        """Reusable ``(>= rows, n)`` scratch for batched transforms.

        Callers overwrite every used row in full (payload then zero tail),
        so no clearing is needed here; ``stack[:rows]`` is what they
        transform.  Stacks are the engine's largest buffers (they ratchet
        to the widest batch seen per padded length), so the cache is
        byte-budgeted: oversized requests get a one-shot buffer and the
        resident set is evicted oldest-first past ``MAX_STACK_BYTES``.
        """
        buf = self._stack_scratch.get(n)
        if buf is None or buf.shape[0] < rows:
            buf = np.zeros((rows, n), dtype=np.float64)
            if buf.nbytes > MAX_STACK_BYTES:
                return buf  # one-shot: too large to keep resident
            old = self._stack_scratch.pop(n, None)
            if old is not None:
                self._stack_scratch_bytes -= old.nbytes
            self._stack_scratch[n] = buf
            self._stack_scratch_bytes += buf.nbytes
            while len(self._stack_scratch) > 1 and (
                len(self._stack_scratch) > self.max_scratch
                or self._stack_scratch_bytes > MAX_STACK_BYTES
            ):
                dropped = self._stack_scratch.pop(
                    next(iter(self._stack_scratch))
                )
                self._stack_scratch_bytes -= dropped.nbytes
        return buf

    def _padded(self, x: np.ndarray, n: int) -> np.ndarray:
        buf = self._scratch.get(n)
        if buf is None:
            if len(self._scratch) >= self.max_scratch:
                self._scratch.pop(next(iter(self._scratch)))
            buf = np.zeros(n, dtype=np.float64)
            self._scratch[n] = buf
        m = len(x)
        buf[:m] = x
        buf[m:] = 0.0
        return buf

    # ------------------------------------------------------------------ #
    # Advances
    # ------------------------------------------------------------------ #
    @staticmethod
    def _validate(x: np.ndarray, q: int, h: int) -> int:
        kernel_len = q * h + 1
        if len(x) < kernel_len:
            raise ValidationError(
                f"input of length {len(x)} too short for h={h} steps of a "
                f"{q + 1}-tap stencil (needs >= {kernel_len})"
            )
        return kernel_len

    def _fft_cached(
        self, x: np.ndarray, taps_t: tuple, h: int, kernel_len: int
    ) -> tuple[np.ndarray, WorkSpan, bool]:
        m = len(x)
        n = self.fast_len(m)
        spec, hit = self._kernel_spectrum(taps_t, h, n)
        X = sfft.rfft(self._padded(x, n))
        X *= spec
        y = sfft.irfft(X, n=n)[: m - kernel_len + 1]
        one_fft = fft_cost(n)
        transforms = 2.0 if hit else 3.0
        ws = WorkSpan(
            transforms * one_fft.work + 2.0 * n, transforms * one_fft.span + 1.0
        )
        return y, ws, hit

    def advance(
        self,
        x: np.ndarray,
        taps: Sequence[float],
        h: int,
        *,
        scale: float | None = None,
    ) -> tuple[np.ndarray, AdvanceRecord]:
        """Advance ``x`` by ``h`` linear stencil steps; return (values, record).

        Same contract as the module-level :func:`advance` (which now wraps a
        default engine): ``y[c'] = (A^h x)[c']`` on the ``len(x) - q*h``
        left-aligned output columns.
        """
        self._tick()
        h = check_integer("h", h, minimum=0)
        x = np.ascontiguousarray(x, dtype=np.float64)
        taps_t = tuple(float(v) for v in taps)
        q = len(taps_t) - 1
        self.advances += 1
        if h == 0:
            return x.copy(), AdvanceRecord("copy", len(x), 0, WorkSpan(len(x), 1.0))
        kernel_len = self._validate(x, q, h)
        x_max = float(np.max(np.abs(x))) if len(x) else 0.0
        method = self.policy.choose(
            x_max, scale if scale is not None else 0.0, kernel_len
        )
        if method == "fft":
            if self.reuse:
                # the kernel itself is only materialised on a spectrum miss
                y, ws, hit = self._fft_cached(x, taps_t, h, kernel_len)
                return y, AdvanceRecord(
                    "fft",
                    len(x),
                    h,
                    ws,
                    spectrum_hit=hit,
                    spectrum_hits=int(hit),
                    spectrum_misses=int(not hit),
                )
            y = _fft_correlate(x, hstep_weights(taps_t, h))
            return y, AdvanceRecord(
                "fft", len(x), h, _legacy_fft_workspan(len(x), kernel_len)
            )
        w = self._hstep(taps_t, h) if self.reuse else hstep_weights(taps_t, h)
        y = _direct_correlate(x, w)
        ws = WorkSpan(2.0 * len(y) * kernel_len, np.log2(kernel_len + 1.0) + 1.0)
        return y, AdvanceRecord(method, len(x), h, ws)

    def advance_many(
        self,
        xs: Sequence[np.ndarray],
        taps: Sequence[float],
        h: int,
        *,
        scale: float | None = None,
    ) -> tuple[list[np.ndarray], AdvanceRecord]:
        """Advance many inputs by the *same* ``(taps, h)`` kernel at once.

        Inputs of equal length are stacked and transformed in a single
        batched ``rfft(axis=-1)``/``irfft(axis=-1)`` pair against one cached
        kernel spectrum — the portfolio fast path behind
        :func:`repro.core.api.price_many`.  Mixed lengths are grouped by
        length, and the FFT-vs-direct robustness choice is made *per
        length group* from that group's own magnitude — one
        outlier-magnitude input no longer forces its whole batch off the
        FFT fast path (the aggregate record reports ``"mixed"`` when groups
        diverge).  Returns the per-input outputs (input order preserved)
        and one aggregate record; independent groups (and independent rows
        on the non-stacked paths) compose in parallel (``beside``), so the
        recorded span reflects the batch's real critical path.
        """
        self._tick()
        h = check_integer("h", h, minimum=0)
        taps_t = tuple(float(v) for v in taps)
        q = len(taps_t) - 1
        arrs = [np.ascontiguousarray(x, dtype=np.float64) for x in xs]
        total = sum(len(a) for a in arrs)
        if not arrs:
            return [], AdvanceRecord("copy", 0, h, WorkSpan.ZERO, batch=0)
        if h == 0:
            self.advances += 1
            self.batched_inputs += len(arrs)
            return [a.copy() for a in arrs], AdvanceRecord(
                "copy", total, 0, WorkSpan(total, 1.0), batch=len(arrs)
            )
        kernel_len = q * h + 1
        for a in arrs:
            self._validate(a, q, h)
        scale_val = scale if scale is not None else 0.0
        self.advances += 1
        self.batched_inputs += len(arrs)

        # Group indices by input length; one batched transform (and one
        # FFT-vs-direct decision) per group.
        groups: dict[int, list[int]] = {}
        for idx, a in enumerate(arrs):
            groups.setdefault(len(a), []).append(idx)
        outs: list[Optional[np.ndarray]] = [None] * len(arrs)
        ws = WorkSpan.ZERO
        hits = misses = 0
        consulted = False
        methods: set[str] = set()
        for m, idxs in groups.items():
            g_max = max(
                float(np.max(np.abs(arrs[i]))) if len(arrs[i]) else 0.0
                for i in idxs
            )
            g_method = self.policy.choose(g_max, scale_val, kernel_len)
            methods.add(g_method)
            if g_method != "fft":
                w = self._hstep(taps_t, h) if self.reuse else hstep_weights(taps_t, h)
                g_ws = WorkSpan.ZERO
                for i in idxs:
                    y = _direct_correlate(arrs[i], w)
                    outs[i] = y
                    g_ws = g_ws.beside(
                        WorkSpan(
                            2.0 * len(y) * kernel_len,
                            np.log2(kernel_len + 1.0) + 1.0,
                        )
                    )
                ws = ws.beside(g_ws)
                continue
            if not self.reuse:
                # Legacy fftconvolve per row; the rows are independent, so
                # the record composes them in parallel (beside) — the same
                # critical-path accounting the cached stacked path reports.
                w = hstep_weights(taps_t, h)
                g_ws = WorkSpan.ZERO
                for i in idxs:
                    outs[i] = _fft_correlate(arrs[i], w)
                    g_ws = g_ws.beside(_legacy_fft_workspan(m, kernel_len))
                ws = ws.beside(g_ws)
                continue
            consulted = True
            n = self.fast_len(m)
            spec, hit = self._kernel_spectrum(taps_t, h, n)
            if hit:
                hits += 1
            else:
                misses += 1
            stack = np.zeros((len(idxs), n), dtype=np.float64)
            for r, idx in enumerate(idxs):
                stack[r, :m] = arrs[idx]
            X = sfft.rfft(stack, axis=-1)
            X *= spec
            Y = sfft.irfft(X, n=n, axis=-1)
            out_len = m - kernel_len + 1
            for r, idx in enumerate(idxs):
                outs[idx] = Y[r, :out_len].copy()
            one_fft = fft_cost(n)
            transforms = 2.0 * len(idxs) + (0.0 if hit else 1.0)
            # batched rows transform independently: critical path is one
            # forward/inverse pair (plus the kernel transform on a miss)
            ws = ws.beside(
                WorkSpan(
                    transforms * one_fft.work + 2.0 * n * len(idxs),
                    (2.0 if hit else 3.0) * one_fft.span + 1.0,
                )
            )
        return list(outs), AdvanceRecord(  # type: ignore[arg-type]
            methods.pop() if len(methods) == 1 else "mixed",
            total,
            h,
            ws,
            spectrum_hit=(misses == 0) if consulted else None,
            spectrum_hits=hits,
            spectrum_misses=misses,
            batch=len(arrs),
        )

    def _spectrum_block(
        self, keys: Sequence[tuple]
    ) -> tuple[Optional[np.ndarray], list[np.ndarray], bool, dict[int, bool]]:
        """Stacked conjugated kernel spectra for per-row ``(taps, h, n)`` keys.

        The lockstep recursion asks for the *same combination* of per-row
        kernels at every reuse of a batch shape (a re-priced grid, a warm
        quote-service bucket), so the assembled ``(B, n_rfft)`` block is
        cached whole, keyed by the tuple of per-row keys: a warm round
        costs one dict lookup instead of B spectrum lookups plus a B-row
        stack.  A block is only *materialised* on the key's second
        occurrence — one-shot batch shapes multiply row-by-row against the
        per-row spectrum cache (one consult per *distinct* key; duplicate
        rows share their first occurrence's spectrum) and never pay the
        stacking copies.

        Returns ``(block, row_specs, block_hit, consults)``: ``block`` is
        the stacked array on a hit (``row_specs`` empty), else ``None``
        with one spectrum per row in ``row_specs``; ``consults`` maps row
        position -> that row's per-key hit/miss (consulting rows only).
        """
        block_key = tuple(keys)
        block = self._blocks.get(block_key)
        if block is not None:
            self.block_hits += 1
            return block, [], True, {}
        self.block_misses += 1
        n = keys[0][2]
        row_specs: list[Optional[np.ndarray]] = [None] * len(keys)
        consults: dict[int, bool] = {}
        seen: dict[tuple, int] = {}
        for r, key in enumerate(keys):
            first = seen.setdefault(key, r)
            if first != r:
                row_specs[r] = row_specs[first]
                continue
            taps_t, h, _ = key
            spec, hit = self._kernel_spectrum(taps_t, h, n)
            row_specs[r] = spec
            consults[r] = hit
        recurring = block_key in self._block_seen
        if not recurring:
            if len(self._block_seen) >= 8 * self.max_blocks:
                self._block_seen.pop(next(iter(self._block_seen)))
            self._block_seen[block_key] = None
        elif len(keys) * (n // 2 + 1) <= MAX_BLOCK_ELEMENTS:
            block = np.vstack(row_specs)
            if len(self._blocks) >= self.max_blocks:
                self._blocks.pop(next(iter(self._blocks)))
            self._blocks[block_key] = block
        return block, row_specs, False, consults  # type: ignore[return-value]

    def advance_batch(
        self,
        xs: Sequence[np.ndarray],
        kernels: Sequence[Tuple[Sequence[float], int]],
        *,
        scales: object = None,
    ) -> tuple[list[np.ndarray], AdvanceRecord]:
        """Advance B inputs, each by its **own** ``(taps, h)`` kernel, at once.

        The multi-kernel generalisation of :meth:`advance_many` and the
        workhorse of the lockstep batch solver
        (:func:`repro.core.lockstep.drive_lockstep`): scenario grids,
        implied-vol ladders and Greek bump grids vary volatility/rate per
        cell, so every cell carries a *different* kernel and the same-kernel
        fast path never applies.  Here rows are grouped by padded FFT
        length, each group is stacked into one ``(G, n)`` array, multiplied
        row-wise by a stacked ``(G, n_rfft)`` kernel-spectrum block (cached
        whole — see :meth:`_spectrum_block`), and transformed with a single
        ``rfft``/``irfft`` pair — one batched transform per group instead
        of B Python-level calls.

        Robustness and accounting are **per row**: each row makes its own
        FFT-vs-direct choice against its own magnitude and ``scales[i]``,
        and the returned record's ``rows`` list carries one sub-record per
        input mirroring what a standalone :meth:`advance` would have
        recorded.  Every FFT row's output is bit-identical to its
        standalone advance (same pad, same spectrum; a batched real FFT
        transforms each row exactly as the 1-D transform does), so lockstep
        solves match their serial twins bit-for-bit.

        Parameters
        ----------
        xs:
            The B input rows.
        kernels:
            One ``(taps, h)`` pair per input; ``h = 0`` rows are copied.
        scales:
            ``None``, a scalar applied to every row, or one scale per row
            (``None`` entries disable that row's guard).
        """
        self._tick()
        # lockstep rows are always contiguous float64 (solver windows and
        # batch-output views); skip the per-row ascontiguousarray wrapper
        arrs = [
            x
            if type(x) is np.ndarray
            and x.dtype == _F64
            and x.flags.c_contiguous
            else np.ascontiguousarray(x, dtype=np.float64)
            for x in xs
        ]
        if len(arrs) != len(kernels):
            raise ValidationError(
                f"advance_batch needs one kernel per input: got {len(arrs)} "
                f"inputs, {len(kernels)} kernels"
            )
        kers = [
            (
                taps if type(taps) is tuple else tuple(float(v) for v in taps),
                h if type(h) is int and h >= 0 else check_integer("h", h, minimum=0),
            )
            for taps, h in kernels
        ]
        if not arrs:
            return [], AdvanceRecord("copy", 0, 0, WorkSpan.ZERO, batch=0, rows=[])
        B = len(arrs)
        if scales is None:
            scale_list = [0.0] * B
        elif np.isscalar(scales):
            scale_list = [float(scales)] * B  # type: ignore[arg-type]
        else:
            scale_list = [0.0 if s is None else float(s) for s in scales]  # type: ignore[union-attr]
            if len(scale_list) != B:
                raise ValidationError(
                    f"scales must be a scalar or one per input: got "
                    f"{len(scale_list)} for {B} inputs"
                )
        self.advances += 1
        self.batched_inputs += B
        self.batch_advances += 1
        if self.telemetry is not None:
            self._h_batch_rows.observe(B)
        if self.reuse:
            # Lockstep interleaving destroys the per-solve temporal locality
            # the default spectrum bound assumes: B solves' kernels repeat
            # with a reuse distance of ~B x (distinct kernels per solve).
            # Scale the entry bound with the batch width; MAX_SPECTRA_BYTES
            # still caps the memory.  The direct-path kernel cache reuses
            # with the same distance, so its bound scales alongside.
            self.max_spectra = max(self.max_spectra, 8 * B)
            self.max_weights = max(self.max_weights, 32 * B)

        rows: list[Optional[AdvanceRecord]] = [None] * B
        outs: list[Optional[np.ndarray]] = [None] * B
        fft_groups: dict[int, list[int]] = {}
        direct_groups: dict[int, list[int]] = {}
        pol = self.policy
        # The stock policy reads max|x| only for FFT-eligible kernels, so
        # the per-row magnitude reduce (surprisingly the priciest scalar op
        # in a trapezoid batch) is computed lazily — short-kernel rows skip
        # it entirely.  Decisions are identical to policy.choose(); a
        # subclassed policy falls back to the eager call.
        inline_pol = type(pol) is AdvancePolicy and pol.mode == "auto"
        min_fft = pol.min_fft_size
        max_amp = pol.max_amplification
        for i, (a, (taps_t, h)) in enumerate(zip(arrs, kers)):
            q = len(taps_t) - 1
            if h == 0:
                outs[i] = a.copy()
                rows[i] = AdvanceRecord("copy", len(a), 0, WorkSpan(len(a), 1.0))
                continue
            kernel_len = q * h + 1
            if len(a) < kernel_len:
                self._validate(a, q, h)  # raises the standard message
            if inline_pol:
                if kernel_len < min_fft:
                    method = "direct"
                else:
                    sc = scale_list[i]
                    if sc > 0.0 and len(a):
                        mx = a.max()
                        mn = -a.min()
                        method = (
                            "direct"
                            if (mx if mx >= mn else mn) > max_amp * sc
                            else "fft"
                        )
                    else:
                        method = "fft"
            else:
                x_max = float(np.max(np.abs(a))) if len(a) else 0.0
                method = pol.choose(x_max, scale_list[i], kernel_len)
            if method != "fft":
                if self.reuse:
                    # stacked below — direct rows dominate trapezoid batches
                    direct_groups.setdefault(kernel_len, []).append(i)
                    continue
                w = hstep_weights(taps_t, h)
                y = _direct_correlate(a, w)
                outs[i] = y
                rows[i] = AdvanceRecord(
                    "direct", len(a), h,
                    WorkSpan(
                        2.0 * len(y) * kernel_len,
                        np.log2(kernel_len + 1.0) + 1.0,
                    ),
                )
                continue
            if not self.reuse:
                w = hstep_weights(taps_t, h)
                outs[i] = _fft_correlate(a, w)
                rows[i] = AdvanceRecord(
                    "fft", len(a), h, _legacy_fft_workspan(len(a), kernel_len)
                )
                continue
            fft_groups.setdefault(self.fast_len(len(a)), []).append(i)

        # ---- stacked direct rows: same-shape (input, kernel) rows run as
        # one broadcast multiply-accumulate — identical accumulation order
        # to np.correlate, so each row matches its standalone advance
        # bit-for-bit (the bit-agreement tests pin this).  np.correlate
        # only accumulates left-to-right for kernels up to
        # MAC_STACK_MAX_KERNEL taps (numpy's small_correlate cutoff; it
        # switches to a differently-ordered dot above), so longer kernels
        # stay on the per-row path ----
        for kl, d_idxs in direct_groups.items():
            if len(d_idxs) == 1 or kl > MAC_STACK_MAX_KERNEL:
                for i in d_idxs:
                    taps_t, h = kers[i]
                    la = arrs[i].shape[0]
                    outs[i] = _direct_correlate(arrs[i], self._hstep(taps_t, h))
                    rows[i] = AdvanceRecord(
                        "direct", la, h,
                        WorkSpan(
                            2.0 * (la - kl + 1) * kl,
                            np.log2(kl + 1.0) + 1.0,
                        ),
                    )
                continue
            # ragged stack: rows share the kernel length but not the input
            # length — pad to the longest row (junk tails the per-row
            # output slices never read), exactly like base_rows_batch
            Gd = len(d_idxs)
            d_arrs = [arrs[i] for i in d_idxs]
            d_lens = [a.shape[0] for a in d_arrs]
            la = max(d_lens)
            n_out = la - kl + 1
            ragged_d = min(d_lens) != la
            if not ragged_d:
                Xd = np.concatenate(d_arrs).reshape(Gd, la)
            else:
                lv = np.asarray(d_lens, dtype=np.intp)
                vcat = np.concatenate(d_arrs)
                tot = vcat.shape[0]
                ar = self._arange(max(tot, Gd))
                cum = np.cumsum(lv)
                dst = ar[:tot] + np.repeat(ar[:Gd] * la - (cum - lv), lv)
                Xf = self._xscratch
                if Xf is None or Xf.shape[0] < Gd * la:
                    self._xscratch = Xf = np.zeros(
                        max(Gd * la,
                            2 * (Xf.shape[0] if Xf is not None else 0)),
                        dtype=np.float64,
                    )
                Xf[dst] = vcat
                Xd = Xf[: Gd * la].reshape(Gd, la)
            hstep = self._hstep
            Wd = np.concatenate(
                [hstep(kers[i][0], kers[i][1]) for i in d_idxs]
            ).reshape(Gd, kl)
            yd = Wd[:, 0:1] * Xd[:, :n_out]
            for k in range(1, kl):
                yd += Wd[:, k : k + 1] * Xd[:, k : k + n_out]
            ylist = list(yd)  # row views in one C call
            rcache: dict = {}
            lg2 = np.log2(kl + 1.0) + 1.0
            for r, i in enumerate(d_idxs):
                h = kers[i][1]
                lr = d_lens[r]
                if ragged_d:
                    outs[i] = ylist[r][: lr - kl + 1]
                else:
                    outs[i] = ylist[r]
                rkey = (h, lr)
                rec_d = rcache.get(rkey)
                if rec_d is None:
                    # records are immutable once built, so equal-shape
                    # rows of one group share a single instance
                    rcache[rkey] = rec_d = AdvanceRecord(
                        "direct", lr, h,
                        WorkSpan(2.0 * (lr - kl + 1) * kl, lg2),
                    )
                rows[i] = rec_d

        hits = misses = block_hits = block_misses = 0
        for n, idxs in fft_groups.items():
            one_fft = fft_cost(n)
            if len(idxs) == 1:
                # A lone row gains nothing from stacking: serve it through
                # the plain cached path (same accounting as advance()).
                i = idxs[0]
                taps_t, h = kers[i]
                y, row_ws, hit = self._fft_cached(
                    arrs[i], taps_t, h, (len(taps_t) - 1) * h + 1
                )
                outs[i] = y
                rows[i] = AdvanceRecord(
                    "fft", len(arrs[i]), h, row_ws,
                    spectrum_hit=hit,
                    spectrum_hits=int(hit),
                    spectrum_misses=int(not hit),
                )
                hits += int(hit)
                misses += int(not hit)
                continue
            keys = [(kers[i][0], kers[i][1], n) for i in idxs]
            block, row_specs, block_hit, consults = self._spectrum_block(keys)
            block_hits += int(block_hit)
            block_misses += int(not block_hit)
            # one fancy-index scatter into a fresh zero block instead of
            # 2G per-row slice assignments — the pad tails must be exact
            # zeros (the FFT reads them), which np.zeros provides
            Gf = len(idxs)
            f_arrs = [arrs[i] for i in idxs]
            lv = np.asarray([a.shape[0] for a in f_arrs], dtype=np.intp)
            vcat = np.concatenate(f_arrs)
            tot = vcat.shape[0]
            ar = self._arange(max(tot, Gf))
            dst = ar[:tot] + np.repeat(
                ar[:Gf] * n - (np.cumsum(lv) - lv), lv
            )
            flat = np.zeros(Gf * n, dtype=np.float64)
            flat[dst] = vcat
            X = sfft.rfft(flat.reshape(Gf, n), axis=-1)
            if block is not None:
                X *= block
            else:
                for r, spec in enumerate(row_specs):
                    X[r] *= spec
            Y = sfft.irfft(X, n=n, axis=-1)
            rcache_f: dict = {}
            for r, i in enumerate(idxs):
                taps_t, h = kers[i]
                la = int(lv[r])
                out_len = la - (len(taps_t) - 1) * h
                # a view, not a copy: Y is a fresh per-call temporary and
                # every row belongs to a different solver, so views are
                # disjoint and safe to hand out (and to mutate in place)
                outs[i] = Y[r, :out_len]
                consult = consults.get(r)
                if consult is None:
                    # served from the block cache (or a duplicate key):
                    # no per-key consult happened for this row
                    t = 2.0
                    row_hit: Optional[bool] = None
                else:
                    t = 2.0 if consult else 3.0
                    row_hit = consult
                    hits += int(consult)
                    misses += int(not consult)
                rkey = (la, h, row_hit)
                rec_f = rcache_f.get(rkey)
                if rec_f is None:
                    # immutable once built: same-shape rows with the same
                    # consult outcome share one record instance
                    rcache_f[rkey] = rec_f = AdvanceRecord(
                        "fft", la, h,
                        WorkSpan(
                            t * one_fft.work + 2.0 * n,
                            t * one_fft.span + 1.0,
                        ),
                        spectrum_hit=row_hit,
                        spectrum_hits=int(row_hit is True),
                        spectrum_misses=int(row_hit is False),
                    )
                rows[i] = rec_f

        total = sum(len(a) for a in arrs)
        # scalar-accumulated ``beside`` fold: same additions in the same
        # order as repeated WorkSpan.beside, without B frozen-dataclass
        # intermediates
        wk = 0.0
        sp = 0.0
        methods: set[str] = set()
        for rec in rows:
            rw = rec.workspan  # type: ignore[union-attr]
            wk += rw.work
            if rw.span > sp:
                sp = rw.span
            methods.add(rec.method)  # type: ignore[union-attr]
        ws = WorkSpan(wk, sp)
        consulted = hits + misses > 0
        return list(outs), AdvanceRecord(  # type: ignore[arg-type]
            methods.pop() if len(methods) == 1 else "mixed",
            total,
            max(h for _, h in kers),
            ws,
            spectrum_hit=(misses == 0) if consulted else None,
            spectrum_hits=hits,
            spectrum_misses=misses,
            batch=B,
            block_hits=block_hits,
            block_misses=block_misses,
            rows=rows,  # type: ignore[arg-type]
        )


    # ------------------------------------------------------------------ #
    # Batched naive base rows (docs/DESIGN.md §7.6)
    # ------------------------------------------------------------------ #
    def _table_offset(self, table: np.ndarray) -> int:
        """Offset of ``table`` inside the flat green-table block.

        Registers the table on first sight: one memcpy into a growable
        flat buffer.  Keyed by ``id`` — the entry keeps a reference, so
        the id cannot be recycled while the entry lives.
        """
        key = id(table)
        ent = self._tables.get(key)
        if ent is not None:
            return ent[1]
        self.base_block_misses += 1
        ln = table.shape[0]
        used = self._table_used
        buf = self._table_buf
        if buf is None or used + ln > buf.shape[0]:
            cap = max(
                2 * (buf.shape[0] if buf is not None else 0), used + ln, 8192
            )
            grown = np.empty(cap, dtype=np.float64)
            if used:
                grown[:used] = buf[:used]
            self._table_buf = buf = grown
        buf[used : used + ln] = table
        self._tables[key] = (table, used)
        self._table_used = used + ln
        return used

    def _arange(self, n: int) -> np.ndarray:
        """A ``>= n``-long cached ``arange`` (callers slice what they need)."""
        ar = self._ar
        if ar is None or ar.shape[0] < n:
            self._ar = ar = np.arange(max(2 * n, 256), dtype=np.intp)
        return ar

    def _base_row_one(
        self, req, nt: int, n: int, keep: str, scan: bool
    ) -> tuple[np.ndarray, int]:
        """Serve one base row alone — the same ops a serial row performs."""
        v = req.values
        el = req.e_len
        if el:
            off = self._table_offset(req.table)
            s = off + req.e_start
            ext = self._table_buf[s : s + req.g_stride * el : req.g_stride]
            x = np.concatenate([v, ext])
        else:
            x = v
        cont = np.correlate(x, req.taps, mode="valid") if nt else x
        if req.table is not None:
            off = self._table_offset(req.table)
            s = off + req.g_start
            grn = self._table_buf[s : s + req.g_stride * n : req.g_stride]
        else:
            grn = req.green
        if keep == "prefix":
            d = scan_prefix_boundary(cont >= grn)
            return cont[: d + 1].copy(), d
        d = scan_prefix_boundary(grn >= cont) if scan else -1
        return np.maximum(cont, grn), d

    def base_rows_batch(
        self, reqs: Sequence
    ) -> tuple[list[np.ndarray], list[int], BaseRowsRecord]:
        """Serve B naive base-case rows (one per live solver) in one call.

        The nonlinear sibling of :meth:`advance_batch` and the other half
        of the lockstep protocol (docs/DESIGN.md §7.6).  ``reqs`` are
        :class:`~repro.core.lockstep.BaseRowRequest`-shaped objects; rows
        group by ``(tap count, row length, keep-mode)``, each group is
        stacked into a ``(G, n+q)`` array, the direct convolutions run as
        one vectorised multiply-accumulate per tap (left-to-right, the
        same accumulation order as a serial ``np.correlate`` row — the
        bit-agreement tests pin the equivalence), the green comparison
        rows are gathered from the registered per-solver tables in one
        fancy index, and the max rule + divider scan
        (:func:`~repro.core.boundary.scan_prefix_boundary`, vectorised as
        a row-wise ``argmin``) run per group.  Returns ``(values,
        dividers, record)`` with per-row outputs in input order.

        ``base_block_misses`` counts green tables copied into the flat
        block (once per solver table); ``base_block_hits`` counts stacked
        gathers served entirely from already-registered tables — a warm
        batch round touches no table memory beyond the gather itself.
        """
        self._tick()
        B = len(reqs)
        self.base_batch_calls += 1
        self.base_batch_rows += B
        if self.telemetry is not None:
            self._h_base_rows.observe(B)
        outs: list[Optional[np.ndarray]] = [None] * B
        divs: list[int] = [-1] * B
        if not B:
            return [], [], BaseRowsRecord(0, 0, WorkSpan.ZERO)
        if self._table_used * 8 > MAX_TABLE_BYTES:
            # tables are per-solve; drop the block wholesale and let live
            # solvers re-register (offsets are never held across calls)
            self._tables.clear()
            self._table_used = 0
            self._ckey = object()

        # ---- one fused sweep: group rows and collect their metadata ----
        # Rows group by the request's precomputed ``kcode`` (tap count,
        # keep, scan — fixed per request, so derived once in its
        # constructor) plus the row length's *bit length*.  Exact lengths
        # deliberately do not key the grouping: a heterogeneous round
        # scatters its rows across dozens of lengths, and per-length
        # groups would each pay the full set of numpy fixed costs.  The
        # geometric bucket instead stacks near-length rows into one
        # ragged super-group padded to the bucket's longest row (≤ 2x
        # pad waste) and masks the tails in the divider scan — the pad
        # columns are junk that no output ever reads.
        # Group layout: [idxs, values, lengths, first request,
        # plain-green count, cold-table count, taps, e_len, e_off,
        # g_off] — parallel per-field lists, so the group body reads
        # columns directly instead of transposing B row tuples.  The
        # green stride needs no per-row column: it is baked into
        # ``kcode``, so every group is stride-uniform by construction.
        groups: dict[int, list] = {}
        gget = groups.get
        toff = self._table_offset
        ck = self._ckey
        for i, r in enumerate(reqs):
            v = r.values
            el = r.e_len
            n = v.shape[0] + el + r.noff
            key = (n.bit_length() << 28) | r.kcode
            g = gget(key)
            if g is None:
                groups[key] = g = [[], [], [], r, 0, 0, [], [], [], []]
            tab = r.table
            if tab is not None:
                if r.bkey is ck:
                    off = r.boff
                else:
                    mb = self.base_block_misses
                    off = toff(tab)
                    if self.base_block_misses != mb:
                        g[5] += 1
                    r.boff = off
                    r.bkey = ck
                if n <= 0:
                    outs[i] = _EMPTY_ROW
                    continue
                g[0].append(i)
                g[1].append(v)
                g[2].append(n)
                g[6].append(r.taps)
                g[7].append(el)
                g[8].append(off + r.e_start if el else 0)
                g[9].append(off + r.g_start)
            else:
                if n <= 0:
                    outs[i] = _EMPTY_ROW
                    continue
                g[0].append(i)
                g[1].append(v)
                g[2].append(n)
                g[4] += 1
                g[6].append(r.taps)
                g[7].append(0)
                g[8].append(0)
                g[9].append(0)

        total_cells = 0
        numba_mac = self._numba_mac
        for key, g in groups.items():
            idxs = g[0]
            G = len(idxs)
            if G == 0:
                continue
            r0 = g[3]
            nt = (r0.kcode >> 3) & 0x1FFFF
            lens = g[2]
            keep = r0.keep
            scan = r0.scan
            total_cells += sum(lens)
            if G == 1:
                i = idxs[0]
                outs[i], divs[i] = self._base_row_one(
                    reqs[i], nt, lens[0], keep, scan
                )
                continue
            if g[5] == 0:
                self.base_block_hits += 1
            plain_green = g[4] > 0
            q = nt - 1 if nt else 0
            n = max(lens)
            ragged = min(lens) != n
            m = n + q
            vlist = g[1]
            tlist = g[6]
            el_l = g[7]
            eo_l = g[8]
            go_l = g[9]
            buf = self._table_buf
            # stride-uniform by construction (stride is part of kcode), so
            # gather indices build from the cached arange with one
            # broadcast add instead of a per-row multiply
            st0 = r0.g_stride
            # ---- stack the windows into a (G, m) pad, m = n_max + q.
            # Uniform rounds stack with one concatenate; ragged rounds
            # scatter the concatenated values through one fancy index
            # (dst = row*m + column, all intp arithmetic).  Pad columns
            # beyond a row's own window hold zeros/stale cells — the MAC
            # runs over them, but every output slice stops at the row's
            # own length, so the junk is never read. ----
            if not ragged:
                ar = self._arange(n + 1)
                if q == 0 or not any(el_l):
                    # no extension columns anywhere: every row is already
                    # m cells, one concatenate is the whole stack
                    X = np.concatenate(vlist).reshape(G, m)
                else:
                    X = np.empty((G, m), dtype=np.float64)
                    els = np.asarray(el_l, dtype=np.intp)
                    e_offs = np.asarray(eo_l, dtype=np.intp)
                    for e in range(q + 1):
                        rows_e = np.nonzero(els == e)[0]
                        ge = rows_e.shape[0]
                        if ge == 0:
                            continue
                        if ge == G:
                            sub = np.concatenate(vlist)
                        else:
                            sub = np.concatenate([vlist[r] for r in rows_e])
                        X[rows_e, : m - e] = sub.reshape(ge, m - e)
                        for k in range(e):
                            X[rows_e, m - e + k] = buf[
                                e_offs[rows_e] + k * st0
                            ]
                lens_np = None
            else:
                lens_np = np.asarray(lens, dtype=np.intp)
                els = (
                    np.asarray(el_l, dtype=np.intp)
                    if q and any(el_l) else None
                )
                lens_v = lens_np + q - els if els is not None else (
                    lens_np + q if q else lens_np
                )
                vcat = np.concatenate(vlist)
                tot = vcat.shape[0]
                ar = self._arange(max(tot, n + 1, G))
                cum = np.cumsum(lens_v)
                starts = cum - lens_v
                dst = ar[:tot] + np.repeat(ar[:G] * m - starts, lens_v)
                Xf = self._xscratch
                if Xf is None or Xf.shape[0] < G * m:
                    # fresh scratch starts zeroed; on reuse the pad cells
                    # hold stale finite values from earlier rounds — junk
                    # the output slices never read, so no re-zeroing
                    self._xscratch = Xf = np.zeros(
                        max(G * m, 2 * (Xf.shape[0] if Xf is not None else 0)),
                        dtype=np.float64,
                    )
                Xf[dst] = vcat
                X = Xf[: G * m].reshape(G, m)
                if els is not None:
                    e_offs = np.asarray(eo_l, dtype=np.intp)
                    for k in range(q):
                        rk = np.nonzero(els > k)[0]
                        if rk.size:
                            X[rk, lens_v[rk] + k] = buf[
                                e_offs[rk] + k * st0
                            ]
            g_offs = np.asarray(go_l, dtype=np.intp)
            if not plain_green:
                row_idx = ar[:n] if st0 == 1 else st0 * ar[:n]
                idx = g_offs[:, None] + row_idx
                reach = int(g_offs.max()) + st0 * (n - 1)
                if reach >= buf.shape[0]:
                    # ragged pads may reach past the last registered
                    # table; clamp — the overhang cells are junk that the
                    # per-row output slices never read
                    np.minimum(idx, buf.shape[0] - 1, out=idx)
                Gm = buf[idx]
            else:
                Gm = np.zeros((G, n), dtype=np.float64)
                for r, i in enumerate(idxs):
                    req = reqs[i]
                    nr = lens[r]
                    if req.table is None:
                        Gm[r, :nr] = req.green
                    else:
                        s = g_offs[r]
                        Gm[r, :nr] = buf[s : s + st0 * nr : st0]
            if nt == 0:
                cont = X[:, :n]
            else:
                cached = self._tc_cache.get(key)
                if (
                    cached is not None
                    and len(cached[0]) == G
                    and all(a is b for a, b in zip(cached[0], tlist))
                ):
                    tc = cached[1]
                else:
                    tc = np.concatenate(tlist).reshape(G, nt)
                    self._tc_cache[key] = (tlist, tc)
                if numba_mac is not None:
                    cont = np.empty((G, n), dtype=np.float64)
                    numba_mac(X, tc, cont)
                else:
                    cont = tc[:, 0:1] * X[:, :n]
                    for k in range(1, nt):
                        cont += tc[:, k : k + 1] * X[:, k : k + n]
            # replies are views of the group matrices — each lives only until
            # its solver's next request replaces it, so no per-row copies.
            # The divider scan appends a False sentinel column before the
            # row-wise argmin: the argmin then *is* divider+1 directly
            # (all-red rows hit the sentinel at their own length), replacing
            # the fancy-index fixup pass of the per-row scan with plain
            # arithmetic.  Ragged rounds force every column at or past a
            # row's own length to False in one vectorised logical-and, which
            # both plants the sentinel and kills the junk-pad comparisons.
            if keep == "prefix":
                pad = np.empty((G, n + 1), dtype=np.bool_)
                np.greater_equal(cont, Gm, out=pad[:, :n])
                if lens_np is None:
                    pad[:, n] = False
                else:
                    np.logical_and(
                        pad, ar[: n + 1] < lens_np[:, None], out=pad
                    )
                fl = pad.argmin(axis=1).tolist()
                crows = list(cont)  # row views in one C call
                if G == B:
                    # the whole call is one group: idxs is 0..B-1 in
                    # input order, so build the reply lists outright
                    divs = [f - 1 for f in fl]
                    outs = [cr[:f] for cr, f in zip(crows, fl)]
                else:
                    for i, cr, f in zip(idxs, crows, fl):
                        divs[i] = f - 1
                        outs[i] = cr[:f]
            else:  # "max"
                M = np.maximum(cont, Gm)
                mrows = list(M)
                if scan:
                    pad = np.empty((G, n + 1), dtype=np.bool_)
                    np.greater_equal(Gm, cont, out=pad[:, :n])
                    if lens_np is None:
                        pad[:, n] = False
                    else:
                        np.logical_and(
                            pad, ar[: n + 1] < lens_np[:, None], out=pad
                        )
                    fl = pad.argmin(axis=1).tolist()
                    if lens_np is None:
                        for i, mr, f in zip(idxs, mrows, fl):
                            divs[i] = f - 1
                            outs[i] = mr
                    else:
                        for i, mr, f, nr in zip(idxs, mrows, fl, lens):
                            divs[i] = f - 1
                            outs[i] = mr[:nr]
                elif lens_np is None:
                    for i, mr in zip(idxs, mrows):
                        outs[i] = mr
                else:
                    for i, mr, nr in zip(idxs, mrows, lens):
                        outs[i] = mr[:nr]
        ws = WorkSpan(2.0 * total_cells, np.log2(total_cells + 2.0) + 1.0)
        return outs, divs, BaseRowsRecord(B, len(groups), ws)  # type: ignore[arg-type]


def engine_delta(before: dict, after: dict) -> dict:
    """Per-solve view of two :meth:`AdvanceEngine.cache_info` snapshots.

    Cumulative counters become this-solve deltas (so results from solves
    sharing one engine report their own activity, not the whole batch's);
    cache sizes stay absolute — they describe the engine, not the solve.
    """
    out = dict(after)
    for key in (
        "spectrum_hits",
        "spectrum_misses",
        "advances",
        "batched_inputs",
        "batch_advances",
        "block_hits",
        "block_misses",
        "base_batch_calls",
        "base_batch_rows",
        "base_block_hits",
        "base_block_misses",
        "checkpoints",
    ):
        out[key] = after[key] - before[key]
    return out


#: Default engines behind the module-level compatibility wrapper are
#: per-thread: an engine's scratch buffers are reused across calls, so a
#: single engine must not serve concurrent advances (each solver creates
#: its own per-solve engine; only this stateless wrapper needs the guard).
_DEFAULT_ENGINES = threading.local()


def _default_engine() -> AdvanceEngine:
    engine = getattr(_DEFAULT_ENGINES, "engine", None)
    if engine is None:
        engine = _DEFAULT_ENGINES.engine = AdvanceEngine()
    return engine


def advance(
    x: np.ndarray,
    taps: Sequence[float],
    h: int,
    *,
    scale: float | None = None,
    policy: AdvancePolicy = DEFAULT_POLICY,
    engine: Optional[AdvanceEngine] = None,
) -> tuple[np.ndarray, AdvanceRecord]:
    """Advance ``x`` by ``h`` linear stencil steps; return (values, record).

    Compatibility wrapper over :class:`AdvanceEngine` — stateless callers get
    a shared default engine (or a fresh one when ``policy`` differs from the
    default, so the policy argument keeps its old per-call meaning).  Solvers
    on the hot path thread an explicit per-solve engine instead.

    Parameters
    ----------
    x:
        Cell values of the base row, covering columns ``[c .. c + len(x) - 1]``
        in the caller's coordinates.
    taps:
        One-step weights at offsets ``0..q``.
    h:
        Number of steps (>= 0).  Requires ``len(x) >= q*h + 1``.
    scale:
        Meaningful output magnitude for the robustness guard (see
        :class:`AdvancePolicy`); ``None`` disables the guard.
    policy:
        FFT-vs-direct decision policy (ignored when ``engine`` is given —
        the engine carries its own).
    engine:
        Explicit engine to advance on (and whose caches to warm).

    Returns
    -------
    (y, record) where ``y[c'] = (A^h x)[c']`` covers the ``len(x) - q*h``
    left-aligned output columns, and ``record`` carries the chosen method and
    the work/span this call contributes (FFT: ``O(n log n)`` work,
    ``O(log n loglog n)`` span; direct: ``O(n * qh)`` work, ``O(log)`` span).
    """
    if engine is None:
        engine = _default_engine() if policy is DEFAULT_POLICY else AdvanceEngine(policy)
    return engine.advance(x, taps, h, scale=scale)


def advance_full_row(
    x: np.ndarray,
    taps: Sequence[float],
    h: int,
    *,
    scale: float | None = None,
    policy: AdvancePolicy = DEFAULT_POLICY,
    engine: Optional[AdvanceEngine] = None,
) -> tuple[np.ndarray, AdvanceRecord]:
    """Alias of :func:`advance` named for the Bermudan/European jump use-case.

    On tree grids a full row ``i+h`` (width ``q*(i+h)+1``) advanced ``h``
    steps yields exactly the full row ``i`` (width ``q*i+1``), because the
    valid-mode output shrinks by ``q*h`` — no padding or boundary conditions
    are ever needed inside the lattice triangle.
    """
    return advance(x, taps, h, scale=scale, policy=policy, engine=engine)
