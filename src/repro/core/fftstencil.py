"""FFT-accelerated multi-step advance of linear 1-D stencils.

This is our implementation of the aperiodic ('valid-mode') form of the
linear-stencil algorithm of Ahmad et al. (SPAA 2021) — reference [1] of the
paper — which the nonlinear solvers invoke on provably-all-red trapezoids:

    ``advance(x, taps, h)[c] = (A^h x)[c] = sum_{k=0}^{q h} W_k x_{c+k}``

where ``A`` is the one-step stencil operator and ``W`` the h-step kernel from
:mod:`repro.core.weights`.  The result covers exactly the cells whose full
dependency cone lies inside ``x`` (output length ``len(x) - q*h``).

Plan caching (docs/DESIGN.md §3): the trapezoid decomposition requests the
same ``(taps, h)`` kernels at every recursion level — hundreds of
identical-shape advances per solve — so :class:`AdvanceEngine` amortises the
kernel's forward transform across reuses (as [1] does): it caches the
*conjugated rFFT of the kernel* keyed by ``(taps, h, padded_n)``, memoises
``next_fast_len`` pad sizes, and reuses zero-padded scratch buffers.  A warm
advance is then one forward rFFT of ``x``, one pointwise multiply, one
inverse — versus ``fftconvolve``'s three transforms of a larger padded
length plus a reversed-kernel copy.  :meth:`AdvanceEngine.advance_many`
additionally stacks same-kernel advances into one batched
``scipy.fft.rfft(axis=-1)`` call for portfolio workloads.

Numerical-robustness extension (documented in docs/DESIGN.md §1): FFT
convolution carries an *absolute* error ~``eps * ||x||_2 * ||W||_2``, so when
the input's magnitude dwarfs the caller's meaningful output scale the routine
falls back to direct correlation, whose error is relative to each output's
own positive term sum.  The paper's evaluated regime (bounded red values)
never triggers the fallback; the Y=0 all-red regime does.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Iterable, Literal, Optional, Sequence, Tuple

import numpy as np
from scipy import fft as sfft
from scipy.signal import fftconvolve

from repro.core.weights import hstep_weights
from repro.parallel.workspan import WorkSpan, fft_cost
from repro.util.validation import ValidationError, check_integer


@dataclass(frozen=True)
class AdvancePolicy:
    """Controls the FFT-vs-direct decision of :func:`advance`.

    Parameters
    ----------
    mode:
        ``"auto"`` (default) — FFT unless the amplification guard trips;
        ``"fft"`` — always FFT; ``"direct"`` — always direct correlation.
    max_amplification:
        In auto mode, fall back to direct correlation when
        ``max|x| > max_amplification * scale`` (``scale`` is the caller's
        meaningful output magnitude, e.g. the strike).  The default tolerates
        twelve orders of magnitude of headroom above the price scale before
        the ~1e-16 relative FFT noise could reach ~1e-4 of the price.
    min_fft_size:
        Below this many kernel taps direct correlation is faster anyway.
    """

    mode: Literal["auto", "fft", "direct"] = "auto"
    max_amplification: float = 1e12
    min_fft_size: int = 32

    def choose(self, x_max: float, scale: float, kernel_len: int) -> str:
        if self.mode != "auto":
            return self.mode
        if kernel_len < self.min_fft_size:
            return "direct"
        if scale > 0.0 and x_max > self.max_amplification * scale:
            return "direct"
        return "fft"


DEFAULT_POLICY = AdvancePolicy()


@dataclass
class AdvanceRecord:
    """Bookkeeping for one advance call (aggregated into solver stats).

    ``spectrum_hit`` is ``True``/``False`` when the engine's kernel-spectrum
    cache was consulted (hit/miss), ``None`` on paths that never touch it
    (direct correlation, h=0 copies, the legacy ``fftconvolve`` path).  For
    batched records it is ``True`` only when *every* length group hit.
    ``spectrum_hits``/``spectrum_misses`` carry the exact per-call counts
    (a batched advance consults the cache once per length group).
    ``batch`` counts the inputs a single :meth:`AdvanceEngine.advance_many`
    transform carried (1 for plain advances).
    """

    method: str
    input_len: int
    h: int
    workspan: WorkSpan
    spectrum_hit: Optional[bool] = None
    spectrum_hits: int = 0
    spectrum_misses: int = 0
    batch: int = 1


def _direct_correlate(x: np.ndarray, w: np.ndarray) -> np.ndarray:
    """Valid-mode correlation sum_k w_k x_{c+k} via np.correlate (C speed)."""
    return np.correlate(x, w, mode="valid")


def _fft_correlate(x: np.ndarray, w: np.ndarray) -> np.ndarray:
    """Legacy valid-mode correlation (convolve with reversed kernel).

    Kept as the ``reuse=False`` reference path: it re-transforms the kernel
    on every call, exactly the behaviour the plan cache amortises away.  The
    old-vs-new benchmark (``benchmarks/bench_advance_engine.py``) times this
    against the cached path.
    """
    return fftconvolve(x, w[::-1], mode="valid")


def _legacy_fft_workspan(input_len: int, kernel_len: int) -> WorkSpan:
    """Work/span of the fftconvolve path: 3 transforms of the padded length."""
    n = sfft.next_fast_len(input_len + kernel_len - 1)
    one_fft = fft_cost(n)
    return WorkSpan(3.0 * one_fft.work + 2.0 * n, 3.0 * one_fft.span + 1.0)


class AdvanceEngine:
    """Stateful, plan-caching multi-step advance (docs/DESIGN.md §3).

    Each solver instantiates one engine per solve — or shares one across a
    batch of solves (:func:`repro.core.api.price_many`) — and calls
    :meth:`advance` where it previously called the free function.  The engine
    caches, across calls:

    * the conjugated kernel spectrum ``conj(rfft(W, n))`` keyed by
      ``(taps, h, n)`` — one forward kernel transform per distinct shape,
      however many advances reuse it;
    * memoised ``next_fast_len`` pad sizes (one lookup per distinct input
      length, i.e. per recursion level);
    * zero-padded scratch buffers keyed by pad size, so warm advances do not
      allocate the padded input.

    Correlation uses the conjugate trick: ``irfft(rfft(x, n) * conj(rfft(W,
    n)))[c] = sum_k W_k x_{c+k}`` for ``c <= len(x) - len(W)`` whenever
    ``n >= len(x)`` (no circular wrap can reach the valid prefix), so the pad
    length is ``next_fast_len(len(x))`` — smaller than ``fftconvolve``'s
    ``next_fast_len(len(x) + len(W) - 1)`` — and no reversed-kernel copy is
    ever made.

    Parameters
    ----------
    policy:
        FFT-vs-direct robustness policy applied per call.
    reuse:
        ``False`` disables every cache and routes FFT advances through the
        legacy ``fftconvolve`` path — the exact pre-engine behaviour, kept
        for the old-vs-new benchmark and regression comparisons.

    An engine is **not thread-safe** (the scratch buffers are shared across
    its calls); use one engine per solve/thread.  The module-level
    :func:`advance` wrapper keeps one default engine per thread.
    max_spectra / max_scratch:
        Bounds on the two caches (oldest-first eviction); a single solve
        stays far below them, the defaults only matter for long-lived shared
        engines.
    """

    def __init__(
        self,
        policy: AdvancePolicy = DEFAULT_POLICY,
        *,
        reuse: bool = True,
        max_spectra: int = 512,
        max_scratch: int = 64,
    ):
        self.policy = policy
        self.reuse = reuse
        self.max_spectra = max_spectra
        self.max_scratch = max_scratch
        self._spectra: dict[tuple, np.ndarray] = {}
        self._scratch: dict[int, np.ndarray] = {}
        self._fast_len: dict[int, int] = {}
        # Counters (exposed through SolveStats / cache_info for benchmarks).
        self.spectrum_hits = 0
        self.spectrum_misses = 0
        self.advances = 0
        self.batched_inputs = 0

    # ------------------------------------------------------------------ #
    # Plan helpers
    # ------------------------------------------------------------------ #
    def fast_len(self, n: int) -> int:
        """Memoised ``scipy.fft.next_fast_len`` (one lookup per level)."""
        cached = self._fast_len.get(n)
        if cached is None:
            cached = sfft.next_fast_len(n)
            self._fast_len[n] = cached
        return cached

    def prepare(
        self, taps: Sequence[float], jobs: Iterable[Tuple[int, int]]
    ) -> None:
        """Precompute full plans for known ``(h, input_len)`` advance shapes.

        Drivers whose advance shapes are known up front — the Bermudan jump
        chain advances full rows of statically known widths — pass them here
        to materialise the h-step kernel, the ``next_fast_len`` pad size,
        *and* the kernel spectrum before the solve starts.  Shapes that only
        emerge at runtime (the trapezoid recursion's divider-dependent
        windows) plan themselves on first use instead.
        """
        taps_t = tuple(float(v) for v in taps)
        for h, input_len in jobs:
            h = int(h)
            if h <= 0:
                continue
            w = hstep_weights(taps_t, h)
            if len(w) <= input_len:
                self._kernel_spectrum(taps_t, h, self.fast_len(int(input_len)), w)

    def cache_info(self) -> dict:
        """Counters for benchmarks and the engine regression tests."""
        return {
            "spectrum_hits": self.spectrum_hits,
            "spectrum_misses": self.spectrum_misses,
            "cached_spectra": len(self._spectra),
            "cached_scratch": len(self._scratch),
            "advances": self.advances,
            "batched_inputs": self.batched_inputs,
        }

    def _kernel_spectrum(
        self, taps_t: tuple, h: int, n: int, w: np.ndarray
    ) -> tuple[np.ndarray, bool]:
        key = (taps_t, h, n)
        spec = self._spectra.get(key)
        if spec is not None:
            self.spectrum_hits += 1
            return spec, True
        self.spectrum_misses += 1
        spec = np.conj(sfft.rfft(w, n=n))
        if len(self._spectra) >= self.max_spectra:
            self._spectra.pop(next(iter(self._spectra)))
        self._spectra[key] = spec
        return spec, False

    def _padded(self, x: np.ndarray, n: int) -> np.ndarray:
        buf = self._scratch.get(n)
        if buf is None:
            if len(self._scratch) >= self.max_scratch:
                self._scratch.pop(next(iter(self._scratch)))
            buf = np.zeros(n, dtype=np.float64)
            self._scratch[n] = buf
        m = len(x)
        buf[:m] = x
        buf[m:] = 0.0
        return buf

    # ------------------------------------------------------------------ #
    # Advances
    # ------------------------------------------------------------------ #
    @staticmethod
    def _validate(x: np.ndarray, q: int, h: int) -> int:
        kernel_len = q * h + 1
        if len(x) < kernel_len:
            raise ValidationError(
                f"input of length {len(x)} too short for h={h} steps of a "
                f"{q + 1}-tap stencil (needs >= {kernel_len})"
            )
        return kernel_len

    def _fft_cached(
        self, x: np.ndarray, taps_t: tuple, h: int, w: np.ndarray
    ) -> tuple[np.ndarray, WorkSpan, bool]:
        m = len(x)
        n = self.fast_len(m)
        spec, hit = self._kernel_spectrum(taps_t, h, n, w)
        X = sfft.rfft(self._padded(x, n))
        X *= spec
        y = sfft.irfft(X, n=n)[: m - len(w) + 1]
        one_fft = fft_cost(n)
        transforms = 2.0 if hit else 3.0
        ws = WorkSpan(
            transforms * one_fft.work + 2.0 * n, transforms * one_fft.span + 1.0
        )
        return y, ws, hit

    def advance(
        self,
        x: np.ndarray,
        taps: Sequence[float],
        h: int,
        *,
        scale: float | None = None,
    ) -> tuple[np.ndarray, AdvanceRecord]:
        """Advance ``x`` by ``h`` linear stencil steps; return (values, record).

        Same contract as the module-level :func:`advance` (which now wraps a
        default engine): ``y[c'] = (A^h x)[c']`` on the ``len(x) - q*h``
        left-aligned output columns.
        """
        h = check_integer("h", h, minimum=0)
        x = np.ascontiguousarray(x, dtype=np.float64)
        taps_t = tuple(float(v) for v in taps)
        q = len(taps_t) - 1
        self.advances += 1
        if h == 0:
            return x.copy(), AdvanceRecord("copy", len(x), 0, WorkSpan(len(x), 1.0))
        kernel_len = self._validate(x, q, h)
        w = hstep_weights(taps_t, h)
        x_max = float(np.max(np.abs(x))) if len(x) else 0.0
        method = self.policy.choose(
            x_max, scale if scale is not None else 0.0, kernel_len
        )
        if method == "fft":
            if self.reuse:
                y, ws, hit = self._fft_cached(x, taps_t, h, w)
                return y, AdvanceRecord(
                    "fft",
                    len(x),
                    h,
                    ws,
                    spectrum_hit=hit,
                    spectrum_hits=int(hit),
                    spectrum_misses=int(not hit),
                )
            y = _fft_correlate(x, w)
            return y, AdvanceRecord(
                "fft", len(x), h, _legacy_fft_workspan(len(x), kernel_len)
            )
        y = _direct_correlate(x, w)
        ws = WorkSpan(2.0 * len(y) * kernel_len, np.log2(kernel_len + 1.0) + 1.0)
        return y, AdvanceRecord(method, len(x), h, ws)

    def advance_many(
        self,
        xs: Sequence[np.ndarray],
        taps: Sequence[float],
        h: int,
        *,
        scale: float | None = None,
    ) -> tuple[list[np.ndarray], AdvanceRecord]:
        """Advance many inputs by the *same* ``(taps, h)`` kernel at once.

        Inputs of equal length are stacked and transformed in a single
        batched ``rfft(axis=-1)``/``irfft(axis=-1)`` pair against one cached
        kernel spectrum — the portfolio fast path behind
        :func:`repro.core.api.price_many`.  Mixed lengths are grouped by
        length.  Returns the per-input outputs (input order preserved) and
        one aggregate record.
        """
        h = check_integer("h", h, minimum=0)
        taps_t = tuple(float(v) for v in taps)
        q = len(taps_t) - 1
        arrs = [np.ascontiguousarray(x, dtype=np.float64) for x in xs]
        total = sum(len(a) for a in arrs)
        if not arrs:
            return [], AdvanceRecord("copy", 0, h, WorkSpan.ZERO, batch=0)
        if h == 0:
            self.advances += 1
            return [a.copy() for a in arrs], AdvanceRecord(
                "copy", total, 0, WorkSpan(total, 1.0), batch=len(arrs)
            )
        kernel_len = q * h + 1
        for a in arrs:
            self._validate(a, q, h)
        w = hstep_weights(taps_t, h)
        x_max = max(float(np.max(np.abs(a))) if len(a) else 0.0 for a in arrs)
        method = self.policy.choose(
            x_max, scale if scale is not None else 0.0, kernel_len
        )
        self.advances += 1
        self.batched_inputs += len(arrs)
        if method != "fft" or not self.reuse:
            outs = [
                _fft_correlate(a, w) if method == "fft" else _direct_correlate(a, w)
                for a in arrs
            ]
            if method == "fft":
                ws = WorkSpan.ZERO
                for a in arrs:
                    ws = ws.then(_legacy_fft_workspan(len(a), kernel_len))
            else:
                n_out = sum(len(o) for o in outs)
                ws = WorkSpan(
                    2.0 * n_out * kernel_len, np.log2(kernel_len + 1.0) + 1.0
                )
            return outs, AdvanceRecord(method, total, h, ws, batch=len(arrs))

        # Group indices by input length; one batched transform per group.
        groups: dict[int, list[int]] = {}
        for idx, a in enumerate(arrs):
            groups.setdefault(len(a), []).append(idx)
        outs: list[Optional[np.ndarray]] = [None] * len(arrs)
        ws = WorkSpan.ZERO
        hits = misses = 0
        for m, idxs in groups.items():
            n = self.fast_len(m)
            spec, hit = self._kernel_spectrum(taps_t, h, n, w)
            if hit:
                hits += 1
            else:
                misses += 1
            stack = np.zeros((len(idxs), n), dtype=np.float64)
            for r, idx in enumerate(idxs):
                stack[r, :m] = arrs[idx]
            X = sfft.rfft(stack, axis=-1)
            X *= spec
            Y = sfft.irfft(X, n=n, axis=-1)
            out_len = m - kernel_len + 1
            for r, idx in enumerate(idxs):
                outs[idx] = Y[r, :out_len].copy()
            one_fft = fft_cost(n)
            transforms = 2.0 * len(idxs) + (0.0 if hit else 1.0)
            # batched rows transform independently: critical path is one
            # forward/inverse pair (plus the kernel transform on a miss)
            ws = ws.then(
                WorkSpan(
                    transforms * one_fft.work + 2.0 * n * len(idxs),
                    (2.0 if hit else 3.0) * one_fft.span + 1.0,
                )
            )
        return list(outs), AdvanceRecord(  # type: ignore[arg-type]
            "fft",
            total,
            h,
            ws,
            spectrum_hit=misses == 0,
            spectrum_hits=hits,
            spectrum_misses=misses,
            batch=len(arrs),
        )


def engine_delta(before: dict, after: dict) -> dict:
    """Per-solve view of two :meth:`AdvanceEngine.cache_info` snapshots.

    Cumulative counters become this-solve deltas (so results from solves
    sharing one engine report their own activity, not the whole batch's);
    cache sizes stay absolute — they describe the engine, not the solve.
    """
    out = dict(after)
    for key in ("spectrum_hits", "spectrum_misses", "advances", "batched_inputs"):
        out[key] = after[key] - before[key]
    return out


#: Default engines behind the module-level compatibility wrapper are
#: per-thread: an engine's scratch buffers are reused across calls, so a
#: single engine must not serve concurrent advances (each solver creates
#: its own per-solve engine; only this stateless wrapper needs the guard).
_DEFAULT_ENGINES = threading.local()


def _default_engine() -> AdvanceEngine:
    engine = getattr(_DEFAULT_ENGINES, "engine", None)
    if engine is None:
        engine = _DEFAULT_ENGINES.engine = AdvanceEngine()
    return engine


def advance(
    x: np.ndarray,
    taps: Sequence[float],
    h: int,
    *,
    scale: float | None = None,
    policy: AdvancePolicy = DEFAULT_POLICY,
    engine: Optional[AdvanceEngine] = None,
) -> tuple[np.ndarray, AdvanceRecord]:
    """Advance ``x`` by ``h`` linear stencil steps; return (values, record).

    Compatibility wrapper over :class:`AdvanceEngine` — stateless callers get
    a shared default engine (or a fresh one when ``policy`` differs from the
    default, so the policy argument keeps its old per-call meaning).  Solvers
    on the hot path thread an explicit per-solve engine instead.

    Parameters
    ----------
    x:
        Cell values of the base row, covering columns ``[c .. c + len(x) - 1]``
        in the caller's coordinates.
    taps:
        One-step weights at offsets ``0..q``.
    h:
        Number of steps (>= 0).  Requires ``len(x) >= q*h + 1``.
    scale:
        Meaningful output magnitude for the robustness guard (see
        :class:`AdvancePolicy`); ``None`` disables the guard.
    policy:
        FFT-vs-direct decision policy (ignored when ``engine`` is given —
        the engine carries its own).
    engine:
        Explicit engine to advance on (and whose caches to warm).

    Returns
    -------
    (y, record) where ``y[c'] = (A^h x)[c']`` covers the ``len(x) - q*h``
    left-aligned output columns, and ``record`` carries the chosen method and
    the work/span this call contributes (FFT: ``O(n log n)`` work,
    ``O(log n loglog n)`` span; direct: ``O(n * qh)`` work, ``O(log)`` span).
    """
    if engine is None:
        engine = _default_engine() if policy is DEFAULT_POLICY else AdvanceEngine(policy)
    return engine.advance(x, taps, h, scale=scale)


def advance_full_row(
    x: np.ndarray,
    taps: Sequence[float],
    h: int,
    *,
    scale: float | None = None,
    policy: AdvancePolicy = DEFAULT_POLICY,
    engine: Optional[AdvanceEngine] = None,
) -> tuple[np.ndarray, AdvanceRecord]:
    """Alias of :func:`advance` named for the Bermudan/European jump use-case.

    On tree grids a full row ``i+h`` (width ``q*(i+h)+1``) advanced ``h``
    steps yields exactly the full row ``i`` (width ``q*i+1``), because the
    valid-mode output shrinks by ``q*h`` — no padding or boundary conditions
    are ever needed inside the lattice triangle.
    """
    return advance(x, taps, h, scale=scale, policy=policy, engine=engine)
