"""FFT-accelerated multi-step advance of linear 1-D stencils.

This is our implementation of the aperiodic ('valid-mode') form of the
linear-stencil algorithm of Ahmad et al. (SPAA 2021) — reference [1] of the
paper — which the nonlinear solvers invoke on provably-all-red trapezoids:

    ``advance(x, taps, h)[c] = (A^h x)[c] = sum_{k=0}^{q h} W_k x_{c+k}``

where ``A`` is the one-step stencil operator and ``W`` the h-step kernel from
:mod:`repro.core.weights`.  The result covers exactly the cells whose full
dependency cone lies inside ``x`` (output length ``len(x) - q*h``).

Numerical-robustness extension (documented in DESIGN.md §1): FFT convolution
carries an *absolute* error ~``eps * ||x||_2 * ||W||_2``, so when the input's
magnitude dwarfs the caller's meaningful output scale the routine falls back
to direct correlation, whose error is relative to each output's own positive
term sum.  The paper's evaluated regime (bounded red values) never triggers
the fallback; the Y=0 all-red regime does.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal, Sequence

import numpy as np
from scipy import fft as sfft
from scipy.signal import fftconvolve

from repro.core.weights import hstep_weights
from repro.parallel.workspan import WorkSpan, fft_cost
from repro.util.validation import ValidationError, check_integer


@dataclass(frozen=True)
class AdvancePolicy:
    """Controls the FFT-vs-direct decision of :func:`advance`.

    Parameters
    ----------
    mode:
        ``"auto"`` (default) — FFT unless the amplification guard trips;
        ``"fft"`` — always FFT; ``"direct"`` — always direct correlation.
    max_amplification:
        In auto mode, fall back to direct correlation when
        ``max|x| > max_amplification * scale`` (``scale`` is the caller's
        meaningful output magnitude, e.g. the strike).  The default tolerates
        twelve orders of magnitude of headroom above the price scale before
        the ~1e-16 relative FFT noise could reach ~1e-4 of the price.
    min_fft_size:
        Below this many kernel taps direct correlation is faster anyway.
    """

    mode: Literal["auto", "fft", "direct"] = "auto"
    max_amplification: float = 1e12
    min_fft_size: int = 32

    def choose(self, x_max: float, scale: float, kernel_len: int) -> str:
        if self.mode != "auto":
            return self.mode
        if kernel_len < self.min_fft_size:
            return "direct"
        if scale > 0.0 and x_max > self.max_amplification * scale:
            return "direct"
        return "fft"


DEFAULT_POLICY = AdvancePolicy()


@dataclass
class AdvanceRecord:
    """Bookkeeping for one advance call (aggregated into solver stats)."""

    method: str
    input_len: int
    h: int
    workspan: WorkSpan


def _direct_correlate(x: np.ndarray, w: np.ndarray) -> np.ndarray:
    """Valid-mode correlation sum_k w_k x_{c+k} via np.correlate (C speed)."""
    return np.correlate(x, w, mode="valid")


def _fft_correlate(x: np.ndarray, w: np.ndarray) -> np.ndarray:
    """Valid-mode correlation via FFT (convolve with reversed kernel)."""
    return fftconvolve(x, w[::-1], mode="valid")


def advance(
    x: np.ndarray,
    taps: Sequence[float],
    h: int,
    *,
    scale: float | None = None,
    policy: AdvancePolicy = DEFAULT_POLICY,
) -> tuple[np.ndarray, AdvanceRecord]:
    """Advance ``x`` by ``h`` linear stencil steps; return (values, record).

    Parameters
    ----------
    x:
        Cell values of the base row, covering columns ``[c .. c + len(x) - 1]``
        in the caller's coordinates.
    taps:
        One-step weights at offsets ``0..q``.
    h:
        Number of steps (>= 0).  Requires ``len(x) >= q*h + 1``.
    scale:
        Meaningful output magnitude for the robustness guard (see
        :class:`AdvancePolicy`); ``None`` disables the guard.

    Returns
    -------
    (y, record) where ``y[c'] = (A^h x)[c']`` covers the ``len(x) - q*h``
    left-aligned output columns, and ``record`` carries the chosen method and
    the work/span this call contributes (FFT: ``O(n log n)`` work,
    ``O(log n loglog n)`` span; direct: ``O(n * qh)`` work, ``O(log)`` span).
    """
    h = check_integer("h", h, minimum=0)
    x = np.ascontiguousarray(x, dtype=np.float64)
    q = len(taps) - 1
    if h == 0:
        return x.copy(), AdvanceRecord("copy", len(x), 0, WorkSpan(len(x), 1.0))
    kernel_len = q * h + 1
    if len(x) < kernel_len:
        raise ValidationError(
            f"input of length {len(x)} too short for h={h} steps of a "
            f"{q + 1}-tap stencil (needs >= {kernel_len})"
        )
    w = hstep_weights(taps, h)
    x_max = float(np.max(np.abs(x))) if len(x) else 0.0
    method = policy.choose(x_max, scale if scale is not None else 0.0, kernel_len)
    if method == "fft":
        y = _fft_correlate(x, w)
        n = sfft.next_fast_len(len(x) + kernel_len - 1)
        one_fft = fft_cost(n)
        ws = WorkSpan(3.0 * one_fft.work + 2.0 * n, 3.0 * one_fft.span + 1.0)
    else:
        y = _direct_correlate(x, w)
        ws = WorkSpan(2.0 * len(y) * kernel_len, np.log2(kernel_len + 1.0) + 1.0)
    return y, AdvanceRecord(method, len(x), h, ws)


def advance_full_row(
    x: np.ndarray,
    taps: Sequence[float],
    h: int,
    *,
    scale: float | None = None,
    policy: AdvancePolicy = DEFAULT_POLICY,
) -> tuple[np.ndarray, AdvanceRecord]:
    """Alias of :func:`advance` named for the Bermudan/European jump use-case.

    On tree grids a full row ``i+h`` (width ``q*(i+h)+1``) advanced ``h``
    steps yields exactly the full row ``i`` (width ``q*i+1``), because the
    valid-mode output shrinks by ``q*h`` — no padding or boundary conditions
    are ever needed inside the lattice triangle.
    """
    return advance(x, taps, h, scale=scale, policy=policy)
