"""FFT-accelerated multi-step advance of linear 1-D stencils.

This is our implementation of the aperiodic ('valid-mode') form of the
linear-stencil algorithm of Ahmad et al. (SPAA 2021) — reference [1] of the
paper — which the nonlinear solvers invoke on provably-all-red trapezoids:

    ``advance(x, taps, h)[c] = (A^h x)[c] = sum_{k=0}^{q h} W_k x_{c+k}``

where ``A`` is the one-step stencil operator and ``W`` the h-step kernel from
:mod:`repro.core.weights`.  The result covers exactly the cells whose full
dependency cone lies inside ``x`` (output length ``len(x) - q*h``).

Plan caching (docs/DESIGN.md §3): the trapezoid decomposition requests the
same ``(taps, h)`` kernels at every recursion level — hundreds of
identical-shape advances per solve — so :class:`AdvanceEngine` amortises the
kernel's forward transform across reuses (as [1] does): it caches the
*conjugated rFFT of the kernel* keyed by ``(taps, h, padded_n)``, memoises
``next_fast_len`` pad sizes, and reuses zero-padded scratch buffers.  A warm
advance is then one forward rFFT of ``x``, one pointwise multiply, one
inverse — versus ``fftconvolve``'s three transforms of a larger padded
length plus a reversed-kernel copy.  :meth:`AdvanceEngine.advance_many`
additionally stacks same-kernel advances into one batched
``scipy.fft.rfft(axis=-1)`` call for portfolio workloads, and
:meth:`AdvanceEngine.advance_batch` generalises that to B inputs with B
*different* kernels — the lockstep batch solver's workhorse
(docs/DESIGN.md §7): rows group by padded length, multiply row-wise by a
cached stacked kernel-spectrum block, and transform in one batched pair,
with per-row robustness decisions and per-row accounting.

Numerical-robustness extension (documented in docs/DESIGN.md §1): FFT
convolution carries an *absolute* error ~``eps * ||x||_2 * ||W||_2``, so when
the input's magnitude dwarfs the caller's meaningful output scale the routine
falls back to direct correlation, whose error is relative to each output's
own positive term sum.  The paper's evaluated regime (bounded red values)
never triggers the fallback; the Y=0 all-red regime does.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Callable, Iterable, Literal, Optional, Sequence, Tuple

import numpy as np
from scipy import fft as sfft
from scipy.signal import fftconvolve

from repro.core.weights import hstep_weights
from repro.parallel.workspan import WorkSpan, fft_cost
from repro.util.validation import ValidationError, check_integer


@dataclass(frozen=True)
class AdvancePolicy:
    """Controls the FFT-vs-direct decision of :func:`advance`.

    Parameters
    ----------
    mode:
        ``"auto"`` (default) — FFT unless the amplification guard trips;
        ``"fft"`` — always FFT; ``"direct"`` — always direct correlation.
    max_amplification:
        In auto mode, fall back to direct correlation when
        ``max|x| > max_amplification * scale`` (``scale`` is the caller's
        meaningful output magnitude, e.g. the strike).  The default tolerates
        twelve orders of magnitude of headroom above the price scale before
        the ~1e-16 relative FFT noise could reach ~1e-4 of the price.
    min_fft_size:
        Below this many kernel taps direct correlation is faster anyway.
    """

    mode: Literal["auto", "fft", "direct"] = "auto"
    max_amplification: float = 1e12
    min_fft_size: int = 32

    def choose(self, x_max: float, scale: float, kernel_len: int) -> str:
        if self.mode != "auto":
            return self.mode
        if kernel_len < self.min_fft_size:
            return "direct"
        if scale > 0.0 and x_max > self.max_amplification * scale:
            return "direct"
        return "fft"


DEFAULT_POLICY = AdvancePolicy()

#: Spectrum blocks larger than this many complex elements (32 MiB) are
#: assembled but not cached — rebuilding one from the per-row spectrum
#: cache is cheap, while a handful of resident giant blocks is not.
MAX_BLOCK_ELEMENTS = 1 << 21

#: Soft byte budget for the kernel-spectrum cache.  ``advance_batch``
#: scales the entry bound with the batch width (B interleaved solves need
#: ~B x log T live spectra to keep per-solve repeats warm), so a byte
#: bound — not just an entry count — keeps wide batches of long kernels
#: from pinning unbounded memory.
MAX_SPECTRA_BYTES = 64 * (1 << 20)

#: Byte budget for the batched-transform input stacks, the engine's
#: largest scratch buffers: each ratchets to the widest batch seen for its
#: padded length, so a long-lived shared engine must not keep every size
#: it ever served.  Sized above the working set of a 1024-wide lockstep
#: batch (~40 live pad lengths x a few MB) — a tighter budget makes the
#: eviction loop churn fresh allocations every round and costs more than
#: it saves.
MAX_STACK_BYTES = 256 * (1 << 20)


@dataclass
class AdvanceRecord:
    """Bookkeeping for one advance call (aggregated into solver stats).

    ``spectrum_hit`` is ``True``/``False`` when the engine's kernel-spectrum
    cache was consulted (hit/miss), ``None`` on paths that never touch it
    (direct correlation, h=0 copies, the legacy ``fftconvolve`` path, and
    batch rows served from a cached *spectrum block* — the block counters
    cover those).  For batched records it is ``True`` only when every
    consulted group hit.  ``spectrum_hits``/``spectrum_misses`` carry the
    exact per-call counts (a batched advance consults the cache once per
    length group — :meth:`AdvanceEngine.advance_batch` once per *distinct*
    per-row kernel).  ``batch`` counts the inputs a single batched
    transform carried (1 for plain advances).  ``method`` is ``"mixed"``
    when a batch's rows resolved to different methods.

    Batched calls additionally report:

    ``block_hits`` / ``block_misses``
        consultations of the stacked spectrum-*block* cache (one per FFT
        group of an :meth:`AdvanceEngine.advance_batch` call);
    ``rows``
        per-input sub-records, in input order — each row mirrors exactly
        what a standalone :meth:`AdvanceEngine.advance` of that input would
        have recorded (method, lengths, work/span share), so per-solve
        statistics stay truthful under lockstep batching.
    """

    method: str
    input_len: int
    h: int
    workspan: WorkSpan
    spectrum_hit: Optional[bool] = None
    spectrum_hits: int = 0
    spectrum_misses: int = 0
    batch: int = 1
    block_hits: int = 0
    block_misses: int = 0
    rows: Optional[list["AdvanceRecord"]] = None


def _direct_correlate(x: np.ndarray, w: np.ndarray) -> np.ndarray:
    """Valid-mode correlation sum_k w_k x_{c+k} via np.correlate (C speed)."""
    return np.correlate(x, w, mode="valid")


def _fft_correlate(x: np.ndarray, w: np.ndarray) -> np.ndarray:
    """Legacy valid-mode correlation (convolve with reversed kernel).

    Kept as the ``reuse=False`` reference path: it re-transforms the kernel
    on every call, exactly the behaviour the plan cache amortises away.  The
    old-vs-new benchmark (``benchmarks/bench_advance_engine.py``) times this
    against the cached path.
    """
    return fftconvolve(x, w[::-1], mode="valid")


def _legacy_fft_workspan(input_len: int, kernel_len: int) -> WorkSpan:
    """Work/span of the fftconvolve path: 3 transforms of the padded length."""
    n = sfft.next_fast_len(input_len + kernel_len - 1)
    one_fft = fft_cost(n)
    return WorkSpan(3.0 * one_fft.work + 2.0 * n, 3.0 * one_fft.span + 1.0)


class AdvanceEngine:
    """Stateful, plan-caching multi-step advance (docs/DESIGN.md §3).

    Each solver instantiates one engine per solve — or shares one across a
    batch of solves (:func:`repro.core.api.price_many`) — and calls
    :meth:`advance` where it previously called the free function.  The engine
    caches, across calls:

    * the conjugated kernel spectrum ``conj(rfft(W, n))`` keyed by
      ``(taps, h, n)`` — one forward kernel transform per distinct shape,
      however many advances reuse it;
    * memoised ``next_fast_len`` pad sizes (one lookup per distinct input
      length, i.e. per recursion level);
    * zero-padded scratch buffers keyed by pad size, so warm advances do not
      allocate the padded input.

    Correlation uses the conjugate trick: ``irfft(rfft(x, n) * conj(rfft(W,
    n)))[c] = sum_k W_k x_{c+k}`` for ``c <= len(x) - len(W)`` whenever
    ``n >= len(x)`` (no circular wrap can reach the valid prefix), so the pad
    length is ``next_fast_len(len(x))`` — smaller than ``fftconvolve``'s
    ``next_fast_len(len(x) + len(W) - 1)`` — and no reversed-kernel copy is
    ever made.

    Parameters
    ----------
    policy:
        FFT-vs-direct robustness policy applied per call.
    reuse:
        ``False`` disables every cache and routes FFT advances through the
        legacy ``fftconvolve`` path — the exact pre-engine behaviour, kept
        for the old-vs-new benchmark and regression comparisons.

    An engine is **not thread-safe** (the scratch buffers are shared across
    its calls); use one engine per solve/thread.  The module-level
    :func:`advance` wrapper keeps one default engine per thread.
    max_spectra / max_scratch / max_blocks:
        Bounds on the caches (oldest-first eviction); a single solve stays
        far below them, the defaults only matter for long-lived shared
        engines.  ``max_blocks`` bounds the stacked spectrum-*block* cache
        of :meth:`advance_batch` — blocks are ``(B, n_rfft)`` complex
        arrays, much larger than single spectra, so the bound is tight.
    """

    def __init__(
        self,
        policy: AdvancePolicy = DEFAULT_POLICY,
        *,
        reuse: bool = True,
        max_spectra: int = 512,
        max_scratch: int = 64,
        max_blocks: int = 16,
    ):
        self.policy = policy
        self.reuse = reuse
        self.max_spectra = max_spectra
        self.max_scratch = max_scratch
        self.max_blocks = max_blocks
        #: Optional zero-arg cooperative-interrupt hook, invoked at every
        #: advance entry (see :meth:`_tick`).  The resilience tier binds a
        #: deadline here (``engine.checkpoint = deadline.checkpoint``) so a
        #: long *serial* solve — which nothing can preempt — observes its
        #: budget within one advance and aborts by raising from the hook.
        self.checkpoint: Optional[Callable[[], None]] = None
        self._spectra: dict[tuple, np.ndarray] = {}
        self._spectra_bytes = 0
        self._scratch: dict[int, np.ndarray] = {}
        self._stack_scratch: dict[int, np.ndarray] = {}
        self._stack_scratch_bytes = 0
        self._fast_len: dict[int, int] = {}
        self._blocks: dict[tuple, np.ndarray] = {}
        # Block keys seen exactly once: a block is only materialised (rows
        # stacked into one array) when its key *recurs* — one-shot batch
        # shapes (a heterogeneous grid priced once) never pay the copies.
        self._block_seen: dict[tuple, None] = {}
        # Counters (exposed through SolveStats / cache_info for benchmarks).
        self.spectrum_hits = 0
        self.spectrum_misses = 0
        self.advances = 0
        self.batched_inputs = 0
        self.batch_advances = 0
        self.block_hits = 0
        self.block_misses = 0
        self.checkpoints = 0

    def _tick(self) -> None:
        """Run the cooperative-interrupt hook (if any) and count it.

        Called once per advance entry — frequent enough that a deadline
        bound here fires within one advance of expiring, cheap enough
        (one attribute read when unset) to leave on every path.
        """
        cb = self.checkpoint
        if cb is not None:
            self.checkpoints += 1
            cb()

    # ------------------------------------------------------------------ #
    # Plan helpers
    # ------------------------------------------------------------------ #
    def fast_len(self, n: int) -> int:
        """Memoised ``scipy.fft.next_fast_len`` (one lookup per level)."""
        cached = self._fast_len.get(n)
        if cached is None:
            cached = sfft.next_fast_len(n)
            self._fast_len[n] = cached
        return cached

    def prepare(
        self, taps: Sequence[float], jobs: Iterable[Tuple[int, int]]
    ) -> None:
        """Precompute full plans for known ``(h, input_len)`` advance shapes.

        Drivers whose advance shapes are known up front — the Bermudan jump
        chain advances full rows of statically known widths — pass them here
        to materialise the h-step kernel, the ``next_fast_len`` pad size,
        *and* the kernel spectrum before the solve starts.  Shapes that only
        emerge at runtime (the trapezoid recursion's divider-dependent
        windows) plan themselves on first use instead.
        """
        taps_t = tuple(float(v) for v in taps)
        for h, input_len in jobs:
            h = int(h)
            if h <= 0:
                continue
            w = hstep_weights(taps_t, h)
            if len(w) <= input_len:
                self._kernel_spectrum(taps_t, h, self.fast_len(int(input_len)), w)

    def cache_info(self) -> dict:
        """Counters for benchmarks and the engine regression tests."""
        return {
            "spectrum_hits": self.spectrum_hits,
            "spectrum_misses": self.spectrum_misses,
            "cached_spectra": len(self._spectra),
            "cached_scratch": len(self._scratch),
            "cached_blocks": len(self._blocks),
            "advances": self.advances,
            "batched_inputs": self.batched_inputs,
            "batch_advances": self.batch_advances,
            "block_hits": self.block_hits,
            "block_misses": self.block_misses,
            "checkpoints": self.checkpoints,
        }

    def _kernel_spectrum(
        self, taps_t: tuple, h: int, n: int, w: Optional[np.ndarray] = None
    ) -> tuple[np.ndarray, bool]:
        """Cached ``conj(rfft(W, n))``; the kernel ``w`` is only
        materialised on a miss (warm advances never touch the weights)."""
        key = (taps_t, h, n)
        spec = self._spectra.get(key)
        if spec is not None:
            self.spectrum_hits += 1
            return spec, True
        self.spectrum_misses += 1
        if w is None:
            w = hstep_weights(taps_t, h)
        spec = np.conj(sfft.rfft(w, n=n))
        self._spectra[key] = spec
        self._spectra_bytes += spec.nbytes
        while len(self._spectra) > 1 and (
            len(self._spectra) > self.max_spectra
            or self._spectra_bytes > MAX_SPECTRA_BYTES
        ):
            old = self._spectra.pop(next(iter(self._spectra)))
            self._spectra_bytes -= old.nbytes
        return spec, False

    def _padded_stack(self, rows: int, n: int) -> np.ndarray:
        """Reusable ``(>= rows, n)`` scratch for batched transforms.

        Callers overwrite every used row in full (payload then zero tail),
        so no clearing is needed here; ``stack[:rows]`` is what they
        transform.  Stacks are the engine's largest buffers (they ratchet
        to the widest batch seen per padded length), so the cache is
        byte-budgeted: oversized requests get a one-shot buffer and the
        resident set is evicted oldest-first past ``MAX_STACK_BYTES``.
        """
        buf = self._stack_scratch.get(n)
        if buf is None or buf.shape[0] < rows:
            buf = np.zeros((rows, n), dtype=np.float64)
            if buf.nbytes > MAX_STACK_BYTES:
                return buf  # one-shot: too large to keep resident
            old = self._stack_scratch.pop(n, None)
            if old is not None:
                self._stack_scratch_bytes -= old.nbytes
            self._stack_scratch[n] = buf
            self._stack_scratch_bytes += buf.nbytes
            while len(self._stack_scratch) > 1 and (
                len(self._stack_scratch) > self.max_scratch
                or self._stack_scratch_bytes > MAX_STACK_BYTES
            ):
                dropped = self._stack_scratch.pop(
                    next(iter(self._stack_scratch))
                )
                self._stack_scratch_bytes -= dropped.nbytes
        return buf

    def _padded(self, x: np.ndarray, n: int) -> np.ndarray:
        buf = self._scratch.get(n)
        if buf is None:
            if len(self._scratch) >= self.max_scratch:
                self._scratch.pop(next(iter(self._scratch)))
            buf = np.zeros(n, dtype=np.float64)
            self._scratch[n] = buf
        m = len(x)
        buf[:m] = x
        buf[m:] = 0.0
        return buf

    # ------------------------------------------------------------------ #
    # Advances
    # ------------------------------------------------------------------ #
    @staticmethod
    def _validate(x: np.ndarray, q: int, h: int) -> int:
        kernel_len = q * h + 1
        if len(x) < kernel_len:
            raise ValidationError(
                f"input of length {len(x)} too short for h={h} steps of a "
                f"{q + 1}-tap stencil (needs >= {kernel_len})"
            )
        return kernel_len

    def _fft_cached(
        self, x: np.ndarray, taps_t: tuple, h: int, kernel_len: int
    ) -> tuple[np.ndarray, WorkSpan, bool]:
        m = len(x)
        n = self.fast_len(m)
        spec, hit = self._kernel_spectrum(taps_t, h, n)
        X = sfft.rfft(self._padded(x, n))
        X *= spec
        y = sfft.irfft(X, n=n)[: m - kernel_len + 1]
        one_fft = fft_cost(n)
        transforms = 2.0 if hit else 3.0
        ws = WorkSpan(
            transforms * one_fft.work + 2.0 * n, transforms * one_fft.span + 1.0
        )
        return y, ws, hit

    def advance(
        self,
        x: np.ndarray,
        taps: Sequence[float],
        h: int,
        *,
        scale: float | None = None,
    ) -> tuple[np.ndarray, AdvanceRecord]:
        """Advance ``x`` by ``h`` linear stencil steps; return (values, record).

        Same contract as the module-level :func:`advance` (which now wraps a
        default engine): ``y[c'] = (A^h x)[c']`` on the ``len(x) - q*h``
        left-aligned output columns.
        """
        self._tick()
        h = check_integer("h", h, minimum=0)
        x = np.ascontiguousarray(x, dtype=np.float64)
        taps_t = tuple(float(v) for v in taps)
        q = len(taps_t) - 1
        self.advances += 1
        if h == 0:
            return x.copy(), AdvanceRecord("copy", len(x), 0, WorkSpan(len(x), 1.0))
        kernel_len = self._validate(x, q, h)
        x_max = float(np.max(np.abs(x))) if len(x) else 0.0
        method = self.policy.choose(
            x_max, scale if scale is not None else 0.0, kernel_len
        )
        if method == "fft":
            if self.reuse:
                # the kernel itself is only materialised on a spectrum miss
                y, ws, hit = self._fft_cached(x, taps_t, h, kernel_len)
                return y, AdvanceRecord(
                    "fft",
                    len(x),
                    h,
                    ws,
                    spectrum_hit=hit,
                    spectrum_hits=int(hit),
                    spectrum_misses=int(not hit),
                )
            y = _fft_correlate(x, hstep_weights(taps_t, h))
            return y, AdvanceRecord(
                "fft", len(x), h, _legacy_fft_workspan(len(x), kernel_len)
            )
        y = _direct_correlate(x, hstep_weights(taps_t, h))
        ws = WorkSpan(2.0 * len(y) * kernel_len, np.log2(kernel_len + 1.0) + 1.0)
        return y, AdvanceRecord(method, len(x), h, ws)

    def advance_many(
        self,
        xs: Sequence[np.ndarray],
        taps: Sequence[float],
        h: int,
        *,
        scale: float | None = None,
    ) -> tuple[list[np.ndarray], AdvanceRecord]:
        """Advance many inputs by the *same* ``(taps, h)`` kernel at once.

        Inputs of equal length are stacked and transformed in a single
        batched ``rfft(axis=-1)``/``irfft(axis=-1)`` pair against one cached
        kernel spectrum — the portfolio fast path behind
        :func:`repro.core.api.price_many`.  Mixed lengths are grouped by
        length, and the FFT-vs-direct robustness choice is made *per
        length group* from that group's own magnitude — one
        outlier-magnitude input no longer forces its whole batch off the
        FFT fast path (the aggregate record reports ``"mixed"`` when groups
        diverge).  Returns the per-input outputs (input order preserved)
        and one aggregate record; independent groups (and independent rows
        on the non-stacked paths) compose in parallel (``beside``), so the
        recorded span reflects the batch's real critical path.
        """
        self._tick()
        h = check_integer("h", h, minimum=0)
        taps_t = tuple(float(v) for v in taps)
        q = len(taps_t) - 1
        arrs = [np.ascontiguousarray(x, dtype=np.float64) for x in xs]
        total = sum(len(a) for a in arrs)
        if not arrs:
            return [], AdvanceRecord("copy", 0, h, WorkSpan.ZERO, batch=0)
        if h == 0:
            self.advances += 1
            self.batched_inputs += len(arrs)
            return [a.copy() for a in arrs], AdvanceRecord(
                "copy", total, 0, WorkSpan(total, 1.0), batch=len(arrs)
            )
        kernel_len = q * h + 1
        for a in arrs:
            self._validate(a, q, h)
        scale_val = scale if scale is not None else 0.0
        self.advances += 1
        self.batched_inputs += len(arrs)

        # Group indices by input length; one batched transform (and one
        # FFT-vs-direct decision) per group.
        groups: dict[int, list[int]] = {}
        for idx, a in enumerate(arrs):
            groups.setdefault(len(a), []).append(idx)
        outs: list[Optional[np.ndarray]] = [None] * len(arrs)
        ws = WorkSpan.ZERO
        hits = misses = 0
        consulted = False
        methods: set[str] = set()
        for m, idxs in groups.items():
            g_max = max(
                float(np.max(np.abs(arrs[i]))) if len(arrs[i]) else 0.0
                for i in idxs
            )
            g_method = self.policy.choose(g_max, scale_val, kernel_len)
            methods.add(g_method)
            if g_method != "fft":
                w = hstep_weights(taps_t, h)
                g_ws = WorkSpan.ZERO
                for i in idxs:
                    y = _direct_correlate(arrs[i], w)
                    outs[i] = y
                    g_ws = g_ws.beside(
                        WorkSpan(
                            2.0 * len(y) * kernel_len,
                            np.log2(kernel_len + 1.0) + 1.0,
                        )
                    )
                ws = ws.beside(g_ws)
                continue
            if not self.reuse:
                # Legacy fftconvolve per row; the rows are independent, so
                # the record composes them in parallel (beside) — the same
                # critical-path accounting the cached stacked path reports.
                w = hstep_weights(taps_t, h)
                g_ws = WorkSpan.ZERO
                for i in idxs:
                    outs[i] = _fft_correlate(arrs[i], w)
                    g_ws = g_ws.beside(_legacy_fft_workspan(m, kernel_len))
                ws = ws.beside(g_ws)
                continue
            consulted = True
            n = self.fast_len(m)
            spec, hit = self._kernel_spectrum(taps_t, h, n)
            if hit:
                hits += 1
            else:
                misses += 1
            stack = np.zeros((len(idxs), n), dtype=np.float64)
            for r, idx in enumerate(idxs):
                stack[r, :m] = arrs[idx]
            X = sfft.rfft(stack, axis=-1)
            X *= spec
            Y = sfft.irfft(X, n=n, axis=-1)
            out_len = m - kernel_len + 1
            for r, idx in enumerate(idxs):
                outs[idx] = Y[r, :out_len].copy()
            one_fft = fft_cost(n)
            transforms = 2.0 * len(idxs) + (0.0 if hit else 1.0)
            # batched rows transform independently: critical path is one
            # forward/inverse pair (plus the kernel transform on a miss)
            ws = ws.beside(
                WorkSpan(
                    transforms * one_fft.work + 2.0 * n * len(idxs),
                    (2.0 if hit else 3.0) * one_fft.span + 1.0,
                )
            )
        return list(outs), AdvanceRecord(  # type: ignore[arg-type]
            methods.pop() if len(methods) == 1 else "mixed",
            total,
            h,
            ws,
            spectrum_hit=(misses == 0) if consulted else None,
            spectrum_hits=hits,
            spectrum_misses=misses,
            batch=len(arrs),
        )

    def _spectrum_block(
        self, keys: Sequence[tuple]
    ) -> tuple[Optional[np.ndarray], list[np.ndarray], bool, dict[int, bool]]:
        """Stacked conjugated kernel spectra for per-row ``(taps, h, n)`` keys.

        The lockstep recursion asks for the *same combination* of per-row
        kernels at every reuse of a batch shape (a re-priced grid, a warm
        quote-service bucket), so the assembled ``(B, n_rfft)`` block is
        cached whole, keyed by the tuple of per-row keys: a warm round
        costs one dict lookup instead of B spectrum lookups plus a B-row
        stack.  A block is only *materialised* on the key's second
        occurrence — one-shot batch shapes multiply row-by-row against the
        per-row spectrum cache (one consult per *distinct* key; duplicate
        rows share their first occurrence's spectrum) and never pay the
        stacking copies.

        Returns ``(block, row_specs, block_hit, consults)``: ``block`` is
        the stacked array on a hit (``row_specs`` empty), else ``None``
        with one spectrum per row in ``row_specs``; ``consults`` maps row
        position -> that row's per-key hit/miss (consulting rows only).
        """
        block_key = tuple(keys)
        block = self._blocks.get(block_key)
        if block is not None:
            self.block_hits += 1
            return block, [], True, {}
        self.block_misses += 1
        n = keys[0][2]
        row_specs: list[Optional[np.ndarray]] = [None] * len(keys)
        consults: dict[int, bool] = {}
        seen: dict[tuple, int] = {}
        for r, key in enumerate(keys):
            first = seen.setdefault(key, r)
            if first != r:
                row_specs[r] = row_specs[first]
                continue
            taps_t, h, _ = key
            spec, hit = self._kernel_spectrum(taps_t, h, n)
            row_specs[r] = spec
            consults[r] = hit
        recurring = block_key in self._block_seen
        if not recurring:
            if len(self._block_seen) >= 8 * self.max_blocks:
                self._block_seen.pop(next(iter(self._block_seen)))
            self._block_seen[block_key] = None
        elif len(keys) * (n // 2 + 1) <= MAX_BLOCK_ELEMENTS:
            block = np.vstack(row_specs)
            if len(self._blocks) >= self.max_blocks:
                self._blocks.pop(next(iter(self._blocks)))
            self._blocks[block_key] = block
        return block, row_specs, False, consults  # type: ignore[return-value]

    def advance_batch(
        self,
        xs: Sequence[np.ndarray],
        kernels: Sequence[Tuple[Sequence[float], int]],
        *,
        scales: object = None,
    ) -> tuple[list[np.ndarray], AdvanceRecord]:
        """Advance B inputs, each by its **own** ``(taps, h)`` kernel, at once.

        The multi-kernel generalisation of :meth:`advance_many` and the
        workhorse of the lockstep batch solver
        (:func:`repro.core.lockstep.drive_lockstep`): scenario grids,
        implied-vol ladders and Greek bump grids vary volatility/rate per
        cell, so every cell carries a *different* kernel and the same-kernel
        fast path never applies.  Here rows are grouped by padded FFT
        length, each group is stacked into one ``(G, n)`` array, multiplied
        row-wise by a stacked ``(G, n_rfft)`` kernel-spectrum block (cached
        whole — see :meth:`_spectrum_block`), and transformed with a single
        ``rfft``/``irfft`` pair — one batched transform per group instead
        of B Python-level calls.

        Robustness and accounting are **per row**: each row makes its own
        FFT-vs-direct choice against its own magnitude and ``scales[i]``,
        and the returned record's ``rows`` list carries one sub-record per
        input mirroring what a standalone :meth:`advance` would have
        recorded.  Every FFT row's output is bit-identical to its
        standalone advance (same pad, same spectrum; a batched real FFT
        transforms each row exactly as the 1-D transform does), so lockstep
        solves match their serial twins bit-for-bit.

        Parameters
        ----------
        xs:
            The B input rows.
        kernels:
            One ``(taps, h)`` pair per input; ``h = 0`` rows are copied.
        scales:
            ``None``, a scalar applied to every row, or one scale per row
            (``None`` entries disable that row's guard).
        """
        self._tick()
        arrs = [np.ascontiguousarray(x, dtype=np.float64) for x in xs]
        if len(arrs) != len(kernels):
            raise ValidationError(
                f"advance_batch needs one kernel per input: got {len(arrs)} "
                f"inputs, {len(kernels)} kernels"
            )
        kers = [
            (tuple(float(v) for v in taps), check_integer("h", h, minimum=0))
            for taps, h in kernels
        ]
        if not arrs:
            return [], AdvanceRecord("copy", 0, 0, WorkSpan.ZERO, batch=0, rows=[])
        B = len(arrs)
        if scales is None:
            scale_list = [0.0] * B
        elif np.isscalar(scales):
            scale_list = [float(scales)] * B  # type: ignore[arg-type]
        else:
            scale_list = [0.0 if s is None else float(s) for s in scales]  # type: ignore[union-attr]
            if len(scale_list) != B:
                raise ValidationError(
                    f"scales must be a scalar or one per input: got "
                    f"{len(scale_list)} for {B} inputs"
                )
        self.advances += 1
        self.batched_inputs += B
        self.batch_advances += 1
        if self.reuse:
            # Lockstep interleaving destroys the per-solve temporal locality
            # the default spectrum bound assumes: B solves' kernels repeat
            # with a reuse distance of ~B x (distinct kernels per solve).
            # Scale the entry bound with the batch width; MAX_SPECTRA_BYTES
            # still caps the memory.
            self.max_spectra = max(self.max_spectra, 8 * B)

        rows: list[Optional[AdvanceRecord]] = [None] * B
        outs: list[Optional[np.ndarray]] = [None] * B
        fft_groups: dict[int, list[int]] = {}
        for i, (a, (taps_t, h)) in enumerate(zip(arrs, kers)):
            q = len(taps_t) - 1
            if h == 0:
                outs[i] = a.copy()
                rows[i] = AdvanceRecord("copy", len(a), 0, WorkSpan(len(a), 1.0))
                continue
            kernel_len = self._validate(a, q, h)
            x_max = float(np.max(np.abs(a))) if len(a) else 0.0
            method = self.policy.choose(x_max, scale_list[i], kernel_len)
            if method != "fft":
                w = hstep_weights(taps_t, h)
                y = _direct_correlate(a, w)
                outs[i] = y
                rows[i] = AdvanceRecord(
                    "direct", len(a), h,
                    WorkSpan(
                        2.0 * len(y) * kernel_len,
                        np.log2(kernel_len + 1.0) + 1.0,
                    ),
                )
                continue
            if not self.reuse:
                w = hstep_weights(taps_t, h)
                outs[i] = _fft_correlate(a, w)
                rows[i] = AdvanceRecord(
                    "fft", len(a), h, _legacy_fft_workspan(len(a), kernel_len)
                )
                continue
            fft_groups.setdefault(self.fast_len(len(a)), []).append(i)

        hits = misses = block_hits = block_misses = 0
        for n, idxs in fft_groups.items():
            one_fft = fft_cost(n)
            if len(idxs) == 1:
                # A lone row gains nothing from stacking: serve it through
                # the plain cached path (same accounting as advance()).
                i = idxs[0]
                taps_t, h = kers[i]
                y, row_ws, hit = self._fft_cached(
                    arrs[i], taps_t, h, (len(taps_t) - 1) * h + 1
                )
                outs[i] = y
                rows[i] = AdvanceRecord(
                    "fft", len(arrs[i]), h, row_ws,
                    spectrum_hit=hit,
                    spectrum_hits=int(hit),
                    spectrum_misses=int(not hit),
                )
                hits += int(hit)
                misses += int(not hit)
                continue
            keys = [(kers[i][0], kers[i][1], n) for i in idxs]
            block, row_specs, block_hit, consults = self._spectrum_block(keys)
            block_hits += int(block_hit)
            block_misses += int(not block_hit)
            stack = self._padded_stack(len(idxs), n)
            for r, i in enumerate(idxs):
                a = arrs[i]
                row = stack[r]
                row[: len(a)] = a
                row[len(a):] = 0.0
            X = sfft.rfft(stack[: len(idxs)], axis=-1)
            if block is not None:
                X *= block
            else:
                for r, spec in enumerate(row_specs):
                    X[r] *= spec
            Y = sfft.irfft(X, n=n, axis=-1)
            for r, i in enumerate(idxs):
                taps_t, h = kers[i]
                out_len = len(arrs[i]) - (len(taps_t) - 1) * h
                outs[i] = Y[r, :out_len].copy()
                consult = consults.get(r)
                if consult is None:
                    # served from the block cache (or a duplicate key):
                    # no per-key consult happened for this row
                    t = 2.0
                    row_hit: Optional[bool] = None
                else:
                    t = 2.0 if consult else 3.0
                    row_hit = consult
                    hits += int(consult)
                    misses += int(not consult)
                rows[i] = AdvanceRecord(
                    "fft", len(arrs[i]), h,
                    WorkSpan(t * one_fft.work + 2.0 * n, t * one_fft.span + 1.0),
                    spectrum_hit=row_hit,
                    spectrum_hits=int(row_hit is True),
                    spectrum_misses=int(row_hit is False),
                )

        total = sum(len(a) for a in arrs)
        ws = WorkSpan.ZERO
        methods: set[str] = set()
        for rec in rows:
            ws = ws.beside(rec.workspan)  # type: ignore[union-attr]
            methods.add(rec.method)  # type: ignore[union-attr]
        consulted = hits + misses > 0
        return list(outs), AdvanceRecord(  # type: ignore[arg-type]
            methods.pop() if len(methods) == 1 else "mixed",
            total,
            max(h for _, h in kers),
            ws,
            spectrum_hit=(misses == 0) if consulted else None,
            spectrum_hits=hits,
            spectrum_misses=misses,
            batch=B,
            block_hits=block_hits,
            block_misses=block_misses,
            rows=rows,  # type: ignore[arg-type]
        )


def engine_delta(before: dict, after: dict) -> dict:
    """Per-solve view of two :meth:`AdvanceEngine.cache_info` snapshots.

    Cumulative counters become this-solve deltas (so results from solves
    sharing one engine report their own activity, not the whole batch's);
    cache sizes stay absolute — they describe the engine, not the solve.
    """
    out = dict(after)
    for key in (
        "spectrum_hits",
        "spectrum_misses",
        "advances",
        "batched_inputs",
        "batch_advances",
        "block_hits",
        "block_misses",
        "checkpoints",
    ):
        out[key] = after[key] - before[key]
    return out


#: Default engines behind the module-level compatibility wrapper are
#: per-thread: an engine's scratch buffers are reused across calls, so a
#: single engine must not serve concurrent advances (each solver creates
#: its own per-solve engine; only this stateless wrapper needs the guard).
_DEFAULT_ENGINES = threading.local()


def _default_engine() -> AdvanceEngine:
    engine = getattr(_DEFAULT_ENGINES, "engine", None)
    if engine is None:
        engine = _DEFAULT_ENGINES.engine = AdvanceEngine()
    return engine


def advance(
    x: np.ndarray,
    taps: Sequence[float],
    h: int,
    *,
    scale: float | None = None,
    policy: AdvancePolicy = DEFAULT_POLICY,
    engine: Optional[AdvanceEngine] = None,
) -> tuple[np.ndarray, AdvanceRecord]:
    """Advance ``x`` by ``h`` linear stencil steps; return (values, record).

    Compatibility wrapper over :class:`AdvanceEngine` — stateless callers get
    a shared default engine (or a fresh one when ``policy`` differs from the
    default, so the policy argument keeps its old per-call meaning).  Solvers
    on the hot path thread an explicit per-solve engine instead.

    Parameters
    ----------
    x:
        Cell values of the base row, covering columns ``[c .. c + len(x) - 1]``
        in the caller's coordinates.
    taps:
        One-step weights at offsets ``0..q``.
    h:
        Number of steps (>= 0).  Requires ``len(x) >= q*h + 1``.
    scale:
        Meaningful output magnitude for the robustness guard (see
        :class:`AdvancePolicy`); ``None`` disables the guard.
    policy:
        FFT-vs-direct decision policy (ignored when ``engine`` is given —
        the engine carries its own).
    engine:
        Explicit engine to advance on (and whose caches to warm).

    Returns
    -------
    (y, record) where ``y[c'] = (A^h x)[c']`` covers the ``len(x) - q*h``
    left-aligned output columns, and ``record`` carries the chosen method and
    the work/span this call contributes (FFT: ``O(n log n)`` work,
    ``O(log n loglog n)`` span; direct: ``O(n * qh)`` work, ``O(log)`` span).
    """
    if engine is None:
        engine = _default_engine() if policy is DEFAULT_POLICY else AdvanceEngine(policy)
    return engine.advance(x, taps, h, scale=scale)


def advance_full_row(
    x: np.ndarray,
    taps: Sequence[float],
    h: int,
    *,
    scale: float | None = None,
    policy: AdvancePolicy = DEFAULT_POLICY,
    engine: Optional[AdvanceEngine] = None,
) -> tuple[np.ndarray, AdvanceRecord]:
    """Alias of :func:`advance` named for the Bermudan/European jump use-case.

    On tree grids a full row ``i+h`` (width ``q*(i+h)+1``) advanced ``h``
    steps yields exactly the full row ``i`` (width ``q*i+1``), because the
    valid-mode output shrinks by ``q*h`` — no padding or boundary conditions
    are ever needed inside the lattice triangle.
    """
    return advance(x, taps, h, scale=scale, policy=policy, engine=engine)
