"""fft-bopm / fft-topm: the paper's trapezoid-decomposition solvers (§2.3, §3).

American *call* pricing on binomial (2-tap, q=1) and trinomial (3-tap, q=2)
lattices in ``O(T log^2 T)`` work and ``O(T)`` span.  The algorithm exploits
the red–green divider structure (Corollary 2.7 / A.6):

* every row is a red prefix ``[0..j_i]`` (continuation) followed by a green
  suffix (exercise, closed form ``S u^{...} - K``);
* the divider moves left by at most one column per backward step.

State is only the red prefix of the current row plus its exact divider.  The
driver repeatedly cuts a trapezoid whose height matches the current red
count (divided by q — the dependency cone widens by q columns per step while
the divider moves by at most one), solves it with
:func:`_TreeSolver.solve_trapezoid`, and finishes the leftover
``O(sqrt(T))``-row triangle naively, exactly as in the paper's Figure 3a.

``solve_trapezoid(i_top, c0, vals, j_top, ell)``::

    1. h = ell // 2.  One h-step FFT advance covers the mid-row columns
       [c0 .. hi_fft], hi_fft = min(j_top + q - 1, row_end(i_top)) - q*h,
       which are *provably red*: the dependency cone of such a column stays
       left of the worst-case divider trajectory j_top - d at every
       intermediate row (only base-row reads may touch up to q-1 green
       cells, whose values are closed-form).
    2. A recursive sub-trapezoid of height h over the last q*h red cells
       resolves the strip between hi_fft and the true mid divider j_mid.
    3. The remaining h2 = ell - h rows are the same problem from the mid row
       — solved by a tail-recursive trapezoid call, which reproduces the
       paper's two-FFT + two-recursive-call structure when unrolled and the
       recurrence zeta(ell) = 2 zeta(ell/2) + O(ell log ell).
    4. Heights <= ``base`` (paper's empirical optimum: 8) descend naively.

Puts are *not* handled here: their divider is mirrored.  Use
:mod:`repro.core.symmetry` (exact put–call symmetry) or the vanilla solvers.
"""

from __future__ import annotations

import math as _math
from dataclasses import dataclass, field
from math import isqrt
from typing import Optional, Sequence, Union

import numpy as np

from repro.core.boundary import BoundaryRecorder, scan_prefix_boundary
from repro.core.fftstencil import (
    DEFAULT_POLICY,
    AdvanceEngine,
    AdvancePolicy,
    engine_delta as _engine_delta,
    row_correlate,
)
from repro.core.lockstep import (
    AdvanceRequest,
    BaseRowRequest,
    drive_lockstep,
    drive_serial,
)
from repro.core.metrics import SolveStats
from repro.options.contract import Right, Style
from repro.options.params import BinomialParams, TrinomialParams
from repro.parallel.workspan import WorkSpan, rows_cost
from repro.util.validation import ValidationError, check_integer

TreeParams = Union[BinomialParams, TrinomialParams]

#: The paper's empirically-best recursion base-case height (§5.1).
DEFAULT_BASE = 8


@dataclass
class TreeFFTResult:
    """Outcome of one fft-bopm / fft-topm solve."""

    price: float
    steps: int
    workspan: WorkSpan
    stats: SolveStats
    boundary: Optional[BoundaryRecorder] = None
    meta: dict = field(default_factory=dict)


class _TreeSolver:
    """One solve's worth of state for the trapezoid decomposition.

    :meth:`solve_trapezoid` is a *generator* (docs/DESIGN.md §7): it yields
    :class:`~repro.core.lockstep.AdvanceRequest` objects for its linear
    advances and receives ``(values, record)`` back, so the same solver
    code runs serially (one engine call per request) or in lockstep with B
    sibling solves (one ``advance_batch`` call per round).  ``engine`` is
    kept for construction compatibility but the advances themselves are
    serviced by whichever driver runs the generator.
    """

    def __init__(
        self,
        params: TreeParams,
        base: int,
        engine: Optional[AdvanceEngine],
        recorder: Optional[BoundaryRecorder],
        batch_base: bool = False,
    ):
        self.p = params
        self.taps = tuple(params.taps)
        self.q = len(self.taps) - 1
        self.base = base
        self.engine = engine
        self.stats = SolveStats()
        self.rec = recorder
        self.scale = params.spec.strike
        # Inlined green-value constants: green(i, j) = S * u^(alpha*j - i) - K
        # with alpha = 2 (binomial, price S u^{2j-i}) or 1 (trinomial,
        # S u^{j-i}).  The naive strips evaluate green once per row; going
        # through params.exercise_value would pay a 3-deep call chain per row.
        self._log_u = _math.log(params.up)
        self._spot = params.spec.spot
        self._strike = params.spec.strike
        self._alpha = 2.0 if self.q == 1 else 1.0
        # Per-solve green-value table: the exponent alpha*j - i only ever
        # takes values in [-T, T], so one vectorised exp up front turns
        # every green() call — the naive strips evaluate one per row — into
        # a strided slice.  Bit-identical to the per-call formula: exp sees
        # the same exact float inputs either way.
        T = params.steps
        e = np.arange(-T, T + 1, dtype=np.float64)
        self._green_tab = self._spot * np.exp(e * self._log_u) - self._strike
        self._tab_off = T
        self._alpha_i = 2 if self.q == 1 else 1
        self._taps_arr = np.asarray(self.taps, dtype=np.float64)
        # Lockstep base rows (docs/DESIGN.md §7.6): one reused request
        # object — requests are consumed within the round they are
        # yielded, so only the window fields change row to row.
        self._req: Optional[BaseRowRequest] = (
            BaseRowRequest(
                taps=self._taps_arr,
                table=self._green_tab,
                g_stride=self._alpha_i,
                keep="prefix",
                scan=True,
            )
            if batch_base
            else None
        )

    # ------------------------------------------------------------------ #
    # Grid helpers
    # ------------------------------------------------------------------ #
    def row_end(self, i: int) -> int:
        """Last valid column of row ``i``."""
        return self.q * i

    def green(self, i: int, lo: int, hi: int) -> np.ndarray:
        """Signed exercise values for columns ``lo..hi`` of row ``i``.

        Equal to ``params.exercise_value(i, arange(lo, hi+1))`` (the tests
        assert this), served as a strided view of the per-solve table.
        """
        if hi < lo:
            return np.empty(0, dtype=np.float64)
        a = self._alpha_i
        start = a * lo - i + self._tab_off
        return self._green_tab[start : a * hi - i + self._tab_off + 1 : a]

    def _record(self, row: int, jb: int, c0: int) -> None:
        # jb is the *global* divider only when it fell inside the window.
        if self.rec is not None and jb >= c0:
            self.rec.record(row, jb)

    # ------------------------------------------------------------------ #
    # Naive base case
    # ------------------------------------------------------------------ #
    def naive_descend(
        self, i_top: int, c0: int, vals: np.ndarray, j_top: int, ell: int
    ):
        """Descend ``ell`` rows with the max rule on the window ``[c0..j]``.

        A generator returning (via ``StopIteration``) the red values on
        ``[c0..j_bot]`` of row ``i_top - ell`` and the divider ``j_bot``
        (``c0 - 1`` when no red cell remains at or right of ``c0``).

        Serial solvers (``batch_base=False``) run every row inline —
        the generator yields nothing and the ``yield from`` call sites
        behave exactly like the pre-generator plain calls.  Lockstep
        solvers yield each row as a :class:`BaseRowRequest` (window +
        green slice spec into the per-solve table) so the driver can
        stack the B live rows into one
        :meth:`~repro.core.fftstencil.AdvanceEngine.base_rows_batch`
        call per round — bit-identical either way.
        """
        q = self.q
        a = self._alpha_i
        off = self._tab_off
        rec = self.rec
        cur = vals
        jb = j_top
        work = 0.0
        span = 0.0
        base_rows = 0
        batch_rows = 0
        cells = 0
        req = self._req
        stats = self.stats
        stats.base_cases += 1
        log2 = _math.log2
        row_w = 2.0 * (q + 1)
        g0 = a * c0 + off  # green slice start is g0 - i_new, row by row
        e0 = a + off - 1  # extension start is a*jb + e0 - i_new
        for step in range(1, ell + 1):
            i_new = i_top - step
            re_new = q * i_new  # row_end inlined: ~ell attribute+call pairs saved
            hi_cand = jb if jb < re_new else re_new
            if hi_cand < c0:
                # divider left the window; every lower row is green in [c0..]
                stats.base_rows += base_rows + ell - step + 1
                stats.base_batch_rows += batch_rows
                stats.cells_evaluated += cells
                return np.empty(0, dtype=np.float64), c0 - 1, WorkSpan(work, span)
            ext_hi = hi_cand + q  # <= row_end(i_new + 1) always
            n_cand = hi_cand - c0 + 1
            if req is not None:
                if ext_hi > jb:
                    req.values = cur
                    req.e_start = a * jb + e0 - i_new
                    req.e_len = ext_hi - jb
                else:
                    req.values = cur[: ext_hi - c0 + 1]
                    req.e_len = 0
                req.g_start = g0 - i_new
                cur, d = yield req
                jb = c0 + d
                batch_rows += 1
            else:
                if ext_hi > jb:
                    x = np.concatenate(
                        [cur, self.green(i_new + 1, jb + 1, ext_hi)]
                    )
                else:
                    x = cur[: ext_hi - c0 + 1]
                cont = row_correlate(x, self._taps_arr)
                grn = self.green(i_new, c0, hi_cand)
                jb = c0 + scan_prefix_boundary(cont >= grn)
                cur = cont[: jb - c0 + 1]
            cells += n_cand
            base_rows += 1
            # inline rows_cost(1, n_cand, q+1): work n*(2 taps+2), span log2(n)+1
            work += n_cand * row_w
            span += log2(n_cand + 2.0) + 1.0
            if rec is not None and jb >= c0:
                rec.record(i_new, jb)
        stats.base_rows += base_rows
        stats.base_batch_rows += batch_rows
        stats.cells_evaluated += cells
        return cur, jb, WorkSpan(work, span)

    # ------------------------------------------------------------------ #
    # Trapezoid recursion
    # ------------------------------------------------------------------ #
    def solve_trapezoid(
        self,
        i_top: int,
        c0: int,
        vals: np.ndarray,
        j_top: int,
        ell: int,
        depth: int = 0,
    ) -> tuple[np.ndarray, int, WorkSpan]:
        """Solve a trapezoid of height ``ell`` (see module docstring).

        A generator: yields :class:`AdvanceRequest`, receives ``(values,
        record)``; its return value (via ``StopIteration``) is the usual
        ``(vals, j_bot, workspan)`` triple.

        Preconditions (maintained by the driver and recursion):
        ``vals`` covers exactly the red columns ``[c0..j_top]`` of row
        ``i_top``; cell ``(i_top, j_top+1)`` is green or off-row;
        ``j_top - c0 + 1 >= q*ell`` and ``1 <= ell <= i_top``.
        """
        self.stats.trapezoids += 1
        self.stats.note_depth(depth)
        q = self.q
        if ell <= self.base or j_top - c0 + 1 < q * ell:
            # Second condition is defensive: float noise at the divider could
            # in principle hand us one red cell fewer than the theory
            # guarantees; the naive sweep is exact for any configuration.
            return (yield from self.naive_descend(i_top, c0, vals, j_top, ell))
        h = ell // 2
        i_mid = i_top - h

        # -------- 1. FFT over the provably-red block -------------------- #
        ext_hi = min(j_top + q - 1, self.row_end(i_top))
        hi_fft = ext_hi - q * h  # provably red through every intermediate row
        if ext_hi > j_top:
            x = np.concatenate([vals, self.green(i_top, j_top + 1, ext_hi)])
        else:
            x = vals
        y_fft, rec = yield AdvanceRequest(x, self.taps, h, self.scale)
        self.stats.note_advance(rec.method, rec.input_len, rec.spectrum_hit)
        ws_fft = rec.workspan
        # y_fft covers columns [c0 .. hi_fft] of row i_mid.

        # -------- 2. strip next to the divider (recursive) --------------- #
        if hi_fft >= self.row_end(i_mid):
            # whole mid row is red; no strip to resolve (e.g. Y=0 regime)
            j_mid = self.row_end(i_mid)
            mid_vals = y_fft[: j_mid - c0 + 1]
            ws_half = ws_fft
            self._record(i_mid, j_mid, c0)
        else:
            c0_sub = j_top - q * h + 1
            sub_vals, j_mid, ws_sub = yield from self.solve_trapezoid(
                i_top, c0_sub, vals[c0_sub - c0 :], j_top, h, depth + 1
            )
            # j_mid >= hi_fft is guaranteed (FFT block is provably red);
            # merge FFT block [c0..hi_fft] with strip (hi_fft..j_mid].
            if j_mid < hi_fft:
                raise AssertionError(
                    "divider invariant violated: strip divider "
                    f"{j_mid} < provably-red column {hi_fft}"
                )
            mid_vals = np.concatenate(
                [y_fft, sub_vals[hi_fft + 1 - c0_sub :]]
            )
            ws_half = ws_fft.beside(ws_sub)
            self._record(i_mid, j_mid, c0)

        # -------- 3. remaining ell - h rows: same problem from mid row --- #
        h2 = ell - h
        out_vals, j_bot, ws_rest = yield from self.solve_trapezoid(
            i_mid, c0, mid_vals, j_mid, h2, depth + 1
        )
        return out_vals, j_bot, ws_half.then(ws_rest)


def _validate_tree_solve(params: TreeParams) -> None:
    if params.spec.right is not Right.CALL:
        raise ValidationError(
            "solve_tree_fft prices calls; price puts through "
            "repro.core.symmetry (exact put-call symmetry) or a vanilla solver"
        )
    if params.spec.style is not Style.AMERICAN:
        raise ValidationError(
            "solve_tree_fft handles American exercise; use "
            "repro.core.bermudan for European/Bermudan contracts"
        )


def _tree_solve_gen(
    params: TreeParams,
    base: int,
    tail: int,
    recorder: Optional[BoundaryRecorder],
    batch_base: bool = False,
):
    """Generator body of one fft-bopm/fft-topm solve.

    Yields :class:`~repro.core.lockstep.AdvanceRequest` for every linear
    advance — plus, with ``batch_base=True``,
    :class:`~repro.core.lockstep.BaseRowRequest` for every naive base-case
    row — and returns the :class:`TreeFFTResult` (without the
    driver-supplied ``meta["engine"]`` delta) via ``StopIteration``.
    """
    solver = _TreeSolver(params, base, None, recorder, batch_base)
    q = solver.q
    T = params.steps

    # Expiry row: G = max(0, green); red cells are where green <= 0.
    greens_T = solver.green(T, 0, solver.row_end(T))
    jb = scan_prefix_boundary(greens_T <= 0.0)
    ws = rows_cost(1, solver.row_end(T) + 1, 1)
    solver.stats.cells_evaluated += solver.row_end(T) + 1
    if recorder is not None:
        recorder.record(T, jb)

    # Row T-1 is computed naively over the FULL row.  Corollary 2.7's
    # "divider never moves right" bound only covers i <= T-2: between the
    # expiry row (where 'red' means the artificial continuation value 0) and
    # row T-1 the divider may jump arbitrarily far right — with Y=0 row T-1
    # is entirely red while row T's red prefix is only the out-of-the-money
    # leaves.  One full O(T) row restores the two-sided movement invariant
    # that the trapezoid machinery needs.  (The drop-by-at-most-one bound
    # does hold from row T, so the FFT cone argument is unaffected.)
    full_t = np.maximum(greens_T, 0.0)
    i = T - 1
    width = solver.row_end(i) + 1
    if batch_base:
        req = solver._req
        req.values = full_t
        req.e_len = 0
        req.g_start = solver._tab_off - i
        vals, jb = yield req
        solver.stats.base_batch_rows += 1
    else:
        cont = row_correlate(full_t, solver._taps_arr)
        grn = solver.green(i, 0, solver.row_end(i))
        jb = scan_prefix_boundary(cont >= grn)
        vals = cont[: jb + 1]
    ws = ws.then(rows_cost(1, width, q + 1))
    solver.stats.cells_evaluated += width
    if recorder is not None:
        recorder.record(i, jb)
    price: Optional[float] = None
    while i > 0:
        if jb < 0:
            # Whole row green => everything below is green (Lemma 2.4).
            price = float(solver.green(0, 0, 0)[0])
            break
        red_count = jb + 1
        ell = min(red_count // q, i)
        if i <= tail or ell <= base:
            step_rows = i if i <= tail else min(base, i)
            vals, jb, w = yield from solver.naive_descend(i, 0, vals, jb, step_rows)
            i -= step_rows
        else:
            vals, jb, w = yield from solver.solve_trapezoid(i, 0, vals, jb, ell)
            i -= ell
            if recorder is not None and jb >= 0:
                recorder.record(i, jb)
        ws = ws.then(w)

    if price is None:
        price = float(vals[0]) if jb >= 0 else float(solver.green(0, 0, 0)[0])

    return TreeFFTResult(
        price=price,
        steps=T,
        workspan=ws,
        stats=solver.stats,
        boundary=recorder,
        meta={
            "model": "binomial" if q == 1 else "trinomial",
            "base": base,
            "tail": tail,
            "params": params,
        },
    )


def solve_tree_fft(
    params: TreeParams,
    *,
    base: int = DEFAULT_BASE,
    tail: Optional[int] = None,
    policy: AdvancePolicy = DEFAULT_POLICY,
    engine: Optional[AdvanceEngine] = None,
    record_boundary: bool = False,
) -> TreeFFTResult:
    """Price an American call on a tree lattice in ``O(T log^2 T)`` work.

    Parameters
    ----------
    params:
        :class:`BinomialParams` (fft-bopm) or :class:`TrinomialParams`
        (fft-topm); must describe a *call* (see module docstring for puts).
    base:
        Recursion base-case height (paper: 8 is empirically best; the
        ablation benchmark sweeps this).
    tail:
        Switch to the naive sweep when this many rows remain; default
        ``max(base, isqrt(T))`` — the paper's leftover-sqrt(T)-triangle rule,
        keeping the naive tail at O(T) work.
    policy:
        FFT-vs-direct robustness policy for the linear advances (ignored
        when ``engine`` is supplied — the engine carries its own).
    engine:
        Plan-caching :class:`~repro.core.fftstencil.AdvanceEngine` to run
        the linear advances on.  Default: a fresh engine per solve.  Pass a
        shared engine to amortise kernel spectra across a batch of solves
        with identical lattice parameters (see ``price_many``).
    record_boundary:
        Collect the divider positions the algorithm learns exactly
        (trapezoid interfaces + naive rows) into a
        :class:`~repro.core.boundary.BoundaryRecorder`.
    """
    _validate_tree_solve(params)
    base = check_integer("base", base, minimum=1)
    T = params.steps
    if tail is None:
        tail = max(base, isqrt(T))
    tail = check_integer("tail", tail, minimum=1)

    recorder = BoundaryRecorder() if record_boundary else None
    if engine is None:
        engine = AdvanceEngine(policy)
    engine_before = engine.cache_info()
    result = drive_serial(_tree_solve_gen(params, base, tail, recorder), engine)
    result.meta["engine"] = _engine_delta(engine_before, engine.cache_info())
    return result


def solve_tree_fft_batch(
    params_list: Sequence[TreeParams],
    *,
    base: int = DEFAULT_BASE,
    tail: Optional[int] = None,
    policy: AdvancePolicy = DEFAULT_POLICY,
    engine: Optional[AdvanceEngine] = None,
    record_boundary: bool = False,
) -> list[TreeFFTResult]:
    """Price B American calls with B *different* lattices in lockstep.

    Each parameter set gets its own trapezoid recursion (its own divider
    trajectory, recursion shape and statistics), but the B recursions run
    as generators serviced round-by-round through
    :meth:`~repro.core.fftstencil.AdvanceEngine.advance_batch` — one
    batched ``rfft``/row-multiply/``irfft`` per round where the serial loop
    made B Python-level engine calls.  Every row of every batched transform
    is bit-identical to its standalone advance, so each returned result
    equals ``solve_tree_fft(params_list[i])`` bit-for-bit.

    ``tail=None`` resolves per solve to ``max(base, isqrt(T))`` — mixed
    step counts are allowed (they simply desynchronise the rounds).
    ``meta["engine"]`` on every result carries the *batch-wide* engine
    delta (the transforms are shared, so per-solve attribution is not
    meaningful); ``meta["batched"]``/``meta["batch_size"]`` mark the
    lockstep provenance.
    """
    for params in params_list:
        _validate_tree_solve(params)
    base = check_integer("base", base, minimum=1)
    if tail is not None:
        tail = check_integer("tail", tail, minimum=1)
    if engine is None:
        engine = AdvanceEngine(policy)
    engine_before = engine.cache_info()
    gens = [
        _tree_solve_gen(
            params,
            base,
            tail if tail is not None else max(base, isqrt(params.steps)),
            BoundaryRecorder() if record_boundary else None,
            batch_base=True,
        )
        for params in params_list
    ]
    results: list[TreeFFTResult] = drive_lockstep(gens, engine)
    delta = _engine_delta(engine_before, engine.cache_info())
    for result in results:
        result.meta["engine"] = delta
        result.meta["batched"] = True
        result.meta["batch_size"] = len(results)
    return results
