"""fft-bsm: the paper's cone/trapezoid solver for the American put (§4.3).

The explicit FD scheme of §4.2 evolves the strike-normalised put value
``v[n, k]`` on the dependency cone of the apex ``(n = T, k = 0)``.  The
*green* (exercise) zone is the left tail ``k <= f_n`` with closed-form value
``1 - e^{s_k}``; the *red* (continuation) zone is everything to the right,
updated by the 3-tap stencil.  Theorem 4.3: the divider ``f_n`` moves left by
at most one cell per time step.

:func:`solve_bsm_fft` makes a single call to the recursive region advance —
the tail-recursion chain it produces is exactly the trapezoid sequence of the
paper's Figure 4b, and each level's internal split (recursive strip around
the divider, FFT on the provably-red side, closed-form green fill) is the
decomposition of Figure 4a, with work recurrence
``zeta(l) = 2 zeta(l/2) + O(l log l) = O(l log^2 l)``.

Divider bookkeeping uses *exact-or-left-of-window* semantics: an advance over
window ``[k_lo..k_hi]`` returns ``(values on [k_lo+h .. k_hi-h], f')`` where
``f'`` is the exact global divider whenever ``f' >= k_lo + h``, and any value
``< k_lo + h`` means "every output cell is red; the divider lies left of the
window".  The composition rules in :meth:`_BSMSolver.advance` preserve these
semantics (see docs/DESIGN.md §2.4 for the case analysis).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.core.boundary import BoundaryRecorder, scan_prefix_boundary
from repro.core.fftstencil import (
    DEFAULT_POLICY,
    AdvanceEngine,
    AdvancePolicy,
    engine_delta as _engine_delta,
    row_correlate,
)
from repro.core.lockstep import (
    AdvanceRequest,
    BaseRowRequest,
    drive_lockstep,
    drive_serial,
)
from repro.core.metrics import SolveStats
from repro.options.params import BSMGridParams
from repro.parallel.workspan import WorkSpan, rows_cost
from repro.util.validation import check_integer

#: Base-case height for the BSM recursion (paper §4.3 uses 10).
DEFAULT_BSM_BASE = 10


@dataclass
class BSMFFTResult:
    """Outcome of one fft-bsm solve."""

    price: float
    steps: int
    workspan: WorkSpan
    stats: SolveStats
    boundary: Optional[BoundaryRecorder] = None
    meta: dict = field(default_factory=dict)


class _BSMSolver:
    """One fft-bsm solve's state; :meth:`advance` is a generator that
    yields :class:`~repro.core.lockstep.AdvanceRequest` for its linear
    jumps (docs/DESIGN.md §7) — serviced serially or in lockstep."""

    def __init__(
        self,
        params: BSMGridParams,
        base: int,
        engine: Optional[AdvanceEngine],
        recorder: Optional[BoundaryRecorder],
        batch_base: bool = False,
    ):
        self.p = params
        self.taps = tuple(params.taps)  # (coef_down, coef_mid, coef_up)
        self.base = base
        self.engine = engine
        self.stats = SolveStats()
        self.rec = recorder
        # Per-solve payoff table: the cone only reaches k in [-T, T], so
        # one vectorised exp up front turns every payoff() call — one per
        # naive row — into a slice.  Bit-identical to the per-call formula.
        T = params.steps
        self._pay_tab = np.asarray(
            self.p.payoff(np.arange(-T, T + 1)), dtype=np.float64
        )
        self._tab_off = T
        self._taps_arr = np.asarray(self.taps, dtype=np.float64)
        # Lockstep base rows (docs/DESIGN.md §7.6): the FD row keeps the
        # full ``maximum(cont, payoff)`` update, so ``keep="max"`` with the
        # payoff table as the green slice spec.  One reused request object.
        self._req: Optional[BaseRowRequest] = (
            BaseRowRequest(
                taps=self._taps_arr,
                table=self._pay_tab,
                g_stride=1,
                keep="max",
                scan=True,
            )
            if batch_base
            else None
        )

    def payoff(self, lo: int, hi: int) -> np.ndarray:
        """Signed green values ``1 - e^{s_k}`` for ``k = lo..hi`` (a view)."""
        if hi < lo:
            return np.empty(0, dtype=np.float64)
        return self._pay_tab[lo + self._tab_off : hi + self._tab_off + 1]

    def _record(self, row: int, f: int, window_lo: int) -> None:
        if self.rec is not None and f >= window_lo:
            self.rec.record(row, f)

    # ------------------------------------------------------------------ #
    def naive(self, values: np.ndarray, k_lo: int, f: int, h: int, n0: int):
        """``h`` max-rule rows over the shrinking cone window (base case).

        A generator returning ``(values, f, workspan)`` via
        ``StopIteration``.  Serial solvers run every row inline (no
        yields); lockstep solvers yield each row as a
        :class:`BaseRowRequest` so the driver batches the B live rows —
        bit-identical either way.
        """
        cur = values
        lo = k_lo
        ws = WorkSpan.ZERO
        req = self._req
        stats = self.stats
        stats.base_cases += 1
        for step in range(1, h + 1):
            lo += 1
            width = len(cur) - 2
            if req is not None:
                req.values = cur
                req.g_start = lo + self._tab_off
                cur, d = yield req
                f = lo + d
                stats.base_batch_rows += 1
            else:
                cont = row_correlate(cur, self._taps_arr)
                pay = self.payoff(lo, lo + width - 1)
                f = lo + scan_prefix_boundary(pay >= cont)
                cur = np.maximum(cont, pay)
            stats.cells_evaluated += width
            stats.base_rows += 1
            ws = ws.then(rows_cost(1, width, 3))
            self._record(n0 + step, f, lo)
        return cur, f, ws

    # ------------------------------------------------------------------ #
    def advance(
        self,
        values: np.ndarray,
        k_lo: int,
        f: int,
        h: int,
        n0: int,
        depth: int = 0,
    ) -> tuple[np.ndarray, int, WorkSpan]:
        """Advance the window ``h`` rows; see module docstring for semantics.

        A generator: yields :class:`AdvanceRequest`, receives ``(values,
        record)``, returns the usual ``(values, f, workspan)`` triple.

        Precondition: ``len(values) >= 2h + 1``.
        """
        self.stats.note_depth(depth)
        k_hi = k_lo + len(values) - 1
        out_lo = k_lo + h

        if f < k_lo:
            # Every cell of every involved row is red: one linear jump.
            y, rec = yield AdvanceRequest(values, self.taps, h, 1.0)
            self.stats.note_advance(rec.method, rec.input_len, rec.spectrum_hit)
            return y, min(f, out_lo - 1), rec.workspan

        h1 = h // 2
        if h <= self.base or f + 2 * h1 > k_hi:
            # Base case, or the divider sits too close to the window's right
            # edge for a clean split (only reachable at tiny T or extreme
            # moneyness) — the naive sweep is exact for any configuration.
            return (yield from self.naive(values, k_lo, f, h, n0))

        self.stats.trapezoids += 1
        mid_lo, mid_hi = k_lo + h1, k_hi - h1

        # ---- strip around the divider (recursive; Fig 4a's sub-trapezoid) --
        sub_lo = max(k_lo, f - 2 * h1)
        sub_hi = f + 2 * h1  # <= k_hi by the split guard
        strip_vals, f_mid, ws_strip = yield from self.advance(
            values[sub_lo - k_lo : sub_hi - k_lo + 1],
            sub_lo,
            f,
            h1,
            n0,
            depth + 1,
        )
        strip_lo = sub_lo + h1  # first column strip_vals covers
        self._record(n0 + h1, f_mid, strip_lo)

        # ---- provably-red block: everything right of the 45° line from f --
        fft_lo = max(f + h1, mid_lo)  # == f + h1 given the guard
        xin = values[(fft_lo - h1) - k_lo : (mid_hi + h1) - k_lo + 1]
        y, rec = yield AdvanceRequest(xin, self.taps, h1, 1.0)
        self.stats.note_advance(rec.method, rec.input_len, rec.spectrum_hit)
        ws_fft = rec.workspan

        # ---- assemble the mid row on [mid_lo .. mid_hi] -------------------
        parts = []
        if f_mid >= mid_lo:
            parts.append(self.payoff(mid_lo, min(f_mid, mid_hi)))
        red_start = max(mid_lo, f_mid + 1)
        if red_start <= fft_lo - 1:
            parts.append(
                strip_vals[red_start - strip_lo : fft_lo - strip_lo]
            )
        parts.append(y)
        mid_vals = parts[0] if len(parts) == 1 else np.concatenate(parts)
        if len(mid_vals) != mid_hi - mid_lo + 1:
            raise AssertionError(
                f"mid-row assembly mismatch: {len(mid_vals)} cells for window "
                f"[{mid_lo}, {mid_hi}]"
            )
        ws_half = ws_fft.beside(ws_strip)

        # ---- remaining h - h1 rows: same problem from the mid row ---------
        out_vals, f_out, ws_rest = yield from self.advance(
            mid_vals, mid_lo, f_mid, h - h1, n0 + h1, depth + 1
        )
        return out_vals, f_out, ws_half.then(ws_rest)


def _bsm_solve_gen(
    params: BSMGridParams,
    base: int,
    recorder: Optional[BoundaryRecorder],
    batch_base: bool = False,
):
    """Generator body of one fft-bsm solve.

    Yields :class:`~repro.core.lockstep.AdvanceRequest` for every linear
    jump — plus, with ``batch_base=True``,
    :class:`~repro.core.lockstep.BaseRowRequest` for every naive row — and
    returns the :class:`BSMFFTResult` (without the driver-supplied
    ``meta["engine"]`` delta) via ``StopIteration``.
    """
    T = params.steps
    solver = _BSMSolver(params, base, None, recorder, batch_base)

    pay0 = solver.payoff(-T, T)
    vals = np.maximum(pay0, 0.0)
    f = -T + scan_prefix_boundary(pay0 >= 0.0)
    ws = rows_cost(1, 2 * T + 1, 1)
    solver.stats.cells_evaluated += 2 * T + 1
    if recorder is not None:
        recorder.record(0, f)

    # Fig 4b driver: trapezoids of geometrically decreasing height T/2, T/4,
    # ... up the cone, then a naive finish.  (A single full-height advance
    # would leave the divider adjacent to the one-cell output window and
    # degrade to the naive path; halving keeps the split guard satisfied.)
    k_lo = -T
    n0 = 0
    remaining = T
    while remaining > 0:
        if remaining <= 2 * base:
            vals, f, w = yield from solver.naive(vals, k_lo, f, remaining, n0)
            ws = ws.then(w)
            k_lo += remaining
            n0 += remaining
            remaining = 0
            break
        h = remaining // 2
        vals, f, w = yield from solver.advance(vals, k_lo, f, h, n0)
        ws = ws.then(w)
        k_lo += h
        n0 += h
        remaining -= h
    out = vals
    if len(out) != 1:
        raise AssertionError(f"apex advance returned {len(out)} cells")

    return BSMFFTResult(
        price=float(params.spec.strike * out[0]),
        steps=T,
        workspan=ws,
        stats=solver.stats,
        boundary=recorder,
        meta={
            "model": "bsm-fd",
            "base": base,
            "params": params,
        },
    )


def solve_bsm_fft(
    params: BSMGridParams,
    *,
    base: int = DEFAULT_BSM_BASE,
    policy: AdvancePolicy = DEFAULT_POLICY,
    engine: Optional[AdvanceEngine] = None,
    record_boundary: bool = False,
) -> BSMFFTResult:
    """Price the American put of ``params.spec`` in ``O(T log^2 T)`` work.

    The answer is the apex value ``K * v[T, 0]`` of the dependency cone whose
    base is the initial condition ``v[0, k] = max(1 - e^{s_k}, 0)`` on
    ``k in [-T, T]`` (paper Fig 4b).  ``engine`` (default: fresh per solve)
    carries the kernel-spectrum plan cache; share one across solves with
    identical grid coefficients to amortise the kernel transforms further.
    """
    base = check_integer("base", base, minimum=1)
    recorder = BoundaryRecorder() if record_boundary else None
    if engine is None:
        engine = AdvanceEngine(policy)
    engine_before = engine.cache_info()
    result = drive_serial(_bsm_solve_gen(params, base, recorder), engine)
    result.meta["engine"] = _engine_delta(engine_before, engine.cache_info())
    return result


def solve_bsm_fft_batch(
    params_list: Sequence[BSMGridParams],
    *,
    base: int = DEFAULT_BSM_BASE,
    policy: AdvancePolicy = DEFAULT_POLICY,
    engine: Optional[AdvanceEngine] = None,
    record_boundary: bool = False,
) -> list[BSMFFTResult]:
    """Price B American puts with B *different* FD grids in lockstep.

    The multi-kernel sibling of
    :func:`~repro.core.tree_solver.solve_tree_fft_batch`: each grid runs
    its own cone recursion as a generator, and every round's outstanding
    linear jumps are serviced by one
    :meth:`~repro.core.fftstencil.AdvanceEngine.advance_batch` call.  Each
    result is bit-identical to ``solve_bsm_fft(params_list[i])``;
    ``meta["engine"]`` carries the batch-wide engine delta and
    ``meta["batched"]``/``meta["batch_size"]`` the lockstep provenance.
    """
    base = check_integer("base", base, minimum=1)
    if engine is None:
        engine = AdvanceEngine(policy)
    engine_before = engine.cache_info()
    gens = [
        _bsm_solve_gen(
            params,
            base,
            BoundaryRecorder() if record_boundary else None,
            batch_base=True,
        )
        for params in params_list
    ]
    results: list[BSMFFTResult] = drive_lockstep(gens, engine)
    delta = _engine_delta(engine_before, engine.cache_info())
    for result in results:
        result.meta["engine"] = delta
        result.meta["batched"] = True
        result.meta["batch_size"] = len(results)
    return results
