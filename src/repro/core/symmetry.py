"""American put pricing through exact put–call symmetry.

The fast tree solvers (:mod:`repro.core.tree_solver`) price American *calls*
— the orientation whose red–green divider the paper analyses.  American
*puts* are handled by the McDonald–Schroder symmetry

    ``P(S, K, R, Y, T) = C(K, S, Y, R, T)``

which is **exact** on a CRR lattice with ``u·d = 1``: writing the put value at
node ``(i, j)`` as ``P_{i,j}`` and the dual call's value at the mirrored node
as ``C'_{i,i-j}``, one checks ``C'_{i,i-j} = P_{i,j} / u^{2j-i}`` by backward
induction, because the dual lattice shares the same ``u`` (volatility is
unchanged) and its discounted weights satisfy ``s1'·u = s0`` and
``s0'/u = s1`` identically (both equal ``(u e^{-R dt} - e^{-Y dt})/(u - d)``
and ``(e^{-Y dt} - d e^{-R dt})/(u - d)`` respectively).  At the root the
factor is ``u^0 = 1``, so the prices agree exactly — the test suite verifies
this to machine precision against the vanilla put sweep.

This realises one of the paper's "future work" items (§6: other option
types) without any new boundary theory: the dual call's divider is exactly
the mirrored put divider.
"""

from __future__ import annotations

from typing import Optional

from repro.core.fftstencil import DEFAULT_POLICY, AdvanceEngine, AdvancePolicy
from repro.core.tree_solver import DEFAULT_BASE, TreeFFTResult, solve_tree_fft
from repro.options.contract import OptionSpec, Right, Style
from repro.options.params import BinomialParams, TrinomialParams
from repro.util.validation import ValidationError


def canonicalize_right(
    spec: OptionSpec, model: str, method: str = "fft"
) -> "tuple[OptionSpec, bool]":
    """Reduce a contract to the solver-preferred right: ``(spec', dualized)``.

    ``fft`` puts map to their McDonald–Schroder dual call wherever the fold
    matches what :func:`repro.core.api.price_american` itself would solve:

    * binomial ``fft``, both exercise styles — exact on the CRR lattice;
      the backward-induction argument in the module docstring never uses
      the exercise ``max``, only the weight identities, so it applies
      row-by-row to either style (the test suite checks both to ~1e-13);
    * *American* trinomial ``fft`` — :func:`solve_put_via_symmetry` prices
      that put through the dual lattice anyway, so the fold changes
      nothing but the cache key (measured ~8e-15 at T=1024).

    Everything else keeps its orientation:

    * *European* trinomial puts are priced natively, and the trinomial
      weights satisfy the dual identity only to discretisation order
      (measured drift ~2.5e-12 relative at T=257, ~3.8e-10 at T=1024), so
      folding them would break the cache's exactness contract;
    * non-``fft`` puts — the loop solvers price puts natively and record
      the *put's own* divider, which a dual fold would silently replace
      with the mirrored dual-call divider;
    * bsm-fd — that model prices puts directly.

    Used by the quote service (:mod:`repro.service.canonical`) to fold put
    and call traffic onto one canonical key.
    """
    if spec.right is not Right.PUT or method != "fft":
        return spec, False
    if model == "binomial" or (
        model == "trinomial" and spec.style is Style.AMERICAN
    ):
        return spec.symmetric_dual(), True
    return spec, False


def solve_put_via_symmetry(
    spec: OptionSpec,
    steps: int,
    *,
    model: str = "binomial",
    base: int = DEFAULT_BASE,
    policy: AdvancePolicy = DEFAULT_POLICY,
    engine: Optional[AdvanceEngine] = None,
    record_boundary: bool = False,
) -> TreeFFTResult:
    """Price an American put with the fast call solver on the dual contract.

    The returned result is the dual call's solve (same price; its recorded
    divider is the mirror image ``j' = i - j`` of the put's divider).
    Requires the dual lattice to be valid: the dual's risk-neutral
    probability must lie in ``(0, 1)``, which holds for the same parameter
    ranges as the primal (the drift merely changes sign).
    """
    if spec.right is not Right.PUT:
        raise ValidationError("solve_put_via_symmetry expects a put contract")
    dual = spec.symmetric_dual()
    if model == "binomial":
        params: BinomialParams | TrinomialParams = BinomialParams.from_spec(
            dual, steps
        )
    elif model == "trinomial":
        params = TrinomialParams.from_spec(dual, steps)
    else:
        raise ValidationError(f"unknown tree model {model!r}")
    result = solve_tree_fft(
        params,
        base=base,
        policy=policy,
        engine=engine,
        record_boundary=record_boundary,
    )
    result.meta["symmetric_dual_of"] = spec
    result.meta["note"] = (
        "priced as the dual American call C(K, S, Y, R); exact on CRR lattices"
    )
    return result
