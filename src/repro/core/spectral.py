"""Chebyshev-collocation spectral pricer — the ``"spectral"`` backend.

Where the lattice solvers discretise *time* into T steps and pay
O(T log²T), this module discretises the early-exercise **boundary** into
a handful of Chebyshev collocation nodes and pays near-O(n) per solve —
the Andersen–Lake "spectral collocation" scheme the ROADMAP names as the
single biggest raw-speed lever for cold traffic.  The recipe:

1. **Collocation nodes.**  The boundary ``B(τ)`` of the American put has
   a square-root singularity at expiry, so it is parametrised on
   ``x = √τ``: Chebyshev–Lobatto points ``z_i = -cos(iπ/n)`` map to
   ``x_i = √T·(1+z_i)/2``, ``τ_i = x_i²``, clustering nodes where the
   boundary bends hardest.  The interpolated quantity is
   ``H(x) = ln²(B/X)`` with ``X = K·min(1, r/q)`` (``B(0⁺) = X``), which
   is smooth and pins ``H(0) = 0`` exactly.
2. **Fixed-point iteration.**  Each sweep evaluates the integral
   representation of the boundary (the put's value-matching condition)

   .. math::

      B(τ) = K \\,
      \\frac{e^{-rτ}Φ(d_-(τ, B/K)) + r\\int_0^τ e^{-ru}
             Φ(d_-(u, B(τ)/B(τ-u)))\\,du}
            {e^{-qτ}Φ(d_+(τ, B/K)) + q\\int_0^τ e^{-qu}
             Φ(d_+(u, B(τ)/B(τ-u)))\\,du}

   at every node simultaneously (one vectorised ``ndtr`` call over the
   node × quadrature-point matrix) and refits the Chebyshev coefficients.
3. **Tanh-sinh quadrature.**  The integrals run through the
   substitution ``u = τ((1+y)/2)²`` (flattening the √u behaviour) and a
   fixed tanh-sinh rule ``y_k = tanh(½π sinh(kh))`` whose
   doubly-exponential weight decay handles the endpoint derivatives.
4. **Clenshaw evaluation.**  The fitted coefficients are evaluated by
   the Clenshaw recurrence — never by materialising Chebyshev basis
   polynomials — both inside the iteration (``B(τ-u)``) and at pricing
   time.
5. **Pricing.**  With the boundary in hand, the premium representation
   prices any spot against the *same* plan:
   ``V = p_euro + ∫ [rK e^{-ru}Φ(-d_-) - qS e^{-qu}Φ(-d_+)] du``.
   Calls price through the exact McDonald–Schroder symmetry
   (``C(S,K,r,q) = P(K,S,q,r)``), zero-dividend calls and zero-rate puts
   fall through to the Black–Scholes closed form, exactly like the
   lattice front door.

Plans — converged boundary coefficients for one ``(r, q, σ, T)`` on the
unit-strike contract (value homogeneity makes the strike a pure scale
factor) — are cached per backend instance the way
:class:`~repro.core.fftstencil.AdvanceEngine` caches kernel spectra, so
a strike ladder or a repeated quote pays the fixed-point iteration once.

Accuracy is stated, not incidental: :data:`SPECTRAL_TOL` is the
backend's ``tolerance`` contract, validated against the lattice across a
moneyness × vol × expiry grid in ``tests/core/test_spectral.py``.
"""

from __future__ import annotations

import math
import threading
from functools import lru_cache
from typing import Optional, Sequence

import numpy as np
from scipy.special import ndtr

from repro.core.api import (
    PricingResult,
    check_model_method,
)
from repro.core.backend import register_backend
from repro.options.analytic import (
    black_scholes,
    no_early_exercise_call,
    no_early_exercise_put,
)
from repro.options.contract import OptionSpec, Right, Style
from repro.util.validation import ValidationError, check_integer

#: The backend's stated worst-case relative price error versus the exact
#: lattice at default collocation order (the ``tolerance`` attribute the
#: service surfaces as ``meta["tolerance"]``).  Relative to
#: ``max(price, 1% of strike)`` so deep out-of-the-money cents do not
#: masquerade as huge relative errors.
SPECTRAL_TOL = 1e-3

#: Default Chebyshev interpolation order ``n`` (``n + 1`` boundary nodes).
DEFAULT_ORDER = 12
#: Default tanh-sinh point count ``l`` (an odd count keeps ``y = 0``).
DEFAULT_QUAD_POINTS = 41
#: Default tanh-sinh step ``h``.
DEFAULT_QUAD_H = 0.25
#: Default fixed-point sweep cap (early exit on stagnation below).
DEFAULT_ITERATIONS = 12
#: Boundary sweeps stop once the worst per-node relative move drops here.
FIXED_POINT_RTOL = 1e-10

#: Time floor inside ``d±`` — keeps the ``√u`` denominators finite at the
#: quadrature endpoint without perturbing any genuine node.
_TIME_FLOOR = 1e-14


# --------------------------------------------------------------------- #
# Spectral primitives
# --------------------------------------------------------------------- #
def chebyshev_nodes(order: int, tau_max: float) -> tuple:
    """Chebyshev–Lobatto points and their ``x = √τ`` / ``τ`` images.

    Returns ``(z, x, tau)``: ``z_i = -cos(iπ/n)`` ascending from -1 to 1,
    ``x_i = √tau_max·(1+z_i)/2``, ``tau_i = x_i²`` ascending from 0 to
    ``tau_max`` — node 0 sits exactly at expiry (``τ = 0``).
    """
    i = np.arange(order + 1, dtype=np.float64)
    z = -np.cos(np.pi * i / order)
    x = math.sqrt(tau_max) * (1.0 + z) / 2.0
    return z, x, x * x


def chebyshev_coefficients(values: np.ndarray) -> np.ndarray:
    """Coefficients of the interpolant through nodes ``z_i = -cos(iπ/n)``.

    ``a_k = (-1)^k [(v_0 + (-1)^k v_n)/n + (2/n)Σ_{i=1}^{n-1} v_i cos(πik/n)]``
    — the discrete Chebyshev transform (Σ'' over the values, endpoint
    terms halved); the ``(-1)^k`` carries the flipped-sign node ordering
    (``z_i = -cos(iπ/n)``, ascending) into the coefficient basis, so the
    interpolant evaluates at ``z`` directly.  The result feeds
    :func:`clenshaw`, which halves the first and last *coefficients*
    (the Σ'' convention on the evaluation side).
    """
    n = len(values) - 1
    sign, inner = _dct_matrix(n)
    a = (values[0] + sign * values[n]) / n
    if n > 1:
        a = a + inner @ values[1:n]
    return sign * a


@lru_cache(maxsize=32)
def _dct_matrix(n: int) -> tuple:
    """Iteration-invariant pieces of :func:`chebyshev_coefficients`:
    ``((-1)^k, (2/n)·cos(πik/n))`` for one interpolation order."""
    k = np.arange(n + 1, dtype=np.float64)
    i = np.arange(1, n, dtype=np.float64)
    sign = np.where(k % 2 == 0, 1.0, -1.0)
    inner = (2.0 / n) * np.cos(np.pi * np.outer(k, i) / n)
    sign.setflags(write=False)
    inner.setflags(write=False)
    return sign, inner


def chebyshev_basis(z: np.ndarray, order: int) -> np.ndarray:
    """The Σ''-weighted Chebyshev basis ``T_k(z)`` stacked on a last axis.

    ``basis @ coeffs`` equals :func:`clenshaw` for any coefficient vector
    of matching order — the matrix form the boundary iteration uses on
    its fixed ``z`` grid, where one matmul per sweep beats re-running the
    recurrence.  Endpoint columns carry the ½ of the Σ'' convention.
    """
    theta = np.arccos(np.clip(z, -1.0, 1.0))
    k = np.arange(order + 1, dtype=np.float64)
    basis = np.cos(theta[..., None] * k)
    basis[..., 0] *= 0.5
    basis[..., order] *= 0.5
    return basis


def clenshaw(z: np.ndarray, coeffs: np.ndarray) -> np.ndarray:
    """Evaluate ``Σ'' a_k T_k(z)`` (halved endpoint terms) by the Clenshaw
    recurrence; vectorised over any shape of ``z``."""
    n = len(coeffs) - 1
    z = np.asarray(z, dtype=np.float64)
    b1 = np.full_like(z, 0.5 * coeffs[n])
    b2 = np.zeros_like(z)
    for k in range(n - 1, 0, -1):
        b1, b2 = coeffs[k] + 2.0 * z * b1 - b2, b1
    return 0.5 * coeffs[0] + z * b1 - b2


def tanhsinh_nodes(points: int, h: float) -> tuple:
    """Tanh-sinh (double-exponential) rule on ``[-1, 1]``.

    ``y_k = tanh(½π sinh(kh))``, ``w_k = ½πh cosh(kh)/cosh²(½π sinh(kh))``
    for ``k = -K..K`` with ``K = (points-1)//2`` — the weights decay
    doubly exponentially, so endpoint singularities in derivatives cost
    nothing extra.  Returns ``(y, w)`` ascending.
    """
    half = (points - 1) // 2
    k = np.arange(-half, half + 1, dtype=np.float64)
    s = 0.5 * np.pi * np.sinh(k * h)
    y = np.tanh(s)
    w = 0.5 * np.pi * h * np.cosh(k * h) / np.cosh(s) ** 2
    return y, w


def _d_pm(t: np.ndarray, ratio: np.ndarray, r: float, q: float,
          sigma: float) -> tuple:
    """``d±(t, ratio)`` of the Black–Scholes kernel, vectorised."""
    t = np.maximum(t, _TIME_FLOOR)
    vol_sqrt = sigma * np.sqrt(t)
    d_plus = (np.log(ratio) + (r - q + 0.5 * sigma * sigma) * t) / vol_sqrt
    return d_plus, d_plus - vol_sqrt


def _european_put(spot, r: float, q: float, sigma: float, tau: float):
    """Unit-strike Black–Scholes European put (vectorised over ``spot``)."""
    d_plus, d_minus = _d_pm(np.asarray(tau, dtype=np.float64),
                            np.asarray(spot, dtype=np.float64), r, q, sigma)
    return (math.exp(-r * tau) * ndtr(-d_minus)
            - spot * math.exp(-q * tau) * ndtr(-d_plus))


# --------------------------------------------------------------------- #
# Boundary plan
# --------------------------------------------------------------------- #
class SpectralPlan:
    """A converged boundary for one ``(r, q, σ, T)`` on the unit strike.

    Holds the Chebyshev coefficients of ``H(x) = ln²(B/X)`` plus the
    quadrature rule, and prices any spot against them — the reusable
    artifact the backend's plan cache stores.
    """

    __slots__ = (
        "r", "q", "sigma", "tau_max", "x_cap", "coeffs",
        "quad_y", "quad_w", "iterations_used", "order",
    )

    def __init__(self, r: float, q: float, sigma: float, tau_max: float,
                 *, order: int, quad_points: int, quad_h: float,
                 max_iterations: int):
        self.r = r
        self.q = q
        self.sigma = sigma
        self.tau_max = tau_max
        self.order = order
        # B(0+) for the put: K when r >= q, else K·r/q (unit strike here)
        self.x_cap = min(1.0, r / q) if q > 0.0 else 1.0
        self.quad_y, self.quad_w = tanhsinh_nodes(quad_points, quad_h)
        self.coeffs, self.iterations_used = self._solve_boundary(
            max_iterations
        )

    # -- boundary ------------------------------------------------------ #
    def boundary(self, tau: np.ndarray) -> np.ndarray:
        """``B(τ)`` from the fitted interpolant (unit strike), any shape."""
        z = 2.0 * np.sqrt(np.maximum(tau, 0.0) / self.tau_max) - 1.0
        h_val = clenshaw(np.clip(z, -1.0, 1.0), self.coeffs)
        return self.x_cap * np.exp(-np.sqrt(np.maximum(h_val, 0.0)))

    def _solve_boundary(self, max_iterations: int) -> tuple:
        r, q, sigma = self.r, self.q, self.sigma
        _, _, tau = chebyshev_nodes(self.order, self.tau_max)
        cap = self.x_cap
        bound = np.full(self.order + 1, cap)
        coeffs = chebyshev_coefficients(np.zeros(self.order + 1))
        sqrt_tau_max = math.sqrt(self.tau_max)

        # node × quadrature-point geometry is iteration-invariant
        tau_i = tau[1:, None]                               # (n, 1)
        y = self.quad_y[None, :]                            # (1, l)
        u = tau_i * ((1.0 + y) / 2.0) ** 2                  # (n, l)
        jacobian = tau_i * (1.0 + y) / 2.0                  # du/dy
        z_rem = 2.0 * np.sqrt(np.maximum(tau_i - u, 0.0)) / sqrt_tau_max - 1.0
        basis_rem = chebyshev_basis(z_rem, self.order)
        w_r = self.quad_w[None, :] * np.exp(-r * u) * jacobian
        w_q = self.quad_w[None, :] * np.exp(-q * u) * jacobian
        disc_r = np.exp(-r * tau[1:])
        disc_q = np.exp(-q * tau[1:])

        iterations_used = 0
        for _ in range(max_iterations):
            iterations_used += 1
            h_rem = basis_rem @ coeffs
            b_rem = cap * np.exp(-np.sqrt(np.maximum(h_rem, 0.0)))
            d_plus, d_minus = _d_pm(u, bound[1:, None] / b_rem, r, q, sigma)
            d_plus_k, d_minus_k = _d_pm(tau[1:], bound[1:], r, q, sigma)
            numer = disc_r * ndtr(d_minus_k) + r * np.sum(
                w_r * ndtr(d_minus), axis=1
            )
            denom = disc_q * ndtr(d_plus_k) + q * np.sum(
                w_q * ndtr(d_plus), axis=1
            )
            new_bound = np.where(
                denom > 1e-300, numer / np.maximum(denom, 1e-300), cap
            )
            new_bound = np.clip(new_bound, 1e-12, cap)
            drift = float(
                np.max(np.abs(new_bound - bound[1:]) / np.abs(bound[1:]))
            )
            bound = np.concatenate(([cap], new_bound))
            coeffs = chebyshev_coefficients(np.log(bound / cap) ** 2)
            if drift < FIXED_POINT_RTOL:
                break
        return coeffs, iterations_used

    # -- pricing ------------------------------------------------------- #
    def price_put(self, spot: float) -> float:
        """American put value at ``spot`` (unit strike) off this plan."""
        r, q, sigma, tau_max = self.r, self.q, self.sigma, self.tau_max
        if spot <= float(self.boundary(np.asarray(tau_max))):
            return 1.0 - spot  # inside the exercise region: stop now
        euro = float(_european_put(spot, r, q, sigma, tau_max))
        u = tau_max * ((1.0 + self.quad_y) / 2.0) ** 2
        jacobian = tau_max * (1.0 + self.quad_y) / 2.0
        b_rem = self.boundary(tau_max - u)
        d_plus, d_minus = _d_pm(u, spot / b_rem, r, q, sigma)
        premium = float(np.sum(
            self.quad_w * jacobian * (
                r * np.exp(-r * u) * ndtr(-d_minus)
                - q * spot * np.exp(-q * u) * ndtr(-d_plus)
            )
        ))
        return max(euro + premium, euro, 1.0 - spot)


# --------------------------------------------------------------------- #
# Backend
# --------------------------------------------------------------------- #
class SpectralBackend:
    """:class:`~repro.core.backend.PricerBackend` over :class:`SpectralPlan`.

    ``price_spec`` answers any American (or European) contract within
    :data:`SPECTRAL_TOL`; ``price_batch`` loops ``price_spec`` (no
    lockstep kernel — ``supports_batching`` is ``False``) but shares the
    plan cache, so ladders over one market state amortise the boundary
    solve.  No divider is produced (``supports_boundary`` /
    ``supports_divider`` are ``False``; ``return_boundary=True`` is a
    :class:`ValidationError`, not a silent empty answer).
    """

    name = "spectral"
    tolerance = SPECTRAL_TOL
    supports_boundary = False
    supports_divider = False
    supports_batching = False

    def __init__(self, *, order: int = DEFAULT_ORDER,
                 quad_points: int = DEFAULT_QUAD_POINTS,
                 quad_h: float = DEFAULT_QUAD_H,
                 iterations: int = DEFAULT_ITERATIONS,
                 plan_cache_size: int = 512):
        self.order = check_integer("order", order, minimum=2)
        self.quad_points = check_integer(
            "quad_points", quad_points, minimum=3
        )
        self.quad_h = quad_h
        self.iterations = check_integer("iterations", iterations, minimum=1)
        self.plan_cache_size = check_integer(
            "plan_cache_size", plan_cache_size, minimum=1
        )
        self._plans: dict = {}
        self._lock = threading.Lock()
        self._plan_hits = 0
        self._plan_misses = 0

    # -- plan cache ---------------------------------------------------- #
    def plan_for(self, r: float, q: float, sigma: float,
                 tau_max: float) -> SpectralPlan:
        """The converged unit-strike plan for ``(r, q, σ, T)`` (cached)."""
        key = (r, q, sigma, tau_max)
        with self._lock:
            plan = self._plans.get(key)
            if plan is not None:
                self._plan_hits += 1
                return plan
        plan = SpectralPlan(
            r, q, sigma, tau_max, order=self.order,
            quad_points=self.quad_points, quad_h=self.quad_h,
            max_iterations=self.iterations,
        )
        with self._lock:
            self._plan_misses += 1
            if len(self._plans) >= self.plan_cache_size:
                self._plans.pop(next(iter(self._plans)))
            self._plans[key] = plan
        return plan

    def cache_info(self) -> dict:
        """Plan-cache telemetry: ``{"plans", "hits", "misses"}``."""
        with self._lock:
            return {
                "plans": len(self._plans),
                "hits": self._plan_hits,
                "misses": self._plan_misses,
            }

    # -- PricerBackend ------------------------------------------------- #
    def price_spec(
        self,
        spec: OptionSpec,
        steps: int,
        *,
        model: str = "binomial",
        method: str = "fft",
        base: Optional[int] = None,
        lam: Optional[float] = None,
        policy=None,
        engine=None,
        return_boundary: bool = False,
    ) -> PricingResult:
        steps = check_integer("steps", steps, minimum=1)
        check_model_method(model, method)
        if return_boundary:
            raise ValidationError(
                "the spectral backend prices off a collocation boundary and "
                "produces no lattice divider; use backend='lattice' for "
                "return_boundary=True"
            )
        if spec.style is Style.BERMUDAN:
            raise ValidationError(
                "the spectral backend handles American and European styles; "
                "Bermudan contracts need exercise dates — call "
                "price_bermudan directly"
            )
        if spec.style is Style.EUROPEAN:
            return self._closed_form(spec, steps, model, method)
        spec = spec.with_style(Style.AMERICAN)
        if model == "bsm-fd" and spec.right is not Right.PUT:
            raise ValidationError("the bsm-fd model prices puts")
        if no_early_exercise_call(spec) or no_early_exercise_put(spec):
            # never-exercised-early contracts have exact closed forms; the
            # lattice front door shortcuts the call the same way
            return self._closed_form(spec, steps, model, method)

        # Calls price through the exact McDonald–Schroder symmetry; the
        # plan then always describes a put boundary.
        dualized = spec.right is Right.CALL
        work = spec.symmetric_dual() if dualized else spec
        unit, strike = work.strike_scaled()
        plan = self.plan_for(
            unit.rate, unit.dividend_yield, unit.volatility, unit.years
        )
        price = plan.price_put(unit.spot) * strike
        result = PricingResult(
            price=price,
            steps=steps,
            model=model,
            method=method,
            stats={
                "collocation_nodes": self.order + 1,
                "quad_points": self.quad_points,
                "fixed_point_iterations": plan.iterations_used,
            },
            meta={
                "backend": self.name,
                "tolerance": self.tolerance,
                "spectral": {
                    "order": self.order,
                    "dualized": dualized,
                },
            },
        )
        return result

    def price_batch(
        self,
        specs: Sequence[OptionSpec],
        steps: int,
        *,
        model: str = "binomial",
        method: str = "fft",
        base: Optional[int] = None,
        lam: Optional[float] = None,
        policy=None,
        engine=None,
    ) -> list:
        return [
            self.price_spec(
                spec, steps, model=model, method=method, base=base, lam=lam,
                policy=policy, engine=engine,
            )
            for spec in specs
        ]

    # -- helpers ------------------------------------------------------- #
    def _closed_form(self, spec: OptionSpec, steps: int, model: str,
                     method: str) -> PricingResult:
        price = black_scholes(spec).price
        meta = {
            "backend": self.name,
            "tolerance": self.tolerance,
            "closed_form": "black-scholes",
        }
        if spec.style is not Style.EUROPEAN:
            meta["no_early_exercise"] = True
        return PricingResult(
            price=price, steps=steps, model=model, method=method, meta=meta,
        )


register_backend(SpectralBackend())
