"""Fast European and Bermudan pricing by full-row FFT jumps.

The paper notes (§1, 'How Our Algorithms Differ…') that *European* pricing
lacks the ``max`` operator, making the doubly-nested loop a pure linear
stencil; with the [1] machinery that is a single ``O(T log T)`` jump from the
expiry row to the root.  *Bermudan* contracts — exercisable on a finite set
of dates, listed in the paper's future work (§6) — sit in between: the grid
is linear between consecutive exercise rows, so the sweep is a chain of FFT
jumps with one vectorised ``max`` per exercise date:
``O((k+1) · T log T)`` work for ``k`` exercise dates.

Unlike the American solvers these maintain *full* rows (the red–green
contiguity lemmas do not apply between exercise dates), so no divider
tracking is needed — the valid-mode advance shrinks row ``i+h`` (width
``q(i+h)+1``) to exactly row ``i`` (width ``qi+1``).
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Union

import numpy as np

from repro.core.fftstencil import DEFAULT_POLICY, AdvanceEngine, AdvancePolicy
from repro.core.lockstep import (
    AdvanceRequest,
    BaseRowRequest,
    drive_lockstep,
    drive_serial,
)
from repro.core.metrics import SolveStats
from repro.core.tree_solver import TreeFFTResult
from repro.options.contract import Right
from repro.options.params import BinomialParams, BSMGridParams, TrinomialParams
from repro.options.payoff import terminal_payoff
from repro.parallel.workspan import WorkSpan, rows_cost
from repro.util.validation import ValidationError, check_integer

TreeParams = Union[BinomialParams, TrinomialParams]


def _validated_rows(steps: int, exercise_steps: Iterable[int]) -> list[int]:
    rows = sorted({check_integer("exercise step", e, minimum=0) for e in exercise_steps})
    if rows and rows[-1] > steps:
        raise ValidationError(
            f"exercise step {rows[-1]} exceeds number of steps {steps}"
        )
    return [r for r in rows if r < steps]  # expiry is always a payoff row


def _checkpoints(rows: Sequence[int]) -> list[int]:
    checkpoints = list(reversed(rows))
    if not checkpoints or checkpoints[-1] != 0:
        checkpoints.append(0)  # always finish the jump chain at the root
    return checkpoints


def _jump_jobs(T: int, q: int, checkpoints: Sequence[int]) -> list[tuple[int, int]]:
    # Full plans are known statically: each jump advances the full row at
    # `prev` (width q*prev + 1) down by the checkpoint gap.
    jobs = []
    prev = T
    for row in checkpoints:
        if prev - row > 0:
            jobs.append((prev - row, q * prev + 1))
        prev = row
    return jobs


#: Identity stencil for exercise-date max rows (no taps, pure max vs green).
_EMPTY_TAPS = np.empty(0, dtype=np.float64)


def _bermudan_gen(params: TreeParams, rows: list[int], batch_base: bool = False):
    """Generator body of one Bermudan/European jump-chain solve.

    Yields :class:`~repro.core.lockstep.AdvanceRequest` for the checkpoint
    jumps; with ``batch_base=True`` the exercise-date max rows are yielded
    as identity-stencil :class:`~repro.core.lockstep.BaseRowRequest`
    (``keep="max"``, no divider scan) so B lockstep contracts take their
    vectorised max in one stacked engine call per exercise round.  Serial
    mode applies the max inline — the exact pre-generator call sequence.
    """
    T = params.steps
    spec = params.spec
    q = len(params.taps) - 1
    stats = SolveStats()

    j = np.arange(q * T + 1, dtype=np.float64)
    values = terminal_payoff(spec, params.asset_price(T, j))
    ws = rows_cost(1, q * T + 1, 1)
    stats.cells_evaluated += q * T + 1

    current = T
    exercise_rows = set(rows)
    req = (
        BaseRowRequest(taps=_EMPTY_TAPS, keep="max", scan=False)
        if batch_base
        else None
    )
    for row in _checkpoints(rows):
        h = current - row
        if h > 0:
            values, rec = yield AdvanceRequest(
                values, params.taps, h, spec.strike
            )
            stats.note_advance(rec.method, rec.input_len, rec.spectrum_hit)
            ws = ws.then(rec.workspan)
            current = row
        if row in exercise_rows:
            exer = np.asarray(
                params.exercise_value(row, np.arange(q * row + 1)), dtype=np.float64
            )
            if req is not None:
                req.values = values
                req.green = exer
                values, _ = yield req
                stats.base_batch_rows += 1
            else:
                np.maximum(values, exer, out=values)
            ws = ws.then(rows_cost(1, q * row + 1, 1))
            stats.cells_evaluated += q * row + 1

    return TreeFFTResult(
        price=float(values[0]),
        steps=T,
        workspan=ws,
        stats=stats,
        boundary=None,
        meta={
            "model": "binomial" if q == 1 else "trinomial",
            "style": "european" if not rows else "bermudan",
            "exercise_rows": rows,
            "params": params,
        },
    )


def price_tree_bermudan_fft(
    params: TreeParams,
    exercise_steps: Sequence[int] = (),
    *,
    policy: AdvancePolicy = DEFAULT_POLICY,
    engine: Optional[AdvanceEngine] = None,
) -> TreeFFTResult:
    """Bermudan (or, with no exercise steps, European) tree pricing via FFT.

    Works for calls and puts — without the American free boundary there is
    no divider orientation to respect.  Pass a shared ``engine`` to reuse
    kernel spectra across a batch of same-parameter contracts (e.g. a strip
    of strikes); the checkpoint gap heights are known up front and are
    prepared on entry.
    """
    T = params.steps
    q = len(params.taps) - 1
    rows = _validated_rows(T, exercise_steps)
    if engine is None:
        engine = AdvanceEngine(policy)
    engine.prepare(params.taps, _jump_jobs(T, q, _checkpoints(rows)))
    return drive_serial(_bermudan_gen(params, rows), engine)


def price_tree_bermudan_fft_batch(
    params_list: Sequence[TreeParams],
    exercise_steps: Union[Sequence[int], Sequence[Sequence[int]]] = (),
    *,
    policy: AdvancePolicy = DEFAULT_POLICY,
    engine: Optional[AdvanceEngine] = None,
) -> list[TreeFFTResult]:
    """Price B Bermudan/European tree contracts in lockstep.

    ``exercise_steps`` is either one schedule shared by every contract or a
    per-contract sequence of schedules (one entry per ``params_list``
    element).  Checkpoint jumps batch through
    :meth:`~repro.core.fftstencil.AdvanceEngine.advance_batch` and the
    exercise-date max rows through
    :meth:`~repro.core.fftstencil.AdvanceEngine.base_rows_batch`; every
    result is bit-identical to its ``price_tree_bermudan_fft`` twin.
    """
    es = list(exercise_steps)
    if es and not isinstance(es[0], (int, np.integer)):
        if len(es) != len(params_list):
            raise ValidationError(
                "per-contract exercise_steps must match params_list length: "
                f"{len(es)} schedules for {len(params_list)} contracts"
            )
        schedules = [list(s) for s in es]
    else:
        schedules = [es] * len(params_list)
    if engine is None:
        engine = AdvanceEngine(policy)
    gens = []
    for params, sched in zip(params_list, schedules):
        rows = _validated_rows(params.steps, sched)
        q = len(params.taps) - 1
        engine.prepare(params.taps, _jump_jobs(params.steps, q, _checkpoints(rows)))
        gens.append(_bermudan_gen(params, rows, batch_base=True))
    results: list[TreeFFTResult] = drive_lockstep(gens, engine)
    for result in results:
        result.meta["batched"] = True
        result.meta["batch_size"] = len(results)
    return results


def price_tree_european_fft(
    params: TreeParams,
    *,
    policy: AdvancePolicy = DEFAULT_POLICY,
    engine: Optional[AdvanceEngine] = None,
) -> TreeFFTResult:
    """European tree pricing: one ``O(T log T)`` jump from expiry to root."""
    return price_tree_bermudan_fft(params, (), policy=policy, engine=engine)


def price_bsm_european_fft(
    params: BSMGridParams,
    *,
    policy: AdvancePolicy = DEFAULT_POLICY,
    engine: Optional[AdvanceEngine] = None,
) -> TreeFFTResult:
    """European put on the FD cone grid: a single ``O(T log T)`` jump.

    Discretisation-identical to :func:`repro.lattice.price_bsm_fd` with
    ``Style.EUROPEAN`` — used by the convergence tests against the
    closed-form Black–Scholes put.
    """
    if params.spec.right is not Right.PUT:
        raise ValidationError("the BSM FD grid prices puts")
    T = params.steps
    stats = SolveStats()
    if engine is None:
        engine = AdvanceEngine(policy)
    k = np.arange(-T, T + 1)
    values = np.maximum(params.payoff(k), 0.0)
    ws = rows_cost(1, 2 * T + 1, 1)
    values, rec = engine.advance(values, params.taps, T, scale=1.0)
    stats.note_advance(rec.method, rec.input_len, rec.spectrum_hit)
    return TreeFFTResult(
        price=float(params.spec.strike * values[0]),
        steps=T,
        workspan=ws.then(rec.workspan),
        stats=stats,
        boundary=None,
        meta={"model": "bsm-fd", "style": "european", "params": params},
    )
