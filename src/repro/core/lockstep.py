"""Lockstep drivers for generator-style solvers (docs/DESIGN.md §7).

The trapezoid solvers are data-dependent: each linear advance's window
depends on the divider the previous advance revealed, so one solve is an
inherently *sequential* chain of advances.  Different solves, however, are
independent — and a scenario grid, an implied-vol ladder or a coalesced
service bucket is exactly B such chains.  This module turns those B
Python-level chains into a handful of wide vectorized transforms:

* each solver is written as a **generator** that ``yield``s
  :class:`AdvanceRequest` objects (the linear advance it needs next) or
  :class:`BaseRowRequest` objects (one naive base-case row) and receives
  the values back — the solver never touches an engine;
* :func:`drive_serial` services one generator against one engine — the
  classic per-solve path, call-for-call identical to the pre-refactor code;
* :func:`drive_lockstep` services B generators *in rounds*: every round it
  partitions the one request each live solver is blocked on by kind and
  answers the linear advances with a single
  :meth:`~repro.core.fftstencil.AdvanceEngine.advance_batch` (one batched
  ``rfft``/row-multiply/``irfft`` per round) and the naive base rows with a
  single :meth:`~repro.core.fftstencil.AdvanceEngine.base_rows_batch` (one
  stacked multiply-accumulate + green-table gather + divider scan per
  round) — instead of B Python-level calls of either kind.

Because a batched real FFT transforms each row exactly as the 1-D
transform would, and the stacked base-row kernel accumulates its taps in
the same left-to-right order as the serial ``np.correlate`` row (both
verified by the bit-agreement tests), a lockstep solve is bit-identical to
its serial twin: same pads, same spectra, same dividers, same recursion
shape.  Batching changes the wall-clock, never the answer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.fftstencil import AdvanceEngine, AdvanceRecord

#: What a solver generator yields: one linear advance it cannot proceed
#: without.  ``scale`` feeds the engine's FFT-vs-direct robustness guard.
@dataclass
class AdvanceRequest:
    x: np.ndarray
    taps: Tuple[float, ...]
    h: int
    scale: Optional[float] = None


class BaseRowRequest:
    """One naive base-case row a solver cannot proceed without.

    Describes the max-rule update of a single backward step over the
    solver's current red window (docs/DESIGN.md §7.6):

    * ``values`` — the live window values (the red prefix / cone interior);
    * ``taps`` — the one-step stencil coefficients as an ``ndarray``
      (empty array = identity: no stencil, the row is a pure max against
      green, e.g. a Bermudan exercise date);
    * ``table``/``g_start``/``g_stride`` — the *green-row slice spec*: the
      closed-form comparison row is ``table[g_start + g_stride*j]`` for
      ``j = 0..n-1`` where ``n = len(values) + e_len - (len(taps) - 1)``.
      The engine registers each per-solver table once and gathers all B
      live rows' green values from one flat block.  ``table=None`` passes
      the row materialised in ``green`` instead;
    * ``e_start``/``e_len`` — the extension columns appended to ``values``
      before the stencil (green cells the dependency cone reads past the
      divider), as a slice of the same table (``e_len = 0``: none);
    * ``keep`` — what the reply's values are: ``"prefix"`` keeps the red
      prefix ``cont[:divider+1]`` (tree call rows), ``"max"`` keeps
      ``maximum(cont, green)`` over the whole row (FD put / exercise rows);
    * ``scan`` — ``False`` skips the divider scan (reply divider is ``-1``).

    The reply is ``(values, divider)`` with ``divider`` the 0-based window
    offset from :func:`~repro.core.boundary.scan_prefix_boundary` of the
    row's red mask (``cont >= green`` for ``"prefix"``, ``green >= cont``
    for ``"max"``).  Requests are consumed within the round they are
    yielded, so a solver may reuse (mutate) one request object per row.
    """

    __slots__ = (
        "values",
        "taps",
        "table",
        "g_start",
        "g_stride",
        "e_start",
        "e_len",
        "green",
        "keep",
        "scan",
        # engine-private: cached flat-block offset of ``table`` plus the
        # engine epoch it belongs to (requests are per-solver and reused,
        # so the cache saves one dict lookup per row)
        "boff",
        "bkey",
        # precomputed from (taps, keep, scan, g_stride) — those are fixed
        # for the request's lifetime (solvers mutate only the per-row
        # window fields), so the engine's grouping sweep reads two ints
        # instead of re-deriving them for every row, and every group the
        # sweep builds is stride-uniform by construction
        "kcode",
        "noff",
    )

    def __init__(
        self,
        values: Optional[np.ndarray] = None,
        taps: Optional[np.ndarray] = None,
        table: Optional[np.ndarray] = None,
        g_start: int = 0,
        g_stride: int = 1,
        e_start: int = 0,
        e_len: int = 0,
        green: Optional[np.ndarray] = None,
        keep: str = "prefix",
        scan: bool = True,
    ):
        self.values = values
        self.taps = taps
        self.table = table
        self.g_start = g_start
        self.g_stride = g_stride
        self.e_start = e_start
        self.e_len = e_len
        self.green = green
        self.keep = keep
        self.scan = scan
        self.boff = 0
        self.bkey = None
        nt = taps.shape[0] if taps is not None else 0
        self.kcode = (
            (g_stride << 20)
            | (nt << 3)
            | (4 if keep == "prefix" else 0)
            | (1 if scan else 0)
        )
        self.noff = 1 - nt if nt else 0


SolverRequest = Union[AdvanceRequest, BaseRowRequest]

#: A solver generator: yields requests, receives ``(values, record)`` for
#: advances and ``(values, divider)`` for base rows, returns its solve
#: result via ``StopIteration.value``.
SolverGen = Generator[SolverRequest, Tuple[np.ndarray, object], object]


def drive_serial(gen: SolverGen, engine: AdvanceEngine):
    """Run one solver generator to completion on ``engine``.

    Each yielded advance becomes one :meth:`AdvanceEngine.advance` call —
    the same call sequence the solvers made before the generator refactor,
    so serial results (prices, stats, workspans) are unchanged.  Solvers
    built for lockstep (``batch_base=True``) may also yield
    :class:`BaseRowRequest`; each is served as a one-row
    :meth:`AdvanceEngine.base_rows_batch` call, bit-identical to the
    solver's own serial row.
    """
    try:
        req = next(gen)
        while True:
            if type(req) is BaseRowRequest:
                outs, divs, _ = engine.base_rows_batch((req,))
                req = gen.send((outs[0], divs[0]))
            else:
                req = gen.send(
                    engine.advance(req.x, req.taps, req.h, scale=req.scale)
                )
    except StopIteration as stop:
        return stop.value


def drive_lockstep(gens: Sequence[SolverGen], engine: AdvanceEngine) -> list:
    """Run B solver generators in lockstep rounds on ``engine``.

    Every round gathers the single request each unfinished generator is
    blocked on, partitions by request kind, and services each kind with
    one batched engine call (:meth:`AdvanceEngine.advance_batch` for
    linear advances, :meth:`AdvanceEngine.base_rows_batch` for naive base
    rows).  Generators finish at their own pace (their recursion shapes
    differ with the divider data); the batches simply narrow as they do.
    Results come back in input order.
    """
    # Telemetry rides on the engine (one handle instruments every solve);
    # disabled mode costs this single attribute read, and the enabled-mode
    # spans are per *round*, never per row, so tracing a B-wide solve adds
    # a constant handful of allocations per batched transform.
    tel = engine.telemetry
    if tel is not None:
        with tel.span("solve", solvers=len(gens)) as sp:
            results = _drive_lockstep_traced(gens, engine, tel, sp)
        return results
    results: list = [None] * len(gens)
    sends = [gen.send for gen in gens]  # bound once: ~rows x sends later
    live: dict[int, SolverRequest] = {}
    for i, gen in enumerate(gens):
        try:
            live[i] = next(gen)
        except StopIteration as stop:  # solved without a single advance
            results[i] = stop.value
    while live:
        base_is: list[int] = []
        base_reqs: list[BaseRowRequest] = []
        adv_is: list[int] = []
        adv_xs: list[np.ndarray] = []
        adv_kers: list[Tuple[Tuple[float, ...], int]] = []
        adv_scales: list[Optional[float]] = []
        for i, req in live.items():
            if type(req) is BaseRowRequest:
                base_is.append(i)
                base_reqs.append(req)
            else:
                adv_is.append(i)
                adv_xs.append(req.x)
                adv_kers.append((req.taps, req.h))
                adv_scales.append(req.scale)
        if base_is:
            outs, divs, _ = engine.base_rows_batch(base_reqs)
            for i, y, d in zip(base_is, outs, divs):
                try:
                    live[i] = sends[i]((y, d))
                except StopIteration as stop:
                    results[i] = stop.value
                    del live[i]
        if adv_is:
            a_outs, rec = engine.advance_batch(
                adv_xs, adv_kers, scales=adv_scales
            )
            for i, y, row_rec in zip(adv_is, a_outs, rec.rows):
                try:
                    live[i] = sends[i]((y, row_rec))
                except StopIteration as stop:
                    results[i] = stop.value
                    del live[i]
    return results


def _drive_lockstep_traced(gens, engine, tel, solve_span) -> list:
    """The traced twin of :func:`drive_lockstep`'s round loop.

    Identical engine call sequence (so results stay bit-identical with
    telemetry on — the integration tests pin this); each round opens a
    ``lockstep_round`` span with ``advance_batch`` / ``base_rows_batch``
    children recording batch widths.
    """
    results: list = [None] * len(gens)
    sends = [gen.send for gen in gens]
    live: dict[int, SolverRequest] = {}
    for i, gen in enumerate(gens):
        try:
            live[i] = next(gen)
        except StopIteration as stop:
            results[i] = stop.value
    rounds = 0
    h_round = tel.histogram(
        "lockstep_round_width", help="live solvers per lockstep round"
    )
    while live:
        rounds += 1
        h_round.observe(len(live))
        with tel.span("lockstep_round", live=len(live)):
            base_is: list[int] = []
            base_reqs: list[BaseRowRequest] = []
            adv_is: list[int] = []
            adv_xs: list[np.ndarray] = []
            adv_kers: list[Tuple[Tuple[float, ...], int]] = []
            adv_scales: list[Optional[float]] = []
            for i, req in live.items():
                if type(req) is BaseRowRequest:
                    base_is.append(i)
                    base_reqs.append(req)
                else:
                    adv_is.append(i)
                    adv_xs.append(req.x)
                    adv_kers.append((req.taps, req.h))
                    adv_scales.append(req.scale)
            if base_is:
                with tel.span("base_rows_batch", rows=len(base_is)):
                    outs, divs, _ = engine.base_rows_batch(base_reqs)
                for i, y, d in zip(base_is, outs, divs):
                    try:
                        live[i] = sends[i]((y, d))
                    except StopIteration as stop:
                        results[i] = stop.value
                        del live[i]
            if adv_is:
                with tel.span("advance_batch", rows=len(adv_is)):
                    a_outs, rec = engine.advance_batch(
                        adv_xs, adv_kers, scales=adv_scales
                    )
                for i, y, row_rec in zip(adv_is, a_outs, rec.rows):
                    try:
                        live[i] = sends[i]((y, row_rec))
                    except StopIteration as stop:
                        results[i] = stop.value
                        del live[i]
    solve_span.set(rounds=rounds)
    return results
