"""Lockstep drivers for generator-style solvers (docs/DESIGN.md §7).

The trapezoid solvers are data-dependent: each linear advance's window
depends on the divider the previous advance revealed, so one solve is an
inherently *sequential* chain of advances.  Different solves, however, are
independent — and a scenario grid, an implied-vol ladder or a coalesced
service bucket is exactly B such chains.  This module turns those B
Python-level chains into a handful of wide vectorized transforms:

* each solver is written as a **generator** that ``yield``s
  :class:`AdvanceRequest` objects (the linear advance it needs next) and
  receives ``(values, record)`` back — the solver never touches an engine;
* :func:`drive_serial` services one generator against one engine — the
  classic per-solve path, call-for-call identical to the pre-refactor code;
* :func:`drive_lockstep` services B generators *in rounds*: every round it
  collects the one request each live solver is blocked on and answers them
  all with a single :meth:`~repro.core.fftstencil.AdvanceEngine.advance_batch`
  — one batched ``rfft``/row-multiply/``irfft`` per round instead of B
  Python-level FFT calls, with each row advanced by its *own* kernel.

Because a batched real FFT transforms each row exactly as the 1-D
transform would (verified by the bit-agreement tests), a lockstep solve is
bit-identical to its serial twin: same pads, same spectra, same dividers,
same recursion shape.  Batching changes the wall-clock, never the answer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Optional, Sequence, Tuple

import numpy as np

from repro.core.fftstencil import AdvanceEngine, AdvanceRecord

#: What a solver generator yields: one linear advance it cannot proceed
#: without.  ``scale`` feeds the engine's FFT-vs-direct robustness guard.
@dataclass
class AdvanceRequest:
    x: np.ndarray
    taps: Tuple[float, ...]
    h: int
    scale: Optional[float] = None


#: A solver generator: yields requests, receives ``(values, record)``,
#: returns its solve result via ``StopIteration.value``.
SolverGen = Generator[AdvanceRequest, Tuple[np.ndarray, AdvanceRecord], object]


def drive_serial(gen: SolverGen, engine: AdvanceEngine):
    """Run one solver generator to completion on ``engine``.

    Each yielded request becomes one :meth:`AdvanceEngine.advance` call —
    the same call sequence the solvers made before the generator refactor,
    so serial results (prices, stats, workspans) are unchanged.
    """
    try:
        req = next(gen)
        while True:
            req = gen.send(engine.advance(req.x, req.taps, req.h, scale=req.scale))
    except StopIteration as stop:
        return stop.value


def drive_lockstep(gens: Sequence[SolverGen], engine: AdvanceEngine) -> list:
    """Run B solver generators in lockstep rounds on ``engine``.

    Every round gathers the single request each unfinished generator is
    blocked on and services the whole set with one
    :meth:`AdvanceEngine.advance_batch` call.  Generators finish at their
    own pace (their recursion shapes differ with the divider data); the
    batch simply narrows as they do.  Results come back in input order.
    """
    results: list = [None] * len(gens)
    live: dict[int, AdvanceRequest] = {}
    for i, gen in enumerate(gens):
        try:
            live[i] = next(gen)
        except StopIteration as stop:  # solved without a single advance
            results[i] = stop.value
    while live:
        idxs = list(live)
        reqs = [live[i] for i in idxs]
        outs, rec = engine.advance_batch(
            [r.x for r in reqs],
            [(r.taps, r.h) for r in reqs],
            scales=[r.scale for r in reqs],
        )
        for i, y, row_rec in zip(idxs, outs, rec.rows):
            try:
                live[i] = gens[i].send((y, row_rec))
            except StopIteration as stop:
                results[i] = stop.value
                del live[i]
    return results
