"""Per-solve statistics collected by the FFT solvers.

Besides the work–span pair (handled by :class:`repro.parallel.WorkSpan`
composition), the experiment harness wants structural counters: how many
trapezoids were cut, how many FFT advances of what total size ran, how deep
the recursion went, how many cells the naive base cases touched.  These feed
the Table 2 scaling fits and the cache/energy models.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields


@dataclass
class SolveStats:
    """Mutable counters threaded through one solver invocation."""

    fft_calls: int = 0
    fft_points: int = 0  # total transform input points
    direct_calls: int = 0
    direct_points: int = 0
    spectrum_hits: int = 0  # engine advances that reused a cached kernel rFFT
    spectrum_misses: int = 0  # engine advances that had to transform the kernel
    trapezoids: int = 0
    base_cases: int = 0
    base_rows: int = 0
    base_batch_rows: int = 0  # base rows served via engine.base_rows_batch
    cells_evaluated: int = 0
    max_depth: int = 0

    def note_advance(
        self, method: str, input_len: int, spectrum_hit: bool | None = None
    ) -> None:
        if method == "fft":
            self.fft_calls += 1
            self.fft_points += input_len
        elif method == "direct":
            self.direct_calls += 1
            self.direct_points += input_len
        # "copy" (h=0) is free
        if spectrum_hit is not None:
            if spectrum_hit:
                self.spectrum_hits += 1
            else:
                self.spectrum_misses += 1

    def note_depth(self, depth: int) -> None:
        if depth > self.max_depth:
            self.max_depth = depth

    def as_dict(self) -> dict:
        # Derived from the dataclass fields so a newly added counter can
        # never be silently missing from reports (PR 7's base_batch_rows
        # initially was) — field order is declaration order, so the dict
        # layout matches the class.
        return {f.name: getattr(self, f.name) for f in fields(self)}


@dataclass
class SolveReport:
    """Aggregated outcome shared by the fast solvers (attached to results)."""

    stats: SolveStats = field(default_factory=SolveStats)
    notes: list = field(default_factory=list)
