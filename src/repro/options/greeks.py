"""American option Greeks by bump-and-reprice over the fast solvers.

A pricing library is consumed through its *sensitivities* as much as its
prices; this module computes the standard Greeks for American contracts by
central finite differences around the contract parameters, using any
model/method combination of :func:`repro.core.api.price_american` — which
makes the `O(T log²T)` solvers the default engine for an 8-reprice Greek
ladder instead of eight `Θ(T²)` sweeps.

Bump sizes follow the usual cube-root-of-epsilon scaling for second
differences and are relative to each parameter's magnitude.  Theta is
computed by shrinking time-to-expiry (calendar theta, per day).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro.core.api import price_american
from repro.options.contract import OptionSpec
from repro.util.validation import ValidationError, check_integer, check_positive


@dataclass(frozen=True)
class AmericanGreeks:
    """Price and first/second-order sensitivities of an American option."""

    price: float
    delta: float  # dV/dS
    gamma: float  # d²V/dS²
    vega: float  # dV/dsigma (per unit vol)
    theta: float  # dV/dt (per day, calendar decay: negative for long options)
    rho: float  # dV/dr (per unit rate)


def american_greeks(
    spec: OptionSpec,
    steps: int,
    *,
    model: str = "binomial",
    method: str = "fft",
    rel_bump: float = 1e-3,
    gamma_rel_bump: float = 2e-2,
) -> AmericanGreeks:
    """Greeks of ``spec`` by central bump-and-reprice (10 prices + 1 base).

    Parameters
    ----------
    rel_bump:
        Relative bump for the first-order Greeks (delta/vega/rho/theta).
    gamma_rel_bump:
        Relative spot bump for the second difference.  Lattice prices
        oscillate in S with amplitude ``O(1/T)`` (strike-vs-node alignment),
        and a second difference divides that noise by ``h²`` — gamma
        therefore needs a bump wide enough to average across several lattice
        periods; ~2% is robust for T ≥ 10³.
    """
    steps = check_integer("steps", steps, minimum=1)
    check_positive("rel_bump", rel_bump)
    check_positive("gamma_rel_bump", gamma_rel_bump)
    if rel_bump > 0.1 or gamma_rel_bump > 0.1:
        raise ValidationError("bump sizes must be small fractions (<= 0.1)")

    def reprice(s: OptionSpec) -> float:
        return price_american(s, steps, model=model, method=method).price

    base = reprice(spec)

    h_s = spec.spot * rel_bump
    up = reprice(dataclasses.replace(spec, spot=spec.spot + h_s))
    dn = reprice(dataclasses.replace(spec, spot=spec.spot - h_s))
    delta = (up - dn) / (2.0 * h_s)

    h_g = spec.spot * gamma_rel_bump
    up_g = reprice(dataclasses.replace(spec, spot=spec.spot + h_g))
    dn_g = reprice(dataclasses.replace(spec, spot=spec.spot - h_g))
    gamma = (up_g - 2.0 * base + dn_g) / (h_g * h_g)

    h_v = max(spec.volatility * rel_bump, 1e-5)
    vega = (
        reprice(dataclasses.replace(spec, volatility=spec.volatility + h_v))
        - reprice(dataclasses.replace(spec, volatility=spec.volatility - h_v))
    ) / (2.0 * h_v)

    h_r = max(spec.rate * rel_bump, 1e-6)
    rate_up = dataclasses.replace(spec, rate=spec.rate + h_r)
    rate_dn = dataclasses.replace(spec, rate=max(spec.rate - h_r, 0.0))
    denom = rate_up.rate - rate_dn.rate
    rho = (reprice(rate_up) - reprice(rate_dn)) / denom

    # calendar theta: value change per day as expiry approaches (one-sided,
    # since extending expiry may change lattice validity)
    h_days = max(spec.expiry_days * rel_bump, 0.5)
    shorter = dataclasses.replace(spec, expiry_days=spec.expiry_days - h_days)
    theta = (reprice(shorter) - base) / h_days

    return AmericanGreeks(
        price=base, delta=delta, gamma=gamma, vega=vega, theta=theta, rho=rho
    )
