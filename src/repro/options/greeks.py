"""American option Greeks by bump-and-reprice over the fast solvers.

A pricing library is consumed through its *sensitivities* as much as its
prices; this module computes the standard Greeks for American contracts by
central finite differences around the contract parameters, using any
model/method combination of :func:`repro.core.api.price_american` — which
makes the `O(T log²T)` solvers the default engine for a 9-reprice Greek
ladder instead of nine `Θ(T²)` sweeps.

The ladder is priced as one :class:`~repro.risk.grid.ScenarioGrid` through
a :class:`~repro.risk.engine.ScenarioEngine`, so all ten solves (the base
price plus nine bumps) share a single plan-caching
:class:`~repro.core.fftstencil.AdvanceEngine` — the bumped lattices reuse
each other's kernel spectra and pad plans — and :func:`greeks_many`
stretches the same grid over a whole book of contracts, optionally across
a multi-worker backend.

Bump sizes follow the usual cube-root-of-epsilon scaling for second
differences and are relative to each parameter's magnitude.  Theta is
computed by shrinking time-to-expiry (calendar theta, per day).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.options.contract import OptionSpec, Style
from repro.risk.engine import ScenarioEngine
from repro.risk.grid import ScenarioGrid
from repro.util.validation import ValidationError, check_integer, check_positive


@dataclass(frozen=True)
class AmericanGreeks:
    """Price and first/second-order sensitivities of an American option."""

    price: float
    delta: float  # dV/dS
    gamma: float  # d²V/dS²
    vega: float  # dV/dsigma (per unit vol)
    theta: float  # dV/dt (per day, calendar decay: negative for long options)
    rho: float  # dV/dr (per unit rate)


#: Prices per contract in the bump ladder: 1 base + 9 reprices.
LADDER_SIZE = 10


@dataclass(frozen=True)
class _BumpLadder:
    """One contract's bump ladder (base first) plus the step sizes."""

    specs: tuple[OptionSpec, ...]
    h_s: float  # delta spot step
    h_g: float  # gamma spot step
    h_v: float  # vega vol step
    denom_r: float  # actual rate-up minus rate-down (down leg clamps at 0)
    h_days: float  # theta expiry step (one-sided)

    def greeks(self, prices: Sequence[float]) -> AmericanGreeks:
        """Assemble the finite differences from the ladder's prices."""
        (base, s_up, s_dn, g_up, g_dn, v_up, v_dn, r_up, r_dn, shorter) = map(
            float, prices
        )
        return AmericanGreeks(
            price=base,
            delta=(s_up - s_dn) / (2.0 * self.h_s),
            gamma=(g_up - 2.0 * base + g_dn) / (self.h_g * self.h_g),
            vega=(v_up - v_dn) / (2.0 * self.h_v),
            theta=(shorter - base) / self.h_days,
            rho=(r_up - r_dn) / self.denom_r,
        )


def _bump_ladder(
    spec: OptionSpec, rel_bump: float, gamma_rel_bump: float
) -> _BumpLadder:
    """The ten specs (base + 9 bumps) behind one contract's Greeks."""
    base = spec.with_style(Style.AMERICAN)

    h_s = base.spot * rel_bump
    h_g = base.spot * gamma_rel_bump

    h_v = max(base.volatility * rel_bump, 1e-5)

    h_r = max(base.rate * rel_bump, 1e-6)
    rate_up = dataclasses.replace(base, rate=base.rate + h_r)
    rate_dn = dataclasses.replace(base, rate=max(base.rate - h_r, 0.0))

    # calendar theta: value change per day as expiry approaches (one-sided,
    # since extending expiry may change lattice validity).  The half-day
    # floor keeps the difference above lattice noise, but must not push the
    # bumped expiry through zero for sub-half-day contracts — those fall
    # back to a half-of-expiry step instead.
    h_days = max(base.expiry_days * rel_bump, 0.5)
    if h_days >= base.expiry_days:
        h_days = 0.5 * base.expiry_days
    shorter = dataclasses.replace(base, expiry_days=base.expiry_days - h_days)

    return _BumpLadder(
        specs=(
            base,
            dataclasses.replace(base, spot=base.spot + h_s),
            dataclasses.replace(base, spot=base.spot - h_s),
            dataclasses.replace(base, spot=base.spot + h_g),
            dataclasses.replace(base, spot=base.spot - h_g),
            dataclasses.replace(base, volatility=base.volatility + h_v),
            dataclasses.replace(base, volatility=base.volatility - h_v),
            rate_up,
            rate_dn,
            shorter,
        ),
        h_s=h_s,
        h_g=h_g,
        h_v=h_v,
        denom_r=rate_up.rate - rate_dn.rate,
        h_days=h_days,
    )


def _check_bumps(rel_bump: float, gamma_rel_bump: float) -> None:
    check_positive("rel_bump", rel_bump)
    check_positive("gamma_rel_bump", gamma_rel_bump)
    if rel_bump > 0.1 or gamma_rel_bump > 0.1:
        raise ValidationError("bump sizes must be small fractions (<= 0.1)")


def greeks_many(
    specs: Sequence[OptionSpec],
    steps: int,
    *,
    model: str = "binomial",
    method: str = "fft",
    rel_bump: float = 1e-3,
    gamma_rel_bump: float = 2e-2,
    engine: Optional[ScenarioEngine] = None,
) -> list[AmericanGreeks]:
    """Greeks for a book of contracts off one engine-shared bump grid.

    Builds the :data:`LADDER_SIZE`-cell bump ladder of every contract,
    prices all of them as a single :class:`~repro.risk.grid.ScenarioGrid`,
    and assembles the finite differences — so a 100-contract book is one
    1000-cell grid sharing FFT plans (and workers, if ``engine`` has a
    parallel backend) instead of 100 independent ladders.

    Parameters
    ----------
    engine:
        :class:`~repro.risk.engine.ScenarioEngine` to run the grid on;
        default is the in-process serial backend (right for single
        contracts — pool spin-up dwarfs ten solves; pass a process-backend
        engine for large books).  The engine's own model/method defaults
        are overridden by this function's ``model``/``method``.
    """
    steps = check_integer("steps", steps, minimum=1)
    _check_bumps(rel_bump, gamma_rel_bump)
    if engine is None:
        engine = ScenarioEngine(backend="serial")

    ladders = [_bump_ladder(s, rel_bump, gamma_rel_bump) for s in specs]
    if not ladders:
        return []
    grid = ScenarioGrid.explicit(
        [spec for ladder in ladders for spec in ladder.specs]
    )
    result = engine.price_grid(grid, steps, model=model, method=method)
    prices = result.prices
    return [
        ladder.greeks(prices[i * LADDER_SIZE : (i + 1) * LADDER_SIZE])
        for i, ladder in enumerate(ladders)
    ]


def american_greeks(
    spec: OptionSpec,
    steps: int,
    *,
    model: str = "binomial",
    method: str = "fft",
    rel_bump: float = 1e-3,
    gamma_rel_bump: float = 2e-2,
    engine: Optional[ScenarioEngine] = None,
) -> AmericanGreeks:
    """Greeks of ``spec`` by central bump-and-reprice (9 reprices + 1 base).

    A thin wrapper over :func:`greeks_many` for one contract: the ten
    ladder prices (base, spot±, gamma-spot±, vol±, rate up/down, shorter
    expiry) are computed as one scenario grid on a shared FFT-plan cache.

    Parameters
    ----------
    rel_bump:
        Relative bump for the first-order Greeks (delta/vega/rho/theta).
    gamma_rel_bump:
        Relative spot bump for the second difference.  Lattice prices
        oscillate in S with amplitude ``O(1/T)`` (strike-vs-node alignment),
        and a second difference divides that noise by ``h²`` — gamma
        therefore needs a bump wide enough to average across several lattice
        periods; ~2% is robust for T ≥ 10³.
    engine:
        Optional :class:`~repro.risk.engine.ScenarioEngine` (see
        :func:`greeks_many`).
    """
    return greeks_many(
        [spec],
        steps,
        model=model,
        method=method,
        rel_bump=rel_bump,
        gamma_rel_bump=gamma_rel_bump,
        engine=engine,
    )[0]
