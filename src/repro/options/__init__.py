"""Option contracts, model parameterisations, and closed-form analytics."""

from repro.options.contract import OptionSpec, Right, Style, paper_benchmark_spec
from repro.options.params import BinomialParams, TrinomialParams, BSMGridParams
from repro.options.analytic import (
    black_scholes,
    european_price,
    perpetual_american_put,
    no_early_exercise_call,
    no_early_exercise_put,
    intrinsic_bounds,
    BlackScholesResult,
)
from repro.options.payoff import terminal_payoff, signed_exercise
from repro.options.greeks import AmericanGreeks, american_greeks, greeks_many

__all__ = [
    "OptionSpec",
    "Right",
    "Style",
    "paper_benchmark_spec",
    "BinomialParams",
    "TrinomialParams",
    "BSMGridParams",
    "black_scholes",
    "european_price",
    "perpetual_american_put",
    "no_early_exercise_call",
    "no_early_exercise_put",
    "intrinsic_bounds",
    "BlackScholesResult",
    "terminal_payoff",
    "signed_exercise",
    "AmericanGreeks",
    "american_greeks",
    "greeks_many",
]
