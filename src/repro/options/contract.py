"""Option contract specification.

:class:`OptionSpec` is the single value object every solver in the library
consumes.  It captures the six market/contract parameters of the paper's
Table 1 (stock price ``S``, strike ``K``, risk-free rate ``R``, volatility
``V``, dividend yield ``Y``, time to expiry ``E``) plus the contract right
(call/put) and exercise style (American/European/Bermudan).

Conventions
-----------
* ``expiry_days`` is the paper's ``E`` (in days).  Rates and volatility are
  annualised; ``day_count`` (default 252 trading days) converts days to years,
  so the paper's benchmark configuration ``E=252`` is exactly one year.
* The number of time steps ``T`` is *not* part of the contract — it is a
  discretisation choice passed to the pricing functions, mirroring the paper
  where ``T`` is the swept experimental variable.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, replace

from repro.util.validation import (
    ValidationError,
    check_nonnegative,
    check_positive,
)


class Right(enum.Enum):
    """The contract right: an option to buy (call) or to sell (put)."""

    CALL = "call"
    PUT = "put"


class Style(enum.Enum):
    """Exercise style.

    AMERICAN options may be exercised at any step, EUROPEAN only at expiry,
    BERMUDAN at a supplied subset of steps.
    """

    AMERICAN = "american"
    EUROPEAN = "european"
    BERMUDAN = "bermudan"


@dataclass(frozen=True)
class OptionSpec:
    """Immutable option contract + market data (paper Table 1 notation).

    Parameters
    ----------
    spot:
        Current asset price ``S`` (> 0).
    strike:
        Strike price ``K`` (> 0).
    rate:
        Annualised continuously-compounded risk-free rate ``R`` (>= 0).
    volatility:
        Annualised volatility ``V`` (> 0).
    dividend_yield:
        Annualised continuous dividend yield ``Y`` (>= 0).
    expiry_days:
        Days to expiry ``E`` (> 0).
    right:
        ``Right.CALL`` or ``Right.PUT``.
    style:
        Exercise style; default American (the paper's subject).
    day_count:
        Trading days per year used to annualise ``expiry_days``.
    """

    spot: float
    strike: float
    rate: float
    volatility: float
    dividend_yield: float = 0.0
    expiry_days: float = 252.0
    right: Right = Right.CALL
    style: Style = Style.AMERICAN
    day_count: int = 252

    def __post_init__(self) -> None:
        check_positive("spot", self.spot)
        check_positive("strike", self.strike)
        check_nonnegative("rate", self.rate)
        check_positive("volatility", self.volatility)
        check_nonnegative("dividend_yield", self.dividend_yield)
        check_positive("expiry_days", self.expiry_days)
        # `not (x > 0)` rather than `x <= 0`: NaN fails every comparison,
        # so the inverted form also rejects a NaN day_count
        if not self.day_count > 0:
            raise ValidationError(f"day_count must be > 0, got {self.day_count}")
        if not isinstance(self.right, Right):
            raise ValidationError(f"right must be a Right, got {self.right!r}")
        if not isinstance(self.style, Style):
            raise ValidationError(f"style must be a Style, got {self.style!r}")

    # ------------------------------------------------------------------ #
    # Derived quantities
    # ------------------------------------------------------------------ #
    @property
    def years(self) -> float:
        """Time to expiry in years (``E / day_count``)."""
        return self.expiry_days / self.day_count

    @property
    def moneyness(self) -> float:
        """``S / K``; > 1 means an in-the-money call / out-of-the-money put."""
        return self.spot / self.strike

    @property
    def log_moneyness(self) -> float:
        """``ln(S / K)`` — the BSM solver's spatial origin."""
        return math.log(self.spot / self.strike)

    def intrinsic(self, price: float | None = None) -> float:
        """Exercise value at asset price ``price`` (default: current spot)."""
        s = self.spot if price is None else price
        if self.right is Right.CALL:
            return max(s - self.strike, 0.0)
        return max(self.strike - s, 0.0)

    # ------------------------------------------------------------------ #
    # Transformations
    # ------------------------------------------------------------------ #
    def with_right(self, right: Right) -> "OptionSpec":
        """Copy of this spec with a different contract right."""
        return replace(self, right=right)

    def with_style(self, style: Style) -> "OptionSpec":
        """Copy of this spec with a different exercise style."""
        return replace(self, style=style)

    def strike_scaled(self) -> "tuple[OptionSpec, float]":
        """Dimensionless unit-strike form: ``(scaled spec, value scale)``.

        Option values under geometric Brownian motion are homogeneous of
        degree one in ``(S, K)`` — ``price(S, K) = K · price(S/K, 1)`` — and
        the identity carries to every lattice in this library because the
        lattice factors (``u``, the discounted weights, the FD grid) depend
        only on rate/volatility/dividend/expiry, never on the price scale.
        The returned scale is this contract's strike: un-scale a price
        computed on the scaled contract by multiplying with it.  This is the
        first half of the quote-service canonicalization
        (:mod:`repro.service.canonical`).
        """
        return replace(self, spot=self.spot / self.strike, strike=1.0), self.strike

    def symmetric_dual(self) -> "OptionSpec":
        """McDonald–Schroder put–call symmetric contract.

        The American put on ``(S, K, R, Y)`` has the same value as the
        American call on ``(K, S, Y, R)`` (and vice versa) under geometric
        Brownian motion, and the identity is exact on a CRR lattice with
        ``u·d = 1``.  Used by :mod:`repro.core.symmetry` to price puts with
        the call-only fast solvers.
        """
        flipped = Right.PUT if self.right is Right.CALL else Right.CALL
        return replace(
            self,
            spot=self.strike,
            strike=self.spot,
            rate=self.dividend_yield,
            dividend_yield=self.rate,
            right=flipped,
        )


def paper_benchmark_spec(right: Right = Right.CALL) -> OptionSpec:
    """The fixed parameter set of the paper's §5 ('Parameter Values').

    ``E = 252, K = 130, S = 127.62, R = 0.00163, V = 0.2, Y = 0.0163``.
    """
    return OptionSpec(
        spot=127.62,
        strike=130.0,
        rate=0.00163,
        volatility=0.2,
        dividend_yield=0.0163,
        expiry_days=252.0,
        right=right,
        style=Style.AMERICAN,
        day_count=252,
    )
