"""Vectorised payoff helpers shared by lattice and FD solvers."""

from __future__ import annotations

import numpy as np

from repro.options.contract import OptionSpec, Right


def terminal_payoff(spec: OptionSpec, prices: np.ndarray) -> np.ndarray:
    """Exercise value at expiry: ``max(S_T - K, 0)`` / ``max(K - S_T, 0)``."""
    prices = np.asarray(prices, dtype=np.float64)
    if spec.right is Right.CALL:
        return np.maximum(prices - spec.strike, 0.0)
    return np.maximum(spec.strike - prices, 0.0)


def signed_exercise(spec: OptionSpec, prices: np.ndarray) -> np.ndarray:
    """Unfloored exercise value (the paper's interior-row 'green' value)."""
    prices = np.asarray(prices, dtype=np.float64)
    if spec.right is Right.CALL:
        return prices - spec.strike
    return spec.strike - prices
