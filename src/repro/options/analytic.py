"""Closed-form option-pricing formulas used as test oracles.

The paper motivates the computational approach by the *absence* of closed
forms for American options; the few that exist — the European
Black–Scholes–Merton formula, the zero-dividend American call (= European),
and the perpetual American put — are exactly the oracles our test suite
anchors on, so they are implemented here from scratch.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.options.contract import OptionSpec, Right
from repro.util.validation import ValidationError


def _norm_cdf(x: float) -> float:
    """Standard normal CDF via erfc (double-precision accurate in both tails)."""
    return 0.5 * math.erfc(-x / math.sqrt(2.0))


def _norm_pdf(x: float) -> float:
    return math.exp(-0.5 * x * x) / math.sqrt(2.0 * math.pi)


@dataclass(frozen=True)
class BlackScholesResult:
    """Price plus first-order Greeks of the European BSM formula."""

    price: float
    delta: float
    gamma: float
    vega: float
    theta: float
    rho: float


def black_scholes(spec: OptionSpec) -> BlackScholesResult:
    """European Black–Scholes–Merton price and Greeks with dividend yield.

    Uses the standard ``d1/d2`` formulation with continuous dividend yield
    ``Y`` (Merton 1973).  The contract's :class:`~repro.options.contract.Style`
    is ignored — this is always the *European* value, which American tests use
    as a lower bound and as the exact value for the zero-dividend call.
    """
    s, k = spec.spot, spec.strike
    r, y, v, t = spec.rate, spec.dividend_yield, spec.volatility, spec.years
    sqrt_t = math.sqrt(t)
    d1 = (math.log(s / k) + (r - y + 0.5 * v * v) * t) / (v * sqrt_t)
    d2 = d1 - v * sqrt_t
    disc_r = math.exp(-r * t)
    disc_y = math.exp(-y * t)
    if spec.right is Right.CALL:
        price = s * disc_y * _norm_cdf(d1) - k * disc_r * _norm_cdf(d2)
        delta = disc_y * _norm_cdf(d1)
        rho = k * t * disc_r * _norm_cdf(d2)
        theta = (
            -s * disc_y * _norm_pdf(d1) * v / (2.0 * sqrt_t)
            - r * k * disc_r * _norm_cdf(d2)
            + y * s * disc_y * _norm_cdf(d1)
        )
    else:
        price = k * disc_r * _norm_cdf(-d2) - s * disc_y * _norm_cdf(-d1)
        delta = -disc_y * _norm_cdf(-d1)
        rho = -k * t * disc_r * _norm_cdf(-d2)
        theta = (
            -s * disc_y * _norm_pdf(d1) * v / (2.0 * sqrt_t)
            + r * k * disc_r * _norm_cdf(-d2)
            - y * s * disc_y * _norm_cdf(-d1)
        )
    gamma = disc_y * _norm_pdf(d1) / (s * v * sqrt_t)
    vega = s * disc_y * _norm_pdf(d1) * sqrt_t
    return BlackScholesResult(
        price=price, delta=delta, gamma=gamma, vega=vega, theta=theta, rho=rho
    )


def european_price(spec: OptionSpec) -> float:
    """Convenience accessor for the European BSM price."""
    return black_scholes(spec).price


def perpetual_american_put(spec: OptionSpec) -> float:
    """Closed-form perpetual American put (McKean 1965; Shreve II §8.3).

    For an infinite-horizon put with ``Y = 0`` the optimal exercise boundary
    ``L* = 2 r K / (2 r + sigma^2) = K * gamma/(gamma+1)`` with
    ``gamma = 2 r / sigma^2``; the value is ``(K - L*) (S / L*)^{-gamma}``
    above the boundary and intrinsic below.  Serves as the ``E -> inf`` limit
    check for the BSM solver.
    """
    if spec.right is not Right.PUT:
        raise ValidationError("perpetual closed form implemented for puts")
    if spec.dividend_yield != 0.0:
        raise ValidationError("perpetual put closed form assumes Y = 0")
    if spec.rate <= 0.0:
        raise ValidationError("perpetual put requires rate > 0")
    gamma = 2.0 * spec.rate / spec.volatility**2
    l_star = spec.strike * gamma / (gamma + 1.0)
    if spec.spot <= l_star:
        return spec.strike - spec.spot
    return (spec.strike - l_star) * (spec.spot / l_star) ** (-gamma)


def no_early_exercise_call(spec: OptionSpec) -> bool:
    """True when early exercise of an American call is never optimal.

    Classical result (Merton 1973): with zero dividend yield the American
    call equals the European call.  The tree solvers use this as an internal
    consistency check, the test suite as an oracle, and
    :func:`repro.core.api.price_american` as a closed-form fast path.
    """
    return spec.right is Right.CALL and spec.dividend_yield == 0.0


def no_early_exercise_put(spec: OptionSpec) -> bool:
    """True when early exercise of an American put is never optimal.

    The McDonald–Schroder dual of :func:`no_early_exercise_call`: early
    put exercise is financed by the interest earned on the strike, so with
    ``R = 0`` (and ``Y >= 0``) the American put equals the European put —
    exactly the parameter set whose symmetric dual is a zero-dividend call.
    Unlike the call fact this one is *not* used as a pricing shortcut
    (rate ladders bump across ``R = 0``; see
    :func:`repro.core.api.price_american`) — the canonical layer consults
    it to keep such puts un-folded instead.
    """
    return spec.right is Right.PUT and spec.rate == 0.0


def intrinsic_bounds(spec: OptionSpec) -> tuple[float, float]:
    """(lower, upper) no-arbitrage bounds for the *American* option value.

    Call: ``max(S - K, S e^{-Yt} - K e^{-Rt}, 0) <= C <= S``.
    Put:  ``max(K - S, K e^{-Rt} - S e^{-Yt}, 0) <= P <= K``.
    Every solver result is asserted to respect these in the test suite.
    """
    t = spec.years
    disc_r = math.exp(-spec.rate * t)
    disc_y = math.exp(-spec.dividend_yield * t)
    if spec.right is Right.CALL:
        lower = max(
            spec.spot - spec.strike,
            spec.spot * disc_y - spec.strike * disc_r,
            0.0,
        )
        return lower, spec.spot
    lower = max(
        spec.strike - spec.spot,
        spec.strike * disc_r - spec.spot * disc_y,
        0.0,
    )
    return lower, spec.strike
