"""Discretisation parameters for the three pricing models.

Each ``*Params`` class derives, from an :class:`~repro.options.contract.OptionSpec`
and a step count ``T``, exactly the constants the paper's recurrences use:

* :class:`BinomialParams` — CRR lattice (paper §2.1):
  ``u = exp(V sqrt(dt))``, ``d = 1/u``, risk-neutral up-probability
  ``p = (exp((R-Y) dt) - d) / (u - d)``, discount ``m = exp(-R dt)`` and the
  stencil weights ``s0 = m (1 - p)`` (down child, column j), ``s1 = m p``
  (up child, column j+1).
* :class:`TrinomialParams` — Boyle lattice (paper §3 / Appendix A):
  ``u = exp(V sqrt(2 dt))`` and the squared-root-form probabilities
  ``p_u, p_o, p_d``; weights ``s0 = m p_d`` (col j), ``s1 = m p_o`` (col j+1),
  ``s2 = m p_u`` (col j+2).
* :class:`BSMGridParams` — the nondimensionalised explicit finite-difference
  scheme of §4.2: ``omega = 2R/V^2``, ``tau_max = V^2 * years / 2``,
  ``dtau = tau_max / T``, ``ds = sqrt(dtau / lam)`` for a user-chosen parabolic
  ratio ``lam = dtau/ds^2``, and the three stencil coefficients of Eq. (5).

Orientation conventions (shared with the solvers):

* Binomial grid ``G[i, j]``, ``0 <= j <= i``: moving to column ``j`` at row
  ``i+1`` is a *down* tick, column ``j+1`` an *up* tick; the asset price at
  ``(i, j)`` is ``S * u^(2j - i)``.
* Trinomial grid ``G[i, j]``, ``0 <= j <= 2i``: price ``S * u^(j - i)``.
* BSM grid ``v[n, k]``: dimensionless log-price ``s_k = ln(S/K) + k*ds``,
  payoff (put, strike-normalised) ``1 - exp(s_k)``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.options.contract import OptionSpec
from repro.util.validation import ValidationError, check_integer


# --------------------------------------------------------------------------- #
# Binomial (CRR)
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class BinomialParams:
    """Cox–Ross–Rubinstein lattice constants for ``T`` steps."""

    spec: OptionSpec
    steps: int
    dt: float
    up: float
    down: float
    prob_up: float
    discount: float
    s0: float  # weight of the down child G[i+1, j]
    s1: float  # weight of the up child   G[i+1, j+1]

    @classmethod
    def from_spec(cls, spec: OptionSpec, steps: int) -> "BinomialParams":
        steps = check_integer("steps", steps, minimum=1)
        dt = spec.years / steps
        up = math.exp(spec.volatility * math.sqrt(dt))
        down = 1.0 / up
        growth = math.exp((spec.rate - spec.dividend_yield) * dt)
        prob_up = (growth - down) / (up - down)
        if not (0.0 < prob_up < 1.0):
            raise ValidationError(
                "risk-neutral probability out of (0,1): "
                f"p={prob_up:.6g} for V={spec.volatility}, R-Y="
                f"{spec.rate - spec.dividend_yield:.6g}, dt={dt:.6g}; "
                "increase steps or volatility"
            )
        discount = math.exp(-spec.rate * dt)
        return cls(
            spec=spec,
            steps=steps,
            dt=dt,
            up=up,
            down=down,
            prob_up=prob_up,
            discount=discount,
            s0=discount * (1.0 - prob_up),
            s1=discount * prob_up,
        )

    @property
    def taps(self) -> tuple[float, float]:
        """Stencil weights ``(s0, s1)`` at child-column offsets ``(0, 1)``."""
        return (self.s0, self.s1)

    def asset_price(self, i, j):
        """Asset price(s) at grid node(s) ``(i, j)``: ``S * u^(2j - i)``.

        ``i`` and ``j`` may be numpy arrays (broadcast elementwise); the
        return type follows them.
        """
        import numpy as np

        e = 2 * np.asarray(j, dtype=np.float64) - np.asarray(i, dtype=np.float64)
        return self.spec.spot * np.exp(e * math.log(self.up))

    def exercise_value(self, i: int, j):
        """Paper ``G^green``: the *signed* exercise value ``S u^(2j-i) - K``.

        Note this is deliberately not floored at zero — the paper's green
        value at interior rows is the raw ``S u^{2j-i} - K`` (Definition 2.1);
        only the expiry row applies ``max(0, .)``.
        """
        import numpy as np

        price = self.asset_price(i, j)
        if self.spec.right.value == "call":
            return price - self.spec.strike
        return self.spec.strike - np.asarray(price)


# --------------------------------------------------------------------------- #
# Trinomial (Boyle)
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class TrinomialParams:
    """Boyle trinomial lattice constants for ``T`` steps (paper §3/A.1)."""

    spec: OptionSpec
    steps: int
    dt: float
    up: float
    down: float
    prob_up: float
    prob_mid: float
    prob_down: float
    discount: float
    s0: float  # weight of G[i+1, j]   (down child)
    s1: float  # weight of G[i+1, j+1] (flat child)
    s2: float  # weight of G[i+1, j+2] (up child)

    @classmethod
    def from_spec(cls, spec: OptionSpec, steps: int) -> "TrinomialParams":
        steps = check_integer("steps", steps, minimum=1)
        dt = spec.years / steps
        up = math.exp(spec.volatility * math.sqrt(2.0 * dt))
        down = 1.0 / up
        sqrt_u = math.sqrt(up)
        sqrt_d = math.sqrt(down)
        half_growth = math.exp((spec.rate - spec.dividend_yield) * dt / 2.0)
        denom = sqrt_u - sqrt_d
        prob_up = ((half_growth - sqrt_d) / denom) ** 2
        prob_down = ((sqrt_u - half_growth) / denom) ** 2
        prob_mid = 1.0 - prob_up - prob_down
        for name, p in (("p_u", prob_up), ("p_o", prob_mid), ("p_d", prob_down)):
            if not (0.0 <= p <= 1.0):
                raise ValidationError(
                    f"trinomial probability {name}={p:.6g} out of [0,1]; "
                    "increase steps or volatility"
                )
        discount = math.exp(-spec.rate * dt)
        return cls(
            spec=spec,
            steps=steps,
            dt=dt,
            up=up,
            down=down,
            prob_up=prob_up,
            prob_mid=prob_mid,
            prob_down=prob_down,
            discount=discount,
            s0=discount * prob_down,
            s1=discount * prob_mid,
            s2=discount * prob_up,
        )

    @property
    def taps(self) -> tuple[float, float, float]:
        """Stencil weights ``(s0, s1, s2)`` at child-column offsets ``(0,1,2)``."""
        return (self.s0, self.s1, self.s2)

    def asset_price(self, i, j):
        """Asset price(s) at node(s) ``(i, j)``: ``S * u^(j - i)``.

        ``i`` and ``j`` may be numpy arrays (broadcast elementwise).
        """
        import numpy as np

        e = np.asarray(j, dtype=np.float64) - np.asarray(i, dtype=np.float64)
        return self.spec.spot * np.exp(e * math.log(self.up))

    def exercise_value(self, i: int, j):
        """Signed exercise value ``S u^(j-i) - K`` (call) / ``K - S u^(j-i)``."""
        import numpy as np

        price = self.asset_price(i, j)
        if self.spec.right.value == "call":
            return price - self.spec.strike
        return self.spec.strike - np.asarray(price)


# --------------------------------------------------------------------------- #
# Black–Scholes–Merton explicit finite differences
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class BSMGridParams:
    """Explicit FD scheme constants for the dimensionless BSM PDE (§4.2).

    The scheme (paper Eq. 5) updates

    ``v[n+1, k] = coef_down * v[n, k-1] + coef_mid * v[n, k] + coef_up * v[n, k+1]``

    in the red (continuation) zone and sets ``v = 1 - exp(s_k)`` in the green
    (exercise) zone.  Theorem 4.3's precondition — the three coefficients
    nonnegative — is exactly the monotonicity/stability condition of the
    explicit scheme and is enforced here.

    ``lam = dtau/ds^2`` is held fixed as ``T`` grows (``ds ~ sqrt(dtau)``), so
    the spatial window that the T-step cone spans grows like ``sqrt(T)`` in
    ``s`` units — wide enough to contain the exercise boundary for any ``T``.
    """

    spec: OptionSpec
    steps: int
    omega: float
    tau_max: float
    dtau: float
    ds: float
    lam: float
    coef_down: float  # weight of v[n, k-1]
    coef_mid: float  # weight of v[n, k]
    coef_up: float  # weight of v[n, k+1]
    s_origin: float  # s at k = 0  (= ln(S/K))

    DEFAULT_LAMBDA = 0.45

    @classmethod
    def from_spec(
        cls, spec: OptionSpec, steps: int, *, lam: float | None = None
    ) -> "BSMGridParams":
        steps = check_integer("steps", steps, minimum=1)
        if spec.right.value != "put":
            raise ValidationError(
                "the BSM finite-difference model prices American puts "
                "(paper §4); use right=Right.PUT or the symmetry wrapper"
            )
        if spec.dividend_yield != 0.0:
            raise ValidationError(
                "the paper's BSM put formulation assumes zero dividend yield"
            )
        if spec.rate <= 0.0:
            raise ValidationError(
                "BSM American put requires rate > 0 (omega > 0) for a "
                "nontrivial early-exercise boundary"
            )
        lam = cls.DEFAULT_LAMBDA if lam is None else float(lam)
        if not (0.0 < lam < 0.5):
            raise ValidationError(f"lam must be in (0, 0.5), got {lam}")
        sigma2 = spec.volatility**2
        omega = 2.0 * spec.rate / sigma2
        tau_max = 0.5 * sigma2 * spec.years
        dtau = tau_max / steps
        ds = math.sqrt(dtau / lam)
        drift = (omega - 1.0) * dtau / (2.0 * ds)
        coef_up = lam + drift
        coef_down = lam - drift
        coef_mid = 1.0 - omega * dtau - 2.0 * lam
        for name, c in (
            ("coef_down", coef_down),
            ("coef_mid", coef_mid),
            ("coef_up", coef_up),
        ):
            if c < 0.0:
                raise ValidationError(
                    f"explicit-scheme coefficient {name}={c:.6g} is negative; "
                    "Theorem 4.3's precondition fails — lower lam or raise steps"
                )
        return cls(
            spec=spec,
            steps=steps,
            omega=omega,
            tau_max=tau_max,
            dtau=dtau,
            ds=ds,
            lam=lam,
            coef_down=coef_down,
            coef_mid=coef_mid,
            coef_up=coef_up,
            s_origin=spec.log_moneyness,
        )

    @property
    def taps(self) -> tuple[float, float, float]:
        """Weights at offsets ``(-1, 0, +1)`` as ``(coef_down, coef_mid, coef_up)``."""
        return (self.coef_down, self.coef_mid, self.coef_up)

    def s_values(self, k):
        """Dimensionless log-price ``s`` at spatial index/indices ``k``."""
        import numpy as np

        return self.s_origin + np.asarray(k, dtype=np.float64) * self.ds

    def payoff(self, k):
        """Strike-normalised put payoff ``1 - exp(s_k)`` (paper's green value).

        Like the tree models' green value, this is *signed* (negative above
        the strike); the initial row applies ``max(., 0)`` separately.
        """
        import numpy as np

        return 1.0 - np.exp(self.s_values(np.asarray(k)))
