"""Lightweight wall-clock measurement used by the experiment harness.

``pytest-benchmark`` owns the statistically careful timing in
``benchmarks/``; this module provides the quick, dependency-free measurements
the figure builders use when sweeping many (algorithm, T) points where a full
benchmark session per point would be prohibitive.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable


@dataclass
class Timer:
    """Context manager accumulating elapsed wall-clock seconds.

    >>> t = Timer()
    >>> with t:
    ...     _ = sum(range(1000))
    >>> t.elapsed >= 0.0
    True
    """

    elapsed: float = 0.0
    _start: float = field(default=0.0, repr=False)

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> None:
        self.elapsed += time.perf_counter() - self._start


def measure(
    fn: Callable[[], Any],
    *,
    min_time: float = 0.05,
    max_repeats: int = 1_000_000,
    warmup: bool = True,
) -> tuple[float, Any]:
    """Time ``fn`` adaptively; return ``(seconds_per_call, last_result)``.

    Repeats the call until at least ``min_time`` seconds have been spent, so
    fast calls are averaged over many repeats while slow calls run once.  The
    first (warm-up) call is excluded from timing when ``warmup`` is set and
    the call is cheap enough that a warm-up is affordable.
    """
    result = None
    if warmup:
        start = time.perf_counter()
        result = fn()
        first = time.perf_counter() - start
        if first >= min_time:  # too slow to repeat; one timed run is it
            return first, result
    total = 0.0
    repeats = 0
    while total < min_time and repeats < max_repeats:
        start = time.perf_counter()
        result = fn()
        total += time.perf_counter() - start
        repeats += 1
    return total / max(repeats, 1), result
