"""Lightweight wall-clock measurement used by the experiment harness.

``pytest-benchmark`` owns the statistically careful timing in
``benchmarks/``; this module provides the quick, dependency-free measurements
the figure builders use when sweeping many (algorithm, T) points where a full
benchmark session per point would be prohibitive.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable


@dataclass
class Timer:
    """Context manager accumulating elapsed wall-clock seconds.

    >>> t = Timer()
    >>> with t:
    ...     _ = sum(range(1000))
    >>> t.elapsed >= 0.0
    True
    """

    elapsed: float = 0.0
    _start: float = field(default=0.0, repr=False)

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> None:
        self.elapsed += time.perf_counter() - self._start


class Measurement(tuple):
    """``(seconds_per_call, last_result)`` plus per-repeat spread.

    A 2-tuple subclass, so every existing ``sec, result = measure(...)``
    caller is untouched, while bench gates that need to tell noise from
    regression on 1-CPU CI hosts read the extra attributes:

    * ``min_s`` / ``max_s`` — fastest and slowest single repeat;
    * ``repeats`` — how many timed repeats the average covers.

    A tight ``min_s``-to-``max_s`` band means the average is trustworthy; a
    wide band means the host was noisy and a wall-clock gate should compare
    against ``min_s`` (the least-disturbed run) rather than the mean.
    """

    def __new__(cls, seconds: float, result: Any,
                min_s: float, max_s: float, repeats: int) -> "Measurement":
        self = super().__new__(cls, (seconds, result))
        self.min_s = min_s
        self.max_s = max_s
        self.repeats = repeats
        return self

    @property
    def seconds(self) -> float:
        return self[0]

    @property
    def result(self) -> Any:
        return self[1]


def measure(
    fn: Callable[[], Any],
    *,
    min_time: float = 0.05,
    max_repeats: int = 1_000_000,
    warmup: bool = True,
) -> "Measurement":
    """Time ``fn`` adaptively; return ``(seconds_per_call, last_result)``.

    Repeats the call until at least ``min_time`` seconds have been spent, so
    fast calls are averaged over many repeats while slow calls run once.  The
    first (warm-up) call is excluded from timing when ``warmup`` is set and
    the call is cheap enough that a warm-up is affordable.

    The return value unpacks as the historical 2-tuple and additionally
    carries ``min_s``/``max_s``/``repeats`` (see :class:`Measurement`) so
    callers can judge how noisy the average is.
    """
    result = None
    if warmup:
        start = time.perf_counter()
        result = fn()
        first = time.perf_counter() - start
        if first >= min_time:  # too slow to repeat; one timed run is it
            return Measurement(first, result, first, first, 1)
    total = 0.0
    lo = float("inf")
    hi = 0.0
    repeats = 0
    while total < min_time and repeats < max_repeats:
        start = time.perf_counter()
        result = fn()
        dt = time.perf_counter() - start
        total += dt
        if dt < lo:
            lo = dt
        if dt > hi:
            hi = dt
        repeats += 1
    if not repeats:
        lo = hi = 0.0
    return Measurement(
        total / max(repeats, 1), result, lo, hi, max(repeats, 1)
    )
