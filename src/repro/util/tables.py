"""Plain-text table rendering for the experiment harness.

The benchmark harness prints the same rows/series the paper reports; these
helpers keep the formatting consistent across every ``benchmarks/bench_*.py``
and ``examples/*.py`` script without pulling in any plotting dependency.
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence


def _fmt_cell(value: Any, float_fmt: str) -> str:
    if value is None:
        return "-"
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        return format(value, float_fmt)
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    *,
    float_fmt: str = ".6g",
    title: str | None = None,
) -> str:
    """Render ``rows`` under ``headers`` as an aligned monospace table."""
    str_rows = [[_fmt_cell(v, float_fmt) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for idx, cell in enumerate(row):
            if idx < len(widths):
                widths[idx] = max(widths[idx], len(cell))
            else:  # ragged row: extend
                widths.append(len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(
            " | ".join(cell.ljust(widths[idx]) for idx, cell in enumerate(row))
        )
    return "\n".join(lines)


def format_series(
    series: Mapping[str, Mapping[int, float]],
    *,
    x_name: str = "T",
    float_fmt: str = ".4g",
    title: str | None = None,
) -> str:
    """Render ``{label: {x: y}}`` as a table with one column per label.

    This matches the figure layout of the paper: the x axis is the number of
    time steps ``T`` and each curve (legend entry in Table 4) is a column.
    """
    xs = sorted({x for curve in series.values() for x in curve})
    headers = [x_name] + list(series.keys())
    rows = []
    for x in xs:
        row: list[Any] = [x]
        for label in series:
            row.append(series[label].get(x))
        rows.append(row)
    return format_table(headers, rows, float_fmt=float_fmt, title=title)


def to_csv(
    series: Mapping[str, Mapping[int, float]],
    *,
    x_name: str = "T",
) -> str:
    """Serialise ``{label: {x: y}}`` to CSV text (for ``results/`` export)."""
    xs = sorted({x for curve in series.values() for x in curve})
    lines = [",".join([x_name] + list(series.keys()))]
    for x in xs:
        cells = [str(x)]
        for label in series:
            y = series[label].get(x)
            cells.append("" if y is None else repr(y))
        lines.append(",".join(cells))
    return "\n".join(lines) + "\n"
