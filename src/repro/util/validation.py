"""Argument validation helpers used across the library.

All public entry points validate their inputs eagerly and raise
:class:`ValidationError` (a ``ValueError`` subclass) with a message naming the
offending parameter.  Numerical kernels deeper in the stack assume validated
inputs and do not re-check.
"""

from __future__ import annotations

import math
from typing import Any


class ValidationError(ValueError):
    """Raised when a user-supplied parameter is invalid."""


def check_finite(name: str, value: float) -> float:
    """Return ``value`` as a float, requiring it to be finite."""
    try:
        v = float(value)
    except (TypeError, ValueError) as exc:
        raise ValidationError(f"{name} must be a real number, got {value!r}") from exc
    if math.isnan(v) or math.isinf(v):
        raise ValidationError(f"{name} must be finite, got {value!r}")
    return v


def check_positive(name: str, value: float) -> float:
    """Return ``value`` as a float, requiring ``value > 0``."""
    v = check_finite(name, value)
    if v <= 0.0:
        raise ValidationError(f"{name} must be > 0, got {value!r}")
    return v


def check_nonnegative(name: str, value: float) -> float:
    """Return ``value`` as a float, requiring ``value >= 0``."""
    v = check_finite(name, value)
    if v < 0.0:
        raise ValidationError(f"{name} must be >= 0, got {value!r}")
    return v


def check_in_range(
    name: str,
    value: float,
    lo: float,
    hi: float,
    *,
    inclusive: bool = True,
) -> float:
    """Return ``value`` as a float, requiring it to lie in ``[lo, hi]``.

    With ``inclusive=False`` the interval is open: ``(lo, hi)``.
    """
    v = check_finite(name, value)
    if inclusive:
        if not (lo <= v <= hi):
            raise ValidationError(f"{name} must be in [{lo}, {hi}], got {value!r}")
    else:
        if not (lo < v < hi):
            raise ValidationError(f"{name} must be in ({lo}, {hi}), got {value!r}")
    return v


def check_spec_finite(spec: Any) -> Any:
    """Re-validate a contract's numeric fields at a service boundary.

    ``OptionSpec.__post_init__`` already rejects NaN/inf at construction,
    but construction is not the only way a spec reaches the serving tier:
    unpickling (the process-pool worker boundary) restores ``__dict__``
    without re-running ``__post_init__``, so a spec corrupted in transit —
    or built by a caller that bypassed the constructor — would sail into a
    coalesced bucket and poison every sibling solve with NaN arithmetic.
    The quote service calls this on every request before keying it; the
    cost is six float checks, the payoff is that a bad request dies alone
    with a :class:`ValidationError` naming the field.

    Duck-typed on the spec's numeric attributes so this module stays below
    :mod:`repro.options` in the import order.
    """
    check_positive("spot", spec.spot)
    check_positive("strike", spec.strike)
    check_nonnegative("rate", spec.rate)
    check_positive("volatility", spec.volatility)
    check_nonnegative("dividend_yield", spec.dividend_yield)
    check_positive("expiry_days", spec.expiry_days)
    check_positive("day_count", spec.day_count)
    return spec


def check_integer(name: str, value: Any, *, minimum: int | None = None) -> int:
    """Return ``value`` as an int, optionally requiring ``value >= minimum``.

    Floats are accepted only when they are exactly integral (``4.0`` ok,
    ``4.5`` not), which avoids silently truncating step counts.
    """
    if isinstance(value, bool):
        raise ValidationError(f"{name} must be an integer, got bool {value!r}")
    if isinstance(value, float):
        if not value.is_integer():
            raise ValidationError(f"{name} must be an integer, got {value!r}")
        value = int(value)
    if not isinstance(value, int):
        try:
            import numpy as np

            if isinstance(value, np.integer):
                value = int(value)
            else:
                raise TypeError
        except TypeError as exc:
            raise ValidationError(f"{name} must be an integer, got {value!r}") from exc
    if minimum is not None and value < minimum:
        raise ValidationError(f"{name} must be >= {minimum}, got {value!r}")
    return value
