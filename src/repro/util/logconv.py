"""Log-domain combinatorial helpers.

The h-step weights of a 2-tap stencil are ``C(h,k) * s0^(h-k) * s1^k``.  For
``h`` in the hundreds of thousands the binomial coefficient overflows any
float while the power factors underflow, but their product is a well-scaled
probability-like weight.  Working in log space keeps every intermediate
representable; ``scipy.special.gammaln`` gives ~1e-14 relative accuracy.
"""

from __future__ import annotations

import numpy as np
from scipy.special import gammaln


def log_binomial(h: int, k: np.ndarray | int) -> np.ndarray:
    """``log C(h, k)`` elementwise, exact in log space via lgamma."""
    k_arr = np.asarray(k, dtype=np.float64)
    return gammaln(h + 1.0) - gammaln(k_arr + 1.0) - gammaln(h - k_arr + 1.0)


def binomial_pmf_weights(h: int, log_s0: float, log_s1: float) -> np.ndarray:
    """Weights ``w_k = C(h,k) * s0^(h-k) * s1^k`` for ``k = 0..h``.

    Computed entirely in log space, so it is stable for any ``h`` where the
    *result* is representable (the weights sum to ``(s0+s1)^h`` which stays
    O(1) for discounted transition weights).
    """
    if h < 0:
        raise ValueError(f"h must be >= 0, got {h}")
    k = np.arange(h + 1, dtype=np.float64)
    logw = log_binomial(h, k) + (h - k) * log_s0 + k * log_s1
    return np.exp(logw)


def logsumexp_weighted(log_terms: np.ndarray) -> float:
    """``log(sum(exp(log_terms)))`` without overflow (small helper for tests)."""
    m = float(np.max(log_terms))
    if np.isinf(m):
        return m
    return m + float(np.log(np.sum(np.exp(log_terms - m))))
