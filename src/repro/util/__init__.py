"""Shared utilities: validation, timing, table formatting, log-domain helpers.

These are deliberately dependency-light so every other subpackage can import
them without cycles.
"""

from repro.util.validation import (
    check_finite,
    check_positive,
    check_nonnegative,
    check_in_range,
    check_integer,
    ValidationError,
)
from repro.util.tables import format_table, format_series
from repro.util.timing import Timer, measure

__all__ = [
    "check_finite",
    "check_positive",
    "check_nonnegative",
    "check_in_range",
    "check_integer",
    "ValidationError",
    "format_table",
    "format_series",
    "Timer",
    "measure",
]
