"""repro — Fast American Option Pricing using Nonlinear Stencils (PPoPP'24).

A from-scratch Python reproduction of Ahmad et al.'s FFT-accelerated
``O(T log^2 T)`` American option pricing algorithms, together with every
substrate the paper's evaluation depends on: vanilla and cache-optimised
Θ(T²) baselines, a work–span parallel-runtime model, a cache-hierarchy
simulator, and a RAPL-style energy model.  On top of the solvers sit the
applied tiers: ``repro.risk`` (scenario grids on real worker pools),
``repro.service`` (a caching, coalescing quote service) and
``repro.market`` (American implied-vol inversion and calibrated
no-arbitrage vol surfaces — ``implied_vol``, ``implied_vol_many``,
``VolSurface``, ``calibrate_surface``), closing the loop from market
quotes back to served prices.

Quickstart
----------
>>> from repro import paper_benchmark_spec, price_american
>>> spec = paper_benchmark_spec()
>>> result = price_american(spec, steps=512, model="binomial", method="fft")
>>> round(result.price, 4) == round(
...     price_american(spec, steps=512, model="binomial", method="loop").price, 4)
True
"""

from repro.options import (
    OptionSpec,
    Right,
    Style,
    paper_benchmark_spec,
    black_scholes,
    european_price,
    american_greeks,
    greeks_many,
    AmericanGreeks,
)
from repro.core.api import (
    PricingResult,
    price_american,
    price_european,
    price_bermudan,
    price_many,
    solve_batch,
    exercise_boundary,
)
from repro.core.backend import (
    PricerBackend,
    backend_names,
    get_backend,
    register_backend,
)
from repro.resilience import (
    BreakerPolicy,
    CircuitBreaker,
    CircuitOpenError,
    Deadline,
    DeadlineExceeded,
    FaultPlan,
    RetryPolicy,
)
from repro.risk import ScenarioEngine, ScenarioGrid, ScenarioResult
from repro.service import (
    CanonicalPolicy,
    QuoteCache,
    QuoteService,
    canonical_key,
)
from repro.market import (
    MarketQuote,
    VolSurface,
    calibrate_surface,
    implied_vol,
    implied_vol_many,
)

__version__ = "1.0.0"

__all__ = [
    "BreakerPolicy",
    "CanonicalPolicy",
    "CircuitBreaker",
    "CircuitOpenError",
    "Deadline",
    "DeadlineExceeded",
    "FaultPlan",
    "MarketQuote",
    "RetryPolicy",
    "QuoteCache",
    "QuoteService",
    "VolSurface",
    "calibrate_surface",
    "canonical_key",
    "implied_vol",
    "implied_vol_many",
    "OptionSpec",
    "Right",
    "Style",
    "paper_benchmark_spec",
    "black_scholes",
    "european_price",
    "american_greeks",
    "greeks_many",
    "AmericanGreeks",
    "PricerBackend",
    "PricingResult",
    "backend_names",
    "get_backend",
    "register_backend",
    "ScenarioEngine",
    "ScenarioGrid",
    "ScenarioResult",
    "price_american",
    "price_european",
    "price_bermudan",
    "price_many",
    "solve_batch",
    "exercise_boundary",
    "__version__",
]
