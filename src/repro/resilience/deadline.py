"""Deadline budgets: bounded latency for every serving-tier code path.

A :class:`Deadline` is a wall-clock budget created where a request enters
the stack (``QuoteService.quote``/``quote_many``/``submit``) and *carried*
— not re-derived — through bucket coalescing into
:class:`~repro.risk.engine.ScenarioEngine` chunk dispatch, so every tier
charges against the same budget instead of stacking its own timeout on top
of everyone else's.

Enforcement points
------------------
* **Pool futures**: the scenario engine waits on chunk futures with
  ``deadline.remaining()``; chunks that miss the budget resolve to
  per-cell timeout markers (:func:`timeout_result`) while finished chunks
  keep their real results — a ``TimeoutError`` per cell, never per batch.
* **Serial solves**: pure-Python solves cannot be preempted, so the
  plan-caching :class:`~repro.core.fftstencil.AdvanceEngine` accepts a
  ``checkpoint`` callable invoked at every advance; binding it to
  :meth:`Deadline.checkpoint` makes a long solve raise
  :class:`DeadlineExceeded` within one advance of the budget expiring.
* **Queues and caches**: the quote service consults ``expired`` before
  committing to a cold solve and may serve a stale cache entry instead
  (docs/DESIGN.md §8).

The clock is injectable (default :func:`time.monotonic`); tests pin every
transition on a fake clock.
"""

from __future__ import annotations

import math
import time
from typing import Callable, Optional

from repro.util.validation import ValidationError, check_finite

Clock = Callable[[], float]


class DeadlineExceeded(TimeoutError):
    """A deadline budget ran out before the work completed."""


class Deadline:
    """A point in (monotonic) time after which work should stop.

    Parameters
    ----------
    seconds:
        Budget from *now* (must be finite and >= 0; a zero budget is
        already expired — useful for "serve only what is warm" calls).
    clock:
        Zero-argument monotonic callable; tests inject fakes.
    """

    __slots__ = ("budget", "_expires_at", "_clock")

    def __init__(self, seconds: float, clock: Clock = time.monotonic):
        seconds = check_finite("seconds", seconds)
        if seconds < 0.0:
            raise ValidationError(f"seconds must be >= 0, got {seconds!r}")
        self.budget = seconds
        self._clock = clock
        self._expires_at = clock() + seconds

    @classmethod
    def after(cls, seconds: float, clock: Clock = time.monotonic) -> "Deadline":
        """Alias constructor reading as prose: ``Deadline.after(0.25)``."""
        return cls(seconds, clock=clock)

    # ------------------------------------------------------------------ #
    def remaining(self) -> float:
        """Seconds left in the budget, clamped at 0.0."""
        return max(0.0, self._expires_at - self._clock())

    @property
    def expired(self) -> bool:
        return self._clock() >= self._expires_at

    def check(self, label: str = "") -> None:
        """Raise :class:`DeadlineExceeded` if the budget is spent."""
        if self.expired:
            where = f" in {label}" if label else ""
            raise DeadlineExceeded(
                f"deadline of {self.budget:g}s exceeded{where}"
            )

    def checkpoint(self) -> None:
        """Engine-hook spelling of :meth:`check` (no label, bound method).

        Assign ``engine.checkpoint = deadline.checkpoint`` so a serial
        solve observes the budget cooperatively at every advance.
        """
        self.check()

    def sleep_budget(self, seconds: float) -> float:
        """Clamp a backoff sleep to what the budget still allows."""
        return min(seconds, self.remaining())


def effective_deadline(
    deadlines: "list[Optional[Deadline]]",
) -> Optional[Deadline]:
    """The tightest of several optional deadlines (``None`` entries pass).

    Used by the quote service's coalescer: a bucket groups requests that
    may each carry their own budget; the bucket solve honors the tightest
    one so no member's budget is silently exceeded.
    """
    best: Optional[Deadline] = None
    best_remaining = math.inf
    for d in deadlines:
        if d is None:
            continue
        r = d.remaining()
        if r < best_remaining:
            best, best_remaining = d, r
    return best
