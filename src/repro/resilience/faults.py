"""Deterministic fault injection for the worker and serving tiers.

A :class:`FaultPlan` is a *seeded, picklable* description of exactly which
cells of a batch fail, how, and on which attempt — crashes (exception or
real worker-process death), per-solve delays, and corrupted result rows.
Determinism is the point: faults key on the **flat cell index and the
attempt number** (both carried in the chunk payload), never on wall-clock
or on shared mutable counters, so the same plan replays the same failure
sequence on any backend — serial, thread pool, or process pool — and a
failing CI run reproduces from its recorded seed.

The scenario engine applies the plan around each cell solve
(:meth:`FaultPlan.before` / :meth:`FaultPlan.after`); the retry layer
(:mod:`repro.resilience.retry`) must then recover: a crash whose
``attempts`` budget is exhausted prices cleanly on the next attempt, so a
correct retry implementation yields **bit-identical** final answers with
zero unhandled exceptions — the contract pinned by ``tests/resilience/``.
"""

from __future__ import annotations

import math
import multiprocessing
import os
import random
import time
from dataclasses import dataclass, field
from typing import Mapping, Optional

from repro.core.api import PricingResult
from repro.util.validation import ValidationError

CRASH_EXCEPTION = "exception"
CRASH_EXIT = "exit"


class InjectedCrash(RuntimeError):
    """A fault-plan crash: stands in for a worker dying mid-solve."""


class CorruptedResult(RuntimeError):
    """Raised by a resilient dispatcher when a returned row fails
    output validation (non-finite price on a non-marker result)."""


@dataclass(frozen=True)
class FaultPlan:
    """Which cells fail, how, and for how many attempts.

    Parameters
    ----------
    crashes:
        ``{cell_index: attempts}`` — the cell's solve crashes while
        ``attempt < attempts`` (so ``1`` means: first try dies, first
        retry succeeds).
    delays:
        ``{cell_index: seconds}`` — sleep injected before the cell's
        solve on **every** attempt (drive a deadline past its budget).
    corrupt:
        ``{cell_index: attempts}`` — the cell's *result* comes back with a
        NaN price while ``attempt < attempts``; detected by the
        dispatcher's output validation and re-priced.
    crash_style:
        ``"exception"`` raises :class:`InjectedCrash` (any backend);
        ``"exit"`` kills the worker **process** via ``os._exit`` — a real
        dead worker, driving ``BrokenProcessPool`` and the pool-rebuild
        path.  Outside a child process (serial/thread backends) ``"exit"``
        degrades to the exception so a test plan can never kill the test
        runner.
    seed:
        Provenance only (recorded by :meth:`describe` and the CI failure
        artifact); use :meth:`FaultPlan.random` to *derive* a plan from it.
    """

    crashes: Mapping[int, int] = field(default_factory=dict)
    delays: Mapping[int, float] = field(default_factory=dict)
    corrupt: Mapping[int, int] = field(default_factory=dict)
    crash_style: str = CRASH_EXCEPTION
    seed: Optional[int] = None
    sleep: object = field(default=time.sleep, repr=False)

    def __post_init__(self) -> None:
        if self.crash_style not in (CRASH_EXCEPTION, CRASH_EXIT):
            raise ValidationError(
                f"crash_style must be {CRASH_EXCEPTION!r} or {CRASH_EXIT!r},"
                f" got {self.crash_style!r}"
            )

    # ------------------------------------------------------------------ #
    @classmethod
    def random(
        cls,
        seed: int,
        n_cells: int,
        *,
        crash_rate: float = 0.0,
        delay_rate: float = 0.0,
        delay: float = 0.0,
        corrupt_rate: float = 0.0,
        attempts: int = 1,
        crash_style: str = CRASH_EXCEPTION,
    ) -> "FaultPlan":
        """Derive a plan deterministically from ``seed``.

        Each cell independently draws crash/delay/corrupt membership from
        one :class:`random.Random` stream, so the same ``(seed, n_cells,
        rates)`` always builds the same plan — the seed alone reproduces a
        failing run.
        """
        rng = random.Random(seed)
        crashes: dict[int, int] = {}
        delays: dict[int, float] = {}
        corrupt: dict[int, int] = {}
        for cell in range(n_cells):
            if rng.random() < crash_rate:
                crashes[cell] = attempts
            if rng.random() < delay_rate:
                delays[cell] = delay
            if rng.random() < corrupt_rate:
                corrupt[cell] = attempts
        return cls(
            crashes=crashes, delays=delays, corrupt=corrupt,
            crash_style=crash_style, seed=seed,
        )

    # ------------------------------------------------------------------ #
    def before(self, cell: int, attempt: int) -> None:
        """Apply pre-solve faults for ``cell`` on try number ``attempt``."""
        delay = self.delays.get(cell)
        if delay:
            self.sleep(delay)
        if attempt < self.crashes.get(cell, 0):
            if (
                self.crash_style == CRASH_EXIT
                and multiprocessing.parent_process() is not None
            ):
                # a real dead worker — only ever inside a pool child
                os._exit(17)
            raise InjectedCrash(
                f"injected crash: cell {cell}, attempt {attempt}"
            )

    def after(
        self, cell: int, attempt: int, result: PricingResult
    ) -> PricingResult:
        """Apply post-solve faults: corrupt the row while budgeted."""
        if attempt < self.corrupt.get(cell, 0):
            bad = result.scaled(1.0)  # never mutate the genuine result
            bad.price = float("nan")
            return bad
        return result

    def describe(self) -> dict:
        """JSON-ready reproduction record (CI uploads this on failure)."""
        return {
            "seed": self.seed,
            "crash_style": self.crash_style,
            "crashes": {str(k): v for k, v in sorted(self.crashes.items())},
            "delays": {str(k): v for k, v in sorted(self.delays.items())},
            "corrupt": {str(k): v for k, v in sorted(self.corrupt.items())},
        }


def validate_row(result: PricingResult) -> None:
    """Output validation for a worker-returned row.

    Raises :class:`CorruptedResult` when a row that claims to be served
    carries a non-finite price — the detector that turns silent data
    corruption into a retryable failure.  Marker rows (timeout/failure
    stand-ins, which are NaN by design) pass through.
    """
    if result.meta.get("timeout") or result.meta.get("failed"):
        return
    if not math.isfinite(result.price):
        raise CorruptedResult(
            f"non-finite price {result.price!r} from a served row "
            f"({result.model}/{result.method}, steps={result.steps})"
        )
