"""Explicit per-cell outcome markers for partial-result returns.

When a deadline, breaker, or exhausted retry prevents a cell from being
served, the resilient paths return a *marker* :class:`PricingResult` in
that cell's slot — ``price`` is NaN and ``meta`` names the reason — so a
batch keeps its shape (results stay in flat grid / submission order) and
the failure mode is explicit per cell rather than one exception for the
whole batch.  Markers are never cached and never count as solves.
"""

from __future__ import annotations

import math

from repro.core.api import PricingResult

#: ``meta`` keys marking a non-served cell; consumers test via the
#: predicates below, not these literals.
TIMEOUT_KEY = "timeout"
FAILED_KEY = "failed"
STALE_KEY = "stale"


def timeout_result(
    steps: int, model: str, method: str, *, detail: str = ""
) -> PricingResult:
    """A per-cell ``TimeoutError`` stand-in: NaN price, ``meta["timeout"]``."""
    meta = {TIMEOUT_KEY: True}
    if detail:
        meta["detail"] = detail
    return PricingResult(float("nan"), steps, model, method, meta=meta)


def failure_result(
    steps: int, model: str, method: str, error: BaseException
) -> PricingResult:
    """A per-cell failure marker carrying the error's repr (not the object —
    markers must stay picklable and cycle-free)."""
    return PricingResult(
        float("nan"), steps, model, method,
        meta={FAILED_KEY: True, "error": f"{type(error).__name__}: {error}"},
    )


def is_timeout(result: PricingResult) -> bool:
    return bool(result.meta.get(TIMEOUT_KEY))


def is_failure(result: PricingResult) -> bool:
    return bool(result.meta.get(FAILED_KEY))


def is_stale(result: PricingResult) -> bool:
    return bool(result.meta.get(STALE_KEY))


def is_marker(result: PricingResult) -> bool:
    """True for any not-actually-served result (timeout/failure marker)."""
    return is_timeout(result) or is_failure(result)


def is_served(result: PricingResult) -> bool:
    """A genuinely priced result: not a marker, finite price."""
    return not is_marker(result) and math.isfinite(result.price)
