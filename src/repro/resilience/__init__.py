"""Resilience layer: failure semantics for the serving stack.

The production north star ("serving heavy traffic") assumes failure
semantics the pricing engines alone do not provide: bounded latency,
isolation of bad requests, recovery from dead workers, and graceful
degradation under pressure.  This package supplies them as small,
injectable, deterministic pieces (docs/DESIGN.md §8):

* :class:`Deadline` / :class:`DeadlineExceeded` — one budget carried from
  the service front door into worker chunk dispatch; per-cell timeout
  markers, never whole-batch failures.
* :class:`RetryPolicy` — jittered exponential backoff with injectable
  sleep/seed; drives pool rebuild and chunk re-dispatch on worker death.
* :class:`BreakerPolicy` / :class:`CircuitBreaker` /
  :class:`CircuitOpenError` — per-bucket closed → open → half-open fail
  fast, on an injectable clock.
* :class:`FaultPlan` / :class:`InjectedCrash` — seeded, deterministic
  fault injection (crashes, delays, corrupted rows) that replays
  identically on every backend; the proof harness for all of the above.
* marker helpers (:func:`timeout_result`, :func:`is_served`, …) — the
  explicit per-cell outcome vocabulary shared by the risk and service
  tiers.
"""

from repro.resilience.breaker import (
    BreakerPolicy,
    CircuitBreaker,
    CircuitOpenError,
)
from repro.resilience.deadline import (
    Deadline,
    DeadlineExceeded,
    effective_deadline,
)
from repro.resilience.faults import (
    CorruptedResult,
    FaultPlan,
    InjectedCrash,
    validate_row,
)
from repro.resilience.markers import (
    failure_result,
    is_failure,
    is_marker,
    is_served,
    is_stale,
    is_timeout,
    timeout_result,
)
from repro.resilience.retry import TRANSIENT, RetryPolicy

__all__ = [
    "BreakerPolicy",
    "CircuitBreaker",
    "CircuitOpenError",
    "CorruptedResult",
    "Deadline",
    "DeadlineExceeded",
    "FaultPlan",
    "InjectedCrash",
    "RetryPolicy",
    "TRANSIENT",
    "effective_deadline",
    "failure_result",
    "is_failure",
    "is_marker",
    "is_served",
    "is_stale",
    "is_timeout",
    "timeout_result",
    "validate_row",
]
