"""Retry with jittered exponential backoff, fully injectable for tests.

:class:`RetryPolicy` is a frozen value object describing *how* to retry —
attempt budget, backoff curve, jitter, and which exception types count as
transient — with the clock-touching pieces (``sleep``) and the randomness
(``seed`` → :class:`random.Random`) injectable so every retry schedule is
reproducible in tests.

The scenario engine uses it to re-dispatch a dead worker's chunk (pool
rebuild on :class:`concurrent.futures.BrokenExecutor`, then chunk-level
re-submission) and to re-price cells whose results came back corrupted;
the quote service's per-request isolation of poisoned buckets composes
with it unchanged.
"""

from __future__ import annotations

import random
import time
from concurrent.futures import BrokenExecutor
from dataclasses import dataclass, field
from typing import Callable, Optional, Tuple, Type

from repro.resilience.faults import CorruptedResult, InjectedCrash
from repro.util.validation import (
    ValidationError,
    check_integer,
    check_nonnegative,
)

#: Failures worth re-trying: worker/pool death, injected faults, OS-level
#: hiccups, corrupted outputs.  Deliberately excludes ``ValidationError``
#: and other ``ValueError``\ s — a poisoned request fails identically on
#: every attempt and must be isolated, not retried.
TRANSIENT: Tuple[Type[BaseException], ...] = (
    BrokenExecutor,
    InjectedCrash,
    CorruptedResult,
    ConnectionError,
    OSError,
)


@dataclass(frozen=True)
class RetryPolicy:
    """Jittered exponential backoff: delay ``i`` is
    ``min(base_delay * multiplier**i, max_delay)`` scaled by a uniform
    jitter factor in ``[1 - jitter, 1 + jitter]``.

    Parameters
    ----------
    max_attempts:
        Total tries including the first (``3`` = one try + two retries).
    base_delay, multiplier, max_delay:
        The backoff curve, in seconds.
    jitter:
        Fractional spread (``0.5`` → ±50%); de-synchronizes retry storms.
    retry_on:
        Exception types considered transient.
    seed:
        Seeds the jitter stream (:meth:`rng`); ``None`` draws a fresh
        stream per call site.
    sleep:
        Injectable sleep; tests pass a recorder, production the default
        :func:`time.sleep`.
    """

    max_attempts: int = 3
    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 2.0
    jitter: float = 0.5
    retry_on: Tuple[Type[BaseException], ...] = TRANSIENT
    seed: Optional[int] = None
    sleep: Callable[[float], None] = field(default=time.sleep, repr=False)

    def __post_init__(self) -> None:
        check_integer("max_attempts", self.max_attempts, minimum=1)
        check_nonnegative("base_delay", self.base_delay)
        check_nonnegative("max_delay", self.max_delay)
        if self.multiplier < 1.0:
            raise ValidationError(
                f"multiplier must be >= 1, got {self.multiplier!r}"
            )
        if not 0.0 <= self.jitter <= 1.0:
            raise ValidationError(
                f"jitter must be in [0, 1], got {self.jitter!r}"
            )

    # ------------------------------------------------------------------ #
    def rng(self) -> random.Random:
        """A fresh jitter stream (deterministic when ``seed`` is set)."""
        return random.Random(self.seed)

    def is_transient(self, exc: BaseException) -> bool:
        return isinstance(exc, self.retry_on)

    def delay(self, attempt: int, rng: Optional[random.Random] = None) -> float:
        """Backoff before retry number ``attempt + 1`` (attempt 0 = first
        failure)."""
        raw = min(
            self.base_delay * self.multiplier ** max(0, attempt),
            self.max_delay,
        )
        if self.jitter == 0.0 or raw == 0.0:
            return raw
        r = rng if rng is not None else self.rng()
        return raw * (1.0 + self.jitter * (2.0 * r.random() - 1.0))

    def delays(self, rng: Optional[random.Random] = None) -> "list[float]":
        """The full backoff schedule (``max_attempts - 1`` entries)."""
        r = rng if rng is not None else self.rng()
        return [self.delay(i, r) for i in range(self.max_attempts - 1)]

    def call(self, fn: Callable[[], object]) -> object:
        """Run ``fn`` under this policy: transient failures back off and
        retry; the last failure (or any non-transient one) propagates."""
        r = self.rng()
        for attempt in range(self.max_attempts):
            try:
                return fn()
            except BaseException as exc:  # noqa: BLE001 — filtered below
                if (
                    not self.is_transient(exc)
                    or attempt + 1 >= self.max_attempts
                ):
                    raise
                self.sleep(self.delay(attempt, r))
        raise AssertionError("unreachable")  # pragma: no cover
