"""Per-bucket circuit breakers: fail fast on repeatedly-failing shapes.

A coalescing service has a specific failure amplifier: one pathological
request *shape* — a ``(model, method, steps)`` bucket whose solves keep
dying — re-enters the queue forever, and every flush pays the full solve
cost to rediscover the same failure while healthy buckets wait behind it.
The classic remedy is a circuit breaker per bucket:

``closed``
    Normal serving.  ``failure_threshold`` *consecutive* failures trip the
    breaker open (a success resets the count).
``open``
    Calls are rejected immediately (:class:`CircuitOpenError`) without
    touching the engines; after ``reset_timeout`` seconds the breaker
    moves to half-open on the next :meth:`CircuitBreaker.allow`.
``half_open``
    Up to ``half_open_max`` probe calls are let through.  ``success_threshold``
    consecutive probe successes close the breaker; any probe failure
    re-opens it (and restarts the reset timer).

The clock is injectable; the state machine is pinned on a fake clock by
``tests/resilience/test_breaker.py``.  All methods are thread-safe.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable, Optional

from repro.util.validation import (
    ValidationError,
    check_integer,
    check_positive,
)

Clock = Callable[[], float]

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


class CircuitOpenError(RuntimeError):
    """Rejected fast: this request shape's breaker is open.

    Structured payload: ``bucket`` (the breaker key), ``retry_after``
    (seconds until the breaker will admit a probe), ``state``.
    """

    def __init__(self, message: str, *, bucket=None, retry_after: float = 0.0):
        super().__init__(message)
        self.bucket = bucket
        self.retry_after = retry_after


@dataclass(frozen=True)
class BreakerPolicy:
    """Configuration for one :class:`CircuitBreaker` (see module docstring)."""

    failure_threshold: int = 5
    reset_timeout: float = 30.0
    half_open_max: int = 1
    success_threshold: int = 1

    def __post_init__(self) -> None:
        check_integer("failure_threshold", self.failure_threshold, minimum=1)
        check_positive("reset_timeout", self.reset_timeout)
        check_integer("half_open_max", self.half_open_max, minimum=1)
        check_integer("success_threshold", self.success_threshold, minimum=1)
        if self.success_threshold > self.half_open_max:
            raise ValidationError(
                "success_threshold cannot exceed half_open_max: the breaker "
                "could never close"
            )


class CircuitBreaker:
    """One closed → open → half-open state machine on an injectable clock."""

    def __init__(
        self,
        policy: BreakerPolicy,
        clock: Clock = time.monotonic,
        listener: Optional[Callable[[str, str], None]] = None,
    ):
        #: Optional transition callback ``listener(old_state, new_state)``,
        #: invoked on every state change (trip, probe window, close).  It
        #: runs with the breaker lock held so transitions report in order —
        #: keep it cheap and never call back into this breaker from it.
        #: The telemetry layer binds a gauge+counter recorder here.
        self.listener = listener
        self.policy = policy
        self._clock = clock
        self._lock = threading.Lock()
        self._state = CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._probes_in_flight = 0
        self._probe_successes = 0
        # lifetime counters for stats()
        self._failures = 0
        self._successes = 0
        self._rejections = 0
        self._opens = 0

    # ------------------------------------------------------------------ #
    def _transition(self, new_state: str) -> None:
        """Change state and notify the listener (lock held)."""
        old = self._state
        self._state = new_state
        if self.listener is not None and old != new_state:
            self.listener(old, new_state)

    def _advance(self, now: float) -> None:
        """Open → half-open once the reset timeout has elapsed (lock held)."""
        if (
            self._state == OPEN
            and now - self._opened_at >= self.policy.reset_timeout
        ):
            self._transition(HALF_OPEN)
            self._probes_in_flight = 0
            self._probe_successes = 0

    def _trip(self, now: float) -> None:
        self._transition(OPEN)
        self._opened_at = now
        self._opens += 1
        self._consecutive_failures = 0
        self._probes_in_flight = 0
        self._probe_successes = 0

    # ------------------------------------------------------------------ #
    @property
    def state(self) -> str:
        with self._lock:
            self._advance(self._clock())
            return self._state

    def retry_after(self) -> float:
        """Seconds until an open breaker will admit a probe (0 if not open)."""
        with self._lock:
            now = self._clock()
            self._advance(now)
            if self._state != OPEN:
                return 0.0
            return max(
                0.0, self.policy.reset_timeout - (now - self._opened_at)
            )

    def allow(self) -> bool:
        """May a call proceed right now?

        Half-open admissions are counted as probes (at most
        ``half_open_max`` before an outcome must arrive), so a thundering
        herd cannot stampede a recovering bucket.  A caller whose admitted
        probe never reports an outcome (e.g. it merged onto another
        in-flight solve) leaves a probe slot consumed until the next
        open/half-open transition — harmless, the breaker re-probes after
        another ``reset_timeout``.
        """
        with self._lock:
            self._advance(self._clock())
            if self._state == CLOSED:
                return True
            if self._state == HALF_OPEN:
                if self._probes_in_flight < self.policy.half_open_max:
                    self._probes_in_flight += 1
                    return True
                self._rejections += 1
                return False
            self._rejections += 1
            return False

    def record_success(self) -> None:
        with self._lock:
            now = self._clock()
            self._advance(now)
            self._successes += 1
            if self._state == HALF_OPEN:
                self._probe_successes += 1
                if self._probe_successes >= self.policy.success_threshold:
                    self._transition(CLOSED)
                    self._consecutive_failures = 0
            else:
                self._consecutive_failures = 0

    def record_failure(self) -> None:
        with self._lock:
            now = self._clock()
            self._advance(now)
            self._failures += 1
            if self._state == HALF_OPEN:
                self._trip(now)  # a failed probe re-opens immediately
            elif self._state == CLOSED:
                self._consecutive_failures += 1
                if (
                    self._consecutive_failures
                    >= self.policy.failure_threshold
                ):
                    self._trip(now)
            # failures reported while OPEN (stragglers from before the trip)
            # only count in the lifetime counter

    def reject(self, bucket=None) -> CircuitOpenError:
        """Build the structured fail-fast error for this breaker."""
        retry_after = self.retry_after()
        return CircuitOpenError(
            f"circuit open for bucket {bucket!r}; retry in "
            f"{retry_after:.3g}s",
            bucket=bucket,
            retry_after=retry_after,
        )

    def stats(self) -> dict:
        with self._lock:
            self._advance(self._clock())
            return {
                "state": self._state,
                "consecutive_failures": self._consecutive_failures,
                "failures": self._failures,
                "successes": self._successes,
                "rejections": self._rejections,
                "opens": self._opens,
            }
