"""Market-facing calibration tier: quotes → implied vols → vol surfaces.

The ROADMAP's closed-loop input path.  Observed American option prices are
inverted to implied volatilities (:mod:`repro.market.implied` — bracketed
Brent with a Newton fast path seeded by the analytic European inversion),
assembled into total-variance-interpolated, no-arbitrage-checked
:class:`~repro.market.surface.VolSurface` objects
(:mod:`repro.market.surface`), and calibrated in bulk across the
:class:`~repro.risk.engine.ScenarioEngine` worker pools
(:mod:`repro.market.calibrate`).  The surfaces feed back into the stack:
:meth:`repro.risk.grid.ScenarioGrid.cartesian` draws per-cell vols from a
surface, and :meth:`repro.service.service.QuoteService.implied_vol` runs
inversions through the serving cache.
"""

from repro.market.calibrate import (
    CalibrationReport,
    MarketQuote,
    calibrate_surface,
)
from repro.market.implied import (
    FitReport,
    ImpliedVolResult,
    european_implied_vol,
    implied_vol,
    implied_vol_many,
)
from repro.market.surface import ArbitrageViolation, VolSurface

__all__ = [
    "ArbitrageViolation",
    "CalibrationReport",
    "FitReport",
    "ImpliedVolResult",
    "MarketQuote",
    "VolSurface",
    "calibrate_surface",
    "european_implied_vol",
    "implied_vol",
    "implied_vol_many",
]
