"""Surface calibration: market quote sets → no-arbitrage-checked VolSurface.

This closes the loop the ROADMAP calls the north-star workload: a snapshot
of American option quotes goes in, a queryable
:class:`~repro.market.surface.VolSurface` comes out, and that surface feeds
straight back into the engine stack — per-cell vols for
:meth:`repro.risk.grid.ScenarioGrid.cartesian` sweeps and seeds for the
:class:`~repro.service.service.QuoteService`.

Execution model
---------------
Quotes are grouped into *ladders* — one per (expiry, rate, dividend, right)
curve, sorted by strike — because a ladder is the unit that profits from
:func:`repro.market.implied.implied_vol_many`'s warm-started brackets.
Ladders are then sharded across the existing
:class:`~repro.risk.engine.ScenarioEngine` worker pools via its generic
:meth:`~repro.risk.engine.ScenarioEngine.map_chunks` fan-out, so each
worker's persistent plan-caching AdvanceEngine serves every solve of every
ladder it draws (the serial fallback runs the same code path on one
engine, bit-identical).  The fitted grid is assembled into a
:class:`VolSurface` and the static no-arbitrage diagnostics are attached to
the report — never raised: a noisy market snapshot is data, not an error.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional, Sequence, Union

import numpy as np

from repro.core.fftstencil import DEFAULT_POLICY, AdvanceEngine, AdvancePolicy
from repro.market.implied import FitReport, implied_vol_many
from repro.market.surface import ArbitrageViolation, VolSurface
from repro.options.contract import OptionSpec
from repro.risk.engine import ScenarioEngine
from repro.util.validation import ValidationError, check_finite, check_integer


@dataclass(frozen=True)
class MarketQuote:
    """One observed market price for one contract."""

    spec: OptionSpec
    price: float

    def __post_init__(self) -> None:
        check_finite("price", self.price)


QuoteLike = Union[MarketQuote, "tuple[OptionSpec, float]"]


@dataclass
class CalibrationReport:
    """Everything :func:`calibrate_surface` learned besides the surface.

    ``fits`` holds one :class:`~repro.market.implied.FitReport` per ladder
    (curve order: expiry-major); ``violations`` the static no-arbitrage
    diagnostics of the fitted surface; ``meta`` the run configuration and
    wall-clock.
    """

    fits: list[FitReport] = field(default_factory=list)
    violations: list[ArbitrageViolation] = field(default_factory=list)
    meta: dict = field(default_factory=dict)

    @property
    def solves(self) -> int:
        return sum(f.solves for f in self.fits)

    @property
    def iterations(self) -> int:
        return sum(f.iterations for f in self.fits)

    @property
    def n_quotes(self) -> int:
        return sum(len(f.results) for f in self.fits)

    @property
    def max_residual(self) -> float:
        return max((f.max_residual for f in self.fits), default=0.0)

    @property
    def solves_per_quote(self) -> float:
        n = self.n_quotes
        return self.solves / n if n else 0.0


def _as_quotes(quotes: Sequence[QuoteLike]) -> list[MarketQuote]:
    out: list[MarketQuote] = []
    for q in quotes:
        if isinstance(q, MarketQuote):
            out.append(q)
        else:
            spec, price = q
            out.append(MarketQuote(spec=spec, price=price))
    return out


def _invert_ladder_chunk(engine, ladders: list) -> list:
    """map_chunks task: fit each ladder on the worker's persistent engine.

    Module-level so the ``process`` backend can pickle it; each ladder is a
    ``(specs, quotes, steps, kwargs)`` tuple and yields one FitReport.
    """
    return [
        implied_vol_many(specs, prices, steps, engine=engine, **kwargs)
        for specs, prices, steps, kwargs in ladders
    ]


def calibrate_surface(
    quotes: Sequence[QuoteLike],
    steps: int,
    *,
    model: str = "binomial",
    method: str = "fft",
    base: Optional[int] = None,
    lam: Optional[float] = None,
    policy: AdvancePolicy = DEFAULT_POLICY,
    workers: Optional[int] = None,
    backend: str = "process",
    price_tol: Optional[float] = None,
    arbitrage_tol: float = 1e-12,
) -> tuple[VolSurface, CalibrationReport]:
    """Fit a :class:`VolSurface` to American market quotes.

    Parameters
    ----------
    quotes:
        :class:`MarketQuote` records (or ``(spec, price)`` tuples) covering
        a complete strikes × expiries grid on **one underlying**: every
        spec must share the spot, and every (strike, expiry) pair must be
        quoted exactly once — holes or duplicates raise
        :class:`ValidationError` naming the offending cells, because a
        silently interpolated hole would masquerade as market data.
    steps, model, method, base, lam, policy:
        The pricing configuration each inversion solves under, per
        :func:`repro.core.api.price_american`.
    workers, backend:
        ``workers > 1`` shards the per-expiry ladders across a
        :class:`~repro.risk.engine.ScenarioEngine` pool of this backend
        (``"process" | "thread" | "serial"``); the default calibrates
        serially on one shared plan-caching engine.  Parallel and serial
        runs produce identical surfaces — ladders are independent.
    price_tol:
        Per-quote convergence tolerance on the price residual
        (default ``1e-9 ·`` strike).
    arbitrage_tol:
        Tolerance for the static no-arbitrage diagnostics attached to the
        report (violations are *reported*, never raised).

    Returns
    -------
    ``(surface, report)`` — the fitted surface and a
    :class:`CalibrationReport` with per-quote fit records, solver totals,
    and the surface's no-arbitrage diagnostics.
    """
    steps = check_integer("steps", steps, minimum=1)
    mquotes = _as_quotes(quotes)
    if not mquotes:
        raise ValidationError("calibrate_surface needs at least one quote")
    spot = mquotes[0].spec.spot
    for q in mquotes:
        if q.spec.spot != spot:
            raise ValidationError(
                f"all quotes must share one underlying spot; got {spot} "
                f"and {q.spec.spot}"
            )

    strikes = np.array(sorted({q.spec.strike for q in mquotes}))
    expiries = np.array(sorted({q.spec.years for q in mquotes}))
    by_cell: dict[tuple[float, float], MarketQuote] = {}
    for q in mquotes:
        cell = (q.spec.strike, q.spec.years)
        if cell in by_cell:
            raise ValidationError(
                f"duplicate quote for strike {cell[0]}, expiry {cell[1]}y — "
                "each surface cell must be quoted exactly once"
            )
        by_cell[cell] = q
    missing = [
        (float(k), float(t))
        for k in strikes
        for t in expiries
        if (k, t) not in by_cell
    ]
    if missing:
        raise ValidationError(
            f"quote set does not cover the strikes x expiries grid; "
            f"missing {len(missing)} cell(s), first few: {missing[:4]}"
        )

    # One ladder per expiry, strike-sorted — the warm-start order.
    kwargs = {
        "model": model,
        "method": method,
        "base": base,
        "lam": lam,
        "policy": policy,
        "price_tol": price_tol,
    }
    ladders = []
    for t in expiries:
        specs = [by_cell[(k, t)].spec for k in strikes]
        prices = [by_cell[(k, t)].price for k in strikes]
        ladders.append((specs, prices, steps, kwargs))

    t0 = time.perf_counter()
    engine = ScenarioEngine(
        workers=workers, backend=backend, model=model, method=method,
        base=base, lam=lam, policy=policy,
    )
    serial = workers is None or engine.workers == 1 or backend == "serial"
    if serial:
        # chunking adds nothing serially — one engine, ladder order
        fits = _invert_ladder_chunk(AdvanceEngine(policy), ladders)
    else:
        fits = engine.map_chunks(ladders, _invert_ladder_chunk)
    wall = time.perf_counter() - t0

    vols = np.empty((len(strikes), len(expiries)), dtype=np.float64)
    for j, fit in enumerate(fits):
        vols[:, j] = fit.vols
    surface = VolSurface(
        strikes=strikes,
        expiries_years=expiries,
        vols=vols,
        spot=spot,
        meta={"steps": steps, "model": model, "method": method},
    )
    report = CalibrationReport(
        fits=fits,
        violations=surface.check_no_arbitrage(arbitrage_tol),
        meta={
            "steps": steps,
            "model": model,
            "method": method,
            "n_quotes": len(mquotes),
            "n_strikes": len(strikes),
            "n_expiries": len(expiries),
            "workers": 1 if serial else engine.workers,
            "backend": "serial" if serial else backend,
            "wall_s": wall,
        },
    )
    return surface, report
