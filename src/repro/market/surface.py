"""Volatility surfaces: total-variance interpolation + no-arbitrage checks.

A :class:`VolSurface` is the value object the calibration tier produces and
the scenario tier consumes: implied volatilities on a strikes × expiries
grid, queryable at any ``(strike, years)`` coordinate.  Interpolation runs
in the market-standard coordinates — *log-moneyness* ``k = ln(K / spot)``
on the strike axis and *total variance* ``w = v² T`` on the value axis —
because total variance is the quantity that is linear along arbitrage-free
time interpolation (variance is additive over independent increments) and
whose monotonicity/convexity encode the static no-arbitrage conditions the
diagnostics below check.  Outside the grid the surface extrapolates *flat
in vol* (queries clamp to the nearest edge), the conservative convention
for risk grids that bump past the quoted range.

The no-arbitrage diagnostics are *static* checks on the fitted grid:

* **calendar**: total variance must be non-decreasing in expiry at fixed
  log-moneyness — otherwise a calendar spread (sell short-dated, buy
  long-dated) locks in a riskless profit;
* **butterfly**: undiscounted Black call prices must be convex in strike at
  fixed expiry — otherwise the butterfly ``C(K₋) - 2C(K) + C(K₊)``
  (spacing-weighted) is negative.

Both return :class:`ArbitrageViolation` records instead of raising:
market-quote snapshots routinely carry small violations from bid/ask noise,
and the caller — not the surface — decides whether to reject, repair, or
carry them as a data-quality annotation
(:func:`repro.market.calibrate.calibrate_surface` attaches them to its
report).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.options.analytic import black_scholes
from repro.options.contract import OptionSpec, Right
from repro.util.validation import ValidationError, check_positive


@dataclass(frozen=True)
class ArbitrageViolation:
    """One static no-arbitrage violation on a fitted surface.

    ``kind`` is ``"calendar"`` or ``"butterfly"``; ``strike``/``expiries``
    locate the offending cell(s); ``amount`` is the violation magnitude
    (total-variance decrease, or the butterfly's negative value).
    """

    kind: str
    strike: float
    expiries: tuple[float, ...]
    amount: float

    def __str__(self) -> str:  # readable in reports and example output
        where = ", ".join(f"{t:.4g}y" for t in self.expiries)
        return (
            f"{self.kind} violation at K={self.strike:g} ({where}): "
            f"{self.amount:.3g}"
        )


@dataclass(frozen=True)
class VolSurface:
    """Implied vols on a strikes × expiries grid with total-variance interp.

    Parameters
    ----------
    strikes:
        Strictly increasing strike nodes (> 0), length ``m``.
    expiries_years:
        Strictly increasing expiry nodes in years (> 0), length ``n``.
    vols:
        Implied volatilities, shape ``(m, n)``, all > 0 and finite.
    spot:
        Reference spot fixing the log-moneyness coordinate ``ln(K/spot)``.

    The dataclass is frozen and the arrays are defensively copied and
    write-locked at construction, so a surface handed to scenario grids and
    worker pools is a true value object.
    """

    strikes: np.ndarray
    expiries_years: np.ndarray
    vols: np.ndarray
    spot: float
    meta: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        check_positive("spot", self.spot)
        strikes = np.asarray(self.strikes, dtype=np.float64).copy()
        expiries = np.asarray(self.expiries_years, dtype=np.float64).copy()
        vols = np.asarray(self.vols, dtype=np.float64).copy()
        if strikes.ndim != 1 or len(strikes) == 0:
            raise ValidationError("strikes must be a non-empty 1-D array")
        if expiries.ndim != 1 or len(expiries) == 0:
            raise ValidationError("expiries_years must be a non-empty 1-D array")
        if np.any(strikes <= 0.0) or np.any(np.diff(strikes) <= 0.0):
            raise ValidationError("strikes must be positive and strictly increasing")
        if np.any(expiries <= 0.0) or np.any(np.diff(expiries) <= 0.0):
            raise ValidationError(
                "expiries_years must be positive and strictly increasing"
            )
        if vols.shape != (len(strikes), len(expiries)):
            raise ValidationError(
                f"vols shape {vols.shape} must be (n_strikes, n_expiries) = "
                f"({len(strikes)}, {len(expiries)})"
            )
        if not np.all(np.isfinite(vols)) or np.any(vols <= 0.0):
            raise ValidationError("vols must all be finite and > 0")
        log_m = np.log(strikes / self.spot)
        for name, arr in (
            ("strikes", strikes),
            ("expiries_years", expiries),
            ("vols", vols),
            ("_log_moneyness", log_m),
        ):
            arr.setflags(write=False)
            object.__setattr__(self, name, arr)

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    @property
    def log_moneyness(self) -> np.ndarray:
        """The strike nodes in the interpolation coordinate ``ln(K/spot)``.

        Precomputed at construction — ``vol()`` runs once per scenario
        cell, so the coordinate array must not be rebuilt per query.
        """
        return self._log_moneyness

    def total_variance(self, strike: float, years: float) -> float:
        """Interpolated total variance ``w = vol² · years`` at the query."""
        v = self.vol(strike, years)
        return v * v * years

    def vol(self, strike: float, years: float) -> float:
        """Implied volatility at ``(strike, years)``.

        Grid nodes return their fitted vol *exactly* (no floating-point
        round trip through the interpolant — scenario grids built from a
        calibrated surface must reproduce the calibration bit-for-bit).
        Interior queries interpolate total variance bilinearly in
        ``(ln K/spot, T)``; queries outside the grid clamp to the nearest
        edge (flat-vol extrapolation).
        """
        check_positive("strike", strike)
        check_positive("years", years)
        strikes, expiries = self.strikes, self.expiries_years

        i = int(np.searchsorted(strikes, strike))
        j = int(np.searchsorted(expiries, years))
        exact_k = i < len(strikes) and strikes[i] == strike
        exact_t = j < len(expiries) and expiries[j] == years
        if exact_k and exact_t:
            return float(self.vols[i, j])

        k = math.log(strike / self.spot)
        ks = self.log_moneyness
        k = min(max(k, ks[0]), ks[-1])  # flat-vol clamp on the strike axis

        # Per-expiry variance at the clamped log-moneyness (linear in k):
        # at a single expiry, linear-in-k total variance and linear-in-k
        # variance coincide (same T factor), so interpolate vol² directly.
        def var_at(col: int) -> float:
            ii = int(np.searchsorted(ks, k))
            if ii < len(ks) and ks[ii] == k:
                v = float(self.vols[ii, col])
                return v * v
            ii = min(max(ii, 1), len(ks) - 1)
            t0, t1 = ks[ii - 1], ks[ii]
            u = (k - t0) / (t1 - t0)
            v0, v1 = float(self.vols[ii - 1, col]), float(self.vols[ii, col])
            return (1.0 - u) * v0 * v0 + u * v1 * v1

        if years <= expiries[0]:  # flat-vol clamp below the first expiry
            return math.sqrt(var_at(0))
        if years >= expiries[-1]:  # ... and beyond the last
            return math.sqrt(var_at(len(expiries) - 1))
        j = min(max(j, 1), len(expiries) - 1)
        t0, t1 = float(expiries[j - 1]), float(expiries[j])
        if t1 == years:
            return math.sqrt(var_at(j))
        # linear in *total variance* across expiries — the arbitrage-free
        # time interpolation (variance additivity)
        w0 = var_at(j - 1) * t0
        w1 = var_at(j) * t1
        u = (years - t0) / (t1 - t0)
        w = (1.0 - u) * w0 + u * w1
        return math.sqrt(w / years)

    # ------------------------------------------------------------------ #
    # Static no-arbitrage diagnostics
    # ------------------------------------------------------------------ #
    def calendar_violations(self, tol: float = 1e-12) -> list[ArbitrageViolation]:
        """Cells where total variance *decreases* in expiry (fixed strike)."""
        out: list[ArbitrageViolation] = []
        w = self.vols**2 * self.expiries_years[np.newaxis, :]
        for i, strike in enumerate(self.strikes):
            for j in range(1, len(self.expiries_years)):
                drop = w[i, j - 1] - w[i, j]
                if drop > tol:
                    out.append(
                        ArbitrageViolation(
                            kind="calendar",
                            strike=float(strike),
                            expiries=(
                                float(self.expiries_years[j - 1]),
                                float(self.expiries_years[j]),
                            ),
                            amount=float(drop),
                        )
                    )
        return out

    def butterfly_violations(self, tol: float = 1e-12) -> list[ArbitrageViolation]:
        """Strike triples where undiscounted Black call prices are concave.

        For each expiry the fitted vols are turned into undiscounted Black
        call prices at the reference spot (zero rate and carry — discounting
        is strike-independent, so it cannot create or hide a butterfly) and
        each interior strike is tested against the chord through its
        neighbours; ``C(K) > chord`` means the spacing-weighted butterfly
        pays negative premium — an arbitrage.
        """
        out: list[ArbitrageViolation] = []
        for j, years in enumerate(self.expiries_years):
            prices = [
                black_scholes(
                    OptionSpec(
                        spot=self.spot,
                        strike=float(k),
                        rate=0.0,
                        volatility=float(self.vols[i, j]),
                        dividend_yield=0.0,
                        expiry_days=float(years) * 252.0,
                        right=Right.CALL,
                        day_count=252,
                    )
                ).price
                for i, k in enumerate(self.strikes)
            ]
            for i in range(1, len(self.strikes) - 1):
                k_lo, k_mid, k_hi = (
                    float(self.strikes[i - 1]),
                    float(self.strikes[i]),
                    float(self.strikes[i + 1]),
                )
                u = (k_mid - k_lo) / (k_hi - k_lo)
                chord = (1.0 - u) * prices[i - 1] + u * prices[i + 1]
                excess = prices[i] - chord
                if excess > tol:
                    out.append(
                        ArbitrageViolation(
                            kind="butterfly",
                            strike=k_mid,
                            expiries=(float(years),),
                            amount=float(excess),
                        )
                    )
        return out

    def check_no_arbitrage(
        self, tol: float = 1e-12
    ) -> list[ArbitrageViolation]:
        """All static violations (calendar first, then butterfly)."""
        return self.calendar_violations(tol) + self.butterfly_violations(tol)

    # ------------------------------------------------------------------ #
    @classmethod
    def flat(
        cls,
        vol: float,
        *,
        spot: float,
        strikes: Optional[np.ndarray] = None,
        expiries_years: Optional[np.ndarray] = None,
    ) -> "VolSurface":
        """A constant-vol surface (handy baseline; trivially arbitrage-free
        on the butterfly axis and calendar-monotone by construction)."""
        check_positive("vol", vol)
        strikes = (
            np.array([0.5, 1.0, 2.0]) * spot if strikes is None else strikes
        )
        expiries_years = (
            np.array([0.25, 1.0, 2.0])
            if expiries_years is None
            else expiries_years
        )
        vols = np.full((len(strikes), len(expiries_years)), float(vol))
        return cls(
            strikes=np.asarray(strikes, dtype=np.float64),
            expiries_years=np.asarray(expiries_years, dtype=np.float64),
            vols=vols,
            spot=spot,
        )
