"""American implied volatility: bracketed Brent with a Newton fast path.

Market traffic starts from quoted *prices*, not volatilities, so the first
market-facing question a pricing stack answers is the inverse problem: find
the volatility ``v`` with ``price_american(spec with v) == quote``.  The
American price is strictly increasing and smooth in ``v``, which makes the
inversion a textbook one-dimensional root find — but every objective
evaluation is a full O(T log²T) lattice solve, so the solver count *is* the
cost model.  This module spends analytic work to keep that count small:

1. **European seed** — the quote is first inverted through the closed-form
   Black–Scholes formula (:func:`european_implied_vol`, Newton on the
   analytic vega of :func:`repro.options.analytic.black_scholes`), which
   costs no lattice solves at all.
2. **De-Americanization** — one American solve at the seed measures the
   early-exercise premium; subtracting it from the quote and re-inverting
   the closed form moves the seed from "European-equivalent" to
   "American-equivalent" volatility (cf. the early-exercise-premium
   approximations surveyed in PAPERS.md).
3. **Newton fast path** — safeguarded Newton iterations from the seed, with
   the analytic European vega standing in for the American vega (they agree
   to the early-exercise premium's vol sensitivity, small away from deep
   ITM).  Every evaluation tightens a hard bracket; a step that leaves the
   bracket, a tiny vega, or slow progress falls through to
4. **Bracketed Brent** — inverse-quadratic/secant steps with a bisection
   safeguard on the sign-changing interval, the classical derivative-free
   closer.  Bracket ends are discovered lazily (geometric expansion toward
   the vol floor/cap) so well-seeded quotes never pay for them.

:func:`implied_vol_many` batches whole quote ladders: one shared
plan-caching :class:`~repro.core.fftstencil.AdvanceEngine` serves every
solve, and each quote's root find is *warm-started* from its neighbour's
fitted vol — adjacent strikes on one expiry differ by a few vol points, so
the neighbour seed usually lands inside Newton's quadratic basin and the
whole ladder converges in a couple of solves per quote
(``benchmarks/bench_implied.py`` measures the batch-vs-naive speedup).
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

import numpy as np

from repro.core.api import price_american, price_many
from repro.core.fftstencil import DEFAULT_POLICY, AdvanceEngine, AdvancePolicy
from repro.options.analytic import black_scholes, european_price, intrinsic_bounds
from repro.options.contract import OptionSpec, Right, Style
from repro.util.validation import ValidationError, check_finite, check_integer

#: Volatility search domain: annualised vols outside [0.01%, 500%] are not
#: market data, and the cap bounds the lazy bracket expansion.
VOL_MIN = 1e-4
VOL_MAX = 5.0

#: Newton iterations before the fast path yields to Brent.
NEWTON_MAX = 8

#: Brent iterations cap (bisection alone halves the bracket each step, so
#: 80 covers the full [VOL_MIN, VOL_MAX] domain down to ~1e-25).
BRENT_MAX = 80


@dataclass(frozen=True)
class ImpliedVolResult:
    """One fitted implied volatility plus the effort it took.

    Attributes
    ----------
    vol:        the implied volatility.
    price:      the model price at ``vol`` (last objective evaluation).
    residual:   ``|price - quote|`` at convergence.
    iterations: root-find iterations (Newton + Brent).
    solves:     lattice solves spent (objective evaluations, including the
                de-Americanization probe); the batch speedup is won here.
    newton:     True when the Newton fast path converged on its own.
    seed:       the starting volatility (European seed or warm start).
    warm_start: True when the seed came from a neighbouring quote.
    """

    vol: float
    price: float
    residual: float
    iterations: int
    solves: int
    newton: bool
    seed: float
    warm_start: bool


@dataclass
class FitReport:
    """Per-quote fit records for a batch inversion plus batch totals.

    ``results[i]`` is quote ``i``'s :class:`ImpliedVolResult` in input
    order; ``vols`` collects the fitted vols as an array.  ``meta`` carries
    the batch configuration (steps, model, method, engine sharing).
    """

    results: list[ImpliedVolResult] = field(default_factory=list)
    meta: dict = field(default_factory=dict)

    @property
    def vols(self) -> np.ndarray:
        return np.array([r.vol for r in self.results], dtype=np.float64)

    @property
    def solves(self) -> int:
        """Total lattice solves across the batch."""
        return sum(r.solves for r in self.results)

    @property
    def iterations(self) -> int:
        return sum(r.iterations for r in self.results)

    @property
    def warm_starts(self) -> int:
        return sum(1 for r in self.results if r.warm_start)

    @property
    def max_residual(self) -> float:
        return max((r.residual for r in self.results), default=0.0)


# --------------------------------------------------------------------- #
# European closed-form inversion (the Newton seed)
# --------------------------------------------------------------------- #
def _european_range(spec: OptionSpec) -> tuple[float, float]:
    """Attainable European price range over ``v in (0, inf)``.

    As ``v -> 0`` the BSM price tends to the discounted-parity floor; as
    ``v -> inf`` a call tends to ``S e^{-Yt}`` and a put to ``K e^{-Rt}``.
    """
    t = spec.years
    disc_s = spec.spot * math.exp(-spec.dividend_yield * t)
    disc_k = spec.strike * math.exp(-spec.rate * t)
    if spec.right is Right.CALL:
        return max(disc_s - disc_k, 0.0), disc_s
    return max(disc_k - disc_s, 0.0), disc_k


def european_implied_vol(
    quote: float,
    spec: OptionSpec,
    *,
    tol: Optional[float] = None,
    max_iter: int = 60,
) -> float:
    """Invert the European Black–Scholes formula (closed form + analytic vega).

    Safeguarded Newton: each iteration evaluates the analytic price/vega
    pair and keeps a hard bisection bracket, so convergence is global over
    the attainable price range.  Quotes outside that range raise
    :class:`ValidationError`.  Costs no lattice solves — this is the seed
    generator for the American inversion, but useful on its own.
    """
    quote = check_finite("quote", quote)
    tol = 1e-12 * spec.strike if tol is None else tol
    lo_p, hi_p = _european_range(spec)
    if not (lo_p < quote < hi_p):
        raise ValidationError(
            f"quote {quote} outside the attainable European price range "
            f"({lo_p}, {hi_p}) for this contract"
        )

    lo, hi = VOL_MIN, VOL_MAX
    # Standard seed: the vol that sets |d1| = |d2| ~ 0, extended away from
    # the money (Manaster–Koehler); clipped into the search domain.
    t = spec.years
    m = math.log(spec.spot / spec.strike) + (spec.rate - spec.dividend_yield) * t
    v = min(max(math.sqrt(2.0 * abs(m) / t) if m != 0.0 else 0.2, 0.05), 2.0)
    for _ in range(max_iter):
        r = black_scholes(dataclasses.replace(spec, volatility=v))
        f = r.price - quote
        if abs(f) <= tol:
            return v
        if f < 0.0:
            lo = max(lo, v)
        else:
            hi = min(hi, v)
        step = f / r.vega if r.vega > 1e-12 else None
        nxt = v - step if step is not None else None
        if nxt is None or not (lo < nxt < hi):
            nxt = 0.5 * (lo + hi)  # bisection safeguard
        if abs(nxt - v) < 1e-16:
            return v
        v = nxt
    return v


# --------------------------------------------------------------------- #
# American inversion
# --------------------------------------------------------------------- #
class _Objective:
    """``f(v) = price(spec with vol v) - quote`` with memoised evaluations."""

    def __init__(self, price_fn: Callable[[float], float], quote: float):
        self._price_fn = price_fn
        self.quote = quote
        self.cache: dict[float, float] = {}
        self.solves = 0
        self.last_price = math.nan

    def __call__(self, v: float) -> float:
        f = self.cache.get(v)
        if f is None:
            self.solves += 1
            price = self._price_fn(v)
            self.last_price = price
            f = price - self.quote
            self.cache[v] = f
        else:
            self.last_price = f + self.quote
        return f


def _default_price_fn(
    spec: OptionSpec,
    steps: int,
    model: str,
    method: str,
    base: Optional[int],
    lam: Optional[float],
    policy: AdvancePolicy,
    engine: Optional[AdvanceEngine],
) -> Callable[[float], float]:
    def price_at(v: float) -> float:
        return price_american(
            dataclasses.replace(spec, volatility=v), steps,
            model=model, method=method, base=base, lam=lam,
            policy=policy, engine=engine,
        ).price

    return price_at


def _validate_quote(quote: float, spec: OptionSpec) -> None:
    lower, upper = intrinsic_bounds(spec.with_style(Style.AMERICAN))
    side = "spot" if spec.right is Right.CALL else "strike"
    if quote < lower:
        raise ValidationError(
            f"quote {quote} is below the American intrinsic/parity floor "
            f"{lower} — no volatility can reproduce it"
        )
    if quote >= upper:
        raise ValidationError(
            f"quote {quote} is at or above the {side} {upper} — the "
            "American price never reaches it at any volatility"
        )


def _expand_bracket_gen(quote: float, known: dict[float, float]):
    """Find a sign change ``[a, b]`` from the evaluations made so far.

    A generator (yields volatilities, receives residuals — see
    :func:`_root_find_gen`): the innermost already-evaluated pair is used
    when one exists; otherwise the bracket grows geometrically from the
    evaluated frontier toward the vol floor/cap.  Running into the cap (or
    floor) without a sign change means the quote sits outside the model's
    attainable price range.
    """
    neg = {v: fv for v, fv in known.items() if fv < 0.0}
    pos = {v: fv for v, fv in known.items() if fv >= 0.0}
    if neg and pos:
        a = max(neg)  # price still below the quote: highest such vol
        b = min(pos)  # price at/above the quote: lowest such vol
        return a, neg[a], b, pos[b]
    if pos:
        # every evaluation overshot: walk down toward the vol floor
        v = min(pos)
        while v > VOL_MIN:
            v = max(v * 0.5, VOL_MIN)
            fv = yield v
            if fv < 0.0:
                b = min(pos)
                return v, fv, b, pos[b]
            pos[v] = fv
        raise ValidationError(
            f"quote {quote} is below the model price at the volatility "
            f"floor {VOL_MIN} — no volatility in [{VOL_MIN}, {VOL_MAX}] "
            "reproduces it"
        )
    # every evaluation undershot (or none yet): walk up toward the cap
    v = max(neg) if neg else 0.2
    if not neg:
        fv = yield v
        (neg if fv < 0.0 else pos)[v] = fv
        if pos:
            return (yield from _expand_bracket_gen(quote, {**neg, **pos}))
    while v < VOL_MAX:
        v = min(v * 2.0, VOL_MAX)
        fv = yield v
        if fv >= 0.0:
            a = max(neg)
            return a, neg[a], v, fv
        neg[v] = fv
    raise ValidationError(
        f"quote {quote} is above the model price at the volatility cap "
        f"{VOL_MAX} — no volatility in [{VOL_MIN}, {VOL_MAX}] reproduces it"
    )


def _brent_gen(
    a: float,
    fa: float,
    b: float,
    fb: float,
    price_tol: float,
    vol_tol: float,
):
    """Classic Brent (1973) on a sign-changing bracket; returns (v, f(v), iters).

    A generator (yields volatilities, receives residuals).  Inverse-
    quadratic interpolation when the three iterates cooperate, secant
    otherwise, bisection whenever the interpolated step stalls — the
    guaranteed-convergence closer behind the Newton fast path.
    Hand-rolled rather than ``scipy.optimize.brentq`` because the exit
    criterion differs where it counts: every evaluation here is a full
    lattice solve, and converging on the *price residual* (``price_tol``)
    stops 1–2 solves earlier per quote than brentq's x-interval test.
    """
    if fa >= 0.0 <= fb or fa < 0.0 > fb:  # pragma: no cover — callers bracket
        raise ValidationError("brent requires a sign-changing bracket")
    c, fc = a, fa
    d = e = b - a
    iters = 0
    for _ in range(BRENT_MAX):
        iters += 1
        if abs(fc) < abs(fb):
            a, b, c = b, c, b
            fa, fb, fc = fb, fc, fb
        tol1 = 2.0 * np.finfo(float).eps * abs(b) + 0.5 * vol_tol
        xm = 0.5 * (c - b)
        if abs(fb) <= price_tol or abs(xm) <= tol1:
            return b, fb, iters
        if abs(e) >= tol1 and abs(fa) > abs(fb):
            s = fb / fa
            if a == c:
                p = 2.0 * xm * s
                q = 1.0 - s
            else:
                q = fa / fc
                r = fb / fc
                p = s * (2.0 * xm * q * (q - r) - (b - a) * (r - 1.0))
                q = (q - 1.0) * (r - 1.0) * (s - 1.0)
            if p > 0.0:
                q = -q
            p = abs(p)
            if 2.0 * p < min(3.0 * xm * q - abs(tol1 * q), abs(e * q)):
                e, d = d, p / q
            else:
                d = e = xm  # interpolation rejected: bisect
        else:
            d = e = xm
        a, fa = b, fb
        b = b + (d if abs(d) > tol1 else math.copysign(tol1, xm))
        fb = yield b
        if (fb < 0.0) == (fc < 0.0):
            c, fc = a, fa
            d = e = b - a
    return b, fb, iters


@dataclass(frozen=True)
class _RootFind:
    """What the root-find generator returns (driver adds solve accounting)."""

    vol: float
    residual: float
    iterations: int
    newton: bool
    seed: float


def _root_find_gen(
    quote: float,
    spec: OptionSpec,
    *,
    seed: Optional[float],
    bracket: Optional[tuple[float, float]],
    newton: bool,
    deamericanize: bool,
    price_tol: float,
    vol_tol: float,
):
    """The inversion algorithm as a generator: yields vols, receives residuals.

    Every ``fv = yield v`` asks the driver for ``f(v) = price(spec with
    vol v) - quote``; the driver memoises, so re-yielding an evaluated vol
    costs nothing.  Factoring the algorithm out of its objective lets one
    code path serve both the serial driver (:func:`implied_vol`) and the
    lockstep ladder driver (:func:`implied_vol_many` with
    ``lockstep=True``), which answers a whole batch's outstanding yields
    with one batched lattice solve per round.  Returns a :class:`_RootFind`
    via ``StopIteration``.
    """
    hist: dict[float, float] = {}
    if bracket is not None:
        b_lo, b_hi = bracket
        if not (VOL_MIN <= b_lo < b_hi <= VOL_MAX):
            raise ValidationError(
                f"bracket must satisfy {VOL_MIN} <= lo < hi <= {VOL_MAX}, "
                f"got {bracket}"
            )
        hist[b_lo] = yield b_lo
        hist[b_hi] = yield b_hi

    if seed is not None:
        v0 = min(max(float(seed), VOL_MIN), VOL_MAX)
    else:
        try:
            v0 = european_implied_vol(quote, spec)
        except ValidationError:
            # quote outside the *European* range (deep ITM American trades
            # below the discounted-parity floor of its European twin):
            # start mid-domain and let the bracket machinery take over
            v0 = 0.2
        if deamericanize:
            # one American solve at the European seed measures the
            # early-exercise premium; re-inverting the premium-adjusted
            # quote turns the European-equivalent vol into an
            # American-equivalent one (and seeds the bracket for free)
            f0 = yield v0
            hist[v0] = f0
            premium = (f0 + quote) - european_price(
                dataclasses.replace(spec, volatility=v0)
            )
            lo_p, hi_p = _european_range(spec)
            adjusted = quote - max(premium, 0.0)
            if lo_p < adjusted < hi_p:
                try:
                    v0 = european_implied_vol(adjusted, spec)
                except ValidationError:  # pragma: no cover — range-checked
                    pass

    iterations = 0
    if newton:
        v = v0
        lo, hi = VOL_MIN, VOL_MAX
        v_prev = f_prev = None
        for _ in range(NEWTON_MAX):
            iterations += 1
            fv = yield v
            hist[v] = fv
            if abs(fv) <= price_tol:
                return _RootFind(v, abs(fv), iterations, True, v0)
            if fv < 0.0:
                lo = max(lo, v)
            else:
                hi = min(hi, v)
            # First step: analytic European vega (free, no solve).  After
            # that: the secant through the last two *lattice* evaluations —
            # at finite steps the lattice price's local vol-slope deviates
            # a few percent from the smooth vega (node/strike alignment
            # shifts with u = e^{v sqrt(dt)}), and that error caps Newton
            # at slow linear convergence; the secant tracks the true slope.
            slope = 0.0
            if v_prev is not None and v != v_prev:
                slope = (fv - f_prev) / (v - v_prev)
            if not (slope > 1e-10):
                slope = black_scholes(
                    dataclasses.replace(spec, volatility=v)
                ).vega
            if slope <= 1e-10:
                break  # flat objective: Newton is blind here
            nxt = v - fv / slope
            if not (lo < nxt < hi):
                break  # step left the bracket: hand over to Brent
            v_prev, f_prev = v, fv
            if abs(nxt - v) <= vol_tol:
                v = nxt
                break
            v = nxt

    a, fa, b, fb = yield from _expand_bracket_gen(quote, dict(hist))
    if abs(fa) <= price_tol:
        v, fv = a, fa
        brent_iters = 0
    elif abs(fb) <= price_tol:
        v, fv = b, fb
        brent_iters = 0
    else:
        v, fv, brent_iters = yield from _brent_gen(
            a, fa, b, fb, price_tol, vol_tol
        )
    yield v  # memoised: fixes the driver's last_price to the returned vol
    return _RootFind(v, abs(fv), iterations + brent_iters, False, v0)


def implied_vol(
    quote: float,
    spec: OptionSpec,
    steps: int,
    *,
    model: str = "binomial",
    method: str = "fft",
    base: Optional[int] = None,
    lam: Optional[float] = None,
    policy: AdvancePolicy = DEFAULT_POLICY,
    engine: Optional[AdvanceEngine] = None,
    price_fn: Optional[Callable[[float], float]] = None,
    seed: Optional[float] = None,
    bracket: Optional[tuple[float, float]] = None,
    newton: bool = True,
    deamericanize: bool = True,
    price_tol: Optional[float] = None,
    vol_tol: float = 1e-12,
) -> ImpliedVolResult:
    """American implied volatility of one quoted price.

    Parameters
    ----------
    quote:
        The observed option price.  Must lie strictly between the American
        intrinsic/parity floor and the spot (call) / strike (put) —
        anything else raises :class:`ValidationError` before a single
        lattice solve is spent.
    spec, steps, model, method, base, lam, policy, engine:
        The pricing configuration, per :func:`repro.core.api.price_american`
        (the spec's ``volatility`` field is ignored — it is the unknown).
        Pass a shared plan-caching ``engine`` to amortise FFT plans across
        repeated solves; :func:`implied_vol_many` does this for ladders.
    price_fn:
        Override the objective: ``price_fn(v) -> price``.  The quote
        service routes evaluations through its canonical-key cache this
        way (:meth:`repro.service.service.QuoteService.implied_vol`).
    seed:
        Starting volatility (warm start).  Skips the European inversion
        and the de-Americanization probe entirely.
    bracket:
        Evaluate both ends of this vol interval up front (the classical
        fixed-bracket setup).  This is how the *naive* baseline prices:
        ``newton=False, deamericanize=False, bracket=(0.05, 2.0)`` is a
        textbook Brent inversion with none of the fast paths.
    newton / deamericanize:
        Disable the fast paths for A/B measurement — with both off the
        solve is the naive bracketed Brent the benchmark compares against.
    price_tol:
        Convergence on the price residual; default ``1e-9 * strike``
        (an order tighter than the 1e-8·K round-trip acceptance gate).
    vol_tol:
        Convergence on the bracket width, for flat-vega corners.
    """
    quote = check_finite("quote", quote)
    steps = check_integer("steps", steps, minimum=1)
    _validate_quote(quote, spec)
    if price_tol is None:
        price_tol = 1e-9 * spec.strike
    if price_fn is None:
        price_fn = _default_price_fn(
            spec, steps, model, method, base, lam, policy, engine
        )
    f = _Objective(price_fn, quote)
    gen = _root_find_gen(
        quote, spec, seed=seed, bracket=bracket, newton=newton,
        deamericanize=deamericanize, price_tol=price_tol, vol_tol=vol_tol,
    )
    try:
        v = next(gen)
        while True:
            v = gen.send(f(v))
    except StopIteration as stop:
        rf: _RootFind = stop.value
    return ImpliedVolResult(
        vol=rf.vol, price=f.last_price, residual=rf.residual,
        iterations=rf.iterations, solves=f.solves, newton=rf.newton,
        seed=rf.seed, warm_start=seed is not None,
    )


def implied_vol_many(
    specs: Sequence[OptionSpec],
    quotes: Sequence[float],
    steps: int,
    *,
    model: str = "binomial",
    method: str = "fft",
    base: Optional[int] = None,
    lam: Optional[float] = None,
    policy: AdvancePolicy = DEFAULT_POLICY,
    engine: Optional[AdvanceEngine] = None,
    warm_start: bool = True,
    newton: bool = True,
    deamericanize: bool = True,
    price_tol: Optional[float] = None,
    lockstep: bool = False,
) -> FitReport:
    """Invert a whole quote ladder on one shared plan-caching engine.

    ``specs[i]`` is quoted at ``quotes[i]``; results come back in input
    order inside a :class:`FitReport`.  Two batch effects make this faster
    than independent :func:`implied_vol` calls:

    * every lattice solve runs on **one** shared
      :class:`~repro.core.fftstencil.AdvanceEngine` (pass ``engine`` to
      share it wider — e.g. a calibration worker's persistent engine), so
      rFFT plans, pad sizes and scratch buffers amortise across the ladder;
    * each quote is **warm-started** from its neighbours' fitted vols
      whenever the neighbouring contracts share rate/dividend/expiry (a
      strike ladder): one prior fit seeds the neighbour's vol directly,
      two prior fits extrapolate the smile's local slope in log-strike —
      skipping the seed's de-Americanization probe and usually landing
      inside Newton's one-step basin.

    Sort ladders by strike before calling for the best warm-start locality
    (:func:`repro.market.calibrate.calibrate_surface` does).

    ``lockstep=True`` trades the *sequential* warm-start chain for
    *batched* objective evaluations: every quote runs its own root find
    (European seed + de-Americanization, no neighbour seeding — the
    neighbour's fit doesn't exist yet), and each round the whole ladder's
    outstanding evaluations are priced by one :func:`repro.core.api.price_many`
    call, which marches the B different-vol lattices through multi-kernel
    ``advance_batch`` transforms.  Per-quote trajectories — and therefore
    fitted vols, iteration and solve counts — match independent
    ``implied_vol`` calls bit-for-bit (batched rows transform exactly as
    standalone advances); total *solves* exceed the warm-started path's,
    but arrive in ~`iterations` batched rounds instead of ~`3 B` sequential
    lattice passes.  Prefer it for wide ladders on a single core; prefer
    warm starts when solves are the scarce resource (e.g. distributed
    calibration workers).
    """
    if len(specs) != len(quotes):
        raise ValidationError(
            f"specs and quotes must pair up: got {len(specs)} specs, "
            f"{len(quotes)} quotes"
        )
    steps = check_integer("steps", steps, minimum=1)
    if engine is None:
        engine = AdvanceEngine(policy)
    if lockstep:
        return _implied_vol_many_lockstep(
            specs, quotes, steps, model=model, method=method, base=base,
            lam=lam, policy=policy, engine=engine, newton=newton,
            deamericanize=deamericanize, price_tol=price_tol,
        )
    report = FitReport(
        meta={
            "steps": steps,
            "model": model,
            "method": method,
            "n_quotes": len(quotes),
            "warm_start": warm_start,
            "newton": newton,
            "deamericanize": deamericanize,
            "lockstep": False,
        }
    )
    # (log-strike, fitted vol) history of the current curve: one point
    # seeds the neighbour's vol, two extrapolate the smile's local slope
    curve: list[tuple[float, float]] = []
    prev_spec: Optional[OptionSpec] = None
    for spec, quote in zip(specs, quotes):
        if prev_spec is not None and not (
            spec.rate == prev_spec.rate
            and spec.dividend_yield == prev_spec.dividend_yield
            and spec.years == prev_spec.years
            and spec.right is prev_spec.right
        ):
            # a new expiry/rate/right is a new curve: its vols share no
            # neighbourhood with the previous ladder's
            curve.clear()
        seed = None
        if warm_start and curve:
            x = math.log(spec.strike)
            x1, v1 = curve[-1]
            seed = v1
            if len(curve) >= 2:
                x2, v2 = curve[-2]
                if x1 != x2:
                    seed = v1 + (v1 - v2) * (x - x1) / (x1 - x2)
                    seed = min(max(seed, VOL_MIN), VOL_MAX)
        result = implied_vol(
            quote, spec, steps, model=model, method=method, base=base,
            lam=lam, policy=policy, engine=engine, seed=seed,
            newton=newton, deamericanize=deamericanize, price_tol=price_tol,
        )
        report.results.append(result)
        curve.append((math.log(spec.strike), result.vol))
        prev_spec = spec
    return report


class _LadderState:
    """One quote's in-flight root find inside the lockstep ladder driver."""

    __slots__ = ("spec", "spec_am", "quote", "gen", "memo", "solves",
                 "last_price", "pending", "outcome")

    def __init__(self, spec: OptionSpec, quote: float, gen):
        self.spec = spec
        self.spec_am = spec.with_style(Style.AMERICAN)
        self.quote = quote
        self.gen = gen
        self.memo: dict[float, float] = {}
        self.solves = 0
        self.last_price = math.nan
        self.pending: Optional[float] = None  # vol awaiting a batched solve
        self.outcome: Optional[_RootFind] = None

    def resume(self, payload: Optional[float]) -> None:
        """Advance the generator until it needs an unmemoised evaluation.

        ``payload`` is the residual answering the previous yield (``None``
        primes a fresh generator).  Memoised re-evaluations are answered
        inline — only genuinely new vols become ``pending`` batch work.
        """
        try:
            v = next(self.gen) if payload is None else self.gen.send(payload)
            while v in self.memo:
                fv = self.memo[v]
                self.last_price = fv + self.quote
                v = self.gen.send(fv)
            self.pending = v
        except StopIteration as stop:
            self.pending = None
            self.outcome = stop.value


def _implied_vol_many_lockstep(
    specs: Sequence[OptionSpec],
    quotes: Sequence[float],
    steps: int,
    *,
    model: str,
    method: str,
    base: Optional[int],
    lam: Optional[float],
    policy: AdvancePolicy,
    engine: AdvanceEngine,
    newton: bool,
    deamericanize: bool,
    price_tol: Optional[float],
) -> FitReport:
    """Batched ladder inversion: every root-find sweep is one lattice batch.

    Each quote runs the exact :func:`implied_vol` algorithm (as the shared
    :func:`_root_find_gen`), but instead of solving its objective
    evaluations one Python call at a time, the driver collects the single
    evaluation every unfinished quote is blocked on and prices them all
    with one :func:`repro.core.api.price_many` call — which marches the
    different-vol lattices in lockstep through multi-kernel
    ``advance_batch`` transforms on the shared ``engine``.  Quotes finish
    at their own pace; the batch narrows as they do.
    """
    for quote, spec in zip(quotes, specs):
        check_finite("quote", quote)
        _validate_quote(quote, spec)
    states = []
    for spec, quote in zip(specs, quotes):
        gen = _root_find_gen(
            quote, spec, seed=None, bracket=None, newton=newton,
            deamericanize=deamericanize,
            price_tol=1e-9 * spec.strike if price_tol is None else price_tol,
            vol_tol=1e-12,
        )
        states.append(_LadderState(spec, quote, gen))
    for st in states:
        st.resume(None)

    rounds = 0
    while True:
        live = [st for st in states if st.pending is not None]
        if not live:
            break
        rounds += 1
        batch = [
            dataclasses.replace(st.spec_am, volatility=st.pending)
            for st in live
        ]
        results = price_many(
            batch, steps, model=model, method=method, base=base, lam=lam,
            policy=policy, engine=engine,
        )
        for st, result in zip(live, results):
            v = st.pending
            st.solves += 1
            st.last_price = result.price
            fv = result.price - st.quote
            st.memo[v] = fv
            st.resume(fv)

    report = FitReport(
        meta={
            "steps": steps,
            "model": model,
            "method": method,
            "n_quotes": len(quotes),
            "warm_start": False,
            "newton": newton,
            "deamericanize": deamericanize,
            "lockstep": True,
            "rounds": rounds,
        }
    )
    for st in states:
        rf = st.outcome
        report.results.append(
            ImpliedVolResult(
                vol=rf.vol, price=st.last_price, residual=rf.residual,
                iterations=rf.iterations, solves=st.solves, newton=rf.newton,
                seed=rf.seed, warm_start=False,
            )
        )
    return report
