"""Flight recorder: a bounded, structured event journal.

Metrics (:mod:`repro.obs.registry`) answer "how much / how fast"; spans
(:mod:`repro.obs.spans`) answer "where did the time go".  Neither answers
"what *happened*" — which retries fired and in what order, why a breaker
tripped, which worker pool was rebuilt, which cells timed out.  The
:class:`EventJournal` records exactly that: a ring buffer of small
structured events, each stamped with a monotonically increasing sequence
number, the injectable clock's time, and the id of the span active on the
emitting thread — so a journal line correlates 1:1 with the trace forest
the :class:`~repro.obs.spans.Tracer` retains.

Design constraints:

* **Bounded.**  The buffer is a fixed-size ring (``maxlen``); overflow
  drops the *oldest* events and counts the drops (``dropped``) instead of
  growing without bound in a long-lived service.  Per-type counters are
  kept outside the ring, so "how many retries ever" survives eviction of
  the retry events themselves.
* **Cold-path only.**  Emit sites live on recovery and degradation paths
  (retries, rebuilds, breaker trips, stale serves, evictions) — never
  per-row or per-advance — so an enabled journal costs the hot solve
  path nothing (gated by ``benchmarks/bench_obs.py``).
* **Replayable.**  :meth:`EventJournal.to_jsonl` exports one JSON object
  per line (stable key order), the format the README's "Replaying an
  incident" walkthrough consumes; ``seq`` gaps reveal exactly where the
  ring dropped history.

Disabled telemetry goes through :data:`NULL_JOURNAL`, whose ``emit`` is a
no-op returning ``None``.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from typing import Callable, Optional

from repro.util.validation import check_integer

Clock = Callable[[], float]


class Event:
    """One journal entry.  ``fields`` carries the emit site's payload;
    ``span_id`` is the id of the span that was active on the emitting
    thread (``None`` when emitted outside any span)."""

    __slots__ = ("seq", "ts", "type", "span_id", "fields")

    def __init__(self, seq: int, ts: float, etype: str,
                 span_id: Optional[int], fields: dict):
        self.seq = seq
        self.ts = ts
        self.type = etype
        self.span_id = span_id
        self.fields = fields

    def as_dict(self) -> dict:
        return {
            "seq": self.seq,
            "ts": self.ts,
            "type": self.type,
            "span_id": self.span_id,
            "fields": dict(self.fields),
        }

    def __repr__(self) -> str:  # pragma: no cover — debugging aid
        return (
            f"Event(seq={self.seq}, type={self.type!r}, "
            f"span_id={self.span_id}, fields={self.fields!r})"
        )


class EventJournal:
    """Thread-safe bounded ring buffer of :class:`Event`.

    Parameters
    ----------
    maxlen:
        Ring capacity.  The journal never holds more events than this;
        overflow evicts the oldest entry and increments ``dropped``.
    clock:
        Zero-argument monotonic callable; tests inject fakes so event
        timestamps are deterministic.
    tracer:
        Optional :class:`~repro.obs.spans.Tracer`.  When set, every emit
        captures the id of the tracer's current span on the emitting
        thread, correlating journal lines with trace trees.
    """

    def __init__(
        self,
        maxlen: int = 1024,
        clock: Clock = time.perf_counter,
        tracer=None,
    ):
        self.maxlen = check_integer("maxlen", maxlen, minimum=1)
        self.clock = clock
        self.tracer = tracer
        self._lock = threading.Lock()
        self._events: "deque[Event]" = deque(maxlen=self.maxlen)
        self._seq = 0
        self._dropped = 0
        self._counts: dict[str, int] = {}

    # ------------------------------------------------------------------ #
    def emit(self, etype: str, **fields) -> Event:
        """Record one event; returns it (callers normally ignore this)."""
        span = self.tracer.current() if self.tracer is not None else None
        span_id = span.id if span is not None else None
        ts = self.clock()
        with self._lock:
            seq = self._seq
            self._seq += 1
            self._counts[etype] = self._counts.get(etype, 0) + 1
            if len(self._events) == self.maxlen:
                self._dropped += 1
            event = Event(seq, ts, etype, span_id, fields)
            self._events.append(event)
        return event

    # ------------------------------------------------------------------ #
    @property
    def seq(self) -> int:
        """Next sequence number (== total events ever emitted)."""
        with self._lock:
            return self._seq

    @property
    def dropped(self) -> int:
        """Events evicted by ring overflow (their type counters remain)."""
        with self._lock:
            return self._dropped

    def counts(self) -> dict:
        """``{event type: emitted count}`` over the journal's lifetime —
        not just the retained window."""
        with self._lock:
            return dict(sorted(self._counts.items()))

    def events(
        self,
        etype: Optional[str] = None,
        since_seq: Optional[int] = None,
    ) -> "list[Event]":
        """Retained events, oldest first, optionally filtered by type
        and/or ``seq >= since_seq`` (the exemplar-slice accessor)."""
        with self._lock:
            out = list(self._events)
        if etype is not None:
            out = [e for e in out if e.type == etype]
        if since_seq is not None:
            out = [e for e in out if e.seq >= since_seq]
        return out

    def slice(self, since_seq: int, until_seq: Optional[int] = None) -> list:
        """Retained events with ``since_seq <= seq < until_seq`` as plain
        dicts — what a slow-quote exemplar stores alongside its trace."""
        with self._lock:
            events = list(self._events)
        return [
            e.as_dict()
            for e in events
            if e.seq >= since_seq and (until_seq is None or e.seq < until_seq)
        ]

    # ------------------------------------------------------------------ #
    def to_jsonl(self) -> str:
        """One JSON object per line (oldest first), sorted keys — the
        replayable incident record."""
        with self._lock:
            events = list(self._events)
        return "".join(
            json.dumps(e.as_dict(), sort_keys=True, default=repr) + "\n"
            for e in events
        )

    def write_jsonl(self, path: str) -> int:
        """Write :meth:`to_jsonl` to ``path``; returns the event count."""
        text = self.to_jsonl()
        with open(path, "w") as fh:
            fh.write(text)
        return text.count("\n")

    def stats(self) -> dict:
        """Counter snapshot for dashboards and ``stats()`` surfaces."""
        with self._lock:
            return {
                "emitted": self._seq,
                "retained": len(self._events),
                "dropped": self._dropped,
                "maxlen": self.maxlen,
                "by_type": dict(sorted(self._counts.items())),
            }

    def clear(self) -> None:
        """Drop every retained event and reset counters (tests)."""
        with self._lock:
            self._events.clear()
            self._seq = 0
            self._dropped = 0
            self._counts.clear()


class NullJournal:
    """Do-nothing journal for disabled telemetry."""

    maxlen = 0
    clock = staticmethod(time.perf_counter)
    seq = 0
    dropped = 0

    def emit(self, etype: str, **fields) -> None:
        return None

    def counts(self) -> dict:
        return {}

    def events(self, etype=None, since_seq=None) -> list:
        return []

    def slice(self, since_seq: int, until_seq=None) -> list:
        return []

    def to_jsonl(self) -> str:
        return ""

    def write_jsonl(self, path: str) -> int:
        with open(path, "w") as fh:
            fh.write("")
        return 0

    def stats(self) -> dict:
        return {
            "emitted": 0, "retained": 0, "dropped": 0, "maxlen": 0,
            "by_type": {},
        }

    def clear(self) -> None:
        pass


NULL_JOURNAL = NullJournal()
