"""Export span forests to Chrome trace-event JSON (Perfetto-loadable).

:func:`chrome_trace` converts a :class:`~repro.obs.spans.Tracer` (or its
``to_json()`` forest) into the `Trace Event Format
<https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU>`_
consumed by ``ui.perfetto.dev`` and ``chrome://tracing``:

* every span becomes one *complete* event (``"ph": "X"``) with
  microsecond ``ts``/``dur`` relative to the earliest span in the export,
  its attributes (plus the span id the event journal correlates on) under
  ``args``;
* :func:`merge_chrome_traces` lays several forests side by side as
  separate *processes* (one ``pid`` per named forest, a shared time
  origin) — the multi-process view for pooled services that ship child
  ``Tracer.to_json()`` payloads back to a parent;
* ``worker_tracks`` renders :class:`~repro.risk.engine.ScenarioEngine`
  worker chunks as separate tracks: pooled grids record each chunk's
  worker pid/tid and in-worker wall interval in
  ``ScenarioResult.meta["worker_tracks"]`` (telemetry enabled), and the
  exporter turns them into per-worker ``X`` events so the pool's real
  concurrency is visible next to the parent's dispatch span.

:func:`validate_chrome_trace` is the format gate the test-suite and
``benchmarks/run_all.py`` run before shipping a trace artifact: required
keys per phase, non-negative monotonic timestamps, and stack-disciplined
``B``/``E`` pairs (the exporter itself only emits ``X`` and ``M``, but
hand-built traces merged in may use duration events).
"""

from __future__ import annotations

import json
import math
from typing import Optional

#: pid assigned to the first (or only) exported forest.
MAIN_PID = 1


def _forest(source) -> list:
    """Normalise a Tracer | forest dict | root-list into a root-dict list."""
    to_json = getattr(source, "to_json", None)
    if callable(to_json):
        source = to_json()
    if isinstance(source, dict):
        source = source.get("traces", [])
    return list(source)


def _span_bounds(roots: list) -> tuple[float, float]:
    lo, hi = math.inf, -math.inf
    for root in roots:
        start = root.get("start", 0.0)
        lo = min(lo, start)
        hi = max(hi, start + root.get("duration", 0.0))
    return lo, hi


def _emit_span(events: list, span: dict, origin: float, pid: int, tid: int) -> None:
    args = dict(span.get("attrs", {}))
    args["span_id"] = span.get("id")
    if span.get("dropped_children"):
        args["dropped_children"] = span["dropped_children"]
    events.append(
        {
            "name": span["name"],
            "cat": "span",
            "ph": "X",
            "ts": (span["start"] - origin) * 1e6,
            "dur": span.get("duration", 0.0) * 1e6,
            "pid": pid,
            "tid": tid,
            "args": args,
        }
    )
    for child in span.get("children", ()):
        _emit_span(events, child, origin, pid, tid)


def _metadata(name: str, pid: int, tid: int = 0, *, thread: Optional[str] = None):
    """Process/thread naming events (``ph: "M"``)."""
    out = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "tid": tid,
            "args": {"name": name},
        }
    ]
    if thread is not None:
        out.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": pid,
                "tid": tid,
                "args": {"name": thread},
            }
        )
    return out


def merge_chrome_traces(
    sources: dict,
    *,
    worker_tracks=None,
    time_origin: Optional[float] = None,
) -> dict:
    """Export several named span forests into one Chrome trace.

    ``sources`` maps a process label to a :class:`~repro.obs.spans.Tracer`
    (or its ``to_json()`` payload); each label becomes its own ``pid`` so
    Perfetto renders the forests as separate processes on one shared
    clock.  ``worker_tracks`` (see :func:`chrome_trace`) lands under the
    real worker pids it recorded.  All timestamps are shifted by one
    common origin — the earliest span/chunk start across everything —
    so ``ts`` is non-negative and directly comparable across tracks.
    """
    forests = {label: _forest(src) for label, src in sources.items()}
    tracks = list(worker_tracks or ())

    origin = time_origin
    if origin is None:
        origin = math.inf
        for roots in forests.values():
            origin = min(origin, _span_bounds(roots)[0])
        for t in tracks:
            origin = min(origin, t["t0"])
        if not math.isfinite(origin):
            origin = 0.0

    events: list = []
    meta: list = []
    pid = MAIN_PID
    for label, roots in forests.items():
        meta.extend(_metadata(label, pid, thread="spans"))
        for tid, root in enumerate(roots, start=1):
            _emit_span(events, root, origin, pid, 1)
            _ = tid  # all roots share one track; nesting is by containment
        pid += 1
    worker_pids: dict[tuple, int] = {}
    for t in tracks:
        key = (t.get("pid"), t.get("tid"))
        if key not in worker_pids:
            worker_pids[key] = pid
            meta.extend(
                _metadata(
                    f"worker pid={t.get('pid')}", pid,
                    tid=1, thread=f"tid={t.get('tid')}",
                )
            )
            pid += 1
        lo, hi = t.get("lo"), t.get("hi")
        events.append(
            {
                "name": f"chunk[{lo}:{hi})",
                "cat": "worker_chunk",
                "ph": "X",
                "ts": max(0.0, (t["t0"] - origin) * 1e6),
                "dur": max(0.0, (t["t1"] - t["t0"]) * 1e6),
                "pid": worker_pids[key],
                "tid": 1,
                "args": {"lo": lo, "hi": hi, "worker_pid": t.get("pid")},
            }
        )
    events.sort(key=lambda e: e["ts"])
    return {
        "traceEvents": meta + events,
        "displayTimeUnit": "ms",
        "otherData": {"exporter": "repro.obs.traceexport"},
    }


def chrome_trace(
    source,
    *,
    process_name: str = "repro",
    worker_tracks=None,
    time_origin: Optional[float] = None,
) -> dict:
    """Export one span forest (a Tracer or its ``to_json()``) to Chrome
    trace-event JSON; see the module docstring for the event mapping."""
    return merge_chrome_traces(
        {process_name: source},
        worker_tracks=worker_tracks,
        time_origin=time_origin,
    )


def write_chrome_trace(path: str, trace: dict) -> None:
    """Validate and write ``trace`` as JSON loadable by Perfetto."""
    validate_chrome_trace(trace)
    with open(path, "w") as fh:
        json.dump(trace, fh, indent=1, default=repr)
        fh.write("\n")


def validate_chrome_trace(trace: dict) -> None:
    """Raise ``ValueError`` unless ``trace`` is well-formed trace-event
    JSON: required keys per phase, non-negative monotonic ``ts``, and
    matched stack-disciplined ``B``/``E`` pairs per ``(pid, tid)``."""
    if not isinstance(trace, dict) or "traceEvents" not in trace:
        raise ValueError("trace must be a dict with a 'traceEvents' list")
    events = trace["traceEvents"]
    if not isinstance(events, list):
        raise ValueError("'traceEvents' must be a list")
    last_ts: dict[tuple, float] = {}
    open_stacks: dict[tuple, list] = {}
    for i, ev in enumerate(events):
        for key in ("ph", "pid", "tid", "name"):
            if key not in ev:
                raise ValueError(f"event {i} missing required key {key!r}")
        ph = ev["ph"]
        if ph == "M":
            continue
        if "ts" not in ev:
            raise ValueError(f"event {i} ({ph}) missing 'ts'")
        ts = ev["ts"]
        if not (isinstance(ts, (int, float)) and math.isfinite(ts) and ts >= 0):
            raise ValueError(f"event {i} has invalid ts {ts!r}")
        track = (ev["pid"], ev["tid"])
        if ts < last_ts.get(track, 0.0):
            raise ValueError(
                f"event {i} ts {ts} goes backwards on track {track}"
            )
        last_ts[track] = ts
        if ph == "X":
            dur = ev.get("dur")
            if dur is None or not math.isfinite(dur) or dur < 0:
                raise ValueError(f"X event {i} has invalid dur {dur!r}")
        elif ph == "B":
            open_stacks.setdefault(track, []).append(ev["name"])
        elif ph == "E":
            stack = open_stacks.get(track)
            if not stack:
                raise ValueError(f"E event {i} with no open B on {track}")
            top = stack.pop()
            if ev["name"] not in ("", top):
                raise ValueError(
                    f"E event {i} name {ev['name']!r} does not match "
                    f"open B {top!r}"
                )
        else:
            raise ValueError(f"event {i} has unsupported phase {ph!r}")
    for track, stack in open_stacks.items():
        if stack:
            raise ValueError(
                f"unclosed B events on track {track}: {stack!r}"
            )
