"""Span tracing: nested wall-time spans with attributes.

The span taxonomy (docs/DESIGN.md §9) mirrors the call structure of the
stack rather than inventing a new vocabulary::

    quote  -> canonicalize | cache_lookup | bucket_solve
    solve  -> lockstep_round -> advance_batch | base_rows_batch
    grid   -> dispatch -> chunk

Spans are deliberately coarse — one per *round* or *phase*, never one per
row — so tracing stays affordable on the hot solve path.  A
:class:`Tracer` keeps a per-thread stack of open spans, retains the last
few finished root traces for :meth:`Tracer.to_json`, and aggregates
``(count, total, self)`` wall time per span name continuously so
:meth:`Tracer.phase_breakdown` answers "where did the time go?" without
replaying traces.

Disabled tracing goes through :data:`NULL_TRACER`, whose ``span()``
returns one shared, reentrant, do-nothing context manager — no
allocation, no clock read.
"""

from __future__ import annotations

import itertools
import threading
import time
from typing import Callable, Optional

Clock = Callable[[], float]


class Span:
    """One timed region.  Use as a context manager::

        with tracer.span("advance_batch", rows=12) as sp:
            ...
            sp.set(points=n)

    ``set()`` adds attributes after entry; nesting happens automatically —
    a span opened while another is running on the same thread becomes its
    child.  ``id`` is unique within the owning tracer; the event journal
    stamps it on every event emitted while the span is current, so journal
    lines correlate with trace trees (docs/DESIGN.md §9).
    """

    __slots__ = (
        "id", "name", "attrs", "start", "end", "children", "dropped",
        "child_time", "_tracer",
    )

    def __init__(self, tracer: "Tracer", name: str, attrs: dict, id: int = 0):
        self.id = id
        self.name = name
        self.attrs = attrs
        self.start = 0.0
        self.end = 0.0
        self.children: list[Span] = []
        self.dropped = 0  # children beyond the retention cap
        self.child_time = 0.0
        self._tracer = tracer

    @property
    def duration(self) -> float:
        return self.end - self.start

    @property
    def self_time(self) -> float:
        """Wall time not attributed to child spans (includes dropped
        children's time only when they were never opened as spans)."""
        return self.duration - self.child_time

    def set(self, **attrs) -> None:
        self.attrs.update(attrs)

    def __enter__(self) -> "Span":
        self._tracer._push(self)
        self.start = self._tracer.clock()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.end = self._tracer.clock()
        if exc_type is not None:
            self.attrs["error"] = exc_type.__name__
        self._tracer._pop(self)

    def as_dict(self) -> dict:
        d = {
            "id": self.id,
            "name": self.name,
            "start": self.start,
            "duration": self.duration,
        }
        if self.attrs:
            d["attrs"] = dict(self.attrs)
        if self.children:
            d["children"] = [c.as_dict() for c in self.children]
        if self.dropped:
            d["dropped_children"] = self.dropped
        return d


class _TraceLocal(threading.local):
    def __init__(self):
        self.stack: list[Span] = []


class Tracer:
    """Factory and sink for :class:`Span`.

    ``max_children`` bounds retained children per span and
    ``max_traces`` bounds retained root traces, so a long-lived service
    cannot grow an unbounded trace tree; the per-name aggregate is updated
    for *every* span regardless of retention.  Both caps are constructor
    parameters (reachable through :class:`repro.obs.Telemetry` too) —
    exemplar capture of deep solves (``steps=2048`` means thousands of
    lockstep rounds) raises ``max_children`` above the service default.
    """

    def __init__(
        self,
        clock: Clock = time.perf_counter,
        max_children: int = 256,
        max_traces: int = 16,
    ):
        self.clock = clock
        self.max_children = max_children
        self.max_traces = max_traces
        self._local = _TraceLocal()
        self._lock = threading.Lock()
        self._roots: list[Span] = []
        self._ids = itertools.count(1)
        # name -> [count, total_s, self_s]
        self._agg: dict[str, list] = {}

    def span(self, name: str, **attrs) -> Span:
        return Span(self, name, attrs, id=next(self._ids))

    # ------------------------------------------------------------------ #
    def _push(self, span: Span) -> None:
        self._local.stack.append(span)

    def _pop(self, span: Span) -> None:
        stack = self._local.stack
        # tolerate exotic exits (generators finalised out of order): pop
        # back to this span instead of asserting strict nesting
        while stack and stack[-1] is not span:
            stack.pop()
        if stack:
            stack.pop()
        parent = stack[-1] if stack else None
        with self._lock:
            a = self._agg.get(span.name)
            if a is None:
                a = self._agg[span.name] = [0, 0.0, 0.0]
            a[0] += 1
            a[1] += span.duration
            a[2] += span.self_time
            if parent is not None:
                parent.child_time += span.duration
                if len(parent.children) < self.max_children:
                    parent.children.append(span)
                else:
                    parent.dropped += 1
            else:
                self._roots.append(span)
                if len(self._roots) > self.max_traces:
                    del self._roots[0]

    # ------------------------------------------------------------------ #
    def current(self) -> Optional[Span]:
        stack = self._local.stack
        return stack[-1] if stack else None

    def last_trace(self) -> Optional[dict]:
        with self._lock:
            return self._roots[-1].as_dict() if self._roots else None

    def to_json(self) -> dict:
        """All retained root traces plus the per-name breakdown."""
        with self._lock:
            return {
                "traces": [r.as_dict() for r in self._roots],
                "breakdown": self._breakdown_locked(),
            }

    def phase_breakdown(self) -> dict:
        """``{name: {count, total_s, self_s}}`` over *all* spans ever
        finished (not just retained traces)."""
        with self._lock:
            return self._breakdown_locked()

    def _breakdown_locked(self) -> dict:
        return {
            name: {"count": a[0], "total_s": a[1], "self_s": a[2]}
            for name, a in sorted(self._agg.items())
        }

    def reset(self) -> None:
        with self._lock:
            self._roots.clear()
            self._agg.clear()


class _NullSpan:
    """Shared reentrant no-op span."""

    __slots__ = ()

    id = None
    name = ""
    attrs: dict = {}
    duration = 0.0

    def set(self, **attrs) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


NULL_SPAN = _NullSpan()


class NullTracer:
    """Do-nothing tracer for disabled telemetry."""

    clock = staticmethod(time.perf_counter)

    def span(self, name: str, **attrs) -> _NullSpan:
        return NULL_SPAN

    def current(self) -> None:
        return None

    def last_trace(self) -> None:
        return None

    def to_json(self) -> dict:
        return {"traces": [], "breakdown": {}}

    def phase_breakdown(self) -> dict:
        return {}

    def reset(self) -> None:
        pass


NULL_TRACER = NullTracer()
