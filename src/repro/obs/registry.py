"""Metrics registry: named counters, gauges and log-bucketed histograms.

One :class:`MetricsRegistry` is the instrument panel for a whole serving
stack (docs/DESIGN.md §9): the engine, risk, service and resilience tiers
all register their instruments here, and two exporters read it —
:meth:`MetricsRegistry.snapshot` (a stable JSON-able dict, the payload of
``QuoteService.stats()["telemetry"]`` and of cross-process shipping) and
:meth:`MetricsRegistry.to_prometheus` (the text exposition format).

Design constraints, in order:

* **Cheap when off.**  :data:`NULL_REGISTRY` hands out one shared
  do-nothing instrument; a component holding it pays a no-op method call
  at most, and components normalise a disabled telemetry handle to plain
  ``None`` so hot paths skip even that (see :class:`repro.obs.Telemetry`).
* **Mergeable.**  Histograms are fixed log₂ buckets, so merging two
  snapshots is element-wise addition — associative and commutative — and
  a :class:`~repro.risk.engine.ScenarioEngine` worker pool can ship child
  snapshots back with its results and fold them into the parent registry
  (:meth:`MetricsRegistry.merge_snapshot`).
* **No second set of books.**  Components that already keep counters
  (``QuoteCache.stats()``, ``AdvanceEngine.cache_info()``,
  :class:`~repro.core.metrics.SolveStats`) *re-register* them as
  collectors (:meth:`MetricsRegistry.register_collector`): the registry
  reads the live counters at export time instead of duplicating the
  counting at call time.

Thread safety: every mutation takes the registry's single lock; the
counters in one snapshot are a consistent cut.
"""

from __future__ import annotations

import math
import threading
import time
from typing import Callable, Dict, Optional, Tuple

Clock = Callable[[], float]

#: Histogram bucket layout: bucket ``i`` (0 <= i < NUM_FINITE) holds values
#: ``v`` with ``2**(LO_EXP+i-1) < v <= 2**(LO_EXP+i)`` (bucket 0 also takes
#: everything smaller); index ``NUM_FINITE`` is the +Inf overflow bucket.
#: The range spans ~1 µs to ~10⁶ s — wide enough for latencies *and* for
#: dimensionless sizes (batch widths, queue depths) without configuration.
LO_EXP = -20
HI_EXP = 20
NUM_FINITE = HI_EXP - LO_EXP + 1  # 41 finite buckets
NUM_BUCKETS = NUM_FINITE + 1  # + overflow

#: Upper bounds of the finite buckets (the Prometheus ``le`` labels).
BUCKET_BOUNDS = tuple(2.0 ** (LO_EXP + i) for i in range(NUM_FINITE))


def bucket_index(v: float) -> int:
    """The fixed-layout bucket for ``v`` (O(1), no search).

    ``frexp`` gives ``v = m * 2**e`` with ``0.5 <= m < 1``, i.e.
    ``2**(e-1) <= v < 2**e`` — so ``e`` maps straight onto the bucket whose
    upper bound is ``2**e``.  Exact powers of two land in the bucket they
    bound (closed upper bound), matching Prometheus ``le`` semantics.
    """
    if v <= 0.0:
        return 0
    m, e = math.frexp(v)
    if m == 0.5:  # exact power of two: closed upper bound of bucket e-1
        e -= 1
    i = e - LO_EXP
    if i < 0:
        return 0
    if i >= NUM_FINITE:
        return NUM_FINITE  # overflow bucket
    return i


def _label_key(labels: Optional[dict]) -> Tuple[Tuple[str, str], ...]:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _label_text(label_key: Tuple[Tuple[str, str], ...]) -> str:
    if not label_key:
        return ""
    return "{" + ",".join(f'{k}="{v}"' for k, v in label_key) + "}"


class Counter:
    """Monotonic event counter."""

    __slots__ = ("name", "label_key", "_lock", "_value")

    kind = "counter"

    def __init__(self, name: str, label_key, lock: threading.Lock):
        self.name = name
        self.label_key = label_key
        self._lock = lock
        self._value = 0

    def inc(self, n: float = 1) -> None:
        with self._lock:
            self._value += n

    @property
    def value(self) -> float:
        return self._value

    def _merge_value(self, value) -> None:
        with self._lock:
            self._value += value

    def _snap(self):
        return self._value


class Gauge:
    """Point-in-time level (queue depth, breaker state, …)."""

    __slots__ = ("name", "label_key", "_lock", "_value")

    kind = "gauge"

    def __init__(self, name: str, label_key, lock: threading.Lock):
        self.name = name
        self.label_key = label_key
        self._lock = lock
        self._value = 0.0

    def set(self, v: float) -> None:
        with self._lock:
            self._value = v

    def inc(self, n: float = 1) -> None:
        with self._lock:
            self._value += n

    def dec(self, n: float = 1) -> None:
        with self._lock:
            self._value -= n

    @property
    def value(self) -> float:
        return self._value

    def _merge_value(self, value) -> None:
        # A gauge is a level, not an event count: the parent's own level
        # wins; a child value only lands when the parent never set one.
        pass

    def _snap(self):
        return self._value


class Histogram:
    """Log₂-bucketed distribution with exact min/max and bucket quantiles.

    Quantiles are estimated from the bucket counts: the reported pXX is the
    geometric midpoint of the bucket containing that rank, clamped to the
    observed ``[min, max]`` — a ≤ √2 relative error, plenty for latency
    panels, and the price of snapshots that merge associatively.
    """

    __slots__ = (
        "name", "label_key", "_lock", "counts", "_sum", "_count",
        "_min", "_max",
    )

    kind = "histogram"

    def __init__(self, name: str, label_key, lock: threading.Lock):
        self.name = name
        self.label_key = label_key
        self._lock = lock
        self.counts = [0] * NUM_BUCKETS
        self._sum = 0.0
        self._count = 0
        self._min = math.inf
        self._max = -math.inf

    def observe(self, v: float) -> None:
        v = float(v)
        i = bucket_index(v)
        with self._lock:
            self.counts[i] += 1
            self._sum += v
            self._count += 1
            if v < self._min:
                self._min = v
            if v > self._max:
                self._max = v

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def min(self) -> float:
        return self._min if self._count else math.nan

    @property
    def max(self) -> float:
        return self._max if self._count else math.nan

    @property
    def mean(self) -> float:
        return self._sum / self._count if self._count else math.nan

    def quantile(self, q: float) -> float:
        """Estimated ``q``-quantile (0 < q <= 1) from the bucket counts."""
        with self._lock:
            total = self._count
            if not total:
                return math.nan
            if q >= 1.0:
                return self._max
            target = q * total
            cum = 0
            for i, c in enumerate(self.counts):
                cum += c
                if cum >= target:
                    if i >= NUM_FINITE:
                        est = self._max
                    else:
                        hi = BUCKET_BOUNDS[i]
                        est = hi / math.sqrt(2.0) if i > 0 else hi
                    return min(max(est, self._min), self._max)
            return self._max  # pragma: no cover — cum always reaches total

    def _merge_value(self, value: dict) -> None:
        with self._lock:
            for i, c in enumerate(value["counts"]):
                self.counts[i] += c
            self._sum += value["sum"]
            self._count += value["count"]
            if value["count"]:
                self._min = min(self._min, value["min"])
                self._max = max(self._max, value["max"])

    def _snap(self) -> dict:
        snap = {
            "counts": list(self.counts),
            "sum": self._sum,
            "count": self._count,
            "min": self._min if self._count else None,
            "max": self._max if self._count else None,
        }
        # derived, ignored by merge (recomputed from counts there)
        if self._count:
            snap["p50"] = self.quantile(0.50)
            snap["p90"] = self.quantile(0.90)
            snap["p99"] = self.quantile(0.99)
        return snap


class _NullInstrument:
    """Shared do-nothing counter/gauge/histogram for disabled telemetry."""

    __slots__ = ()

    def inc(self, n: float = 1) -> None:
        pass

    def dec(self, n: float = 1) -> None:
        pass

    def set(self, v: float) -> None:
        pass

    def observe(self, v: float) -> None:
        pass

    def quantile(self, q: float) -> float:
        return math.nan

    @property
    def value(self) -> float:
        return 0.0

    @property
    def count(self) -> int:
        return 0


NULL_INSTRUMENT = _NullInstrument()

_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricsRegistry:
    """Named instruments plus collector callbacks; two exporters.

    ``counter``/``gauge``/``histogram`` get-or-create an instrument for
    ``(name, labels)`` — calling twice returns the same object, so
    components may resolve instruments lazily without bookkeeping.  A name
    registered as one kind cannot be re-registered as another.
    """

    def __init__(self, clock: Clock = time.perf_counter):
        self.clock = clock
        self._lock = threading.Lock()
        self._metrics: Dict[tuple, object] = {}  # (name, label_key) -> inst
        self._kinds: Dict[str, str] = {}
        self._help: Dict[str, str] = {}
        self._collectors: list[tuple[str, Callable[[], dict]]] = []

    # ------------------------------------------------------------------ #
    # Instrument factories
    # ------------------------------------------------------------------ #
    def _get(self, kind: str, name: str, labels, help):
        key = (name, _label_key(labels))
        with self._lock:
            inst = self._metrics.get(key)
            if inst is None:
                known = self._kinds.get(name)
                if known is not None and known != kind:
                    raise ValueError(
                        f"metric {name!r} already registered as {known}, "
                        f"cannot re-register as {kind}"
                    )
                inst = _KINDS[kind](name, key[1], self._lock)
                self._metrics[key] = inst
                self._kinds[name] = kind
                if help:
                    self._help[name] = help
            elif inst.kind != kind:
                raise ValueError(
                    f"metric {name!r} already registered as {inst.kind}, "
                    f"cannot re-register as {kind}"
                )
        return inst

    def counter(self, name: str, labels: Optional[dict] = None,
                help: Optional[str] = None) -> Counter:
        return self._get("counter", name, labels, help)

    def gauge(self, name: str, labels: Optional[dict] = None,
              help: Optional[str] = None) -> Gauge:
        return self._get("gauge", name, labels, help)

    def histogram(self, name: str, labels: Optional[dict] = None,
                  help: Optional[str] = None) -> Histogram:
        return self._get("histogram", name, labels, help)

    # ------------------------------------------------------------------ #
    # Re-registration of existing counter dialects
    # ------------------------------------------------------------------ #
    def register_collector(
        self, prefix: str, fn: Callable[[], dict]
    ) -> None:
        """Adopt an existing counter dict into the registry.

        ``fn`` is called at export time and must return a flat mapping of
        counter/level names to numbers (non-numeric values are skipped, so
        ``QuoteCache.stats()``-style dicts work as-is); each key is
        exported as ``{prefix}_{key}``.  When several collectors share a
        prefix (e.g. one engine per worker), colliding keys are *summed* —
        the right semantics for the counters these dicts carry.

        The registry holds a strong reference to ``fn``; register only
        long-lived components (per-call objects should fold their deltas
        into plain counters via :meth:`count_dict` instead).
        """
        with self._lock:
            self._collectors.append((prefix, fn))

    def count_dict(self, prefix: str, values: dict) -> None:
        """Fold a one-shot counter-delta dict into plain counters.

        The ephemeral twin of :meth:`register_collector` — per-solve
        ``engine_delta`` dicts and per-grid resilience counters come and
        go with their call, so their deltas accumulate into registry
        counters named ``{prefix}_{key}``.
        """
        for k, v in values.items():
            if type(v) is bool or not isinstance(v, (int, float)):
                continue
            self.counter(f"{prefix}_{k}").inc(v)

    def _collected(self) -> dict:
        with self._lock:
            collectors = list(self._collectors)
        out: dict = {}
        for prefix, fn in collectors:
            for k, v in fn().items():
                if type(v) is bool:
                    v = int(v)
                elif not isinstance(v, (int, float)):
                    continue
                name = f"{prefix}_{k}"
                out[name] = out.get(name, 0) + v
        return out

    # ------------------------------------------------------------------ #
    # Exporters
    # ------------------------------------------------------------------ #
    def snapshot(self) -> dict:
        """Stable JSON-able state: every instrument plus collected values.

        The ``metrics`` list is sorted by ``(name, labels)`` so two
        snapshots of identical state are byte-identical once serialised;
        each entry carries enough (`name`, `labels`, `kind`, `value`) for
        :meth:`merge_snapshot` to replay it into another registry.
        """
        with self._lock:
            items = sorted(self._metrics.items())
        metrics = [
            {
                "name": name,
                "labels": {k: v for k, v in label_key},
                "kind": inst.kind,
                "value": inst._snap(),
            }
            for (name, label_key), inst in items
        ]
        return {"metrics": metrics, "collected": self._collected()}

    def merge_snapshot(self, snap: dict) -> None:
        """Fold another registry's :meth:`snapshot` into this one.

        Counters and histogram buckets add (associative, so worker
        snapshots may be merged in any order); gauges keep the parent's
        level unless the parent never registered them; ``collected``
        values fold into plain counters (the child's collectors are not
        callable here).
        """
        for m in snap.get("metrics", []):
            kind = m["kind"]
            inst = self._get(kind, m["name"], m["labels"] or None, None)
            if kind == "gauge":
                key = (m["name"], _label_key(m["labels"] or None))
                # only adopt a child gauge the parent never touched
                with self._lock:
                    fresh = self._metrics[key]._value == 0.0
                if fresh:
                    inst.set(m["value"])
            else:
                inst._merge_value(m["value"])
        for k, v in (snap.get("collected") or {}).items():
            self.counter(k).inc(v)

    def to_prometheus(self) -> str:
        """Prometheus text exposition (version 0.0.4) of the registry."""
        with self._lock:
            items = sorted(self._metrics.items())
            helps = dict(self._help)
        lines: list[str] = []
        seen_type: set[str] = set()

        def _header(name: str, kind: str) -> None:
            if name not in seen_type:
                seen_type.add(name)
                if name in helps:
                    lines.append(f"# HELP {name} {helps[name]}")
                lines.append(f"# TYPE {name} {kind}")

        for (name, label_key), inst in items:
            _header(name, inst.kind)
            if inst.kind == "histogram":
                cum = 0
                for i, c in enumerate(inst.counts):
                    cum += c
                    le = (
                        f"{BUCKET_BOUNDS[i]:.10g}"
                        if i < NUM_FINITE
                        else "+Inf"
                    )
                    lk = label_key + (("le", le),)
                    lines.append(
                        f"{name}_bucket{_label_text(lk)} {cum}"
                    )
                lines.append(
                    f"{name}_sum{_label_text(label_key)} {inst._sum:.10g}"
                )
                lines.append(
                    f"{name}_count{_label_text(label_key)} {inst._count}"
                )
            else:
                v = inst._snap()
                text = f"{v:.10g}" if isinstance(v, float) else str(v)
                lines.append(f"{name}{_label_text(label_key)} {text}")
        for name, v in sorted(self._collected().items()):
            _header(name, "gauge")
            text = f"{v:.10g}" if isinstance(v, float) else str(v)
            lines.append(f"{name} {text}")
        return "\n".join(lines) + "\n"


class NullRegistry:
    """Do-nothing registry: every factory returns the shared null
    instrument, every exporter returns an empty payload."""

    clock = staticmethod(time.perf_counter)

    def counter(self, name, labels=None, help=None):
        return NULL_INSTRUMENT

    def gauge(self, name, labels=None, help=None):
        return NULL_INSTRUMENT

    def histogram(self, name, labels=None, help=None):
        return NULL_INSTRUMENT

    def register_collector(self, prefix, fn):
        pass

    def count_dict(self, prefix, values):
        pass

    def snapshot(self) -> dict:
        return {"metrics": [], "collected": {}}

    def merge_snapshot(self, snap) -> None:
        pass

    def to_prometheus(self) -> str:
        return ""


NULL_REGISTRY = NullRegistry()
