"""Unified telemetry layer: metrics registry, span tracing, exporters.

One :class:`Telemetry` object carries a :class:`MetricsRegistry` and a
:class:`Tracer` through the whole stack — engine, lockstep driver, risk
dispatch, quote service, breakers.  Construction::

    from repro.obs import Telemetry

    tel = Telemetry()                      # enabled, perf_counter clock
    svc = QuoteService("bs", "fft", telemetry=tel)
    ... serve traffic ...
    print(tel.registry.to_prometheus())
    print(tel.tracer.phase_breakdown())

**The disabled convention.**  Components accept ``telemetry=None`` *or*
a disabled handle and normalise both to plain ``None`` via
:func:`active`; hot loops then guard with ``if tel is not None`` and pay
a single attribute test when telemetry is off — this is what keeps the
disabled-mode overhead inside the ≤2% budget gated by
``benchmarks/bench_obs.py``.  :meth:`Telemetry.disabled` exists for call
sites that want a real object with null instruments (tests, optional
wiring) rather than ``None``.
"""

from __future__ import annotations

import time
from typing import Callable, Optional

from .events import (  # noqa: F401  (re-exported)
    Event,
    EventJournal,
    NULL_JOURNAL,
    NullJournal,
)
from .registry import (  # noqa: F401  (re-exported)
    BUCKET_BOUNDS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_INSTRUMENT,
    NULL_REGISTRY,
    NullRegistry,
    bucket_index,
)
from .spans import (  # noqa: F401  (re-exported)
    NULL_SPAN,
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
)
from .traceexport import (  # noqa: F401  (re-exported)
    chrome_trace,
    merge_chrome_traces,
    validate_chrome_trace,
    write_chrome_trace,
)

Clock = Callable[[], float]


class Telemetry:
    """Registry + tracer + event journal sharing one injectable clock.

    ``max_traces`` / ``max_children`` bound the tracer's retention
    (:class:`~repro.obs.spans.Tracer`); ``journal_size`` bounds the
    flight recorder's ring buffer (:class:`~repro.obs.events.EventJournal`).
    Defaults match the pre-flight-recorder behaviour.
    """

    def __init__(
        self,
        enabled: bool = True,
        clock: Clock = time.perf_counter,
        max_traces: int = 16,
        max_children: int = 256,
        journal_size: int = 1024,
    ):
        self.enabled = enabled
        self.clock = clock
        if enabled:
            self.registry = MetricsRegistry(clock=clock)
            self.tracer = Tracer(
                clock=clock, max_traces=max_traces, max_children=max_children
            )
            self.journal = EventJournal(
                maxlen=journal_size, clock=clock, tracer=self.tracer
            )
        else:
            self.registry = NULL_REGISTRY
            self.tracer = NULL_TRACER
            self.journal = NULL_JOURNAL

    @classmethod
    def disabled(cls) -> "Telemetry":
        return cls(enabled=False)

    # Convenience passthroughs — the facade is what components receive,
    # so the common verbs live here too.
    def counter(self, name, labels=None, help=None):
        return self.registry.counter(name, labels, help)

    def gauge(self, name, labels=None, help=None):
        return self.registry.gauge(name, labels, help)

    def histogram(self, name, labels=None, help=None):
        return self.registry.histogram(name, labels, help)

    def span(self, name, **attrs):
        return self.tracer.span(name, **attrs)

    def emit(self, etype, **fields):
        return self.journal.emit(etype, **fields)

    def snapshot(self) -> dict:
        return self.registry.snapshot()

    def to_prometheus(self) -> str:
        return self.registry.to_prometheus()


def active(telemetry: Optional[Telemetry]) -> Optional[Telemetry]:
    """Normalise a telemetry argument: a disabled handle becomes ``None``
    so hot paths test one reference instead of calling null methods."""
    if telemetry is not None and telemetry.enabled:
        return telemetry
    return None


__all__ = [
    "Telemetry",
    "active",
    "Event",
    "EventJournal",
    "NullJournal",
    "NULL_JOURNAL",
    "chrome_trace",
    "merge_chrome_traces",
    "validate_chrome_trace",
    "write_chrome_trace",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "NULL_INSTRUMENT",
    "Counter",
    "Gauge",
    "Histogram",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "Span",
    "NULL_SPAN",
    "BUCKET_BOUNDS",
    "bucket_index",
]
