"""ScenarioEngine: executed-parallel pricing of scenario grids.

This is the library's real-concurrency layer — where
:mod:`repro.parallel` *models* the paper's 48-core OpenMP runtime
(work–span counts, Brent bounds, greedy-schedule simulation), the
``ScenarioEngine`` actually runs grid cells across a
:mod:`concurrent.futures` worker pool and reports the measured wall-clock
speedup next to the model's prediction, closing the loop between the two.

Execution model
---------------
A grid's cells are split into contiguous chunks (deterministic: chunk
boundaries depend only on the cell count and the chunk size, never on
completion order) and each chunk is priced by one worker through
:func:`repro.core.api.price_many`, so every chunk shares one plan-caching
:class:`~repro.core.fftstencil.AdvanceEngine` and European cells keep the
batched-transform fast path.  Three backends share the same API and produce
identical results:

``process``
    ``ProcessPoolExecutor`` — real multicore, the default.  Each worker
    process owns one long-lived ``AdvanceEngine`` (created by the pool
    initializer), so kernel spectra amortise across every chunk the worker
    prices, exactly as they do in a serial batch.
``thread``
    ``ThreadPoolExecutor`` — one engine per worker *thread* (the engine's
    scratch buffers are not thread-safe).  Useful when the solve releases
    the GIL (large FFTs) or for debugging without process overhead.
``serial``
    Same chunking, same code path, no pool — the reference every parallel
    backend must agree with bit-for-bit, and the fallback on one-core
    hosts.

Result ordering is always the flat grid order regardless of backend or
completion order.
"""

from __future__ import annotations

import os
import sys
import threading
import time
import warnings
from concurrent.futures import (
    FIRST_COMPLETED,
    BrokenExecutor,
    Executor,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    wait,
)
from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.core.api import PricingResult, price_many
from repro.core.fftstencil import (
    DEFAULT_POLICY,
    AdvanceEngine,
    AdvancePolicy,
    engine_delta,
)
from repro.obs import NULL_JOURNAL
from repro.obs import active as _tel_active
from repro.options.contract import OptionSpec
from repro.parallel.workspan import WorkSpan
from repro.resilience.deadline import Deadline, DeadlineExceeded
from repro.resilience.faults import CorruptedResult, FaultPlan, validate_row
from repro.resilience.markers import failure_result, timeout_result
from repro.resilience.retry import RetryPolicy
from repro.risk.grid import ScenarioGrid
from repro.util.validation import ValidationError, check_integer

BACKENDS = ("process", "thread", "serial")

#: One process-wide warning when a parallel backend silently degrades to
#: the serial path because its pool could not be built at all.
_POOL_FALLBACK_WARNED = False


def _warn_pool_fallback(reason: str) -> None:
    global _POOL_FALLBACK_WARNED
    if not _POOL_FALLBACK_WARNED:
        _POOL_FALLBACK_WARNED = True
        warnings.warn(
            "ScenarioEngine could not build its worker pool and fell back "
            f"to serial execution ({reason}); results are identical but no "
            "parallel speedup applies.  Further fallbacks in this process "
            "are recorded in result meta['fallback_reason'] without "
            "warning again.",
            RuntimeWarning,
            stacklevel=3,
        )


def available_workers() -> int:
    """CPUs actually available to this process, not the host's core count.

    ``os.cpu_count()`` reports every logical core on the machine; a pinned
    or containerized process (``taskset``, cgroup cpusets, k8s CPU limits)
    may be allowed far fewer, and sizing a pool to the host count
    oversubscribes the allowance — workers time-slice instead of running
    concurrently.  ``os.sched_getaffinity(0)`` reflects the real allowance
    where the platform provides it (Linux); elsewhere — or if the probe
    fails — fall back to ``os.cpu_count()``.
    """
    getaffinity = getattr(os, "sched_getaffinity", None)
    if getaffinity is not None:
        try:
            mask = getaffinity(0)
        except OSError:  # pragma: no cover — platform-specific failure
            mask = None
        if mask:
            return len(mask)
    return os.cpu_count() or 1


# --------------------------------------------------------------------- #
# Worker-side state
# --------------------------------------------------------------------- #
#: One plan-caching AdvanceEngine per worker (thread-local covers both
#: pool kinds: a process worker's main thread, or each thread of a
#: thread pool), reused across every chunk the worker prices.
_WORKER_STATE = threading.local()


def _worker_init(path_entries: Sequence[str], policy: AdvancePolicy) -> None:
    """Pool initializer: make ``repro`` importable and build the engine.

    ``path_entries`` is the parent's ``sys.path`` — required under the
    ``spawn`` start method when the parent put ``src/`` on the path via
    ``sys.path.insert`` rather than ``PYTHONPATH`` (the benchmark scripts
    do); harmless under ``fork``.
    """
    for p in reversed([p for p in path_entries if p not in sys.path]):
        sys.path.insert(0, p)
    _WORKER_STATE.engine = AdvanceEngine(policy)
    _WORKER_STATE.policy = policy


def _worker_engine(policy: AdvancePolicy) -> AdvanceEngine:
    # Value comparison, not identity: each pickled chunk payload carries its
    # own AdvancePolicy copy, and the whole point is to keep one engine's
    # plan cache alive across every chunk a worker prices.
    engine = getattr(_WORKER_STATE, "engine", None)
    if engine is None or getattr(_WORKER_STATE, "policy", None) != policy:
        engine = AdvanceEngine(policy)
        _WORKER_STATE.engine = engine
        _WORKER_STATE.policy = policy
    return engine


def _rebase_dedup_indices(
    chunk_results: Sequence[PricingResult], lo: int
) -> None:
    """Lift ``price_many``'s chunk-local dedup indices into grid order.

    Each chunk prices through its own ``price_many`` call, whose
    ``meta["deduplicated_of"]`` indexes are relative to the chunk — add the
    chunk offset so consumers can resolve them against the flat grid.
    """
    if lo:
        for r in chunk_results:
            if "deduplicated_of" in r.meta:
                r.meta["deduplicated_of"] += lo


def _merge_engine_deltas(deltas: Sequence[dict]) -> Optional[dict]:
    """Fold per-chunk worker engine deltas into one grid-wide view.

    Counter deltas add; the ``cached_*`` keys are absolute descriptions
    of each worker's engine, so the merged view keeps the max (the
    biggest plan cache any worker grew), mirroring what a single shared
    engine would report.
    """
    if not deltas:
        return None
    merged = dict(deltas[0])
    for d in deltas[1:]:
        for k, v in d.items():
            if k.startswith("cached_"):
                merged[k] = max(merged.get(k, 0), v)
            else:
                merged[k] = merged.get(k, 0) + v
    return merged


def _run_chunk(
    engine: AdvanceEngine,
    specs: Sequence[OptionSpec],
    steps: int,
    kwargs: dict,
    pricers: Optional[Sequence[Optional[str]]] = None,
) -> tuple[list[PricingResult], float]:
    """Price one chunk on ``engine``; returns (results, in-worker seconds).

    ``pricers`` (mixed-backend grids only) names the pricer backend per
    cell: the chunk is split into contiguous runs of equal backend, each
    run batch-priced on its backend, so a uniform grid — ``pricers is
    None`` — keeps the historical single ``price_many`` call byte-for-byte
    and full-chunk dedup.  Mixed chunks dedup within each run; run-local
    ``deduplicated_of`` indexes are rebased to the chunk here.
    """
    t0 = time.perf_counter()
    if pricers is None:
        results = price_many(specs, steps, engine=engine, **kwargs)
    else:
        results = []
        lo = 0
        n = len(specs)
        while lo < n:
            hi = lo + 1
            while hi < n and pricers[hi] == pricers[lo]:
                hi += 1
            run = price_many(
                specs[lo:hi], steps, engine=engine,
                pricer=pricers[lo], **kwargs,
            )
            _rebase_dedup_indices(run, lo)
            results.extend(run)
            lo = hi
    return results, time.perf_counter() - t0


def _worker_track(lo: int, hi: int, t0: float, t1: float) -> dict:
    """In-worker wall interval of one chunk, tagged with the worker's
    identity — the raw material for the Perfetto worker tracks
    (:func:`repro.obs.traceexport.chrome_trace`).  ``perf_counter`` is
    CLOCK_MONOTONIC on Linux, shared across processes, so child intervals
    are directly comparable with the parent's dispatch span."""
    return {
        "pid": os.getpid(),
        "tid": threading.get_ident(),
        "lo": lo,
        "hi": hi,
        "t0": t0,
        "t1": t1,
    }


def _price_chunk(
    payload: tuple[int, list[OptionSpec], int, dict, AdvancePolicy,
                   Optional[list]],
) -> tuple[int, list[PricingResult], float, dict, dict]:
    """Executor task: price one chunk on this worker's persistent engine.

    Ships the chunk's engine-counter *delta* back alongside the results —
    the worker's engine is long-lived, so the parent cannot read its
    cumulative :meth:`~repro.core.fftstencil.AdvanceEngine.cache_info`
    directly; per-chunk deltas add associatively in any completion order,
    which is what lets the parent merge pooled-run engine telemetry
    exactly as the serial path reports its own.  The last element is the
    chunk's :func:`_worker_track` for trace export.
    """
    start, specs, steps, kwargs, policy, pricers = payload
    engine = _worker_engine(policy)
    before = engine.cache_info()
    t0 = time.perf_counter()
    results, seconds = _run_chunk(engine, specs, steps, kwargs, pricers)
    t1 = time.perf_counter()
    delta = engine_delta(before, engine.cache_info())
    return start, results, seconds, delta, _worker_track(
        start, start + len(specs), t0, t1
    )


def _price_cells(
    payload: tuple[int, list[OptionSpec], int, dict, AdvancePolicy, int,
                   Optional[FaultPlan], Optional[list]],
) -> tuple[int, list[PricingResult], float, dict]:
    """Executor task for the *resilient* path: price a chunk cell by cell.

    Unlike :func:`_price_chunk` this prices one cell per ``price_many``
    call so the fault hooks fire per cell, keyed on the **flat grid index
    and attempt number** — the same ``(cell, attempt)`` replays the same
    fault on any backend, which is what makes fault runs deterministic.
    Within-chunk cross-cell dedup is deliberately given up here (each cell
    is its own batch); per-cell solves are bit-identical to batched ones
    (the lockstep guarantee), so answers do not move.

    A crash mid-chunk discards the chunk's partial results; the parent
    re-dispatches and the surviving cells are simply re-priced —
    deterministic solves make the recompute free of answer drift.
    """
    lo, specs, steps, kwargs, policy, attempt, plan, pricers = payload
    engine = _worker_engine(policy)
    t0 = time.perf_counter()
    results: list[PricingResult] = []
    for i, spec in enumerate(specs):
        cell = lo + i
        if plan is not None:
            plan.before(cell, attempt)
        if pricers is None:
            r = price_many([spec], steps, engine=engine, **kwargs)[0]
        else:
            r = price_many(
                [spec], steps, engine=engine, pricer=pricers[i], **kwargs
            )[0]
        if plan is not None:
            r = plan.after(cell, attempt, r)
        results.append(r)
    t1 = time.perf_counter()
    return lo, results, t1 - t0, _worker_track(lo, lo + len(specs), t0, t1)


def _map_chunk(payload: tuple) -> tuple[int, list]:
    """Executor task: run a caller task on this worker's persistent engine."""
    start, items, task, policy = payload
    return start, task(_worker_engine(policy), items)


# --------------------------------------------------------------------- #
# Results
# --------------------------------------------------------------------- #
@dataclass
class ScenarioResult:
    """Priced scenario grid: per-cell results in flat grid order.

    ``workspan`` is the parallel (``beside``) composition of every cell's
    instrumented work/span — the quantity the Brent bound converts into the
    modeled speedup recorded in ``meta`` alongside the *measured* one:

    ``meta["wall_s"]``
        pool wall-clock for the whole grid (chunking + transport included).
    ``meta["cells_wall_s"]``
        sum of in-worker per-chunk solve times — the grid's serial-
        equivalent cost measured on this run's actual solves.
    ``meta["measured_speedup"]``
        ``cells_wall_s / wall_s`` — executed concurrency.  Equal to the
        true wall-clock speedup when every worker owns a core; on an
        oversubscribed host (more workers than CPUs) the per-chunk
        in-worker clocks stretch with time-slicing, so this reports the
        concurrency achieved rather than a throughput gain — compare
        against a separate serial run (as ``bench_scenario_engine.py``
        does) for hardware-limited hosts.
    ``meta["predicted_speedup"]``
        ``brent_time(1) / brent_time(workers)`` of ``workspan`` — what the
        work–span model (paper §1/Table 2) predicts for this worker count
        on ideal hardware.
    """

    grid: ScenarioGrid
    results: list[PricingResult]
    workspan: WorkSpan
    meta: dict = field(default_factory=dict)

    @property
    def prices(self) -> np.ndarray:
        """Cell prices in flat grid order (``reshape(grid.shape)`` to grid)."""
        return np.array([r.price for r in self.results], dtype=np.float64)

    def prices_grid(self) -> np.ndarray:
        """Cell prices reshaped to the grid's axis shape."""
        return self.prices.reshape(self.grid.shape)


# --------------------------------------------------------------------- #
# Engine
# --------------------------------------------------------------------- #
class ScenarioEngine:
    """Prices :class:`~repro.risk.grid.ScenarioGrid` across a worker pool.

    Parameters
    ----------
    workers:
        Worker count for the parallel backends (default:
        :func:`available_workers` — the CPUs this process may actually
        use, which on pinned/containerized hosts is fewer than
        ``os.cpu_count()``).  ``workers=1`` runs serially whatever the
        backend.
    backend:
        ``"process"`` (default) | ``"thread"`` | ``"serial"`` — see the
        module docstring.
    chunk_size:
        Cells per work unit.  Default splits the grid into ~4 chunks per
        worker — small enough to load-balance, large enough to amortise
        task transport and keep the batched European fast path effective.
    model, method, base, lam, policy:
        Default pricing configuration, per :func:`repro.core.api.price_many`;
        each can be overridden per :meth:`price_grid` call.
    retry, fault_plan:
        Default resilience configuration (overridable per call):
        a :class:`~repro.resilience.retry.RetryPolicy` for transient
        worker failures, and a :class:`~repro.resilience.faults.FaultPlan`
        for deterministic fault injection (tests/benchmarks only).
    telemetry:
        Optional :class:`repro.obs.Telemetry`.  Grids record
        ``grid → dispatch → chunk`` spans, cell/grid counters, a per-chunk
        wall-seconds histogram, and the engine-counter deltas each worker
        ships back (folded as ``risk_engine_*``); resilience recoveries
        (retries, pool rebuilds, isolations, timeouts) land as ``risk_*``
        counters.

    The engine itself holds no mutable pricing state — pools are created
    per :meth:`price_grid` call and per-worker ``AdvanceEngine`` instances
    live in the workers — so one ``ScenarioEngine`` may be shared freely.

    Resilient dispatch
    ------------------
    :meth:`price_grid` accepts ``deadline`` / ``retry`` / ``fault_plan``;
    when any is set the grid runs through the *resilient* dispatch loop
    (``submit`` + ``wait`` instead of ``pool.map``) which prices chunks
    cell by cell, re-dispatches transiently-failed chunks with jittered
    backoff, rebuilds a broken process pool once per break (re-pricing
    only the chunks the dead worker held), isolates a poisoned request by
    splitting its chunk into single cells, and — when the deadline
    expires — returns *partial results*: every finished cell keeps its
    bit-exact price, unfinished cells carry an explicit timeout marker
    (:func:`repro.resilience.markers.timeout_result`).  With all three
    unset, dispatch is byte-for-byte the original fast path.
    """

    def __init__(
        self,
        *,
        workers: Optional[int] = None,
        backend: str = "process",
        chunk_size: Optional[int] = None,
        model: str = "binomial",
        method: str = "fft",
        base: Optional[int] = None,
        lam: Optional[float] = None,
        policy: AdvancePolicy = DEFAULT_POLICY,
        retry: Optional[RetryPolicy] = None,
        fault_plan: Optional[FaultPlan] = None,
        telemetry=None,
    ):
        if backend not in BACKENDS:
            raise ValidationError(
                f"unknown backend {backend!r}; choose one of {BACKENDS}"
            )
        self.workers = check_integer(
            "workers",
            workers if workers is not None else available_workers(),
            minimum=1,
        )
        self.backend = backend
        if chunk_size is not None:
            chunk_size = check_integer("chunk_size", chunk_size, minimum=1)
        self.chunk_size = chunk_size
        self.model = model
        self.method = method
        self.base = base
        self.lam = lam
        self.policy = policy
        self.retry = retry
        self.fault_plan = fault_plan
        # Normalised handle (None when disabled); the pool workers never
        # see it — they ship engine-counter deltas back instead, and the
        # parent folds those into the registry here.
        self.telemetry = _tel_active(telemetry)

    # ------------------------------------------------------------------ #
    def _chunks(self, n: int) -> list[tuple[int, int]]:
        """Deterministic contiguous ``[start, stop)`` chunk bounds."""
        size = self.chunk_size
        if size is None:
            size = max(1, -(-n // (self.workers * 4)))
        return [(lo, min(lo + size, n)) for lo in range(0, n, size)]

    def _make_pool(self) -> Executor:
        init_args = (list(sys.path), self.policy)
        if self.backend == "process":
            return ProcessPoolExecutor(
                max_workers=self.workers,
                initializer=_worker_init,
                initargs=init_args,
            )
        return ThreadPoolExecutor(
            max_workers=self.workers,
            initializer=_worker_init,
            initargs=init_args,
        )

    def price_specs(
        self,
        specs: Sequence[OptionSpec],
        steps: int,
        *,
        model: Optional[str] = None,
        method: Optional[str] = None,
        base: Optional[int] = None,
        lam: Optional[float] = None,
        deadline: Optional[Deadline] = None,
        retry: Optional[RetryPolicy] = None,
        fault_plan: Optional[FaultPlan] = None,
        pricer: Optional[str] = None,
    ) -> list[PricingResult]:
        """Price a flat contract list; results in input order.

        Batch-delegation entry point for callers that already hold a plain
        spec sequence — :func:`repro.core.api.price_many` (``workers`` > 1)
        and the :class:`~repro.service.service.QuoteService` coalescer —
        equivalent to pricing ``ScenarioGrid.explicit(specs)`` and keeping
        only the per-cell results.  An empty list prices to an empty list,
        matching every other batch entry point.  ``pricer`` names one
        :class:`~repro.core.backend.PricerBackend` for every contract
        (``None`` keeps the exact lattice path).
        """
        if not specs:
            return []
        return self.price_grid(
            ScenarioGrid.explicit(list(specs)), steps,
            model=model, method=method, base=base, lam=lam,
            deadline=deadline, retry=retry, fault_plan=fault_plan,
            pricer=pricer,
        ).results

    def map_chunks(self, items: Sequence, task) -> list:
        """Generic engine-backed fan-out: ``task(engine, chunk) -> results``.

        ``items`` is chunked exactly like a scenario grid
        (:meth:`_chunks`: deterministic contiguous bounds) and each chunk is
        handed to ``task`` together with the worker's persistent
        plan-caching :class:`~repro.core.fftstencil.AdvanceEngine` — the
        same amortisation pricing chunks enjoy, for workloads that are not
        plain ``price_many`` calls (the market calibrator runs whole
        implied-vol ladders this way,
        :func:`repro.market.calibrate.calibrate_surface`).

        ``task`` must return one result per item, in chunk order, and — for
        the ``process`` backend — be a picklable module-level callable.
        Results concatenate in input order; the serial backend (or
        ``workers=1``, or a single chunk) runs inline on one fresh engine,
        bit-identical to the pooled run.
        """
        if not items:
            return []
        items = list(items)
        chunks = self._chunks(len(items))
        results: list = [None] * len(items)
        serial = (
            self.backend == "serial" or self.workers == 1 or len(chunks) == 1
        )
        if serial:
            engine = AdvanceEngine(self.policy)
            for lo, hi in chunks:
                results[lo:hi] = task(engine, items[lo:hi])
        else:
            with self._make_pool() as pool:
                payloads = [
                    (lo, items[lo:hi], task, self.policy) for lo, hi in chunks
                ]
                for lo, chunk_results in pool.map(_map_chunk, payloads):
                    results[lo : lo + len(chunk_results)] = chunk_results
        return results

    def price_grid(
        self,
        grid: ScenarioGrid | Sequence[OptionSpec],
        steps: int,
        *,
        model: Optional[str] = None,
        method: Optional[str] = None,
        base: Optional[int] = None,
        lam: Optional[float] = None,
        deadline: Optional[Deadline] = None,
        retry: Optional[RetryPolicy] = None,
        fault_plan: Optional[FaultPlan] = None,
        pricer: Optional[str] = None,
    ) -> ScenarioResult:
        """Price every grid cell; results come back in flat grid order.

        ``grid`` may be a :class:`ScenarioGrid` or a plain contract
        sequence (wrapped via :meth:`ScenarioGrid.explicit`).

        ``deadline`` / ``retry`` / ``fault_plan`` select the resilient
        dispatch (class docstring); ``retry`` and ``fault_plan`` default
        to the engine's own.  Without ``retry``, a cell failure propagates
        as before; with it, exhausted/non-transient failures become
        per-cell markers and ``meta["resilience"]`` reports the recovery
        counters.

        ``pricer`` names the :class:`~repro.core.backend.PricerBackend` for
        cells that do not carry their own ``ScenarioCell.backend``; a grid
        may mix exact and approximate cells freely (each result records its
        server as ``meta["backend"]``).  With neither set the dispatch is
        byte-for-byte the pre-registry lattice path.
        """
        if not isinstance(grid, ScenarioGrid):
            grid = ScenarioGrid.explicit(list(grid))
        steps = check_integer("steps", steps, minimum=1)
        kwargs = {
            "model": self.model if model is None else model,
            "method": self.method if method is None else method,
            "base": self.base if base is None else base,
            "lam": self.lam if lam is None else lam,
            "policy": self.policy,
        }
        # Per-cell pricer backends: cell override, else the call's default.
        # A uniform assignment collapses into ``kwargs`` (whole-chunk dedup
        # and one price_many call per chunk, exactly as before); only a
        # genuinely mixed grid pays the contiguous-run split in _run_chunk.
        cell_pricers = [c.backend or pricer for c in grid.cells]
        pricers: Optional[list] = None
        if any(p is not None for p in cell_pricers):
            uniform = cell_pricers[0]
            if all(p == uniform for p in cell_pricers):
                kwargs["pricer"] = uniform
            else:
                pricers = cell_pricers
        if retry is None:
            retry = self.retry
        if fault_plan is None:
            fault_plan = self.fault_plan
        resilient = (
            deadline is not None or retry is not None or fault_plan is not None
        )

        specs = grid.specs
        chunks = self._chunks(len(specs))
        results: list[Optional[PricingResult]] = [None] * len(specs)
        serial = self.backend == "serial" or self.workers == 1 or len(chunks) == 1
        fallback_reason: Optional[str] = None
        if serial and self.backend != "serial":
            # parallel was configured but this run cannot use it — benign,
            # recorded for observability, no warning
            fallback_reason = "workers=1" if self.workers == 1 else "single_chunk"

        pool: Optional[Executor] = None
        if not serial:
            try:
                pool = self._make_pool()
            except (OSError, RuntimeError) as exc:
                # pool construction itself failed (sandboxed host, fd/sem
                # exhaustion, missing multiprocessing primitives): degrade
                # to the bit-identical serial path instead of failing the
                # whole grid, and say so — once loudly, then via meta.
                serial = True
                fallback_reason = (
                    f"pool_unavailable: {type(exc).__name__}: {exc}"
                )
                _warn_pool_fallback(fallback_reason)

        tel = self.telemetry
        h_chunk = (
            tel.histogram(
                "risk_chunk_seconds", help="in-worker wall seconds per chunk"
            )
            if tel is not None
            else None
        )
        grid_span = (
            tel.span(
                "grid",
                cells=len(specs),
                backend="serial" if serial else self.backend,
            )
            if tel is not None
            else None
        )
        if grid_span is not None:
            grid_span.__enter__()
        try:
            if tel is not None and fallback_reason is not None:
                # every degradation to serial — benign (workers=1, one
                # chunk) or not (pool unavailable) — is counted by reason
                # and journalled; only pool_unavailable also warns (once).
                reason_label = fallback_reason.split(":", 1)[0]
                tel.counter(
                    "risk_pool_fallbacks_total",
                    labels={"reason": reason_label},
                    help="parallel grids that degraded to serial dispatch",
                ).inc()
                tel.emit(
                    "pool_fallback",
                    reason=fallback_reason,
                    backend=self.backend,
                    workers=self.workers,
                    cells=len(specs),
                )
            t0 = time.perf_counter()
            cells_wall = 0.0
            worker_tracks: list[dict] = []
            engine_info: Optional[dict] = None
            rmeta: Optional[dict] = None
            dispatch_span = (
                tel.span("dispatch", chunks=len(chunks), resilient=resilient)
                if tel is not None
                else None
            )
            if dispatch_span is not None:
                dispatch_span.__enter__()
            try:
                if serial:
                    if resilient:
                        cells_wall, rmeta, engine_info = (
                            self._solve_serial_resilient(
                                results, specs, steps, kwargs,
                                deadline, retry, fault_plan, pricers,
                            )
                        )
                    else:
                        engine = AdvanceEngine(self.policy)
                        if tel is not None:
                            engine.set_telemetry(tel, register=False)
                        for lo, hi in chunks:
                            chunk_pricers = (
                                None if pricers is None else pricers[lo:hi]
                            )
                            if tel is not None:
                                with tel.span("chunk", lo=lo, hi=hi):
                                    chunk_results, seconds = _run_chunk(
                                        engine, specs[lo:hi], steps, kwargs,
                                        chunk_pricers,
                                    )
                                h_chunk.observe(seconds)
                            else:
                                chunk_results, seconds = _run_chunk(
                                    engine, specs[lo:hi], steps, kwargs,
                                    chunk_pricers,
                                )
                            _rebase_dedup_indices(chunk_results, lo)
                            results[lo:hi] = chunk_results
                            cells_wall += seconds
                        engine_info = engine.cache_info()
                elif resilient:
                    cells_wall, rmeta, worker_tracks = (
                        self._solve_pooled_resilient(
                            pool, results, specs, steps, kwargs, chunks,
                            deadline, retry, fault_plan, pricers,
                        )
                    )
                else:
                    with pool:
                        payloads = [
                            (
                                lo, specs[lo:hi], steps, kwargs, self.policy,
                                None if pricers is None else pricers[lo:hi],
                            )
                            for lo, hi in chunks
                        ]
                        deltas: list[dict] = []
                        for lo, chunk_results, seconds, delta, track in (
                            pool.map(_price_chunk, payloads)
                        ):
                            _rebase_dedup_indices(chunk_results, lo)
                            results[lo : lo + len(chunk_results)] = (
                                chunk_results
                            )
                            cells_wall += seconds
                            deltas.append(delta)
                            worker_tracks.append(track)
                            if h_chunk is not None:
                                h_chunk.observe(seconds)
                        engine_info = _merge_engine_deltas(deltas)
            finally:
                if dispatch_span is not None:
                    dispatch_span.__exit__(None, None, None)
            wall = time.perf_counter() - t0
        finally:
            if grid_span is not None:
                grid_span.__exit__(None, None, None)
        if tel is not None:
            reg = tel.registry
            reg.counter("risk_grids_total", help="grids priced").inc()
            reg.counter("risk_cells_total", help="cells priced").inc(
                len(specs)
            )
            if engine_info is not None:
                reg.count_dict("risk_engine", engine_info)
            if rmeta is not None:
                reg.count_dict(
                    "risk",
                    {
                        "retries": rmeta.get("retries", 0),
                        "pool_rebuilds": rmeta.get("pool_rebuilds", 0),
                        "isolated": rmeta.get("isolated", 0),
                        "corrupt_detected": rmeta.get("corrupt_detected", 0),
                        "timeouts": len(rmeta.get("timeouts", ())),
                        "failed": len(rmeta.get("failed", ())),
                    },
                )

        workspan = WorkSpan.ZERO
        for r in results:
            workspan = workspan.beside(r.workspan)  # type: ignore[union-attr]
        p = 1 if serial else self.workers
        t1 = workspan.brent_time(1)
        # an all-closed-form grid (zero-dividend calls) has zero modeled
        # work — report a neutral 1.0 rather than dividing 0/0
        tp = workspan.brent_time(p)
        meta = {
            "backend": "serial" if serial else self.backend,
            "workers": p,
            "chunk_size": chunks[0][1] - chunks[0][0],
            "n_chunks": len(chunks),
            "n_cells": len(specs),
            "steps": steps,
            "wall_s": wall,
            "cells_wall_s": cells_wall,
            "measured_speedup": cells_wall / wall if wall > 0.0 else 1.0,
            "predicted_speedup": t1 / tp if tp > 0.0 else 1.0,
            "parallelism": workspan.parallelism,
        }
        if fallback_reason is not None:
            meta["fallback_reason"] = fallback_reason
        if tel is not None and worker_tracks:
            # raw material for Perfetto worker tracks (traceexport);
            # only attached when telemetry is on so disabled-mode meta is
            # byte-identical to the pre-flight-recorder layout
            meta["worker_tracks"] = worker_tracks
        if rmeta is not None:
            meta["resilience"] = rmeta
        if engine_info is not None:
            # serial runs share one engine; pooled runs merge the per-chunk
            # deltas the workers ship back — either way callers can verify
            # the grid rode the batched advance path
            meta["engine"] = engine_info
        return ScenarioResult(
            grid=grid,
            results=results,  # type: ignore[arg-type]
            workspan=workspan,
            meta=meta,
        )

    # ------------------------------------------------------------------ #
    # Resilient dispatch
    # ------------------------------------------------------------------ #
    @staticmethod
    def _fresh_rmeta(
        deadline: Optional[Deadline], fault_plan: Optional[FaultPlan]
    ) -> dict:
        rmeta: dict = {
            "retries": 0,
            "pool_rebuilds": 0,
            "isolated": 0,
            "corrupt_detected": 0,
            "timeouts": [],
            "failed": {},
        }
        if deadline is not None:
            rmeta["deadline_budget_s"] = deadline.budget
        if fault_plan is not None and fault_plan.seed is not None:
            rmeta["fault_seed"] = fault_plan.seed
        return rmeta

    def _solve_serial_resilient(
        self,
        results: "list[Optional[PricingResult]]",
        specs: Sequence[OptionSpec],
        steps: int,
        kwargs: dict,
        deadline: Optional[Deadline],
        retry: Optional[RetryPolicy],
        plan: Optional[FaultPlan],
        pricers: "Optional[list]" = None,
    ) -> tuple[float, dict, dict]:
        """Serial resilient loop: one engine, cell-by-cell, cooperative
        deadline preemption via the engine's ``checkpoint`` hook.

        Fills ``results`` in place; returns ``(cells_wall, rmeta,
        engine_info)``.
        """
        engine = AdvanceEngine(self.policy)
        if deadline is not None:
            engine.checkpoint = deadline.checkpoint
        rmeta = self._fresh_rmeta(deadline, plan)
        rng = retry.rng() if retry is not None else None
        mm = (kwargs["model"], kwargs["method"])
        journal = self.telemetry.journal if self.telemetry is not None \
            else NULL_JOURNAL
        cells_wall = 0.0
        deadline_announced = False
        for idx, spec in enumerate(specs):
            if deadline is not None and deadline.expired:
                if not deadline_announced:
                    deadline_announced = True
                    journal.emit(
                        "deadline_expired", budget_s=deadline.budget,
                        first_cell=idx,
                    )
                results[idx] = timeout_result(
                    steps, *mm, detail="budget spent before solve"
                )
                rmeta["timeouts"].append(idx)
                journal.emit(
                    "timeout_marker", cell=idx,
                    detail="budget spent before solve",
                )
                continue
            attempt = 0
            while True:
                t0 = time.perf_counter()
                try:
                    if plan is not None:
                        plan.before(idx, attempt)
                    if pricers is None:
                        r = price_many(
                            [spec], steps, engine=engine, **kwargs
                        )[0]
                    else:
                        r = price_many(
                            [spec], steps, engine=engine,
                            pricer=pricers[idx], **kwargs,
                        )[0]
                    if plan is not None:
                        r = plan.after(idx, attempt, r)
                    validate_row(r)
                except DeadlineExceeded:
                    # checkpoint fired mid-solve: this cell times out, the
                    # pre-loop check marks every later cell without solving
                    cells_wall += time.perf_counter() - t0
                    if not deadline_announced:
                        deadline_announced = True
                        journal.emit(
                            "deadline_expired", budget_s=deadline.budget,
                            first_cell=idx,
                        )
                    results[idx] = timeout_result(
                        steps, *mm, detail="preempted mid-solve"
                    )
                    rmeta["timeouts"].append(idx)
                    journal.emit(
                        "timeout_marker", cell=idx,
                        detail="preempted mid-solve",
                    )
                    break
                except Exception as exc:
                    cells_wall += time.perf_counter() - t0
                    if isinstance(exc, CorruptedResult):
                        rmeta["corrupt_detected"] += 1
                        journal.emit(
                            "corrupt_detected", cell=idx, attempt=attempt,
                        )
                    if (
                        retry is not None
                        and retry.is_transient(exc)
                        and attempt + 1 < retry.max_attempts
                    ):
                        rmeta["retries"] += 1
                        delay = retry.delay(attempt, rng)
                        if deadline is not None:
                            delay = deadline.sleep_budget(delay)
                        journal.emit(
                            "retry", cell=idx, attempt=attempt,
                            delay_s=delay, error=type(exc).__name__,
                        )
                        if delay > 0.0:
                            retry.sleep(delay)
                        attempt += 1
                        continue
                    if retry is None:
                        # deadline/fault-only resilience keeps the original
                        # raise-through failure contract
                        raise
                    results[idx] = failure_result(steps, *mm, exc)
                    rmeta["failed"][idx] = f"{type(exc).__name__}: {exc}"
                    journal.emit(
                        "cell_failed", cell=idx, error=type(exc).__name__,
                    )
                    break
                else:
                    cells_wall += time.perf_counter() - t0
                    results[idx] = r
                    break
        engine.checkpoint = None
        return cells_wall, rmeta, engine.cache_info()

    def _solve_pooled_resilient(
        self,
        pool: Executor,
        results: "list[Optional[PricingResult]]",
        specs: Sequence[OptionSpec],
        steps: int,
        kwargs: dict,
        chunks: "list[tuple[int, int]]",
        deadline: Optional[Deadline],
        retry: Optional[RetryPolicy],
        plan: Optional[FaultPlan],
        pricers: "Optional[list]" = None,
    ) -> tuple[float, dict, list]:
        """Pooled resilient loop: ``submit`` + ``wait(FIRST_COMPLETED)``.

        Fills ``results`` in place; returns ``(cells_wall, rmeta,
        worker_tracks)``.

        Recovery ladder, per completed-with-error chunk:

        1. ``BrokenExecutor`` — the pool died under the chunk.  The first
           future of the current pool *generation* to observe the break
           rebuilds the pool (once); every affected chunk then re-enters
           the ladder as a transient failure, so only the dead worker's
           chunks re-price.
        2. transient + attempts left → jittered backoff (clamped to the
           deadline) and re-dispatch with ``attempt + 1``.
        3. non-transient in a multi-cell chunk → split into single-cell
           dispatches (same attempt): the poisoned request fails alone,
           its chunk siblings are served.
        4. single cell, exhausted or non-transient → failure marker (or
           raise, when no retry policy is in force).

        Rows of successful chunks are validated; corrupted rows re-enter
        the ladder as single-cell transient failures.  When the deadline
        expires with futures outstanding, their unfilled cells become
        timeout markers and the pool is cancelled — finished cells always
        keep their bit-exact prices.
        """
        rmeta = self._fresh_rmeta(deadline, plan)
        rng = retry.rng() if retry is not None else None
        mm = (kwargs["model"], kwargs["method"])
        journal = self.telemetry.journal if self.telemetry is not None \
            else NULL_JOURNAL
        cells_wall = 0.0
        worker_tracks: list[dict] = []
        generation = 0
        pending: dict = {}  # future -> (lo, hi, attempt, generation)

        def dispatch(lo: int, hi: int, attempt: int) -> None:
            payload = (
                lo, list(specs[lo:hi]), steps, kwargs, self.policy,
                attempt, plan,
                None if pricers is None else pricers[lo:hi],
            )
            pending[pool.submit(_price_cells, payload)] = (
                lo, hi, attempt, generation,
            )

        def handle_failure(
            lo: int, hi: int, attempt: int, exc: BaseException
        ) -> None:
            if (
                retry is not None
                and retry.is_transient(exc)
                and attempt + 1 < retry.max_attempts
            ):
                rmeta["retries"] += 1
                delay = retry.delay(attempt, rng)
                if deadline is not None:
                    delay = deadline.sleep_budget(delay)
                journal.emit(
                    "retry", lo=lo, hi=hi, attempt=attempt,
                    delay_s=delay, error=type(exc).__name__,
                )
                if delay > 0.0:
                    retry.sleep(delay)
                dispatch(lo, hi, attempt + 1)
            elif hi - lo > 1:
                # a poisoned request must fail alone, not take its chunk
                # siblings down with it
                rmeta["isolated"] += 1
                journal.emit(
                    "isolate", lo=lo, hi=hi, error=type(exc).__name__,
                )
                for cell in range(lo, hi):
                    dispatch(cell, cell + 1, attempt)
            elif retry is None:
                raise exc
            else:
                results[lo] = failure_result(steps, *mm, exc)
                rmeta["failed"][lo] = f"{type(exc).__name__}: {exc}"
                journal.emit(
                    "cell_failed", cell=lo, error=type(exc).__name__,
                )

        try:
            for lo, hi in chunks:
                dispatch(lo, hi, 0)
            while pending:
                timeout = deadline.remaining() if deadline is not None else None
                done, _ = wait(
                    list(pending), timeout=timeout,
                    return_when=FIRST_COMPLETED,
                )
                if not done:
                    # budget spent with futures outstanding: partial return
                    journal.emit(
                        "deadline_expired", budget_s=deadline.budget,
                        outstanding_chunks=len(pending),
                    )
                    for fut, (lo, hi, _a, _g) in pending.items():
                        fut.cancel()
                        for cell in range(lo, hi):
                            if results[cell] is None:
                                results[cell] = timeout_result(
                                    steps, *mm, detail="chunk unfinished"
                                )
                                rmeta["timeouts"].append(cell)
                                journal.emit(
                                    "timeout_marker", cell=cell,
                                    detail="chunk unfinished",
                                )
                    pending.clear()
                    break
                for fut in done:
                    lo, hi, attempt, fut_generation = pending.pop(fut)
                    try:
                        _lo, chunk_results, seconds, track = fut.result()
                    except BrokenExecutor as exc:
                        if fut_generation == generation:
                            # first observer of this break rebuilds; sibling
                            # futures from the dead generation fall through
                            # to the ladder without rebuilding again
                            generation += 1
                            rmeta["pool_rebuilds"] += 1
                            journal.emit(
                                "pool_rebuild", generation=generation,
                                lo=lo, hi=hi,
                            )
                            pool.shutdown(wait=False, cancel_futures=True)
                            pool = self._make_pool()
                        handle_failure(lo, hi, attempt, exc)
                        continue
                    except Exception as exc:
                        handle_failure(lo, hi, attempt, exc)
                        continue
                    cells_wall += seconds
                    worker_tracks.append(track)
                    for i, r in enumerate(chunk_results):
                        cell = lo + i
                        try:
                            validate_row(r)
                        except CorruptedResult as exc:
                            rmeta["corrupt_detected"] += 1
                            journal.emit(
                                "corrupt_detected", cell=cell,
                                attempt=attempt,
                            )
                            handle_failure(cell, cell + 1, attempt, exc)
                        else:
                            results[cell] = r
        finally:
            pool.shutdown(wait=False, cancel_futures=True)
        rmeta["timeouts"].sort()
        return cells_wall, rmeta, worker_tracks
