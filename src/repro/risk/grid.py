"""Scenario grids: structured bump sets over option contracts.

A *scenario grid* is the unit of work a risk system reprices: a set of
contracts crossed with market-data shocks — spot ladders, vol surfaces,
rate shifts, expiry roll-downs — around the current market state.  The
early-exercise surface moves under every one of those shocks (cf. the
exercise-surface approximation literature in PAPERS.md), so each cell is a
full American solve; the grid abstraction exists so
:class:`repro.risk.engine.ScenarioEngine` can fan the solves out across
workers while keeping a deterministic cell order.

Bump conventions (mirroring :mod:`repro.options.greeks`):

* ``spot_bumps`` / ``vol_bumps`` — *relative*: ``S*(1+b)``, ``V*(1+b)``.
* ``rate_bumps`` — *absolute* additive shifts ``R+b``, clamped at 0 (rates
  are validated non-negative); the applied value is recorded in the cell
  label so a clamped cell is still identifiable.
* ``expiry_bumps`` — additive day shifts ``E+b``; shifts that would drive
  the expiry non-positive are rejected at construction time.

Every cell keeps the bump coordinates that produced it (``labels``), so
results can be reshaped into ladders/surfaces downstream.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Callable, Iterator, Mapping, Optional, Sequence, Union

from repro.options.contract import OptionSpec
from repro.util.validation import ValidationError


@dataclass(frozen=True)
class ScenarioCell:
    """One grid cell: a fully-bumped contract plus its grid coordinates.

    ``index`` is the cell's position in the grid's deterministic flat order;
    ``labels`` maps axis name -> the bump that produced this cell (e.g.
    ``{"spec": 0, "spot": -0.05, "vol": 0.0, "rate": 0.0, "expiry": 0.0}``
    for cartesian grids, ``{"spec": i}`` for explicit ones).

    ``backend`` optionally names the :class:`~repro.core.backend.PricerBackend`
    this cell should be solved on (``"lattice"``, ``"spectral"``, …), so one
    grid can mix exact and fast-approximate cells — e.g. exact center,
    spectral stress wings.  ``None`` defers to the engine call's default.
    """

    index: int
    spec: OptionSpec
    labels: Mapping[str, object] = field(default_factory=dict)
    backend: Optional[str] = None


@dataclass(frozen=True)
class ScenarioGrid:
    """An ordered, immutable collection of :class:`ScenarioCell`.

    Build with :meth:`cartesian` (cross product of bump axes over base
    contracts) or :meth:`explicit` (a pre-built list of contracts).  The
    flat cell order is the construction order and is the order every
    engine backend returns results in.
    """

    cells: tuple[ScenarioCell, ...]
    #: (n_specs, n_spot, n_vol, n_rate, n_expiry) for cartesian grids;
    #: (n_cells,) for explicit ones.
    shape: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if not self.cells:
            raise ValidationError("a ScenarioGrid needs at least one cell")
        for pos, cell in enumerate(self.cells):
            if cell.index != pos:
                raise ValidationError(
                    f"cell at position {pos} carries index {cell.index}; "
                    "cell indices must match flat grid order"
                )

    def __len__(self) -> int:
        return len(self.cells)

    def __iter__(self) -> Iterator[ScenarioCell]:
        return iter(self.cells)

    @property
    def specs(self) -> list[OptionSpec]:
        """The bumped contracts in flat grid order."""
        return [c.spec for c in self.cells]

    @property
    def backends(self) -> list[Optional[str]]:
        """Per-cell pricer-backend names in flat grid order (``None`` =
        defer to the engine call's default)."""
        return [c.backend for c in self.cells]

    def with_backends(
        self,
        backends: Union[
            Optional[str],
            Sequence[Optional[str]],
            Callable[[ScenarioCell], Optional[str]],
        ],
    ) -> "ScenarioGrid":
        """A copy of this grid with per-cell pricer backends assigned.

        ``backends`` may be one name for every cell, a per-cell sequence in
        flat grid order, or a callable ``cell -> name`` (e.g. route far
        out-of-the-money stress wings to ``"spectral"`` while the exact
        ``"lattice"`` prices the center).  ``None`` entries defer to the
        engine call's default.
        """
        if callable(backends):
            assigned = [backends(c) for c in self.cells]
        elif backends is None or isinstance(backends, str):
            assigned = [backends] * len(self.cells)
        else:
            assigned = list(backends)
            if len(assigned) != len(self.cells):
                raise ValidationError(
                    f"with_backends got {len(assigned)} names for "
                    f"{len(self.cells)} cells"
                )
        for name in assigned:
            if name is not None and not isinstance(name, str):
                raise ValidationError(
                    "per-cell backends must be registry names (str) or None"
                )
        cells = tuple(
            dataclasses.replace(c, backend=b)
            for c, b in zip(self.cells, assigned)
        )
        return dataclasses.replace(self, cells=cells)

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def explicit(cls, specs: Sequence[OptionSpec]) -> "ScenarioGrid":
        """Grid over an explicit contract list (flat shape, spec-index labels)."""
        cells = tuple(
            ScenarioCell(index=i, spec=s, labels={"spec": i})
            for i, s in enumerate(specs)
        )
        return cls(cells=cells, shape=(len(cells),))

    @classmethod
    def cartesian(
        cls,
        specs: OptionSpec | Sequence[OptionSpec],
        *,
        spot_bumps: Sequence[float] = (0.0,),
        vol_bumps: Sequence[float] = (0.0,),
        rate_bumps: Sequence[float] = (0.0,),
        expiry_bumps: Sequence[float] = (0.0,),
        vols: object = None,
    ) -> "ScenarioGrid":
        """Cross product ``specs x spot x vol x rate x expiry``.

        Axis order (specs outermost, expiry innermost) fixes the flat cell
        order; ``shape`` records the per-axis lengths so results can be
        reshaped with ``np.reshape(prices, grid.shape)``.

        ``vols`` draws each cell's *base* volatility from a calibrated
        :class:`~repro.market.surface.VolSurface` (any object with a
        ``vol(strike, years)`` method) instead of the spec's own
        ``volatility`` field: the surface is queried at the cell's strike
        and *bumped* time-to-expiry, so expiry roll-downs slide along the
        calibrated term structure, and ``vol_bumps`` then apply as relative
        shocks on top of the surface value (``surface.vol(K, T)·(1+b)``; an
        unbumped axis reproduces ``surface.vol(K, T)`` exactly).  The
        surface vol actually applied is recorded in the cell label under
        ``"surface_vol"``.
        """
        if isinstance(specs, OptionSpec):
            specs = [specs]
        if not specs:
            raise ValidationError("cartesian grid needs at least one base spec")
        for name, axis in (
            ("spot_bumps", spot_bumps),
            ("vol_bumps", vol_bumps),
            ("rate_bumps", rate_bumps),
            ("expiry_bumps", expiry_bumps),
        ):
            if len(axis) == 0:
                raise ValidationError(
                    f"{name} must contain at least one bump (use (0.0,) "
                    "for an unbumped axis)"
                )
        for b in spot_bumps:
            if b <= -1.0:
                raise ValidationError(f"spot bump {b} drives the spot <= 0")
        for b in vol_bumps:
            if b <= -1.0:
                raise ValidationError(f"vol bump {b} drives the volatility <= 0")
        if vols is not None and not callable(getattr(vols, "vol", None)):
            raise ValidationError(
                "vols must expose a vol(strike, years) method "
                "(e.g. repro.market.surface.VolSurface)"
            )

        cells: list[ScenarioCell] = []
        for s_i, base in enumerate(specs):
            for db in expiry_bumps:
                if base.expiry_days + db <= 0.0:
                    raise ValidationError(
                        f"expiry bump {db} drives expiry_days "
                        f"{base.expiry_days} non-positive"
                    )
            for bs in spot_bumps:
                for bv in vol_bumps:
                    for br in rate_bumps:
                        for db in expiry_bumps:
                            rate = max(base.rate + br, 0.0)
                            expiry_days = base.expiry_days + db
                            labels = {
                                "spec": s_i,
                                "spot": bs,
                                "vol": bv,
                                "rate": rate - base.rate,
                                "expiry": db,
                            }
                            base_vol = base.volatility
                            if vols is not None:
                                base_vol = vols.vol(
                                    base.strike, expiry_days / base.day_count
                                )
                                labels["surface_vol"] = base_vol
                            spec = dataclasses.replace(
                                base,
                                spot=base.spot * (1.0 + bs),
                                volatility=base_vol * (1.0 + bv),
                                rate=rate,
                                expiry_days=expiry_days,
                            )
                            cells.append(
                                ScenarioCell(
                                    index=len(cells),
                                    spec=spec,
                                    labels=labels,
                                )
                            )
        shape = (
            len(specs),
            len(spot_bumps),
            len(vol_bumps),
            len(rate_bumps),
            len(expiry_bumps),
        )
        return cls(cells=tuple(cells), shape=shape)
