"""Scenario-grid risk workloads on a real worker pool.

The ROADMAP's "as many scenarios as you can imagine" subsystem:
:class:`ScenarioGrid` describes spot/vol/rate/expiry bump grids over one or
more contracts, :class:`ScenarioEngine` prices them across process/thread
worker pools (with a same-API serial fallback) and reports measured
wall-clock speedup next to the work–span model's Brent prediction.
"""

from repro.risk.engine import (
    BACKENDS,
    ScenarioEngine,
    ScenarioResult,
    available_workers,
)
from repro.risk.grid import ScenarioCell, ScenarioGrid

__all__ = [
    "BACKENDS",
    "ScenarioCell",
    "ScenarioEngine",
    "ScenarioGrid",
    "ScenarioResult",
    "available_workers",
]
