"""Closed-form cache-miss models (large-T companion to the simulator).

The trace-driven simulator is exact but per-access; these closed forms extend
the Figure 7 curves (and feed the Figure 6 RAM-energy term) to step counts
where tracing would be impractical.  Each model counts *line fetches at one
cache level* of capacity ``M`` bytes with ``L``-byte lines, for the standard
working-set arguments:

* streaming sweeps (loop / ql / zb): rows longer than the cache incur one
  miss per line per pass; shorter rows become cache-resident;
* tiled: one window load per tile, ``T²/(B·W)`` tiles of ``W+B`` elements;
* cache-oblivious: the Frigo–Strumpen bound ``Θ(T²/(M·L))`` line fetches
  (in elements: ``T² · e / (L · M/e)``);
* FFT solvers: each size-``m`` transform streams its buffer
  ``O(1 + log(m·e/M))`` times; summing over the decomposition's transforms
  (``Σ m ≈ c · T log T``) gives the ``Θ(T log T / L)``-shaped curve that
  Figure 7(a) shows winning by orders of magnitude.

The small-``T`` regime of every model is validated against the simulator in
``tests/cachesim/test_model_vs_sim.py`` (within a generous constant band —
these are capacity models, not replacement-exact counts).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.util.validation import ValidationError, check_integer

ELEMENT_BYTES = 8


@dataclass(frozen=True)
class CacheLevelSpec:
    """Capacity/line description of the modeled level."""

    capacity_bytes: int
    line_bytes: int = 64

    @property
    def lines(self) -> int:
        return self.capacity_bytes // self.line_bytes

    @property
    def elems_per_line(self) -> int:
        return self.line_bytes // ELEMENT_BYTES


def _streaming_misses(steps: int, level: CacheLevelSpec, streams: int) -> float:
    """Row-sweep model: ``streams`` arrays of length ~row touched per row."""
    e = ELEMENT_BYTES
    epl = level.elems_per_line
    t_resident = level.capacity_bytes // (streams * e)  # rows that fit
    compulsory = streams * (steps + 1) / epl
    if steps <= t_resident:
        return compulsory
    # rows longer than the residency bound stream from the next level
    long_rows = steps - t_resident
    avg_len = (steps + t_resident) / 2.0
    return compulsory + streams * long_rows * avg_len / epl


def misses_loop(steps: int, level: CacheLevelSpec) -> float:
    """Two-array rollback (vanilla loop)."""
    return _streaming_misses(steps, level, streams=2)


def misses_ql(steps: int, level: CacheLevelSpec) -> float:
    """QuantLib-style rollback: values ping-pong + exercise buffer."""
    return _streaming_misses(steps, level, streams=3)


def misses_zb(steps: int, level: CacheLevelSpec) -> float:
    """Zubair-style: in-place values + in-place prices (lowest traffic)."""
    return _streaming_misses(steps, level, streams=2) * 0.75


def misses_tiled(
    steps: int,
    level: CacheLevelSpec,
    *,
    block_rows: int = 256,
    tile_width: int = 256,
) -> float:
    """Cache-aware tiling: one window load per tile when the tile fits."""
    e = ELEMENT_BYTES
    window = (tile_width + block_rows) * e
    if window <= level.capacity_bytes:
        tiles = (steps / block_rows) * (steps / tile_width) / 2.0 + 1.0
        return tiles * window / level.line_bytes + 2.0 * steps / level.elems_per_line
    # tiles don't fit: degrade to streaming over the tile windows
    return _streaming_misses(steps, level, streams=2) * (1.0 + block_rows / tile_width)


def misses_oblivious(steps: int, level: CacheLevelSpec) -> float:
    """Frigo–Strumpen bound: Θ(T² / (M·L)) line fetches + compulsory."""
    e = ELEMENT_BYTES
    cells = steps * steps / 2.0
    capacity_elems = level.capacity_bytes / e
    compulsory = steps / level.elems_per_line
    if steps <= capacity_elems:
        # whole working array resident: compulsory only
        return compulsory + 1.0
    return compulsory + cells / (level.elems_per_line * capacity_elems) * 2.0


def misses_fft_tree(steps: int, level: CacheLevelSpec, *, q: int = 1) -> float:
    """FFT trapezoid decomposition: sum of transform streams + naive strips.

    The decomposition performs transforms of geometrically decreasing sizes;
    with the top trapezoid at ~``q·T/2`` points, level ``k`` contributes
    ``2^k`` transforms of ``~q·T/2^{k+1}`` points — ``Σ m ≈ (q·T/2)·log2(T)``
    streamed points in total, each stream paying ``1 + max(0, log2(m·e/M))``
    passes, plus an O(T·base) naive-strip term.
    """
    e = ELEMENT_BYTES
    epl = level.elems_per_line
    total = 0.0
    m = q * steps / 2.0
    count = 1.0
    while m >= 8.0:
        bytes_ = 16.0 * m  # complex scratch
        passes = 3.0 + max(0.0, math.log2(max(bytes_ / level.capacity_bytes, 1.0)))
        if bytes_ > level.capacity_bytes:
            total += count * passes * m / epl
        else:
            total += count * m / epl * 0.25  # resident: compulsory-ish only
        m /= 2.0
        count *= 2.0
    strips = steps * 8.0 / epl  # naive boundary strips, ~base cells per row
    return total + strips + (q * steps + 1) / epl


def misses_fft_bsm(steps: int, level: CacheLevelSpec) -> float:
    """BSM cone decomposition — same transform-sum shape with width 2T."""
    return misses_fft_tree(steps, level, q=2)


MODELED_IMPLS = {
    "loop": misses_loop,
    "ql": misses_ql,
    "zb": misses_zb,
    "tiled": misses_tiled,
    "oblivious": misses_oblivious,
    "fft-bopm": lambda t, lv: misses_fft_tree(t, lv, q=1),
    "fft-topm": lambda t, lv: misses_fft_tree(t, lv, q=2),
    "fft-bsm": misses_fft_bsm,
}


def analytic_misses(impl: str, steps: int, level: CacheLevelSpec) -> float:
    """Dispatch by implementation name (see :data:`MODELED_IMPLS`)."""
    steps = check_integer("steps", steps, minimum=1)
    try:
        fn = MODELED_IMPLS[impl]
    except KeyError:
        raise ValidationError(
            f"no analytic cache model for {impl!r}; choose from "
            f"{sorted(MODELED_IMPLS)}"
        ) from None
    return float(fn(steps, level))


def dram_bytes(impl: str, steps: int, l2_capacity: int = 1024 * 1024) -> float:
    """Modeled DRAM traffic (bytes) — the RAM-energy driver of Figure 10."""
    level = CacheLevelSpec(capacity_bytes=l2_capacity)
    return analytic_misses(impl, steps, level) * level.line_bytes
