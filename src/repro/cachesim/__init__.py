"""Cache-hierarchy simulation + analytic models (PAPI substitute, Fig 7)."""

from repro.cachesim.cache import (
    CacheConfig,
    CacheHierarchy,
    HierarchyCounters,
    LRUCache,
    SKYLAKE_L1,
    SKYLAKE_L2,
)
from repro.cachesim.model import (
    CacheLevelSpec,
    MODELED_IMPLS,
    analytic_misses,
    dram_bytes,
)
from repro.cachesim import trace

__all__ = [
    "CacheConfig",
    "CacheHierarchy",
    "HierarchyCounters",
    "LRUCache",
    "SKYLAKE_L1",
    "SKYLAKE_L2",
    "CacheLevelSpec",
    "MODELED_IMPLS",
    "analytic_misses",
    "dram_bytes",
    "trace",
]
