"""Set-associative LRU cache simulator (line granularity).

Stands in for the paper's PAPI hardware counters (Table 3 geometry: Skylake
L1 32 KB/8-way, L2 1 MB/16-way, 64-byte lines).  The simulator is
deliberately simple — single-threaded, inclusive-on-access, no prefetcher —
because the paper's Figure 7 comparisons are driven by *algorithmic locality*
(streaming vs tiled vs recursive vs O(T log T) passes), which an LRU model
captures; hardware prefetching shifts curves without reordering them.

Addresses are element indices scaled by an element size; the unit of
simulation is the cache line.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

import numpy as np

from repro.util.validation import ValidationError, check_integer


@dataclass(frozen=True)
class CacheConfig:
    """Geometry of one cache level."""

    size_bytes: int
    line_bytes: int = 64
    ways: int = 8
    name: str = "cache"

    def __post_init__(self) -> None:
        check_integer("size_bytes", self.size_bytes, minimum=1)
        check_integer("line_bytes", self.line_bytes, minimum=1)
        check_integer("ways", self.ways, minimum=1)
        if self.size_bytes % (self.line_bytes * self.ways) != 0:
            raise ValidationError(
                f"{self.name}: size {self.size_bytes} not divisible by "
                f"line_bytes*ways = {self.line_bytes * self.ways}"
            )

    @property
    def num_sets(self) -> int:
        return self.size_bytes // (self.line_bytes * self.ways)

    @property
    def num_lines(self) -> int:
        return self.size_bytes // self.line_bytes


#: Paper Table 3: Intel Xeon Platinum 8160 (Skylake).
SKYLAKE_L1 = CacheConfig(size_bytes=32 * 1024, line_bytes=64, ways=8, name="L1")
SKYLAKE_L2 = CacheConfig(size_bytes=1024 * 1024, line_bytes=64, ways=16, name="L2")


class LRUCache:
    """One set-associative LRU level; ``access`` takes *line* addresses.

    Each set is a Python list ordered most- to least-recently used; with 8–16
    ways the list operations are O(ways) and the simulator sustains roughly a
    million accesses per second — enough for the trace sizes the benchmarks
    use (T up to ~2^12).
    """

    def __init__(self, config: CacheConfig):
        self.config = config
        self._sets: list[list[int]] = [[] for _ in range(config.num_sets)]
        self.hits = 0
        self.misses = 0

    def reset(self) -> None:
        self._sets = [[] for _ in range(self.config.num_sets)]
        self.hits = 0
        self.misses = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    def access_line(self, line: int) -> bool:
        """Touch one cache line; returns True on hit."""
        s = self._sets[line % self.config.num_sets]
        try:
            idx = s.index(line)
        except ValueError:
            self.misses += 1
            s.insert(0, line)
            if len(s) > self.config.ways:
                s.pop()
            return False
        if idx:
            s.insert(0, s.pop(idx))
        self.hits += 1
        return True

    def access_lines(self, lines: Iterable[int]) -> int:
        """Touch many lines in order; returns the number of misses added."""
        before = self.misses
        sets = self._sets
        num_sets = self.config.num_sets
        ways = self.config.ways
        hits = 0
        misses = 0
        for line in lines:
            s = sets[line % num_sets]
            if line in s:
                idx = s.index(line)
                if idx:
                    s.insert(0, s.pop(idx))
                hits += 1
            else:
                misses += 1
                s.insert(0, line)
                if len(s) > ways:
                    s.pop()
        self.hits += hits
        self.misses += misses
        return self.misses - before


@dataclass
class HierarchyCounters:
    """Counter snapshot of a two-level simulation run."""

    accesses: int = 0
    l1_misses: int = 0
    l2_misses: int = 0

    @property
    def l1_hit_rate(self) -> float:
        return 1.0 - self.l1_misses / self.accesses if self.accesses else 0.0

    @property
    def dram_lines(self) -> int:
        """Lines fetched from memory — the RAM-energy driver (Fig 10)."""
        return self.l2_misses


class CacheHierarchy:
    """L1 → L2 → DRAM, inclusive-on-access (L1 miss also touches L2).

    Matches how PAPI's ``L1 miss = L2 access`` identity is used in the
    paper's §5.3.
    """

    def __init__(
        self,
        l1: CacheConfig = SKYLAKE_L1,
        l2: CacheConfig = SKYLAKE_L2,
        element_bytes: int = 8,
    ):
        if l2.line_bytes != l1.line_bytes:
            raise ValidationError("L1 and L2 must share a line size")
        self.l1 = LRUCache(l1)
        self.l2 = LRUCache(l2)
        self.element_bytes = check_integer("element_bytes", element_bytes, minimum=1)
        self._elems_per_line = l1.line_bytes // element_bytes

    def reset(self) -> None:
        self.l1.reset()
        self.l2.reset()

    def access_elements(self, addresses: np.ndarray) -> None:
        """Simulate element-granularity accesses (converted to lines)."""
        lines = np.asarray(addresses, dtype=np.int64) // self._elems_per_line
        self.access_lines_array(lines)

    def access_lines_array(self, lines: np.ndarray) -> None:
        """Simulate an ordered stream of line addresses through both levels."""
        l1 = self.l1
        l2 = self.l2
        for line in lines.tolist():
            if not l1.access_line(line):
                l2.access_line(line)

    def counters(self) -> HierarchyCounters:
        return HierarchyCounters(
            accesses=self.l1.accesses,
            l1_misses=self.l1.misses,
            l2_misses=self.l2.misses,
        )
