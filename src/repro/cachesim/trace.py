"""Memory-access trace generators for every algorithm family.

Each generator reproduces the *order and addresses* of the grid accesses an
implementation performs — without doing the arithmetic — so the cache
simulator can stand in for PAPI (paper Fig 7).  Traces are element-index
streams; distinct arrays live in distinct address regions (spaced far apart
so they never share a line).

The FFT solvers' access patterns are data-dependent (trapezoid heights follow
the red–green divider), so their generators *replay* the decomposition using
a divider trajectory computed once by the vanilla sweep — the same heights,
segment lengths, FFT sizes and naive strips the real solver produces.

All generators yield ``numpy.int64`` element-address chunks; feed them to
:meth:`repro.cachesim.cache.CacheHierarchy.access_elements`.
"""

from __future__ import annotations

import math
from typing import Iterator, List

import numpy as np
from scipy import fft as sfft

from repro.util.validation import check_integer

#: element spacing between logical arrays (2^26 elements = 512 MB regions)
REGION = 1 << 26


def _region(r: int) -> int:
    return r * REGION


def _row_pass(base: int, start: int, n: int) -> np.ndarray:
    """Sequential element touches ``base+start .. base+start+n-1``."""
    return base + start + np.arange(n, dtype=np.int64)


def _stencil_row(
    src: int, dst: int, start: int, n: int, taps: int
) -> np.ndarray:
    """One vectorised stencil row: ``taps`` reads + 1 write per cell.

    Emits, cell by cell, ``src+j .. src+j+taps-1`` then ``dst+j`` — the
    access order of the inner loop of Figure 1.
    """
    out = np.empty(n * (taps + 1), dtype=np.int64)
    j = np.arange(start, start + n, dtype=np.int64)
    for k in range(taps):
        out[k :: taps + 1] = src + j + k
    out[taps :: taps + 1] = dst + j
    return out


# --------------------------------------------------------------------------- #
# Θ(T²) baselines
# --------------------------------------------------------------------------- #
def trace_loop_bopm(steps: int) -> Iterator[np.ndarray]:
    """Vanilla two-array rollback (``vanilla``/``loop``): ping-pong rows."""
    steps = check_integer("steps", steps, minimum=1)
    a, b = _region(0), _region(1)
    yield _row_pass(a, 0, steps + 1)  # terminal payoff fill
    src, dst = a, b
    for i in range(steps - 1, -1, -1):
        yield _stencil_row(src, dst, 0, i + 1, 2)
        src, dst = dst, src


def trace_ql_bopm(steps: int) -> Iterator[np.ndarray]:
    """QuantLib-style rollback: ping-pong rows + per-level exercise buffer."""
    steps = check_integer("steps", steps, minimum=1)
    a, b, ex = _region(0), _region(1), _region(2)
    yield _row_pass(a, 0, steps + 1)
    src, dst = a, b
    for i in range(steps - 1, -1, -1):
        yield _stencil_row(src, dst, 0, i + 1, 2)
        yield _row_pass(ex, 0, i + 1)  # exercise re-derivation buffer write
        yield _row_pass(dst, 0, i + 1)  # max(continuation, exercise) pass
        src, dst = dst, src


def trace_zb_bopm(steps: int) -> Iterator[np.ndarray]:
    """Zubair-style: single in-place value array + in-place price array."""
    steps = check_integer("steps", steps, minimum=1)
    v, p = _region(0), _region(1)
    yield _row_pass(v, 0, steps + 1)
    yield _row_pass(p, 0, steps + 1)
    for i in range(steps - 1, -1, -1):
        n = i + 1
        out = np.empty(3 * n, dtype=np.int64)
        j = np.arange(n, dtype=np.int64)
        out[0::3] = v + j  # read-modify-write v[j] (one line touch)
        out[1::3] = v + j + 1  # read v[j+1]
        out[2::3] = p + j  # read-modify-write price[j]
        yield out


def trace_tiled_bopm(
    steps: int, *, block_rows: int = 256, tile_width: int = 256
) -> Iterator[np.ndarray]:
    """Cache-aware tiling: per-tile working window reused across levels."""
    steps = check_integer("steps", steps, minimum=1)
    row, new_row, win = _region(0), _region(1), _region(2)
    yield _row_pass(row, 0, steps + 1)
    i_top = steps
    while i_top > 0:
        b = min(block_rows, i_top)
        i_bot = i_top - b
        for a in range(0, i_bot + 1, tile_width):
            hi = min(a + tile_width, i_bot + 1)
            wlen = hi + b - a
            yield _row_pass(row, a, wlen)  # load the tile window
            yield _row_pass(win, 0, wlen)  # into the (reused) local buffer
            for d in range(1, b + 1):
                n = wlen - d
                yield _stencil_row(win, win, 0, n, 2)
            yield _row_pass(new_row, a, hi - a)  # store tile results
        # swap row <-> new_row for the next block (ping-pong regions)
        row, new_row = new_row, row
        i_top = i_bot


def trace_oblivious_bopm(steps: int, *, base_height: int = 8) -> Iterator[np.ndarray]:
    """Frigo–Strumpen recursive trapezoidal order on a single array."""
    steps = check_integer("steps", steps, minimum=1)
    v = _region(0)
    chunks: List[np.ndarray] = [_row_pass(v, 0, steps + 1)]

    def compute_row(x0: int, x1: int) -> None:
        if x1 > x0:
            chunks.append(_stencil_row(v, v, x0, x1 - x0, 2))

    def walk(t0: int, t1: int, x0: int, dx0: int, x1: int, dx1: int) -> None:
        h = t1 - t0
        if h <= 0:
            return
        if h <= base_height:
            xl, xr = x0, x1
            for _t in range(t0, t1):
                compute_row(xl, xr)
                xl += dx0
                xr += dx1
            return
        half = h // 2
        width_bottom = x1 - x0
        width_top = (x1 + dx1 * (h - 1)) - (x0 + dx0 * (h - 1))
        if width_bottom + width_top >= 4 * h:
            xm = (x0 + x1) // 2
            walk(t0, t1, x0, dx0, xm, -1)
            walk(t0, t1, xm, -1, x1, dx1)
        else:
            walk(t0, t0 + half, x0, dx0, x1, dx1)
            walk(t0 + half, t1, x0 + dx0 * half, dx0, x1 + dx1 * half, dx1)

    walk(1, steps + 1, 0, 0, steps, -1)
    yield from chunks


def trace_loop_trinomial(steps: int) -> Iterator[np.ndarray]:
    """``vanilla-topm``: two-array rollback with 3-tap rows of width 2i+1."""
    steps = check_integer("steps", steps, minimum=1)
    a, b = _region(0), _region(1)
    yield _row_pass(a, 0, 2 * steps + 1)
    src, dst = a, b
    for i in range(steps - 1, -1, -1):
        yield _stencil_row(src, dst, 0, 2 * i + 1, 3)
        src, dst = dst, src


def trace_loop_bsm(steps: int) -> Iterator[np.ndarray]:
    """``vanilla-bsm``: shrinking-cone rollback + payoff stream per row."""
    steps = check_integer("steps", steps, minimum=1)
    a, b, pay = _region(0), _region(1), _region(2)
    yield _row_pass(a, 0, 2 * steps + 1)
    src, dst = a, b
    for n in range(1, steps + 1):
        width = 2 * (steps - n) + 1
        yield _stencil_row(src, dst, 0, width, 3)
        yield _row_pass(pay, n, width)  # payoff comparison read
        src, dst = dst, src


# --------------------------------------------------------------------------- #
# FFT solvers (divider-driven replay)
# --------------------------------------------------------------------------- #
def _fft_passes(n: int, l1_bytes: int = 32 * 1024) -> int:
    """Sequential passes modeling one size-``n`` transform's memory traffic.

    An out-of-cache FFT streams the buffer O(log(n/M)) times (blocked
    pocketfft); in-cache transforms still read input and write output once.
    """
    bytes_ = 16 * n  # complex spectrum
    extra = max(0, int(math.log2(max(bytes_ / l1_bytes, 1.0))))
    return 3 + extra


def _emit_fft(chunks: List[np.ndarray], scratch: int, n_in: int, n_kernel: int) -> None:
    """Accesses of one FFT-based valid-mode convolution (input, kernel, out)."""
    m = sfft.next_fast_len(n_in + n_kernel - 1)
    passes = _fft_passes(m)
    for _ in range(passes):
        chunks.append(_row_pass(scratch, 0, m))


def trace_fft_tree(
    steps: int,
    boundary: np.ndarray,
    *,
    q: int = 1,
    base: int = 8,
) -> Iterator[np.ndarray]:
    """Replay the trapezoid decomposition's accesses (fft-bopm / fft-topm).

    ``boundary[i]`` must be the divider (last red column) of row ``i`` as
    computed by the vanilla solver with ``return_boundary=True`` — the replay
    follows exactly the heights and segment sizes the real solver would.
    """
    steps = check_integer("steps", steps, minimum=1)
    vals, scratch = _region(0), _region(1)
    chunks: List[np.ndarray] = [_row_pass(vals, 0, q * steps + 1)]

    def naive_descend(i_top: int, c0: int, ell: int) -> None:
        for step in range(1, ell + 1):
            i_new = i_top - step
            hi_cand = min(int(boundary[i_new + 1]), q * i_new)
            if hi_cand < c0:
                return
            n_cand = hi_cand - c0 + 1
            chunks.append(_stencil_row(vals, vals, c0, n_cand, q + 1))

    def solve_trapezoid(i_top: int, c0: int, j_top: int, ell: int) -> None:
        if ell <= base or j_top - c0 + 1 < q * ell:
            naive_descend(i_top, c0, ell)
            return
        h = ell // 2
        i_mid = i_top - h
        ext_hi = min(j_top + q - 1, q * i_top)
        hi_fft = ext_hi - q * h
        n_in = ext_hi - c0 + 1
        chunks.append(_row_pass(vals, c0, n_in))  # gather segment
        _emit_fft(chunks, scratch, n_in, q * h + 1)
        chunks.append(_row_pass(vals, c0, hi_fft - c0 + 1))  # scatter result
        if hi_fft < q * i_mid:
            c0_sub = j_top - q * h + 1
            solve_trapezoid(i_top, c0_sub, j_top, h)
        j_mid = int(boundary[i_mid])
        solve_trapezoid(i_mid, c0, j_mid, ell - h)

    # full row T-1 (the solver's expiry-transition row; see tree_solver)
    if steps >= 1:
        chunks.append(_stencil_row(vals, vals, 0, q * (steps - 1) + 1, q + 1))
    i = steps - 1
    jb = int(boundary[i]) if i >= 0 else -1
    tail = max(base, math.isqrt(steps))
    while i > 0:
        if jb < 0:
            break
        red_count = jb + 1
        ell = min(red_count // q, i)
        if i <= tail or ell <= base:
            rows = i if i <= tail else min(base, i)
            naive_descend(i, 0, rows)
            i -= rows
        else:
            solve_trapezoid(i, 0, jb, ell)
            i -= ell
        jb = int(boundary[i])
    yield from chunks


def trace_fft_bsm(
    steps: int,
    boundary: np.ndarray,
    *,
    base: int = 10,
    missing: int | None = None,
) -> Iterator[np.ndarray]:
    """Replay the BSM cone solver's accesses (fft-bsm).

    ``boundary[n]`` is the largest green spatial index at time row ``n`` in
    absolute ``k`` units (the vanilla solver's ``return_boundary=True``
    output); entries equal to ``missing`` mean 'divider left the cone'.
    """
    steps = check_integer("steps", steps, minimum=1)
    T = steps
    if missing is None:
        missing = -(T + 1)
    vals, scratch, pay = _region(0), _region(1), _region(2)
    off = T  # map k in [-T, T] to array offset k + T
    chunks: List[np.ndarray] = [_row_pass(vals, 0, 2 * T + 1)]

    def bnd(n: int, lo: int) -> int:
        b = int(boundary[n])
        return lo - 1 if b == missing else b

    def naive(k_lo: int, width: int, h: int, n0: int) -> None:
        for step in range(1, h + 1):
            width -= 2
            chunks.append(_stencil_row(vals, vals, k_lo + step + off, width, 3))
            chunks.append(_row_pass(pay, k_lo + step + off, width))

    def advance(k_lo: int, width: int, f: int, h: int, n0: int) -> None:
        k_hi = k_lo + width - 1
        if f < k_lo:
            chunks.append(_row_pass(vals, k_lo + off, width))
            _emit_fft(chunks, scratch, width, 2 * h + 1)
            chunks.append(_row_pass(vals, k_lo + h + off, width - 2 * h))
            return
        h1 = h // 2
        if h <= base or f + 2 * h1 > k_hi:
            naive(k_lo, width, h, n0)
            return
        sub_lo = max(k_lo, f - 2 * h1)
        sub_hi = f + 2 * h1
        advance(sub_lo, sub_hi - sub_lo + 1, f, h1, n0)
        n_in = (k_hi + off) - (f + off) + 1
        chunks.append(_row_pass(vals, f + off, n_in))
        _emit_fft(chunks, scratch, n_in, 2 * h1 + 1)
        chunks.append(_row_pass(vals, f + h1 + off, n_in - 2 * h1))
        f_mid = bnd(n0 + h1, k_lo + h1)
        advance(k_lo + h1, width - 2 * h1, f_mid, h - h1, n0 + h1)

    remaining = T
    k_lo = -T
    n0 = 0
    f = bnd(0, -T)
    while remaining > 0:
        width = 2 * remaining + 1
        if remaining <= 2 * base:
            naive(k_lo, width, remaining, n0)
            break
        h = remaining // 2
        advance(k_lo, width, f, h, n0)
        k_lo += h
        n0 += h
        remaining -= h
        f = bnd(n0, k_lo)
    yield from chunks
