"""Shared types for the vanilla (Θ(T²)) lattice and FD solvers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.parallel.workspan import WorkSpan


@dataclass
class LatticeResult:
    """Result of a backward-induction sweep.

    Attributes
    ----------
    price:
        Option value at the valuation node (grid root / FD apex).
    steps:
        Number of time steps ``T`` used.
    boundary:
        When requested, ``boundary[i]`` is the red–green divider position for
        time row ``i``: for tree models the largest *red* column ``j_i`` of
        paper Corollary 2.7 (``-1`` when the whole row is green); for the BSM
        grid the largest *green* spatial index ``f_n`` (offset so it is an
        index into the row's cone window; see the solver docstring).
    workspan:
        Instrumented work/span of the sweep (flop-equivalents).
    cells:
        Number of grid cells evaluated.
    meta:
        Solver-specific extras (model constants, grid geometry).
    """

    price: float
    steps: int
    boundary: Optional[np.ndarray] = None
    workspan: WorkSpan = field(default_factory=lambda: WorkSpan.ZERO)
    cells: int = 0
    meta: dict = field(default_factory=dict)


def last_true_index(mask: np.ndarray) -> int:
    """Index of the last ``True`` in a 1-D boolean mask, or ``-1`` if none.

    The red/green masks of the paper are contiguous (Corollary 2.7), so the
    last-True position *is* the divider; this helper does not assume
    contiguity, making it safe for the invariant-checking tests too.
    """
    if mask.size == 0:
        return -1
    rev = mask[::-1]
    idx = int(np.argmax(rev))
    if not rev[idx]:
        return -1
    return mask.size - 1 - idx
