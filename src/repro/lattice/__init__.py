"""Vanilla Θ(T²) lattice / finite-difference solvers (correctness oracles)."""

from repro.lattice.binomial import price_binomial
from repro.lattice.trinomial import price_trinomial
from repro.lattice.blackscholes_fd import price_bsm_fd
from repro.lattice.common import LatticeResult

__all__ = ["price_binomial", "price_trinomial", "price_bsm_fd", "LatticeResult"]
