"""Vanilla binomial-lattice pricing (the paper's Figure 1, vectorised).

This is the reference Θ(T²)-work implementation of BOPM backward induction —
the ``Nested Loop (standard)`` row of the paper's Table 2 and the correctness
oracle for the FFT solver.  Each row update is a NumPy expression (the
parallel-for of Figure 1); rows run sequentially.

Supports calls and puts, American / European / Bermudan exercise, and can
return the full red–green boundary (the divider of Corollary 2.7) alongside
the price.
"""

from __future__ import annotations

from typing import Iterable, Optional

import numpy as np

from repro.lattice.common import LatticeResult, last_true_index
from repro.options.contract import OptionSpec, Style
from repro.options.params import BinomialParams
from repro.options.payoff import signed_exercise, terminal_payoff
from repro.parallel.workspan import WorkSpan, rows_cost
from repro.util.validation import ValidationError, check_integer


def _normalise_exercise_rows(
    style: Style, steps: int, exercise_steps: Optional[Iterable[int]]
) -> Optional[np.ndarray]:
    """Return a boolean mask over rows ``0..steps-1`` where exercise applies.

    ``None`` means 'exercise everywhere' (American).  Expiry (row ``steps``)
    always pays off and is not part of the mask.
    """
    if style is Style.AMERICAN:
        if exercise_steps is not None:
            raise ValidationError("exercise_steps only applies to Bermudan style")
        return None
    mask = np.zeros(steps, dtype=bool)
    if style is Style.EUROPEAN:
        if exercise_steps is not None:
            raise ValidationError("exercise_steps only applies to Bermudan style")
        return mask
    if exercise_steps is None:
        raise ValidationError("Bermudan style requires exercise_steps")
    for step in exercise_steps:
        step = check_integer("exercise step", step, minimum=0)
        if step > steps:
            raise ValidationError(
                f"exercise step {step} exceeds number of steps {steps}"
            )
        if step < steps:  # expiry handled by terminal payoff
            mask[step] = True
    return mask


def price_binomial(
    spec: OptionSpec,
    steps: int,
    *,
    exercise_steps: Optional[Iterable[int]] = None,
    return_boundary: bool = False,
) -> LatticeResult:
    """Price ``spec`` on a ``steps``-step CRR lattice by backward induction.

    Implements the paper's Figure 1 (with the exercise rule generalised to
    the contract's style and right).  Work Θ(T²), span Θ(T log T).

    Parameters
    ----------
    spec:
        Contract; ``spec.style`` selects American/European/Bermudan.
    steps:
        Number of time steps ``T`` (>= 1).
    exercise_steps:
        For Bermudan contracts, the time rows where exercise is allowed.
    return_boundary:
        Also compute ``boundary[i]`` = largest exercise-suboptimal ('red')
        column of each row (paper Corollary 2.7); adds one vectorised
        comparison per row.
    """
    steps = check_integer("steps", steps, minimum=1)
    params = BinomialParams.from_spec(spec, steps)
    ex_mask = _normalise_exercise_rows(spec.style, steps, exercise_steps)

    j = np.arange(steps + 1, dtype=np.float64)
    prices = params.asset_price(steps, j)
    values = terminal_payoff(spec, prices)

    is_call = spec.right.value == "call"
    boundary: Optional[np.ndarray] = None
    if return_boundary:
        boundary = np.full(steps + 1, -1, dtype=np.int64)
        # Divider semantics (shared with the trinomial and FD solvers):
        # boundary[i] = last column of the row's *left-hand* region — the
        # continuation (red) prefix for calls (Corollary 2.7), the exercise
        # prefix for puts (mirror orientation).  At expiry continuation is 0.
        signed_t = signed_exercise(spec, prices)
        mask_t = (0.0 >= signed_t) if is_call else (signed_t >= 0.0)
        boundary[steps] = last_true_index(mask_t)

    s0, s1 = params.s0, params.s1
    ws = WorkSpan.ZERO
    cells = steps + 1
    for i in range(steps - 1, -1, -1):
        cont = s0 * values[: i + 1] + s1 * values[1 : i + 2]
        exercise_here = ex_mask is None or ex_mask[i]
        if exercise_here or return_boundary:
            exer = signed_exercise(spec, params.asset_price(i, np.arange(i + 1)))
        if exercise_here:
            values = np.maximum(cont, exer)
        else:
            values = cont
        if return_boundary:
            mask = (cont >= exer) if is_call else (exer >= cont)
            boundary[i] = last_true_index(mask)
        cells += i + 1
        ws = ws.then(rows_cost(1, i + 1, 2))

    return LatticeResult(
        price=float(values[0]),
        steps=steps,
        boundary=boundary,
        workspan=ws,
        cells=cells,
        meta={"model": "binomial", "params": params},
    )
