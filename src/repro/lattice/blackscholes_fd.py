"""Vanilla explicit finite-difference BSM solver (``vanilla-bsm``, Table 4).

The Θ(T²)-work cone sweep for the American put under the
Black–Scholes–Merton model, discretised per paper §4.2 (Eq. 5).  The grid is
the dependency cone of the apex ``(n = T, k = 0)``: the initial row covers
spatial indices ``k in [-T, T]`` and each time step shrinks the window by one
cell per side, so no artificial far-field boundary condition is needed — the
same trick the paper's triangle decomposition (Fig. 4b) relies on.

Reference oracle for ``fft-bsm``.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.lattice.common import LatticeResult, last_true_index
from repro.options.contract import OptionSpec, Style
from repro.options.params import BSMGridParams
from repro.parallel.workspan import WorkSpan, rows_cost
from repro.util.validation import ValidationError, check_integer


def price_bsm_fd(
    spec: OptionSpec,
    steps: int,
    *,
    lam: float | None = None,
    return_boundary: bool = False,
) -> LatticeResult:
    """Price an American (or European) put by the explicit FD cone sweep.

    Parameters
    ----------
    spec:
        Must be a put with zero dividend yield and positive rate (paper §4).
        ``spec.style`` selects American (free boundary, Eq. 5) or European
        (pure heat-equation sweep, used by convergence tests).
    steps:
        Number of time rows ``T``; the spatial window is ``2T+1`` wide.
    lam:
        Parabolic ratio ``dtau/ds²``; default 0.45 (must keep the explicit
        scheme monotone — validated by :class:`BSMGridParams`).
    return_boundary:
        Also return ``boundary[n]`` = largest *green* (exercise) spatial
        index ``f_n`` at time row ``n``, in absolute ``k`` units
        (``-(T+1)`` encodes 'no green cell inside the cone window').

    Returns
    -------
    LatticeResult with ``price = K * v[T, 0]``.
    """
    steps = check_integer("steps", steps, minimum=1)
    if spec.style is Style.BERMUDAN:
        raise ValidationError("Bermudan exercise is not defined for the FD model")
    params = BSMGridParams.from_spec(spec, steps, lam=lam)
    american = spec.style is Style.AMERICAN

    T = steps
    k = np.arange(-T, T + 1, dtype=np.int64)
    payoff_full = params.payoff(k)  # signed 1 - exp(s_k)
    values = np.maximum(payoff_full, 0.0)

    boundary: Optional[np.ndarray] = None
    if return_boundary:
        boundary = np.full(T + 1, -(T + 1), dtype=np.int64)
        boundary[0] = last_true_index(payoff_full >= 0.0) - T  # k units

    cd, cm, cu = params.coef_down, params.coef_mid, params.coef_up
    ws = WorkSpan.ZERO
    cells = 2 * T + 1
    for n in range(1, T + 1):
        width = 2 * (T - n) + 1
        cont = cd * values[:width] + cm * values[1 : width + 1] + cu * values[2 : width + 2]
        if american or return_boundary:
            k_lo = -(T - n)
            exer = payoff_full[n : n + width]  # payoff at k in [k_lo, -k_lo]
        if american:
            values = np.maximum(cont, exer)
        else:
            values = cont
        if return_boundary:
            idx = last_true_index(exer >= cont)
            boundary[n] = (idx + k_lo) if idx >= 0 else -(T + 1)
        cells += width
        ws = ws.then(rows_cost(1, width, 3))

    return LatticeResult(
        price=float(spec.strike * values[0]),
        steps=steps,
        boundary=boundary,
        workspan=ws,
        cells=cells,
        meta={"model": "bsm-fd", "params": params},
    )
