"""Vanilla trinomial-lattice pricing (``vanilla-topm`` of the paper, Table 4).

The Θ(T²)-work Boyle-lattice backward induction on the ``(T+1) x (2T+1)``
grid of paper §3/Appendix A, vectorised per row.  Reference oracle for
``fft-topm``.
"""

from __future__ import annotations

from typing import Iterable, Optional

import numpy as np

from repro.lattice.binomial import _normalise_exercise_rows
from repro.lattice.common import LatticeResult, last_true_index
from repro.options.contract import OptionSpec
from repro.options.params import TrinomialParams
from repro.options.payoff import signed_exercise, terminal_payoff
from repro.parallel.workspan import WorkSpan, rows_cost
from repro.util.validation import check_integer


def price_trinomial(
    spec: OptionSpec,
    steps: int,
    *,
    exercise_steps: Optional[Iterable[int]] = None,
    return_boundary: bool = False,
) -> LatticeResult:
    """Price ``spec`` on a ``steps``-step Boyle trinomial lattice.

    Row ``i`` has columns ``0..2i`` with asset price ``S * u^(j-i)``; cell
    ``(i, j)`` descends from ``(i+1, j)``, ``(i+1, j+1)``, ``(i+1, j+2)`` with
    weights ``(s0, s1, s2) = m * (p_d, p_o, p_u)``.  Work Θ(T²) (with twice
    BOPM's row width), span Θ(T log T).
    """
    steps = check_integer("steps", steps, minimum=1)
    params = TrinomialParams.from_spec(spec, steps)
    ex_mask = _normalise_exercise_rows(spec.style, steps, exercise_steps)

    j = np.arange(2 * steps + 1, dtype=np.float64)
    prices = params.asset_price(steps, j)
    values = terminal_payoff(spec, prices)

    is_call = spec.right.value == "call"
    boundary: Optional[np.ndarray] = None
    if return_boundary:
        boundary = np.full(steps + 1, -1, dtype=np.int64)
        signed_t = signed_exercise(spec, prices)
        mask_t = (0.0 >= signed_t) if is_call else (signed_t >= 0.0)
        boundary[steps] = last_true_index(mask_t)

    s0, s1, s2 = params.s0, params.s1, params.s2
    ws = WorkSpan.ZERO
    cells = 2 * steps + 1
    for i in range(steps - 1, -1, -1):
        width = 2 * i + 1
        cont = s0 * values[:width] + s1 * values[1 : width + 1] + s2 * values[2 : width + 2]
        exercise_here = ex_mask is None or ex_mask[i]
        if exercise_here or return_boundary:
            exer = signed_exercise(spec, params.asset_price(i, np.arange(width)))
        if exercise_here:
            values = np.maximum(cont, exer)
        else:
            values = cont
        if return_boundary:
            mask = (cont >= exer) if is_call else (exer >= cont)
            boundary[i] = last_true_index(mask)
        cells += width
        ws = ws.then(rows_cost(1, width, 3))

    return LatticeResult(
        price=float(values[0]),
        steps=steps,
        boundary=boundary,
        workspan=ws,
        cells=cells,
        meta={"model": "trinomial", "params": params},
    )
