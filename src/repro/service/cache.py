"""LRU + TTL quote cache over canonical keys.

Stores one canonical-form :class:`~repro.core.api.PricingResult` per key —
price, instrumented work/span, :class:`~repro.core.metrics.SolveStats`
counters and (when the solve recorded it) the exercise divider, so a later
``return_boundary`` query on a warm key is served without re-solving.

Semantics
---------
* **LRU**: ``get`` refreshes recency; once ``maxsize`` entries are live the
  least-recently-used one is evicted on the next ``put``.
* **TTL**: an entry is valid while ``clock() - created_at < ttl`` and
  expires *at* age ``ttl`` exactly (closed lower bound, open upper bound) —
  the boundary case is pinned so tests with an injected clock are
  deterministic.  ``ttl=None`` (default) never expires.  Expiry is lazy: an
  expired entry is dropped (and counted) when next looked up or when
  :meth:`purge_expired` sweeps.
* **Stale grace** (``stale_grace > 0``): an expired entry is *retained* for
  ``stale_grace`` further seconds instead of being dropped.  It no longer
  satisfies :meth:`get` (expired is expired — the miss drives a refresh),
  but :meth:`get_stale` can still serve it explicitly — the
  stale-while-revalidate degradation path the quote service uses under
  breaker-open or deadline pressure (docs/DESIGN.md §8).  Entry lifecycle:
  *fresh* (age < ttl) → *stale* (ttl <= age < ttl + grace) → *gone*.
  Each entry counts at most one expiration, at the fresh→stale
  transition.  With the default ``stale_grace=0`` behaviour is exactly
  the original drop-at-expiry.
* **Clock injection**: ``clock`` is any zero-argument monotonic callable;
  production uses :func:`time.monotonic`, tests pass a fake.  The cache
  never reads the wall clock behind the caller's back.

All operations are lock-protected; the counters in :meth:`stats` form a
consistent snapshot.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Hashable, Optional

from repro.core.api import PricingResult
from repro.util.validation import ValidationError, check_integer

Clock = Callable[[], float]


def _key_repr(key: Hashable) -> str:
    """Compact journal-safe rendering of a canonical key."""
    text = repr(key)
    return text if len(text) <= 80 else text[:77] + "..."


@dataclass
class CacheEntry:
    """One cached canonical result plus its bookkeeping."""

    result: PricingResult
    created_at: float
    hits: int = 0
    #: the fresh→stale transition was already counted in ``expirations``
    expired_counted: bool = False


class QuoteCache:
    """Thread-safe LRU+TTL mapping ``canonical key -> CacheEntry``."""

    def __init__(
        self,
        maxsize: int = 4096,
        ttl: Optional[float] = None,
        clock: Clock = time.monotonic,
        stale_grace: float = 0.0,
    ):
        self.maxsize = check_integer("maxsize", maxsize, minimum=1)
        if ttl is not None and ttl <= 0.0:
            raise ValidationError(f"ttl must be > 0 or None, got {ttl}")
        if not stale_grace >= 0.0:  # NaN-proof inverted comparison
            raise ValidationError(
                f"stale_grace must be >= 0, got {stale_grace}"
            )
        self.ttl = ttl
        self.stale_grace = float(stale_grace)
        self._clock = clock
        self._entries: "OrderedDict[Hashable, CacheEntry]" = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._expirations = 0
        self._stores = 0
        self._stale_served = 0
        self._stale_refreshes = 0
        self._journal = None

    def bind_journal(self, journal) -> None:
        """Attach an :class:`~repro.obs.events.EventJournal`: entry
        lifecycle transitions — LRU evictions and TTL expirations, both
        cold paths — then land in the flight recorder as ``cache_evict``
        / ``cache_expire`` events.  The service binds its telemetry's
        journal here; an unbound cache journals nothing."""
        self._journal = journal

    # ------------------------------------------------------------------ #
    def _expired(self, entry: CacheEntry, now: float) -> bool:
        return self.ttl is not None and now - entry.created_at >= self.ttl

    def _gone(self, entry: CacheEntry, now: float) -> bool:
        """Past the stale grace too — nothing may serve it any more."""
        return (
            self.ttl is not None
            and now - entry.created_at >= self.ttl + self.stale_grace
        )

    def _note_expired(self, key: Hashable, entry: CacheEntry, now: float) -> None:
        """Count the fresh→stale transition once and drop gone entries.

        Call only when ``entry`` is known expired; the lock must be held.
        """
        if not entry.expired_counted:
            entry.expired_counted = True
            self._expirations += 1
            if self._journal is not None:
                self._journal.emit(
                    "cache_expire", key=_key_repr(key),
                    age_s=now - entry.created_at,
                )
        if self._gone(entry, now):
            del self._entries[key]

    def get(self, key: Hashable) -> Optional[PricingResult]:
        """The cached canonical result, or ``None`` (counted as a miss).

        An expired entry never satisfies ``get`` — even inside the stale
        grace, where it is retained for :meth:`get_stale` but the miss
        recorded here is what drives its refresh.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self._misses += 1
                return None
            now = self._clock()
            if self._expired(entry, now):
                self._note_expired(key, entry, now)
                self._misses += 1
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            entry.hits += 1
            return entry.result

    def peek(self, key: Hashable) -> Optional[PricingResult]:
        """Like :meth:`get` but touches neither the hit/miss counters nor
        LRU recency — for probes that may decide to re-solve anyway (e.g.
        the service's boundary-upgrade check), so the stats keep meaning
        "requests served from cache".  Expired entries still transition
        (counted once) and gone entries are still dropped.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                return None
            now = self._clock()
            if self._expired(entry, now):
                self._note_expired(key, entry, now)
                return None
            return entry.result

    def get_stale(self, key: Hashable) -> Optional[PricingResult]:
        """Serve ``key`` even if expired, as long as it is within the stale
        grace — the degradation path for breaker-open / deadline pressure.

        Returns the stored canonical result for *fresh or stale* entries
        (``None`` for absent/gone ones).  Counts ``stale_served`` when the
        entry was actually expired; never touches hit/miss counters or LRU
        recency (serving stale must not keep a dying entry "recently
        used").  Callers are expected to mark the served copy stale and
        schedule a refresh — the cache only vouches that the value was
        exact when stored.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                return None
            now = self._clock()
            if self._gone(entry, now):
                self._note_expired(key, entry, now)
                return None
            if self._expired(entry, now):
                self._note_expired(key, entry, now)
                self._stale_served += 1
            return entry.result

    def put(self, key: Hashable, result: PricingResult) -> None:
        """Store (or refresh) ``key``; evicts LRU entries beyond ``maxsize``.

        Re-putting a live key replaces the entry and restarts its TTL (the
        new solve is at least as fresh — e.g. a boundary-recording upgrade
        of a priced-only entry) — with one exception: a replacement that
        would *drop* a recorded exercise divider keeps the richer payload
        (same key means the same deterministic solve, so the old result is
        still exact; only the TTL restarts).
        """
        with self._lock:
            now = self._clock()
            old = self._entries.pop(key, None)
            if old is not None and self._expired(old, now):
                # a re-solve landing on a stale-but-graced entry is the
                # revalidate half of stale-while-revalidate — count it so
                # the degradation loop is visible end to end
                if not self._gone(old, now):
                    self._stale_refreshes += 1
            elif (
                old is not None
                and result.boundary is None
                and old.result.boundary is not None
            ):
                result = old.result
            self._entries[key] = CacheEntry(result, self._clock())
            self._stores += 1
            while len(self._entries) > self.maxsize:
                evicted_key, _ = self._entries.popitem(last=False)
                self._evictions += 1
                if self._journal is not None:
                    self._journal.emit(
                        "cache_evict", key=_key_repr(evicted_key),
                        size=len(self._entries),
                    )

    def purge_expired(self) -> int:
        """Drop every no-longer-servable entry now; returns how many went.

        Entries inside the stale grace are *kept* (still servable via
        :meth:`get_stale`) but their expiration is counted; with the
        default ``stale_grace=0`` this is exactly "drop every expired
        entry".
        """
        with self._lock:
            now = self._clock()
            dropped = 0
            for k in list(self._entries):
                e = self._entries[k]
                if not self._expired(e, now):
                    continue
                if not e.expired_counted:
                    e.expired_counted = True
                    self._expirations += 1
                    if self._journal is not None:
                        self._journal.emit(
                            "cache_expire", key=_key_repr(k),
                            age_s=now - e.created_at,
                        )
                if self._gone(e, now):
                    del self._entries[k]
                    dropped += 1
            return dropped

    def clear(self) -> None:
        """Drop every entry (counters are kept — they describe the session)."""
        with self._lock:
            self._entries.clear()

    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        """Live-entry test; does not touch recency or the hit/miss counters."""
        with self._lock:
            entry = self._entries.get(key)
            return entry is not None and not self._expired(entry, self._clock())

    def stats(self) -> dict:
        """Consistent counter snapshot (plus size/config) for dashboards."""
        with self._lock:
            lookups = self._hits + self._misses
            return {
                "hits": self._hits,
                "misses": self._misses,
                "evictions": self._evictions,
                "expirations": self._expirations,
                "stores": self._stores,
                "stale_served": self._stale_served,
                # stale-while-revalidate pair: serves of expired-but-graced
                # entries, and the re-solves that landed on one.
                # ``stale_hits`` aliases ``stale_served`` under the
                # dashboard-facing name; both stay for compatibility.
                "stale_hits": self._stale_served,
                "stale_refreshes": self._stale_refreshes,
                "size": len(self._entries),
                "maxsize": self.maxsize,
                "ttl": self.ttl,
                "stale_grace": self.stale_grace,
                "hit_ratio": self._hits / lookups if lookups else 0.0,
            }
