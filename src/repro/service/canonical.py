"""Canonical quote keys: dimensionless request reduction and its inverse.

Real quote traffic is massively redundant — strike strips, both rights on
one underlying, the same contract re-requested every few milliseconds — and
the nonlinear-stencil solve is scale-invariant, so much of that redundancy
collapses onto a *single* dimensionless solve.  This module performs the
collapse and its exact inverse:

1. **Put→call fold** (binomial ``fft``, both styles, plus *American*
   trinomial ``fft``): a put is priced as its McDonald–Schroder dual call
   exactly where that matches what the solvers do anyway
   (:func:`repro.core.symmetry.canonicalize_right` explains why European
   trinomial and non-``fft`` puts are *not* folded).
2. **Strike scaling**: ``price(S, K) = K · price(S/K, 1)``
   (:meth:`repro.options.contract.OptionSpec.strike_scaled`), so every
   contract is priced at unit strike and only its moneyness survives into
   the key.
3. **Quantization** (optional, :class:`CanonicalPolicy`): moneyness, rate,
   volatility, dividend yield and expiry-years snap to a configurable grid,
   merging requests that differ below the caller's tolerance.  At the
   default ``tol=0`` no snapping happens and cache hits are **bit-identical**
   to the cold solve; with ``tol > 0`` a hit returns the price of the
   quantized representative (within ``O(tol)`` of the exact price —
   "tolerance-quantized" hits, docs/DESIGN.md §5).

The key also folds ``day_count`` away: every solver consumes expiry only
through ``spec.years``, so ``E=126, day_count=126`` and ``E=252,
day_count=252`` are the same solve and share a key.

:func:`canonicalize` returns a :class:`CanonicalRequest` — the hashable
``key``, the canonical contract actually priced, and the ``scale`` that
un-does step 2 — and :func:`decanonicalize` applies the inverse transform
to a canonical :class:`~repro.core.api.PricingResult`.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Optional

from repro.core.api import PricingResult, check_model_method
from repro.core.bsm_solver import DEFAULT_BSM_BASE
from repro.core.fftstencil import DEFAULT_POLICY, AdvancePolicy
from repro.core.symmetry import canonicalize_right
from repro.core.tree_solver import DEFAULT_BASE
from repro.options.analytic import no_early_exercise_put
from repro.options.contract import OptionSpec, Right, Style
from repro.options.params import BSMGridParams
from repro.util.validation import (
    ValidationError,
    check_finite,
    check_integer,
    check_nonnegative,
    check_spec_finite,
)

#: Bump when the canonical form changes incompatibly, so stale keys from an
#: older layout can never alias a new solve.
KEY_VERSION = 1


@dataclass(frozen=True)
class CanonicalPolicy:
    """How aggressively requests merge onto one key.

    ``tol`` is the quantization step applied to each dimensionless
    coordinate of the canonical contract (moneyness ``S/K``, rate,
    volatility, dividend yield, expiry in years): values snap to the
    nearest multiple of ``tol``, so requests within ``tol/2`` per
    coordinate share a key *and a solve*.  ``tol=0`` (the default)
    disables snapping — only bit-identical canonical coordinates merge,
    and every cache hit reproduces the cold solve bit-for-bit.
    """

    tol: float = 0.0

    def __post_init__(self) -> None:
        check_nonnegative("tol", self.tol)


#: Exact-match policy: no quantization, bit-identical hits only.
EXACT = CanonicalPolicy(0.0)


@dataclass(frozen=True)
class CanonicalRequest:
    """One quote request reduced to canonical form.

    Attributes
    ----------
    key:       hashable cache key (plain tuple of the canonical coordinates
               plus the solve configuration).
    spec:      the canonical contract actually priced (unit strike; dual
               call for binomial puts; quantized when the policy says so).
    scale:     original price = ``scale ·`` canonical price.
    dualized:  whether the put→call fold was applied.
    quantized: whether any coordinate moved during quantization.
    model, method, steps, base, lam: the solve configuration, echoed so a
               coalescer can bucket compatible requests.
    """

    key: tuple
    spec: OptionSpec
    scale: float
    dualized: bool
    quantized: bool
    model: str
    method: str
    steps: int
    base: Optional[int]
    lam: Optional[float]


def _snap(value: float, tol: float, floor: float) -> float:
    """Quantize ``value`` to the ``tol`` grid, clamped at ``floor``.

    ``floor`` guards the validated domain: strictly positive quantities
    (moneyness, volatility) pass ``tol`` itself so a sub-half-step value
    snaps to the first grid point instead of zero; non-negative ones pass
    ``0.0``.
    """
    return max(round(value / tol) * tol, floor)


def canonicalize(
    spec: OptionSpec,
    steps: int,
    *,
    model: str = "binomial",
    method: str = "fft",
    base: Optional[int] = None,
    lam: Optional[float] = None,
    policy: CanonicalPolicy = EXACT,
    advance_policy: AdvancePolicy = DEFAULT_POLICY,
) -> CanonicalRequest:
    """Reduce ``(spec, solve configuration)`` to a :class:`CanonicalRequest`.

    Raises :class:`ValidationError` for configurations the service cannot
    key (unknown model/method pairs, Bermudan contracts — their exercise
    schedules are not part of :class:`OptionSpec` and would silently alias).
    """
    steps = check_integer("steps", steps, minimum=1)
    check_model_method(model, method)
    # Service-boundary NaN/inf screen: constructor validation does not
    # survive pickling (worker boundaries restore __dict__ directly), and a
    # NaN coordinate both poisons its coalesced bucket's arithmetic and —
    # since NaN != NaN — builds a key that can never hit the cache.  The
    # solve knobs get the same screen: a NaN lam would otherwise bucket and
    # fail only deep inside the FD solve.
    check_spec_finite(spec)
    if base is not None:
        base = check_integer("base", base, minimum=1)
    if lam is not None:
        lam = check_finite("lam", lam)
    if spec.style is Style.BERMUDAN:
        raise ValidationError(
            "the quote service keys American and European contracts; a "
            "Bermudan schedule lives outside OptionSpec and cannot be "
            "canonicalized — price it via price_bermudan directly"
        )
    if spec.style is Style.EUROPEAN and method not in ("fft", "loop"):
        raise ValidationError(
            f"European pricing supports methods 'fft' and 'loop'; {method!r} "
            "is an American-only baseline — rejected at submission so it "
            "cannot poison a coalesced batch"
        )
    if spec.right is Right.PUT and method not in ("fft", "loop"):
        raise ValidationError(
            f"baseline {method!r} implements the paper's American-call "
            "benchmark; puts need method='fft' or 'loop' — rejected at "
            "submission so they cannot poison a coalesced batch"
        )
    if model == "bsm-fd" and spec.right is not Right.PUT:
        raise ValidationError(
            "the bsm-fd model prices American puts (paper §4) — rejected "
            "at submission so the call cannot poison a coalesced batch"
        )

    # Normalize defaulted solve knobs so ``base=None`` and an explicit
    # ``base=DEFAULT_BASE`` (the identical solve) share a key and a
    # coalescer bucket; knobs a solve ignores are erased from the key.
    if method == "fft" and spec.style is Style.AMERICAN:
        if base is None:
            base = DEFAULT_BSM_BASE if model == "bsm-fd" else DEFAULT_BASE
    else:
        # only the American fft recursion has a base-case height —
        # European jumps and the loop/baseline sweeps never consume it
        base = None
    if model == "bsm-fd":
        if lam is None:
            lam = BSMGridParams.DEFAULT_LAMBDA
    else:
        lam = None  # the tree models have no parabolic ratio

    if spec.style is Style.AMERICAN and no_early_exercise_put(spec):
        # A zero-rate American put's dual is a zero-dividend call, which
        # price_american answers from the *closed form* while the direct
        # put path lattice-solves — folding would break the cache's
        # exactness contract, so these puts keep their orientation.
        working, dualized = spec, False
    else:
        working, dualized = canonicalize_right(spec, model, method)
    working, scale = working.strike_scaled()

    quantized = False
    if policy.tol > 0.0:
        tol = policy.tol
        # Normalize to the 252-day convention so the snapped years value
        # round-trips identically whatever day_count the request used.
        years_q = _snap(working.years, tol, tol)
        snapped = dataclasses.replace(
            working,
            spot=_snap(working.spot, tol, tol),
            rate=_snap(working.rate, tol, 0.0),
            volatility=_snap(working.volatility, tol, tol),
            dividend_yield=_snap(working.dividend_yield, tol, 0.0),
            expiry_days=years_q * 252.0,
            day_count=252,
        )
        # "quantized" means a dimensionless coordinate actually moved — the
        # day-count renormalisation alone does not make a hit approximate.
        quantized = (
            snapped.spot != working.spot
            or snapped.rate != working.rate
            or snapped.volatility != working.volatility
            or snapped.dividend_yield != working.dividend_yield
            or snapped.years != working.years
        )
        working = snapped

    key = (
        KEY_VERSION,
        model,
        method,
        steps,
        base,
        lam,
        working.style.value,
        working.right.value,
        working.spot,
        working.rate,
        working.volatility,
        working.dividend_yield,
        working.years,
        # AdvancePolicy steers the fft-vs-direct choice, which differs at
        # the ulp level — services sharing one injected cache must not
        # alias entries across different policies.
        advance_policy,
    )
    return CanonicalRequest(
        key=key,
        spec=working,
        scale=scale,
        dualized=dualized,
        quantized=quantized,
        model=model,
        method=method,
        steps=steps,
        base=base,
        lam=lam,
    )


def canonical_key(
    spec: OptionSpec,
    steps: int,
    *,
    model: str = "binomial",
    method: str = "fft",
    base: Optional[int] = None,
    lam: Optional[float] = None,
    policy: CanonicalPolicy = EXACT,
    advance_policy: AdvancePolicy = DEFAULT_POLICY,
) -> tuple:
    """The hashable cache key alone (``canonicalize(...).key``)."""
    return canonicalize(
        spec, steps, model=model, method=method, base=base, lam=lam,
        policy=policy, advance_policy=advance_policy,
    ).key


def decanonicalize(
    result: PricingResult, request: CanonicalRequest
) -> PricingResult:
    """Invert the canonical transform on a canonical-form result.

    The price is multiplied back by ``request.scale``; work/span, stats and
    the exercise divider keep their canonical-lattice values (grid indices
    are scale-free — for a folded put the divider is the dual call's
    mirrored divider, exactly as :func:`repro.core.api.price_american`
    already reports for fft puts), with the mutable containers shallow-
    copied so served results never alias the cached original.
    ``meta["canonical"]`` records how the request was reduced.
    """
    out = result.scaled(request.scale)
    out.meta["canonical"] = {
        "key": request.key,
        "scale": request.scale,
        "dualized": request.dualized,
        "quantized": request.quantized,
    }
    return out
