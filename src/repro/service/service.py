"""QuoteService: caching, coalescing front door over the pricing engines.

The serving pipeline (docs/DESIGN.md §5) is

    request --canonicalize--> key --cache--> hit?  serve scaled copy
                                   \\-- miss --> coalesce --> solve --> store

* :func:`~repro.service.canonical.canonicalize` folds each request onto a
  dimensionless key, so a strike strip, both rights (binomial), and
  rescaled clones of one contract all share a single solve.
* :class:`~repro.service.cache.QuoteCache` (LRU+TTL) serves warm keys in
  O(1) — a dict lookup plus one multiply — versus a full O(T log²T) solve.
* Cold keys are **coalesced**: :meth:`QuoteService.quote_many` dedupes keys
  within the call, and :meth:`QuoteService.submit` parks requests in a
  bounded queue whose :meth:`QuoteService.flush` groups compatible pending
  requests (same model/method/steps/base/lam bucket) into one
  :func:`repro.core.api.price_many` batch — sharing the service's
  plan-caching :class:`~repro.core.fftstencil.AdvanceEngine` and
  (``workers > 1``) fanning the batch across a
  :class:`~repro.risk.engine.ScenarioEngine` worker pool.  Since the
  lockstep batch solver landed, a coalesced bucket needs no kernel
  overlap to batch: every bucket marches through
  :func:`repro.core.api.solve_batch`'s multi-kernel ``advance_batch``
  transforms, cells with *different* vols/rates included (European jumps
  and American trapezoid recursions alike).

Identical in-flight requests are merged: submitting a key that is already
queued attaches the new ticket to the existing pending solve, and a cold
``quote()`` registers its own solve in-flight so concurrent identical
quotes and submits ride it too.  The queue is
bounded (``max_pending``); when it is full a blocking submit pays the drain
itself (backpressure) and a non-blocking one raises
:class:`ServiceOverloadedError`.

Threading: every public method is safe to call from multiple threads.
Cache hits, enqueues and bookkeeping run concurrently; the *cold solves*
themselves serialize on an internal mutex because the shared plan-caching
engine's scratch buffers are not thread-safe — concurrent throughput on a
cold stream comes from ``workers > 1`` (per-worker engines), not from
racing threads into one engine.
"""

from __future__ import annotations

import dataclasses
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.core.api import (
    PricingResult,
    check_model_method,
    price_american,
    price_many,
)
from repro.core.fftstencil import DEFAULT_POLICY, AdvanceEngine, AdvancePolicy
from repro.obs import active as _tel_active
from repro.options.contract import OptionSpec, Style
from repro.resilience.breaker import (
    CLOSED,
    OPEN,
    BreakerPolicy,
    CircuitBreaker,
    CircuitOpenError,
)
from repro.resilience.deadline import Deadline, DeadlineExceeded, effective_deadline
from repro.resilience.faults import FaultPlan
from repro.resilience.markers import (
    STALE_KEY,
    failure_result,
    is_marker,
    is_timeout,
    timeout_result,
)
from repro.resilience.retry import RetryPolicy
from repro.risk.engine import BACKENDS, ScenarioEngine
from repro.service.cache import Clock, QuoteCache
from repro.service.canonical import (
    EXACT,
    CanonicalPolicy,
    CanonicalRequest,
    canonicalize,
    decanonicalize,
)
from repro.util.validation import ValidationError, check_integer


class ServiceOverloadedError(RuntimeError):
    """Raised by a non-blocking submit when the pending queue is full.

    Structured payload, so a load-shedding caller can act without parsing
    the message: ``rejected_keys`` (the canonical keys this call could not
    enqueue), ``pending`` (queue depth at rejection) and ``max_pending``
    (the configured bound).
    """

    def __init__(
        self,
        message: str,
        *,
        rejected_keys: Sequence = (),
        pending: int = 0,
        max_pending: int = 0,
    ):
        super().__init__(message)
        self.rejected_keys = list(rejected_keys)
        self.pending = pending
        self.max_pending = max_pending


@dataclass
class _Pending:
    """One queued canonical solve, shared by every ticket that merged into it."""

    request: CanonicalRequest
    canonical_result: Optional[PricingResult] = None
    error: Optional[BaseException] = None
    event: threading.Event = field(default_factory=threading.Event)
    #: tightest budget any merged caller carried; the bucket solve honors
    #: the tightest across its members (effective_deadline)
    deadline: Optional[Deadline] = None


class QuoteTicket:
    """Future-like handle returned by :meth:`QuoteService.submit`.

    ``result()`` drains the service queue if the solve has not run yet, so
    a single-threaded caller never deadlocks waiting for a flush that
    nobody issues.  ``meta["cache"]`` on the result records how the quote
    was served: ``"hit"`` (cache), ``"miss"`` (this ticket's solve) or
    ``"merged"`` (rode an identical in-flight request).
    """

    __slots__ = ("_service", "_pending", "_request", "_tag", "_result")

    def __init__(self, service, pending, request, tag, result=None):
        self._service = service
        self._pending = pending
        self._request = request
        self._tag = tag
        self._result = result

    def done(self) -> bool:
        return self._result is not None or self._pending.event.is_set()

    def result(self, timeout: Optional[float] = None) -> PricingResult:
        if self._result is None:
            pending = self._pending
            if not pending.event.is_set():
                try:
                    self._service.flush()
                except Exception:
                    # A *different* bucket's failure must not poison this
                    # ticket; our own bucket's error (if any) is recorded on
                    # the pending entry and re-raised below.  Only propagate
                    # when the flush died before resolving us at all.
                    if not pending.event.is_set():
                        raise
            if not pending.event.wait(timeout):
                raise TimeoutError(
                    "quote still pending after flush — a concurrent flush "
                    f"holds it and did not finish within {timeout} s"
                )
            if pending.error is not None:
                raise pending.error
            self._result = _tagged(
                pending.canonical_result, self._request, self._tag
            )
        return self._result


def _tagged(
    canonical_result: PricingResult, request: CanonicalRequest, tag: str
) -> PricingResult:
    out = decanonicalize(canonical_result, request)
    out.meta["cache"] = tag
    return out


class QuoteService:
    """Caching, coalescing pricing service (see module docstring).

    Parameters
    ----------
    model, method, base, lam:
        Default solve configuration; each may be overridden per call.
    steps_default:
        Optional default step count so callers may omit ``steps``.
    policy:
        :class:`AdvancePolicy` for every solve this service runs.
    canonical:
        :class:`CanonicalPolicy` — quantization tolerance for key merging
        (default :data:`~repro.service.canonical.EXACT`: bit-identical hits
        only).
    cache, cache_size, ttl, clock:
        Either a pre-built :class:`QuoteCache` or the size/TTL/clock to
        build one with.  ``clock`` must be monotonic; tests inject fakes.
    workers, backend:
        ``workers > 1`` fans coalesced batches across a
        :class:`ScenarioEngine` pool of this backend; the default prices
        serially on one shared plan-caching engine.
    max_pending:
        Bound on distinct queued (not yet flushed) solves.
    coalesce:
        ``False`` disables batching — each flush/quote_many miss is solved
        individually (still on the shared engine).  For A/B measurement.
    workers_min_batch:
        Smallest bucket worth a worker-pool fan-out.  A
        :class:`ScenarioEngine` builds its pool per call, so small batches
        would pay pool startup that dwarfs their solve time; buckets below
        this size run on the serial shared engine instead.
    breaker:
        Optional :class:`~repro.resilience.breaker.BreakerPolicy` — one
        :class:`CircuitBreaker` per ``(model, method, steps)`` bucket,
        created lazily on the service's ``clock``.  While a bucket's
        breaker is open, its quotes are served stale (when the cache still
        holds the key within ``stale_grace``) or rejected fast with
        :class:`~repro.resilience.breaker.CircuitOpenError`; healthy
        buckets are unaffected.
    retry, fault_plan:
        Optional :class:`~repro.resilience.retry.RetryPolicy` /
        :class:`~repro.resilience.faults.FaultPlan` forwarded to the
        solve tier.  When either is set, bucket solves route through a
        resilient :class:`ScenarioEngine` dispatch (serial-backend when
        ``workers == 1``) so transient worker failures re-dispatch and
        exhausted failures come back as per-cell markers instead of
        batch-wide exceptions.
    stale_grace:
        Stale-while-revalidate window (seconds) for the internally-built
        cache: expired entries remain servable — explicitly marked
        ``meta["stale"]`` — for this long under breaker-open or deadline
        pressure, with a refresh enqueued in the background.  Ignored when
        ``cache`` is injected (configure the injected cache directly).
    spectral_fallback:
        Opt-in last rung of the degradation ladder.  When a cold quote
        finds its bucket breaker open — or its deadline already spent —
        and no stale entry is servable, serve an approximate spectral
        price instead of raising: explicitly marked
        (``meta["degraded_to"] == "spectral"``), journalled, refresh
        enqueued, and **never** written to the exact cache slot.  Default
        ``False`` keeps the raise-on-exhaustion contract unchanged.
    telemetry:
        Optional :class:`repro.obs.Telemetry`.  When enabled, the service
        records quote latency histograms per serve outcome
        (hit/miss/merged/stale), breaker state transitions, and
        ``quote → canonicalize / cache_lookup / bucket_solve`` spans; the
        cache, service and engine counter dicts re-register into the
        registry as collectors, and :meth:`stats` gains a ``telemetry``
        section.  ``None`` (or a disabled handle) costs the hot path one
        attribute test.
    exemplars:
        With telemetry enabled, retain this many *slowest* quotes per
        serve outcome (hit/miss/merged/stale) as exemplars: the quote's
        span tree plus the slice of flight-recorder events emitted while
        it ran.  ``stats()["exemplars"]`` exposes them and
        :meth:`explain_slowest` answers "why was the slowest quote
        slow?" without reproducing it.  ``0`` disables capture.
    """

    def __init__(
        self,
        *,
        model: str = "binomial",
        method: str = "fft",
        base: Optional[int] = None,
        lam: Optional[float] = None,
        steps_default: Optional[int] = None,
        policy: AdvancePolicy = DEFAULT_POLICY,
        canonical: CanonicalPolicy = EXACT,
        cache: Optional[QuoteCache] = None,
        cache_size: int = 4096,
        ttl: Optional[float] = None,
        clock: Clock = time.monotonic,
        workers: Optional[int] = None,
        backend: str = "process",
        max_pending: int = 1024,
        coalesce: bool = True,
        workers_min_batch: int = 8,
        breaker: Optional[BreakerPolicy] = None,
        retry: Optional[RetryPolicy] = None,
        fault_plan: Optional[FaultPlan] = None,
        stale_grace: float = 0.0,
        spectral_fallback: bool = False,
        telemetry=None,
        exemplars: int = 4,
    ):
        check_model_method(model, method)
        if backend not in BACKENDS:
            raise ValidationError(
                f"unknown backend {backend!r}; choose one of {BACKENDS}"
            )
        self.model = model
        self.method = method
        self.base = base
        self.lam = lam
        if steps_default is not None:
            steps_default = check_integer(
                "steps_default", steps_default, minimum=1
            )
        self.steps_default = steps_default
        self.policy = policy
        self.canonical_policy = canonical
        self.cache = (
            cache
            if cache is not None
            else QuoteCache(
                maxsize=cache_size, ttl=ttl, clock=clock,
                stale_grace=stale_grace,
            )
        )
        self.workers = (
            1 if workers is None else check_integer("workers", workers, minimum=1)
        )
        self.backend = backend
        self.max_pending = check_integer("max_pending", max_pending, minimum=1)
        self.coalesce = coalesce
        self.workers_min_batch = check_integer(
            "workers_min_batch", workers_min_batch, minimum=2
        )
        self.breaker_policy = breaker
        self.retry = retry
        self.fault_plan = fault_plan
        self.spectral_fallback = bool(spectral_fallback)
        #: resolved lazily: the first fast-tier (or degraded) quote pays
        #: the spectral import, not service construction
        self._spectral_backend = None
        self._clock = clock

        self.telemetry = tel = _tel_active(telemetry)
        self._engine = AdvanceEngine(policy)
        # A retry/fault configuration needs the scenario engine's resilient
        # dispatch even on one worker — a serial-backend engine gives the
        # same per-cell recovery ladder without a pool.
        resilient_solves = retry is not None or fault_plan is not None
        self._scenario = (
            ScenarioEngine(
                workers=self.workers,
                backend=backend if self.workers > 1 else "serial",
                model=model, method=method, base=base, lam=lam,
                policy=policy, retry=retry, fault_plan=fault_plan,
                telemetry=tel,
            )
            if self.workers > 1 or resilient_solves
            else None
        )
        self._lock = threading.RLock()
        #: Serializes solves on the shared engine (its scratch buffers are
        #: not thread-safe); never acquired while holding ``_lock``.
        self._solve_mutex = threading.Lock()
        self._queue: list[_Pending] = []
        self._inflight: dict[tuple, _Pending] = {}
        self._breakers: dict[tuple, CircuitBreaker] = {}
        self._quotes = 0
        self._solves = 0
        self._batches = 0
        self._batched_requests = 0
        self._max_batch = 0
        self._merged = 0
        self._boundary_upgrades = 0
        self._overloads = 0
        self._stale_quotes = 0
        self._refreshes = 0
        self._deadline_misses = 0
        self._fast_quotes = 0
        self._tier_upgrades = 0
        self._degraded_spectral = 0
        self._h_quote_lat: dict = {}
        self._h_tier_lat: dict = {}
        self.exemplar_k = check_integer("exemplars", exemplars, minimum=0)
        self._exemplars: dict[str, list] = {}
        self._exemplar_lock = threading.Lock()
        if tel is not None:
            # Re-register the existing counter dialects: the registry reads
            # the live dicts at export time, so nothing counts twice.  The
            # shared engine registers its own cache_info the same way.
            self._engine.set_telemetry(tel)
            tel.registry.register_collector("cache", self.cache.stats)
            tel.registry.register_collector(
                "service", self._service_counters
            )
            # entry evictions/expirations land in the flight recorder
            self.cache.bind_journal(tel.journal)

    def _service_counters(self) -> dict:
        """Flat counter view for the registry collector (numbers only —
        the richer :meth:`stats` nesting stays the human surface)."""
        with self._lock:
            return {
                "quotes": self._quotes,
                "solves": self._solves,
                "batches": self._batches,
                "batched_requests": self._batched_requests,
                "max_batch": self._max_batch,
                "merged_requests": self._merged,
                "boundary_upgrades": self._boundary_upgrades,
                "overloads": self._overloads,
                "queue_depth": len(self._queue),
                "inflight": len(self._inflight),
                "stale_quotes": self._stale_quotes,
                "refreshes": self._refreshes,
                "deadline_misses": self._deadline_misses,
                "fast_quotes": self._fast_quotes,
                "tier_upgrades": self._tier_upgrades,
                "degraded_spectral": self._degraded_spectral,
            }

    def _quote_hist(self, outcome: str):
        """Latency histogram for one serve outcome (hit/miss/merged/stale),
        resolved once per outcome label."""
        h = self._h_quote_lat.get(outcome)
        if h is None:
            h = self.telemetry.histogram(
                "service_quote_seconds",
                labels={"outcome": outcome},
                help="quote() wall seconds by serve outcome",
            )
            self._h_quote_lat[outcome] = h
        return h

    def _tier_hist(self, tier: str):
        """Latency histogram per *served* tier (fast/exact), resolved once
        per label; only tiered serves observe it, so the metric series
        appears exactly when tiering is in use."""
        h = self._h_tier_lat.get(tier)
        if h is None:
            h = self.telemetry.histogram(
                "service_quote_tier_seconds",
                labels={"tier": tier},
                help="tiered quote() wall seconds by served tier",
            )
            self._h_tier_lat[tier] = h
        return h

    # ------------------------------------------------------------------ #
    # Canonicalization / solving
    # ------------------------------------------------------------------ #
    def _canonicalize(
        self, spec: OptionSpec, steps: Optional[int], model, method, base, lam
    ) -> CanonicalRequest:
        if steps is None:
            steps = self.steps_default
        if steps is None:
            raise ValidationError(
                "steps is required (or configure the service's steps_default)"
            )
        return canonicalize(
            spec,
            steps,
            model=self.model if model is None else model,
            method=self.method if method is None else method,
            base=self.base if base is None else base,
            lam=self.lam if lam is None else lam,
            policy=self.canonical_policy,
            advance_policy=self.policy,
        )

    def _solve_one_boundary(self, req: CanonicalRequest) -> PricingResult:
        """Divider-recording solve for ``quote(return_boundary=True)``.

        Only American-style requests reach here — ``wants_boundary``
        excludes European contracts, and every boundary-free path is served
        through the pending machinery — so this is always a
        :func:`price_american` call.
        """
        with self._solve_mutex:
            return price_american(
                req.spec, req.steps, model=req.model, method=req.method,
                base=req.base, lam=req.lam, policy=self.policy,
                engine=self._engine, return_boundary=True,
            )

    def _solve_requests(
        self,
        reqs: Sequence[CanonicalRequest],
        deadline: Optional[Deadline] = None,
    ) -> list[PricingResult]:
        """Solve a bucket of same-configuration canonical requests.

        ``deadline`` is carried into the solve tier: the scenario engine
        waits its chunk futures against it (per-cell timeout markers on
        expiry), and the serial shared engine observes it cooperatively
        through its ``checkpoint`` hook, raising
        :class:`~repro.resilience.deadline.DeadlineExceeded` mid-solve.
        """
        tel = self.telemetry
        if tel is not None:
            with tel.span("bucket_solve", size=len(reqs), steps=reqs[0].steps):
                return self._solve_requests_inner(reqs, deadline)
        return self._solve_requests_inner(reqs, deadline)

    def _solve_requests_inner(
        self,
        reqs: Sequence[CanonicalRequest],
        deadline: Optional[Deadline] = None,
    ) -> list[PricingResult]:
        r0 = reqs[0]
        specs = [r.spec for r in reqs]
        resilient_solves = self.retry is not None or self.fault_plan is not None
        if self._scenario is not None and (
            len(specs) >= self.workers_min_batch or resilient_solves
        ):
            # worker pools build their own per-worker engines (no mutex);
            # the pool is built per call, so only buckets big enough to
            # amortise its startup fan out — or any bucket when a
            # retry/fault configuration wants the resilient per-cell
            # dispatch — leave the serial shared engine
            results = self._scenario.price_specs(
                specs, r0.steps, model=r0.model, method=r0.method,
                base=r0.base, lam=r0.lam, deadline=deadline,
            )
        else:
            with self._solve_mutex:
                if deadline is not None:
                    deadline.check("bucket solve")
                    self._engine.checkpoint = deadline.checkpoint
                try:
                    results = price_many(
                        specs, r0.steps, model=r0.model, method=r0.method,
                        base=r0.base, lam=r0.lam, policy=self.policy,
                        engine=self._engine,
                    )
                finally:
                    if deadline is not None:
                        self._engine.checkpoint = None
        with self._lock:
            self._solves += len(specs)
            if len(specs) > 1:
                self._batches += 1
                self._batched_requests += len(specs)
                self._max_batch = max(self._max_batch, len(specs))
        return results

    # ------------------------------------------------------------------ #
    # Resilience plumbing
    # ------------------------------------------------------------------ #
    def _breaker_for(self, req: CanonicalRequest) -> Optional[CircuitBreaker]:
        """This request's bucket breaker (lazily created; None when
        breakers are not configured)."""
        if self.breaker_policy is None:
            return None
        key = (req.model, req.method, req.steps)
        with self._lock:
            breaker = self._breakers.get(key)
            if breaker is None:
                breaker = CircuitBreaker(self.breaker_policy, clock=self._clock)
                if self.telemetry is not None:
                    breaker.listener = self._breaker_recorder(key)
                self._breakers[key] = breaker
            return breaker

    #: Numeric breaker-state encoding for the state gauge (ordered by
    #: severity so dashboards can alert on ``> 0``).
    _BREAKER_LEVEL = {CLOSED: 0, "half_open": 1, OPEN: 2}

    def _breaker_recorder(self, key: tuple):
        """Telemetry listener for one bucket's breaker: state as a gauge,
        every transition as a labelled event counter."""
        bucket = "/".join(map(str, key))
        gauge = self.telemetry.gauge(
            "breaker_state",
            labels={"bucket": bucket},
            help="0=closed 1=half_open 2=open",
        )
        registry = self.telemetry.registry

        journal = self.telemetry.journal

        def record(old: str, new: str) -> None:
            gauge.set(self._BREAKER_LEVEL.get(new, -1))
            registry.counter(
                "breaker_transitions_total",
                labels={"bucket": bucket, "from": old, "to": new},
                help="breaker state transitions",
            ).inc()
            journal.emit(
                "breaker_transition", bucket=bucket, old=old, new=new,
            )

        return record

    def _stale_canonical(self, req: CanonicalRequest) -> Optional[PricingResult]:
        """Degradation fetch: the key's stale-but-graced canonical result
        (None if the cache cannot vouch for one), with a refresh enqueued
        so the next flush re-solves it."""
        canonical = self.cache.get_stale(req.key)
        if canonical is not None:
            self._enqueue_refresh(req)
            with self._lock:
                self._stale_quotes += 1
        return canonical

    def _enqueue_refresh(self, req: CanonicalRequest) -> bool:
        """Queue a background re-solve for a stale-served key.

        The refresh rides the ordinary pending queue (drained by the next
        ``flush``/``result``/backpressure drain) rather than a thread of
        its own — deterministic, testable, and automatically coalesced
        with any real traffic on the same bucket.  Skipped when the key is
        already in flight or the queue is full (the stale serve stands on
        its own either way).
        """
        with self._lock:
            if req.key in self._inflight or len(self._queue) >= self.max_pending:
                return False
            pending = _Pending(req)
            self._inflight[req.key] = pending
            self._queue.append(pending)
            self._refreshes += 1
            return True

    def _mark_stale(self, out: PricingResult, reason: str) -> PricingResult:
        out.meta[STALE_KEY] = True
        out.meta["stale_reason"] = reason
        if self.telemetry is not None:
            self.telemetry.emit("stale_serve", reason=reason)
        return out

    # ------------------------------------------------------------------ #
    # Tiered serving (spectral fast tier)
    # ------------------------------------------------------------------ #
    _TIERS = ("exact", "fast", "auto")

    def _spectral(self):
        """The registry's spectral backend, resolved lazily so service
        construction never pays the spectral import."""
        backend = self._spectral_backend
        if backend is None:
            from repro.core.backend import get_backend

            backend = self._spectral_backend = get_backend("spectral")
        return backend

    @staticmethod
    def _fast_key(req: CanonicalRequest) -> tuple:
        """Fast-tier cache slot for a canonical key.

        Disjoint from the exact slot by construction — the tier rides the
        key itself — so an approximate price can never be served as (or
        evict) a bit-exact one, under any :class:`CanonicalPolicy`.
        """
        return ("tier:fast",) + req.key

    def _solve_spectral(self, req: CanonicalRequest) -> PricingResult:
        """One spectral solve of the canonical spec.

        No shared-engine mutex: spectral plans are immutable once built
        and the backend's plan cache carries its own lock, so fast-tier
        serves never queue behind a lattice solve in flight.
        """
        return self._spectral().price_spec(
            req.spec, req.steps, model=req.model, method=req.method,
            base=req.base, lam=req.lam,
        )

    def _enqueue_upgrade(self, req: CanonicalRequest) -> bool:
        """Queue the lattice-exact upgrade behind a fast-tier serve.

        Rides the ordinary pending queue exactly like a stale refresh —
        drained by the next ``flush``/``result``/backpressure drain,
        coalesced with real traffic on the same bucket — so fast traffic
        warms the *exact* slot without a thread of its own.  Skipped when
        the key is already in flight or the queue is full (the fast serve
        stands on its own either way).
        """
        with self._lock:
            if req.key in self._inflight or len(self._queue) >= self.max_pending:
                return False
            pending = _Pending(req)
            self._inflight[req.key] = pending
            self._queue.append(pending)
            self._tier_upgrades += 1
        if self.telemetry is not None:
            self.telemetry.emit(
                "tier_upgrade",
                bucket="/".join(map(str, self._bucket_of(req))),
            )
        return True

    def _serve_fast(self, req: CanonicalRequest) -> PricingResult:
        """Serve one quote from the fast (spectral) tier.

        A warm fast-slot key returns a scaled copy; a cold one pays the
        ~ms spectral solve and is stored under the fast slot only.  Either
        way, when the exact slot is cold an upgrade is enqueued, so the
        cache converges toward lattice-exact under fast traffic and the
        *next* ``tier="auto"`` quote on the key serves exact.
        """
        fkey = self._fast_key(req)
        cached = self.cache.get(fkey)
        if cached is not None:
            with self._lock:
                self._quotes += 1
                self._fast_quotes += 1
            out = _tagged(cached, req, "hit")
        else:
            result = self._solve_spectral(req)
            self.cache.put(fkey, result)
            with self._lock:
                self._quotes += 1
                self._fast_quotes += 1
            out = _tagged(result, req, "miss")
        out.meta["tier"] = "fast"
        out.meta.setdefault("tolerance", self._spectral().tolerance)
        # peek, not get: probing the exact slot to schedule the upgrade
        # must not skew its hit/miss accounting — and must never serve
        # from it on this tier
        if self.cache.peek(req.key) is None:
            self._enqueue_upgrade(req)
        return out

    def _degrade_spectral(
        self, req: CanonicalRequest, reason: str
    ) -> Optional[PricingResult]:
        """Last rung of the degradation ladder (opt-in, see
        ``spectral_fallback``): an approximate spectral serve when no
        stale entry is servable.

        The serve is explicitly marked (``meta["degraded_to"]``) and
        journalled, a refresh is enqueued so the exact slot heals, and
        the result is never written to the exact cache slot.  Returns
        None — fall through to the original rejection — when the fallback
        is disabled or the spectral solve itself rejects the contract.
        """
        if not self.spectral_fallback:
            return None
        try:
            result = self._solve_spectral(req)
        except Exception:
            return None  # e.g. Bermudan: let the original rejection stand
        out = _tagged(result, req, "degraded")
        out.meta["degraded_to"] = "spectral"
        out.meta["degrade_reason"] = reason
        out.meta["tier"] = "fast"
        out.meta.setdefault("tolerance", self._spectral().tolerance)
        with self._lock:
            self._degraded_spectral += 1
        self._enqueue_refresh(req)
        if self.telemetry is not None:
            self.telemetry.emit(
                "degraded_spectral", reason=reason,
                bucket="/".join(map(str, self._bucket_of(req))),
            )
        return out

    def _gate_or_degrade(
        self, req: CanonicalRequest, deadline: Optional[Deadline]
    ) -> Optional[PricingResult]:
        """Pre-solve gate for a cold quote: open breaker or spent deadline
        short-circuits to a stale serve, then — with ``spectral_fallback``
        — an approximate spectral serve, then a structured rejection.

        Returns the decanonicalized degraded result, or None to proceed
        with the solve.  Checks ``state`` — not ``allow()`` — so a
        half-open probe slot is only consumed by the actual solve attempt
        in :meth:`_resolve_group`, never burned twice per quote.
        """
        breaker = self._breaker_for(req)
        if breaker is not None and breaker.state == OPEN:
            canonical = self._stale_canonical(req)
            if canonical is not None:
                return self._mark_stale(
                    _tagged(canonical, req, "stale"), "breaker_open"
                )
            degraded = self._degrade_spectral(req, "breaker_open")
            if degraded is not None:
                return degraded
            raise breaker.reject(self._bucket_of(req))
        if deadline is not None and deadline.expired:
            with self._lock:
                self._deadline_misses += 1
            canonical = self._stale_canonical(req)
            if canonical is not None:
                return self._mark_stale(
                    _tagged(canonical, req, "stale"), "deadline"
                )
            degraded = self._degrade_spectral(req, "deadline")
            if degraded is not None:
                return degraded
            raise DeadlineExceeded(
                f"deadline of {deadline.budget:g}s spent before the "
                "solve could start and no stale entry is servable"
            )
        return None

    # ------------------------------------------------------------------ #
    # Synchronous quoting
    # ------------------------------------------------------------------ #
    def quote(
        self,
        spec: OptionSpec,
        steps: Optional[int] = None,
        *,
        model: Optional[str] = None,
        method: Optional[str] = None,
        base: Optional[int] = None,
        lam: Optional[float] = None,
        return_boundary: bool = False,
        deadline: Optional[Deadline] = None,
        tier: str = "exact",
    ) -> PricingResult:
        """Price one contract through the cache.

        ``tier`` picks the accuracy/latency trade per call:

        * ``"exact"`` (default) — the lattice pipeline below, unchanged.
        * ``"fast"`` — serve the spectral tier immediately: a warm
          fast-slot key is a cache hit, a cold one pays the ~ms spectral
          solve.  The result carries ``meta["tier"] == "fast"`` and
          ``meta["tolerance"]`` (the backend's stated bound), is cached
          under a *fast-tier* slot disjoint from the exact slot, and a
          lattice-exact upgrade is enqueued on the pending queue so the
          exact slot warms behind the serve.  Never reads or writes the
          exact slot.
        * ``"auto"`` — serve the exact slot when it is warm
          (``meta["tier"] == "exact"``, ``meta["tolerance"] == 0.0``),
          otherwise fall back to the fast tier exactly as above.  With
          ``return_boundary=True`` the exact pipeline always runs (the
          spectral tier records no divider).

        A warm key returns a scaled copy of the stored canonical result —
        bit-identical to the cold solve at quantization tolerance 0.  With
        ``return_boundary=True`` a warm *American* entry that was stored
        without a divider is upgraded: the contract is re-solved once with
        boundary recording and the richer entry replaces the old one, so
        subsequent boundary queries on the key are warm too (European
        contracts have no exercise boundary; the flag is ignored for them).
        A key already queued via :meth:`submit` is ridden, not re-solved.

        ``deadline`` bounds a cold solve: when the budget is already spent
        (or runs out mid-solve) the quote is served stale — explicitly
        marked ``meta["stale"]``, refresh enqueued — if the cache still
        holds the key within its stale grace, and raises
        :class:`~repro.resilience.deadline.DeadlineExceeded` otherwise.
        The same degradation applies when the bucket's circuit breaker is
        open (and, with ``spectral_fallback``, degrades one rung further
        to a marked spectral serve before rejecting).  Warm keys are
        always served; a deadline never costs a cache hit anything.
        """
        if tier not in self._TIERS:
            raise ValidationError(
                f"unknown tier {tier!r}; choose one of {self._TIERS}"
            )
        tel = self.telemetry
        if tel is None:
            return self._quote_impl(
                spec, steps, model, method, base, lam,
                return_boundary, deadline, tier,
            )
        t0 = tel.clock()
        seq0 = tel.journal.seq
        sp = tel.span("quote")
        with sp:
            result = self._quote_impl(
                spec, steps, model, method, base, lam,
                return_boundary, deadline, tier,
            )
        dur = tel.clock() - t0
        # outcome label comes from the serve tag quote already records
        outcome = result.meta.get("cache", "miss")
        self._quote_hist(outcome).observe(dur)
        # tiered (and degraded-spectral) serves stamp meta["tier"]; only
        # those observe the per-tier histogram, so exact-only traffic's
        # metric surface is unchanged
        tier_served = result.meta.get("tier")
        if tier_served is not None:
            self._tier_hist(tier_served).observe(dur)
        self._record_exemplar(outcome, dur, sp, seq0)
        return result

    def _record_exemplar(
        self, outcome: str, dur: float, span, seq0: int
    ) -> None:
        """Keep this quote if it ranks among the K slowest of its outcome.

        Top-K check first — the span tree is serialised and the journal
        sliced only for quotes that actually qualify, so steady-state
        traffic pays one lock + one float compare per quote.
        """
        k = self.exemplar_k
        if k == 0:
            return
        with self._exemplar_lock:
            bucket = self._exemplars.setdefault(outcome, [])
            if len(bucket) >= k and dur <= bucket[-1]["duration_s"]:
                return
            seq1 = self.telemetry.journal.seq
            bucket.append(
                {
                    "outcome": outcome,
                    "duration_s": dur,
                    "trace": span.as_dict(),
                    "seq_range": [seq0, seq1],
                    "journal": self.telemetry.journal.slice(seq0, seq1),
                }
            )
            bucket.sort(key=lambda e: e["duration_s"], reverse=True)
            del bucket[k:]

    def explain_slowest(
        self, outcome: Optional[str] = None, n: int = 1
    ) -> list:
        """The ``n`` slowest retained quote exemplars, slowest first.

        Each exemplar carries the quote's full span tree (``trace``) and
        the flight-recorder events emitted while it ran (``journal``,
        sliced by sequence number and correlated by span id) — enough to
        answer "why was the slowest quote slow?" from a live service,
        without reproducing the traffic.  ``outcome`` restricts to one
        serve label (hit/miss/merged/stale); default ranks across all.
        Returns ``[]`` when telemetry is disabled or nothing is retained.
        """
        with self._exemplar_lock:
            if outcome is not None:
                pool = list(self._exemplars.get(outcome, ()))
            else:
                pool = [e for b in self._exemplars.values() for e in b]
        pool.sort(key=lambda e: e["duration_s"], reverse=True)
        return pool[: check_integer("n", n, minimum=1)]

    def _exemplar_snapshot(self) -> dict:
        with self._exemplar_lock:
            return {
                outcome: list(bucket)
                for outcome, bucket in sorted(self._exemplars.items())
            }

    def _lookup_cached(
        self, req: CanonicalRequest, wants_boundary: bool
    ) -> Optional[PricingResult]:
        if wants_boundary:
            # Peek first: an entry without a divider gets re-solved below,
            # and that probe must not count as a cache hit (or refresh
            # recency) — only a servable entry registers the real hit, and
            # a genuinely absent key still registers its miss.
            cached = self.cache.peek(req.key)
            if cached is None or cached.boundary is not None:
                cached = self.cache.get(req.key)
            return cached
        return self.cache.get(req.key)

    def _quote_impl(
        self,
        spec: OptionSpec,
        steps: Optional[int],
        model: Optional[str],
        method: Optional[str],
        base: Optional[int],
        lam: Optional[float],
        return_boundary: bool,
        deadline: Optional[Deadline],
        tier: str = "exact",
    ) -> PricingResult:
        tel = self.telemetry
        if tel is not None:
            with tel.span("canonicalize"):
                req = self._canonicalize(
                    spec, steps, model, method, base, lam
                )
        else:
            req = self._canonicalize(spec, steps, model, method, base, lam)
        # European contracts have no divider to record — never re-solve a
        # warm European entry chasing one.
        wants_boundary = (
            return_boundary and req.spec.style is not Style.EUROPEAN
        )
        if tier == "fast":
            if wants_boundary:
                raise ValidationError(
                    "tier='fast' prices off the spectral backend, which "
                    "records no exercise divider; use tier='exact' (or "
                    "'auto') for return_boundary=True"
                )
            return self._serve_fast(req)
        if tier == "auto" and not wants_boundary:
            # exact first: a warm exact slot beats any approximation —
            # and a cold one is served fast *now* with the exact upgrade
            # queued behind it
            cached = self.cache.get(req.key)
            if cached is not None:
                with self._lock:
                    self._quotes += 1
                out = _tagged(cached, req, "hit")
                out.meta["tier"] = "exact"
                out.meta["tolerance"] = 0.0
                return out
            return self._serve_fast(req)
        if tel is not None:
            with tel.span("cache_lookup"):
                cached = self._lookup_cached(req, wants_boundary)
        else:
            cached = self._lookup_cached(req, wants_boundary)
        if cached is not None and (
            not wants_boundary or cached.boundary is not None
        ):
            with self._lock:
                self._quotes += 1
            return _tagged(cached, req, "hit")
        # Cold: an open breaker or spent budget degrades to a stale serve
        # (or a structured rejection) before any solve is attempted.
        degraded = self._gate_or_degrade(req, deadline)
        if degraded is not None:
            with self._lock:
                self._quotes += 1
            return degraded
        # An identical submit may be queued: claim it — only *this* key,
        # never the rest of the queue, so a latency-sensitive single quote
        # cannot be taxed with a batch — or, when a concurrent flush already
        # holds it mid-solve, ride that result.  Otherwise register our own
        # solve in-flight so concurrent identical quotes and submits merge
        # onto it instead of re-solving.  Divider requests always run their
        # own boundary-recording solve (a queued solve records none) and
        # resolve any claimed/registered pending from it.
        claimed = waiting = own = None
        with self._lock:
            pending = self._inflight.get(req.key)
            if pending is not None:
                try:
                    self._queue.remove(pending)
                    claimed = pending
                    self._merged += 1
                except ValueError:
                    waiting = pending  # a concurrent flush is solving it
            else:
                own = _Pending(req, deadline=deadline)
                self._inflight[req.key] = own
        if claimed is not None and claimed.deadline is None:
            claimed.deadline = deadline  # our budget now bounds its solve
        if waiting is not None and not wants_boundary:
            with self._lock:
                self._quotes += 1
                self._merged += 1
            waiting.event.wait()
            if waiting.error is not None:
                raise waiting.error
            return _tagged(waiting.canonical_result, req, "merged")
        mine = claimed if claimed is not None else own
        if mine is not None and not wants_boundary:
            with self._lock:
                self._quotes += 1
            try:
                self._resolve_group([mine])  # solve errors propagate
            except (DeadlineExceeded, CircuitOpenError) as exc:
                # the solve itself missed the budget (or hit an opening
                # breaker): same degradation ladder as the pre-solve gate
                with self._lock:
                    self._deadline_misses += 1
                canonical = self._stale_canonical(req)
                if canonical is None:
                    degraded = self._degrade_spectral(
                        req,
                        "breaker_open"
                        if isinstance(exc, CircuitOpenError)
                        else "deadline",
                    )
                    if degraded is not None:
                        return degraded
                    raise
                return self._mark_stale(
                    _tagged(canonical, req, "stale"), "deadline"
                )
            result = mine.canonical_result
            if is_timeout(result):
                # resilient solve tiers report budget misses as markers,
                # not exceptions — degrade those identically
                canonical = self._stale_canonical(req)
                if canonical is not None:
                    return self._mark_stale(
                        _tagged(canonical, req, "stale"), "deadline"
                    )
                degraded = self._degrade_spectral(req, "deadline")
                if degraded is not None:
                    return degraded
            return _tagged(
                result, req,
                "merged" if claimed is not None else "miss",
            )
        try:
            result = self._solve_one_boundary(req)
        except BaseException as exc:
            if mine is not None:  # claimed/registered tickets must not hang
                self._fail_pendings([mine], exc)
            raise
        self.cache.put(req.key, result)
        if mine is not None:
            mine.canonical_result = result
            self._drop_inflight(mine)
            mine.event.set()
        with self._lock:
            self._quotes += 1
            self._solves += 1
            if cached is not None:
                self._boundary_upgrades += 1
        return _tagged(result, req, "miss")

    def quote_many(
        self,
        specs: Sequence[OptionSpec],
        steps: Optional[int] = None,
        *,
        model: Optional[str] = None,
        method: Optional[str] = None,
        base: Optional[int] = None,
        lam: Optional[float] = None,
        deadline: Optional[Deadline] = None,
    ) -> list[PricingResult]:
        """Price a batch through the cache; results in submission order.

        Requests are canonicalized, deduped by key, looked up, and the
        distinct misses solved in one coalesced batch (``coalesce=False``:
        one at a time).  Every duplicate of a solved key is served from that
        single solve (``meta["cache"] == "merged"``).

        ``deadline`` bounds the whole batch.  Keys whose solve misses the
        budget — or whose bucket breaker is open — are degraded per key,
        never per batch: served stale (``meta["stale"]``) when the cache
        still holds them, or returned as explicit NaN-priced markers
        (``meta["timeout"]`` / ``meta["failed"]``) otherwise; every other
        key keeps its bit-exact price.  The batch keeps submission order
        and raises nothing for these degradable outcomes.
        """
        reqs = [
            self._canonicalize(s, steps, model, method, base, lam)
            for s in specs
        ]
        if not reqs:
            return []
        # counted up front so a failing solve cannot leave the quote/solve
        # bookkeeping inconsistent
        with self._lock:
            self._quotes += len(reqs)
        # Keys already queued via submit() are adopted — claimed out of the
        # pending queue and solved as one bucket here (a key embeds the
        # whole solve configuration, so adoptees are always compatible) —
        # rather than solved twice or paid for with a full-queue drain.
        with self._lock:
            adopted: list[_Pending] = []
            for key in dict.fromkeys(r.key for r in reqs):
                pending = self._inflight.get(key)
                if pending is not None:
                    try:
                        self._queue.remove(pending)
                    except ValueError:
                        continue  # mid-flush elsewhere; re-solved as a miss
                    adopted.append(pending)
        resolved: dict[tuple, PricingResult] = {}
        tags: dict[tuple, str] = {}
        adopted_by_key = {p.request.key: p for p in adopted}
        own: list[_Pending] = []
        for req in reqs:
            if req.key in tags:
                continue
            pending = adopted_by_key.get(req.key)
            if pending is not None:
                cached = self.cache.get(req.key)
                if cached is not None:
                    # a *shared* injected cache can hold a key another
                    # service solved after this one queued it: serve the
                    # warm result and resolve the adopted ticket from it —
                    # no solve at all
                    del adopted_by_key[req.key]
                    pending.canonical_result = cached
                    self._drop_inflight(pending)
                    pending.event.set()
                    resolved[req.key] = cached
                    tags[req.key] = "hit"
                else:
                    # this call pays the adopted solve — a merge with a
                    # queued submit, not a cache hit (the lookup above
                    # recorded the miss, matching quote()/submit() merges)
                    tags[req.key] = "merged"
                continue
            cached = self.cache.get(req.key)
            if cached is not None:
                resolved[req.key] = cached
                tags[req.key] = "hit"
            else:
                # ephemeral pending: never queued, but registered in-flight
                # (when the key is free) so concurrent identical quotes and
                # submits merge onto this call's solve; it rides the same
                # resolution machinery (bucketing, poison isolation, cache
                # stores) as the adopted submits
                pending = _Pending(req, deadline=deadline)
                with self._lock:
                    if req.key not in self._inflight:
                        self._inflight[req.key] = pending
                own.append(pending)
                tags[req.key] = "miss"
        if deadline is not None:
            for pending in adopted_by_key.values():
                if pending.deadline is None:
                    pending.deadline = deadline
        to_resolve = list(adopted_by_key.values()) + own
        if to_resolve:
            # one bucketed resolution for adopted submits and this call's
            # misses together: overlapping traffic coalesces into the same
            # batched solves, and — since canonicalization normalizes
            # base/lam per style — every result is cached under the key it
            # was actually solved with
            try:
                self._resolve_pendings(to_resolve)
            finally:
                # mirror flush(): even a BaseException mid-retry must not
                # leave a pending wedged (adoptees live in _inflight)
                self._abandon_unresolved(to_resolve)
            # Degradable outcomes — the budget ran out, or the bucket's
            # breaker rejected — become per-key stale serves or explicit
            # markers; anything else (a genuinely poisoned solve with no
            # retry policy to marker-ize it) still raises as before.
            first_error: Optional[BaseException] = None
            for pending in to_resolve:
                err = pending.error
                if err is None:
                    result = pending.canonical_result
                    resolved[pending.request.key] = result
                    # resilient solve tiers report per-cell budget misses
                    # and exhausted failures as markers, not exceptions —
                    # degrade a timeout marker to a stale serve when one
                    # is available, and tag markers for what they are
                    if is_timeout(result):
                        canonical = self._stale_canonical(pending.request)
                        if canonical is not None:
                            resolved[pending.request.key] = canonical
                            tags[pending.request.key] = "stale"
                        else:
                            tags[pending.request.key] = "timeout"
                    elif is_marker(result):
                        tags[pending.request.key] = "failed"
                    continue
                if isinstance(err, (DeadlineExceeded, CircuitOpenError)):
                    preq = pending.request
                    with self._lock:
                        self._deadline_misses += isinstance(
                            err, DeadlineExceeded
                        )
                    canonical = self._stale_canonical(preq)
                    if canonical is not None:
                        resolved[preq.key] = canonical
                        tags[preq.key] = "stale"
                    elif isinstance(err, DeadlineExceeded):
                        resolved[preq.key] = timeout_result(
                            preq.steps, preq.model, preq.method,
                            detail=str(err),
                        )
                        tags[preq.key] = "timeout"
                    else:
                        resolved[preq.key] = failure_result(
                            preq.steps, preq.model, preq.method, err
                        )
                        tags[preq.key] = "failed"
                elif first_error is None:
                    first_error = err
            if first_error is not None:
                raise first_error
        out: list[PricingResult] = []
        served_keys: set = set()
        merged = 0
        for req in reqs:
            tag = tags[req.key]
            if req.key in served_keys and tag == "miss":
                tag = "merged"
            served_keys.add(req.key)
            if tag == "merged":
                merged += 1
            served = _tagged(resolved[req.key], req, tag)
            if tag == "stale":
                self._mark_stale(served, "degraded")
            out.append(served)
        with self._lock:
            self._merged += merged
        return out

    def implied_vol(
        self,
        quote: float,
        spec: OptionSpec,
        steps: Optional[int] = None,
        *,
        model: Optional[str] = None,
        method: Optional[str] = None,
        base: Optional[int] = None,
        lam: Optional[float] = None,
        seed: Optional[float] = None,
        price_tol: Optional[float] = None,
    ):
        """Invert one quoted price to an implied volatility through the cache.

        Each objective evaluation of the root find is a :meth:`quote` call,
        so it canonicalizes (strike scaling, put→call fold) and consults the
        cache: re-inverting the same quote — or any quote whose evaluations
        land on already-served canonical keys, e.g. rescaled clones of a
        contract this service priced before — runs entirely warm, and every
        cold evaluation seeds the cache for future traffic.  Returns the
        :class:`~repro.market.implied.ImpliedVolResult` (its ``solves``
        counts *evaluations*; compare the service's ``stats()`` before and
        after to see how many were cache hits).  Meaningful at the exact
        canonical policy; a quantizing policy (``tol > 0``) plateaus the
        objective and degrades the root find's accuracy to ``O(tol)``.
        """
        # Imported lazily: repro.market sits above the risk tier this
        # module already imports — resolving at call time keeps the
        # package import order acyclic-by-construction.
        from repro.market.implied import implied_vol as _implied_vol

        if steps is None:
            steps = self.steps_default
        if steps is None:
            raise ValidationError(
                "steps is required (or configure the service's steps_default)"
            )
        spec = spec.with_style(Style.AMERICAN)  # match price_american

        def price_at(v: float) -> float:
            return self.quote(
                dataclasses.replace(spec, volatility=v), steps,
                model=model, method=method, base=base, lam=lam,
            ).price

        return _implied_vol(
            quote, spec, steps, price_fn=price_at, seed=seed,
            price_tol=price_tol,
        )

    # ------------------------------------------------------------------ #
    # Asynchronous submit / coalescing flush
    # ------------------------------------------------------------------ #
    def submit(
        self,
        spec: OptionSpec,
        steps: Optional[int] = None,
        *,
        model: Optional[str] = None,
        method: Optional[str] = None,
        base: Optional[int] = None,
        lam: Optional[float] = None,
        block: bool = True,
        deadline: Optional[Deadline] = None,
    ) -> QuoteTicket:
        """Enqueue a request; returns a :class:`QuoteTicket`.

        Warm keys resolve immediately.  A key already pending merges onto
        the in-flight solve.  A new key joins the bounded queue; when the
        queue is full, ``block=True`` drains it synchronously (backpressure:
        the submitter pays for the flush) and ``block=False`` raises
        :class:`ServiceOverloadedError` with a structured payload naming
        the rejected canonical key and the queue bound, so a shedding
        caller can retry or re-route without string parsing.  ``deadline``
        is carried on the pending entry; the flush that solves its bucket
        honors the tightest deadline across the bucket's members.
        """
        req = self._canonicalize(spec, steps, model, method, base, lam)
        while True:
            tag: Optional[str] = None
            pending = None
            with self._lock:
                cached = self.cache.get(req.key)
                if cached is not None:
                    self._quotes += 1
                    tag = "hit"
                elif (pending := self._inflight.get(req.key)) is not None:
                    self._quotes += 1
                    self._merged += 1
                    if deadline is not None and pending.deadline is None:
                        pending.deadline = deadline
                    tag = "merged"
                elif len(self._queue) < self.max_pending:
                    pending = _Pending(req, deadline=deadline)
                    self._inflight[req.key] = pending
                    self._queue.append(pending)
                    self._quotes += 1
                    tag = "miss"
                else:
                    self._overloads += 1
                    if not block:
                        raise ServiceOverloadedError(
                            f"pending queue full ({self.max_pending} solves "
                            "queued); flush() or submit with block=True",
                            rejected_keys=[req.key],
                            pending=len(self._queue),
                            max_pending=self.max_pending,
                        )
            if tag == "hit":
                # built outside the lock: the envelope copy work of a warm
                # hit must not serialize concurrent submitters
                return QuoteTicket(
                    self, None, req, "hit", result=_tagged(cached, req, "hit")
                )
            if tag is not None:
                return QuoteTicket(self, pending, req, tag)
            # Full and blocking: drain outside the lock, then retry.  A
            # failing bucket reports to its own tickets — this submit only
            # needs the queue space, so it must survive the drain and keep
            # its request.
            try:
                self.flush()
            except Exception:
                pass

    def flush(self) -> int:
        """Drain the pending queue; returns the distinct solves drained
        (merged submits share their pending, so this can undercount the
        requests served — track ``stats()`` for request-level counts).

        Pending requests are grouped into compatible buckets — identical
        ``(model, method, steps, base, lam)`` — and each bucket is solved as
        one coalesced batch in submission order.  Tickets resolve as their
        bucket completes.  If a bucket's solve raises, its tickets re-raise
        that error from ``result()``, remaining buckets still run, and the
        first error propagates from ``flush`` itself.
        """
        with self._lock:
            batch, self._queue = self._queue, []
        if not batch:
            return 0
        try:
            first_error = self._resolve_pendings(batch)
        finally:
            # Even if a bucket dies with a BaseException (KeyboardInterrupt,
            # worker-pool teardown), no ticket from this batch may hang.
            self._abandon_unresolved(batch)
        if first_error is not None:
            raise first_error
        return len(batch)

    @staticmethod
    def _bucket_of(req: CanonicalRequest) -> tuple:
        """The coalescing bucket: requests solvable as one batch."""
        return (req.model, req.method, req.steps, req.base, req.lam)

    def _bucket_groups(
        self, reqs: Sequence[CanonicalRequest]
    ) -> "list[list[CanonicalRequest]]":
        """Split requests into solve groups, honoring ``coalesce``."""
        if not self.coalesce:
            return [[r] for r in reqs]
        buckets: "OrderedDict[tuple, list[CanonicalRequest]]" = OrderedDict()
        for r in reqs:
            buckets.setdefault(self._bucket_of(r), []).append(r)
        return list(buckets.values())

    def _resolve_pendings(
        self, pendings: Sequence[_Pending]
    ) -> Optional[BaseException]:
        """Resolve pendings in coalescing buckets; returns the first group
        error (each error already reached its own tickets)."""
        by_request = {id(p.request): p for p in pendings}
        first_error: Optional[BaseException] = None
        for group in self._bucket_groups([p.request for p in pendings]):
            try:
                self._resolve_group([by_request[id(r)] for r in group])
            except Exception as exc:  # noqa: BLE001 — kept for tickets
                if first_error is None:
                    first_error = exc
        return first_error

    def _resolve_group(self, group: Sequence[_Pending]) -> None:
        """Solve one compatible pending group; resolve its tickets either way.

        On success every pending gets its canonical result (and the cache a
        fresh entry) *before* its event is set, so a racing submit either
        sees the in-flight entry or the cached result, never a gap.  When a
        *batch* solve fails, each member is retried alone — one poisoned
        request (a spec only the solver can reject) must not starve its
        valid bucket siblings — and the first per-member error propagates.

        Resilience hooks: the group's breaker must admit the solve
        (half-open probe accounting happens here, exactly once per solve
        attempt) and records its outcome — ``DeadlineExceeded`` and
        timeout markers count as failures, so a bucket that keeps missing
        its budget trips open like any other failing bucket.  The tightest
        deadline across the group's members bounds the solve.  Marker
        results resolve their tickets but are never cached.
        """
        breaker = self._breaker_for(group[0].request)
        if breaker is not None and not breaker.allow():
            exc = breaker.reject(self._bucket_of(group[0].request))
            self._fail_pendings(group, exc)
            raise exc
        deadline = effective_deadline([p.deadline for p in group])
        try:
            results = self._solve_requests(
                [p.request for p in group], deadline=deadline
            )
        except Exception as exc:
            if breaker is not None:
                breaker.record_failure()
            if len(group) == 1:
                self._fail_pendings(group, exc)
                raise
            first_error: Optional[BaseException] = None
            for pending in group:
                try:
                    self._resolve_group([pending])
                except Exception as member_exc:  # noqa: BLE001 — per ticket
                    if first_error is None:
                        first_error = member_exc
            if first_error is not None:
                raise first_error
            return
        except BaseException as exc:  # interrupts: fail fast, never hang
            if breaker is not None:
                breaker.record_failure()
            self._fail_pendings(group, exc)
            raise
        if breaker is not None:
            if any(is_timeout(r) for r in results):
                breaker.record_failure()
            else:
                breaker.record_success()
        for pending, result in zip(group, results):
            if not is_marker(result):
                self.cache.put(pending.request.key, result)
            pending.canonical_result = result
            self._drop_inflight(pending)
            pending.event.set()

    def _drop_inflight(self, pending: _Pending) -> None:
        """De-register exactly this pending (identity-checked).

        quote_many's ephemeral pendings are never registered, and a
        concurrent submit may have registered a *new* pending under the
        same key — a blind ``pop(key)`` would evict that live entry and
        break its merging.
        """
        with self._lock:
            if self._inflight.get(pending.request.key) is pending:
                del self._inflight[pending.request.key]

    def _fail_pendings(
        self, group: Sequence[_Pending], exc: BaseException
    ) -> None:
        for pending in group:
            pending.error = exc
            self._drop_inflight(pending)
            pending.event.set()

    def _abandon_unresolved(self, batch: Sequence[_Pending]) -> None:
        for pending in batch:
            if not pending.event.is_set():
                pending.error = RuntimeError(
                    "flush aborted before this request's bucket was solved"
                )
                self._drop_inflight(pending)
                pending.event.set()

    # ------------------------------------------------------------------ #
    @property
    def pending(self) -> int:
        """Distinct solves currently queued (merged requests not counted)."""
        with self._lock:
            return len(self._queue)

    def stats(self) -> dict:
        """Snapshot: cache counters plus service-level serving counters.

        With telemetry attached the snapshot also carries a ``telemetry``
        section — the registry's stable JSON export
        (:meth:`repro.obs.MetricsRegistry.snapshot`), latency histograms
        and all.
        """
        with self._lock:
            breakers = {
                "/".join(map(str, key)): breaker.stats()
                for key, breaker in self._breakers.items()
            }
            out = {
                "cache": self.cache.stats(),
                "service": {
                    "quotes": self._quotes,
                    "solves": self._solves,
                    "batches": self._batches,
                    "batched_requests": self._batched_requests,
                    "max_batch": self._max_batch,
                    "merged_requests": self._merged,
                    "boundary_upgrades": self._boundary_upgrades,
                    "overloads": self._overloads,
                    "pending": len(self._queue),
                    "max_pending": self.max_pending,
                    "workers": self.workers,
                    "backend": self.backend if self.workers > 1 else "serial",
                    "coalesce": self.coalesce,
                    "fast_quotes": self._fast_quotes,
                    "tier_upgrades": self._tier_upgrades,
                },
                "resilience": {
                    "breakers": breakers,
                    "stale_quotes": self._stale_quotes,
                    "refreshes": self._refreshes,
                    "deadline_misses": self._deadline_misses,
                    "degraded_spectral": self._degraded_spectral,
                },
            }
        if self.telemetry is not None:
            out["telemetry"] = self.telemetry.snapshot()
            out["exemplars"] = self._exemplar_snapshot()
        return out

    def health(self) -> dict:
        """Cheap liveness/readiness summary for probes and dashboards.

        ``status`` is ``"ok"``, ``"degraded"`` (any bucket breaker not
        closed — requests on those buckets are being served stale or
        rejected fast) or ``"overloaded"`` (the pending queue is full, so
        non-blocking submits are shedding load).  ``open_breakers`` names
        every bucket whose breaker is not closed, and ``journal_dropped``
        counts flight-recorder events lost to ring overflow (0 without
        telemetry) — a growing number means the journal window is too
        small for the incident being debugged.  The rest is the handful
        of levels a probe acts on; :meth:`stats` remains the full
        snapshot.
        """
        with self._lock:
            breakers = list(self._breakers.items())
            pending = len(self._queue)
            inflight = len(self._inflight)
        open_buckets = sorted(
            "/".join(map(str, key))
            for key, breaker in breakers
            if breaker.state != CLOSED
        )
        if pending >= self.max_pending:
            status = "overloaded"
        elif open_buckets:
            status = "degraded"
        else:
            status = "ok"
        cache = self.cache.stats()
        return {
            "status": status,
            "open_breakers": open_buckets,
            "pending": pending,
            "max_pending": self.max_pending,
            "inflight": inflight,
            "cache_hit_ratio": cache["hit_ratio"],
            "cache_size": cache["size"],
            "stale_quotes": self._stale_quotes,
            "degraded_spectral": self._degraded_spectral,
            "journal_dropped": (
                self.telemetry.journal.dropped
                if self.telemetry is not None
                else 0
            ),
            "telemetry_enabled": self.telemetry is not None,
        }
