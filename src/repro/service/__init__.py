"""Quote-serving tier: canonical keys → LRU/TTL cache → coalescing service.

The ROADMAP's "serve heavy traffic" subsystem.  Requests reduce to
dimensionless canonical keys (:mod:`repro.service.canonical`), warm keys
are served from an LRU+TTL cache (:mod:`repro.service.cache`), and cold
keys coalesce into batched engine solves behind the
:class:`~repro.service.service.QuoteService` front door.
"""

from repro.service.cache import CacheEntry, QuoteCache
from repro.service.canonical import (
    EXACT,
    KEY_VERSION,
    CanonicalPolicy,
    CanonicalRequest,
    canonical_key,
    canonicalize,
    decanonicalize,
)
from repro.service.service import (
    QuoteService,
    QuoteTicket,
    ServiceOverloadedError,
)

__all__ = [
    "CacheEntry",
    "CanonicalPolicy",
    "CanonicalRequest",
    "EXACT",
    "KEY_VERSION",
    "QuoteCache",
    "QuoteService",
    "QuoteTicket",
    "ServiceOverloadedError",
    "canonical_key",
    "canonicalize",
    "decanonicalize",
]
