"""Tests for fft-bsm against the vanilla FD oracle."""

import dataclasses

import pytest
from hypothesis import assume, given

from repro.core.bsm_solver import solve_bsm_fft
from repro.core.fftstencil import AdvancePolicy
from repro.lattice.blackscholes_fd import price_bsm_fd
from repro.options.contract import OptionSpec, Right, paper_benchmark_spec
from repro.options.params import BSMGridParams
from repro.util.validation import ValidationError
from tests.conftest import put_specs, small_steps

PUT = dataclasses.replace(paper_benchmark_spec(), right=Right.PUT, dividend_yield=0.0)


def fft_price(spec, T, **kw):
    return solve_bsm_fft(BSMGridParams.from_spec(spec, T), **kw)


class TestAgreement:
    @pytest.mark.parametrize("T", [1, 2, 3, 5, 8, 11, 16, 21, 33, 64, 128, 333, 1024])
    def test_paper_put_all_T(self, T):
        assert fft_price(PUT, T).price == pytest.approx(
            price_bsm_fd(PUT, T).price, abs=1e-9 * PUT.strike
        )

    @pytest.mark.parametrize(
        "kw",
        [
            dict(spot=60.0, strike=140.0),  # deep ITM put
            dict(spot=250.0, strike=100.0),  # deep OTM put (all-red cone)
            dict(rate=0.10, volatility=0.12),  # fast-moving divider
            dict(volatility=0.8),
            dict(expiry_days=21.0),
        ],
    )
    def test_parameter_extremes(self, kw):
        defaults = dict(
            spot=100.0, strike=100.0, rate=0.04, volatility=0.25, right=Right.PUT
        )
        defaults.update(kw)
        spec = OptionSpec(**defaults)
        for T in (5, 64, 257):
            assert fft_price(spec, T).price == pytest.approx(
                price_bsm_fd(spec, T).price, abs=1e-8 * spec.strike
            ), (kw, T)

    @given(spec=put_specs(), T=small_steps())
    def test_property_agreement(self, spec, T):
        try:
            params = BSMGridParams.from_spec(spec, T)
        except ValidationError:
            # high-rate/low-vol draws can violate the explicit scheme's
            # monotonicity precondition at tiny T — out of the model's domain
            assume(False)
        assert solve_bsm_fft(params).price == pytest.approx(
            price_bsm_fd(spec, T).price, abs=1e-8 * spec.strike
        )

    @pytest.mark.parametrize("base", [1, 3, 10, 40])
    def test_base_invariance(self, base):
        assert fft_price(PUT, 300, base=base).price == pytest.approx(
            price_bsm_fd(PUT, 300).price, abs=1e-9 * PUT.strike
        )

    @pytest.mark.parametrize("lam", [0.2, 0.35, 0.49])
    def test_lam_agreement(self, lam):
        p = BSMGridParams.from_spec(PUT, 200, lam=lam)
        assert solve_bsm_fft(p).price == pytest.approx(
            price_bsm_fd(PUT, 200, lam=lam).price, abs=1e-9 * PUT.strike
        )

    @pytest.mark.parametrize("mode", ["fft", "direct", "auto"])
    def test_policy_invariance(self, mode):
        price = fft_price(PUT, 200, policy=AdvancePolicy(mode=mode)).price
        assert price == pytest.approx(
            price_bsm_fd(PUT, 200).price, abs=1e-9 * PUT.strike
        )


class TestStructure:
    def test_uses_fft_at_scale(self):
        r = fft_price(PUT, 2048)
        assert r.stats.fft_calls > 0

    def test_subquadratic_cells(self):
        T = 4096
        r = fft_price(PUT, T)
        assert r.stats.cells_evaluated < 0.25 * T * T

    def test_deep_otm_all_red_pure_fft(self):
        # the divider sits at k ~ -ln(S/K)*sqrt(lam*T/tau_max); pushing it
        # left of the cone base (|k| > T) requires ln(S/K) > sqrt(tau_max*T/lam)
        spec = dataclasses.replace(PUT, spot=PUT.strike * 500.0)
        r = fft_price(spec, 512)
        # no green zone inside the cone: only driver FFT jumps, no strips
        assert r.stats.base_rows <= 2 * 10 + 20
        assert r.price == pytest.approx(0.0, abs=1e-12)

    def test_workspan_subquadratic(self):
        w1 = fft_price(PUT, 1024).workspan.work
        w2 = fft_price(PUT, 4096).workspan.work
        assert w2 / w1 < 8.0

    def test_metadata(self):
        r = fft_price(PUT, 64)
        assert r.steps == 64
        assert r.meta["model"] == "bsm-fd"


class TestBoundaryRecorder:
    def test_recorded_rows_match_vanilla(self):
        T = 256
        vanilla = price_bsm_fd(PUT, T, return_boundary=True).boundary
        r = fft_price(PUT, T, record_boundary=True)
        assert len(r.boundary.points) > 5
        for row, f in r.boundary.points.items():
            assert f == vanilla[row], f"row {row}: fft divider {f} != {vanilla[row]}"


class TestErrors:
    def test_bad_base(self):
        with pytest.raises(ValidationError):
            fft_price(PUT, 16, base=0)
