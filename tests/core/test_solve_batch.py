"""Lockstep ``solve_batch`` vs per-option pricing: bit-level agreement.

The batch solver's contract is strict: because a batched real FFT
transforms each row exactly as the standalone 1-D transform does, every
result must equal the per-contract ``price_american`` / ``price_european``
solve **bit for bit** (the tests still allow 1e-12 relative headroom so a
platform with a different pocketfft vectorisation cannot flake them).
"""

import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.api import price_american, price_european, price_many, solve_batch
from repro.core.bsm_solver import solve_bsm_fft, solve_bsm_fft_batch
from repro.core.fftstencil import AdvanceEngine
from repro.core.tree_solver import solve_tree_fft, solve_tree_fft_batch
from repro.options.contract import OptionSpec, Right, Style, paper_benchmark_spec
from repro.options.params import BinomialParams, BSMGridParams

SPEC = paper_benchmark_spec()
REL = 1e-12


def _agree(result, reference):
    assert result.price == pytest.approx(reference.price, rel=REL, abs=0.0)


spec_strategy = st.builds(
    OptionSpec,
    spot=st.just(100.0),
    strike=st.floats(60.0, 150.0),
    rate=st.floats(0.0, 0.08),
    volatility=st.floats(0.12, 0.5),
    dividend_yield=st.floats(0.0, 0.05),
    expiry_days=st.floats(40.0, 504.0),
    right=st.sampled_from([Right.CALL, Right.PUT]),
    style=st.sampled_from([Style.AMERICAN, Style.EUROPEAN]),
)


class TestTreeModels:
    @settings(max_examples=20, deadline=None)
    @given(specs=st.lists(spec_strategy, min_size=1, max_size=5))
    def test_property_mixed_batches_match_per_option(self, specs):
        """Mixed rights/styles/vol/rate/expiry batches == per-option solves."""
        results = solve_batch(specs, 48)
        for spec, r in zip(specs, results):
            if spec.style is Style.EUROPEAN:
                _agree(r, price_european(spec, 48))
            else:
                _agree(r, price_american(spec, 48))

    @pytest.mark.parametrize("model", ["binomial", "trinomial"])
    @pytest.mark.parametrize("right", [Right.CALL, Right.PUT])
    def test_american_ladder_matches_and_batches(self, model, right):
        specs = [
            dataclasses.replace(SPEC, right=right, volatility=v)
            for v in (0.15, 0.2, 0.28, 0.4)
        ]
        engine = AdvanceEngine()
        results = solve_batch(specs, 128, model=model, engine=engine)
        assert engine.cache_info()["batch_advances"] > 0
        for spec, r in zip(specs, results):
            _agree(r, price_american(spec, 128, model=model))
            assert r.meta["batched"] is True and r.meta["batch_size"] == 4
            if right is Right.PUT:
                assert r.meta["symmetric_dual_of"] == spec.with_style(
                    Style.AMERICAN
                )

    def test_empty_and_single(self):
        assert solve_batch([], 32) == []
        engine = AdvanceEngine()
        [r] = solve_batch([SPEC], 64, engine=engine)
        _agree(r, price_american(SPEC, 64))

    def test_closed_form_calls_skip_the_lattice(self):
        """Zero-dividend American calls keep the analytic shortcut."""
        cf = dataclasses.replace(SPEC, dividend_yield=0.0)
        engine = AdvanceEngine()
        results = solve_batch([cf, SPEC], 64, engine=engine)
        assert results[0].meta.get("closed_form") == "black-scholes"
        assert "closed_form" not in results[1].meta
        _agree(results[0], price_american(cf, 64))

    def test_non_fft_method_falls_back_per_option(self):
        specs = [SPEC, dataclasses.replace(SPEC, strike=110.0)]
        results = solve_batch(specs, 64, method="loop")
        for spec, r in zip(specs, results):
            _agree(r, price_american(spec, 64, method="loop"))
            assert r.method == "loop"


class TestBSMModel:
    def _puts(self, n=3):
        base = OptionSpec(
            spot=100.0, strike=100.0, rate=0.05, volatility=0.2,
            dividend_yield=0.0, expiry_days=252.0, right=Right.PUT,
        )
        return [
            dataclasses.replace(base, volatility=0.15 + 0.07 * i, strike=90.0 + 7.0 * i)
            for i in range(n)
        ]

    def test_american_fd_batch_matches(self):
        specs = self._puts()
        engine = AdvanceEngine()
        results = solve_batch(specs, 200, model="bsm-fd", engine=engine)
        assert engine.cache_info()["batch_advances"] > 0
        for spec, r in zip(specs, results):
            _agree(r, price_american(spec, 200, model="bsm-fd"))

    def test_european_fd_batch_matches(self):
        specs = [s.with_style(Style.EUROPEAN) for s in self._puts()]
        results = solve_batch(specs, 200, model="bsm-fd")
        for spec, r in zip(specs, results):
            _agree(r, price_european(spec, 200, model="bsm-fd"))
            assert r.meta["batched"] is True

    def test_solver_level_batch_is_bit_identical(self):
        params = [
            BSMGridParams.from_spec(s.with_style(Style.AMERICAN), 300)
            for s in self._puts()
        ]
        serial = [solve_bsm_fft(p) for p in params]
        batch = solve_bsm_fft_batch(params)
        assert [b.price for b in batch] == [s.price for s in serial]


class TestSolverLevelTreeBatch:
    def test_bit_identical_and_boundary_matches(self):
        params = [
            BinomialParams.from_spec(
                dataclasses.replace(SPEC, volatility=v), 500
            )
            for v in (0.18, 0.25, 0.33)
        ]
        serial = [solve_tree_fft(p, record_boundary=True) for p in params]
        batch = solve_tree_fft_batch(params, record_boundary=True)
        assert [b.price for b in batch] == [s.price for s in serial]
        for s, b in zip(serial, batch):
            assert b.boundary.points == s.boundary.points

    def test_mixed_step_counts_desynchronise_cleanly(self):
        p_short = BinomialParams.from_spec(SPEC, 200)
        p_long = BinomialParams.from_spec(SPEC, 700)
        batch = solve_tree_fft_batch([p_short, p_long])
        assert batch[0].price == solve_tree_fft(p_short).price
        assert batch[1].price == solve_tree_fft(p_long).price


class TestGridRouting:
    def test_heterogeneous_grid_routes_through_advance_batch(self):
        """A vol/rate grid (no two cells share a kernel) must still batch."""
        rng = np.random.default_rng(0)
        specs = [
            dataclasses.replace(
                SPEC,
                volatility=float(v),
                rate=float(r),
                style=style,
            )
            for v, r, style in zip(
                rng.uniform(0.12, 0.45, size=24),
                rng.uniform(0.0, 0.08, size=24),
                [Style.AMERICAN, Style.EUROPEAN] * 12,
            )
        ]
        engine = AdvanceEngine()
        results = price_many(specs, 96, engine=engine)
        info = engine.cache_info()
        assert info["batch_advances"] > 0
        assert info["batched_inputs"] > len(specs)  # lockstep rounds ran wide
        for spec, r in zip(specs, results):
            ref = (
                price_european(spec, 96)
                if spec.style is Style.EUROPEAN
                else price_american(spec, 96)
            )
            _agree(r, ref)
