"""Tests for the multi-step linear advance (the [1] subroutine)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.fftstencil import AdvancePolicy, advance
from repro.util.validation import ValidationError


def naive_steps(x: np.ndarray, taps, h: int) -> np.ndarray:
    """Reference: h explicit one-step applications."""
    y = np.asarray(x, dtype=np.float64)
    for _ in range(h):
        acc = taps[0] * y[: len(y) - len(taps) + 1]
        for k in range(1, len(taps)):
            acc = acc + taps[k] * y[k : k + len(y) - len(taps) + 1]
        y = acc
    return y


class TestAdvanceCorrectness:
    @pytest.mark.parametrize("h", [0, 1, 2, 5, 16])
    @pytest.mark.parametrize("taps", [(0.45, 0.52), (0.2, 0.5, 0.25)])
    def test_matches_naive(self, h, taps):
        rng = np.random.default_rng(42)
        x = rng.uniform(0, 100, size=(len(taps) - 1) * h + 17)
        y, rec = advance(x, taps, h)
        np.testing.assert_allclose(y, naive_steps(x, taps, h), rtol=1e-9, atol=1e-9)
        assert rec.h == h

    def test_output_length(self):
        x = np.ones(50)
        y, _ = advance(x, (0.4, 0.5), 10)
        assert len(y) == 40
        y, _ = advance(x, (0.2, 0.5, 0.25), 10)
        assert len(y) == 30

    def test_h0_copy_not_view(self):
        x = np.ones(5)
        y, rec = advance(x, (0.4, 0.5), 0)
        y[0] = 7.0
        assert x[0] == 1.0
        assert rec.method == "copy"

    def test_too_short_input(self):
        with pytest.raises(ValidationError, match="too short"):
            advance(np.ones(5), (0.4, 0.5), 10)

    @given(
        h=st.integers(1, 40),
        extra=st.integers(1, 30),
        seed=st.integers(0, 2**31),
    )
    def test_property_fft_matches_naive(self, h, extra, seed):
        rng = np.random.default_rng(seed)
        taps = (0.47, 0.51)
        x = rng.uniform(0, 50, size=h + extra)
        y, _ = advance(x, taps, h, policy=AdvancePolicy(mode="fft"))
        np.testing.assert_allclose(y, naive_steps(x, taps, h), rtol=1e-8, atol=1e-8)

    @given(h=st.integers(1, 20), seed=st.integers(0, 2**31))
    def test_property_composition(self, h, seed):
        """advance(h1) then advance(h2) == advance(h1+h2)."""
        rng = np.random.default_rng(seed)
        taps = (0.3, 0.4, 0.28)
        h1, h2 = h, h // 2 + 1
        x = rng.uniform(0, 10, size=2 * (h1 + h2) + 9)
        step1, _ = advance(x, taps, h1)
        two_step, _ = advance(step1, taps, h2)
        direct, _ = advance(x, taps, h1 + h2)
        np.testing.assert_allclose(two_step, direct, rtol=1e-8, atol=1e-10)


class TestPolicy:
    def test_forced_direct(self):
        x = np.ones(100)
        _, rec = advance(x, (0.4, 0.5), 30, policy=AdvancePolicy(mode="direct"))
        assert rec.method == "direct"

    def test_forced_fft(self):
        x = np.ones(100)
        _, rec = advance(x, (0.4, 0.5), 30, policy=AdvancePolicy(mode="fft"))
        assert rec.method == "fft"

    def test_small_kernel_prefers_direct(self):
        x = np.ones(100)
        _, rec = advance(x, (0.4, 0.5), 3)  # kernel length 4 < min_fft_size
        assert rec.method == "direct"

    def test_amplification_guard_triggers(self):
        """Huge inputs relative to scale fall back to direct correlation."""
        x = np.full(200, 1e40)
        _, rec = advance(x, (0.4, 0.5), 64, scale=1.0)
        assert rec.method == "direct"

    def test_amplification_guard_respects_scale(self):
        x = np.full(200, 1e40)
        _, rec = advance(x, (0.4, 0.5), 64, scale=1e40)
        assert rec.method == "fft"

    def test_no_scale_disables_guard(self):
        x = np.full(200, 1e40)
        _, rec = advance(x, (0.4, 0.5), 64)
        assert rec.method == "fft"

    def test_direct_fallback_is_relatively_accurate(self):
        """The guard exists so extreme dynamic range keeps relative accuracy."""
        h = 64
        x = np.exp(np.linspace(0, 90, h + 40))  # spans e^90
        y_direct, _ = advance(x, (0.45, 0.54), h, policy=AdvancePolicy(mode="direct"))
        ref = naive_steps(x, (0.45, 0.54), h)
        np.testing.assert_allclose(y_direct, ref, rtol=1e-9)

    def test_workspan_recorded(self):
        x = np.ones(200)
        _, rec = advance(x, (0.4, 0.5), 50, policy=AdvancePolicy(mode="fft"))
        assert rec.workspan.work > 0
        assert rec.workspan.span > 0
        assert rec.workspan.parallelism > 1
