"""Cross-model property-based tests of the paper's structural theorems.

These are the executable versions of the paper's lemmas: red–green
contiguity and one-cell divider movement (Corollary 2.7 / A.6 / Theorem
4.3), value monotonicities (Lemmas 2.5, A.3, A.4), and the equivalences that
tie the whole solver stack together.
"""

import numpy as np
import pytest
from hypothesis import assume, given
from hypothesis import strategies as st

from repro.core.boundary import (
    check_bsm_boundary_invariants,
    check_tree_boundary_invariants,
    is_prefix_mask,
)
from repro.core.tree_solver import solve_tree_fft
from repro.lattice.binomial import price_binomial
from repro.lattice.blackscholes_fd import price_bsm_fd
from repro.lattice.trinomial import price_trinomial
from repro.options.contract import Right, Style
from repro.options.params import BinomialParams, BSMGridParams, TrinomialParams
from repro.util.validation import ValidationError
from tests.conftest import call_specs, put_specs


def _assume_no_exact_ties(spec):
    """R = Y = 0 makes continuation == exercise *exactly* in real arithmetic
    deep in the money (martingale identity), so floating-point noise colours
    those cells arbitrarily.  The paper's contiguity theorems are statements
    about exact arithmetic; we test them off the measure-zero tie set and
    with an epsilon-tolerant mask."""
    assume(spec.rate > 1e-4 or spec.dividend_yield > 1e-4)


class TestCorollary27:
    """Divider contiguity + movement on the binomial grid."""

    @given(spec=call_specs(), T=st.sampled_from([16, 48, 96]))
    def test_divider_invariants(self, spec, T):
        _assume_no_exact_ties(spec)
        r = price_binomial(spec, T, return_boundary=True)
        assert check_tree_boundary_invariants(r.boundary, steps=T, columns_per_row=1) == []

    @given(spec=call_specs())
    def test_row_masks_are_prefixes(self, spec):
        """Lemma 2.2: red cells form a contiguous prefix of every row."""
        _assume_no_exact_ties(spec)
        T = 48
        tol = 1e-10 * spec.strike
        p = BinomialParams.from_spec(spec, T)
        vals = np.maximum(p.exercise_value(T, np.arange(T + 1)), 0.0)
        for i in range(T - 1, -1, -1):
            cont = p.s0 * vals[: i + 1] + p.s1 * vals[1 : i + 2]
            exer = np.asarray(p.exercise_value(i, np.arange(i + 1)))
            assert is_prefix_mask(cont >= exer - tol) or is_prefix_mask(
                cont >= exer + tol
            ), f"row {i}"
            vals = np.maximum(cont, exer)


class TestCorollaryA6:
    """Same structure on the trinomial grid (Appendix A)."""

    @given(spec=call_specs(), T=st.sampled_from([16, 48]))
    def test_divider_invariants(self, spec, T):
        _assume_no_exact_ties(spec)
        r = price_trinomial(spec, T, return_boundary=True)
        assert check_tree_boundary_invariants(r.boundary, steps=T, columns_per_row=2) == []

    @given(spec=call_specs())
    def test_lemma_a3_values_nondecreasing_in_column(self, spec):
        """Lemma A.3: G[i, j-1] <= G[i, j] within a row."""
        T = 32
        p = TrinomialParams.from_spec(spec, T)
        vals = np.maximum(p.exercise_value(T, np.arange(2 * T + 1)), 0.0)
        for i in range(T - 1, -1, -1):
            w = 2 * i + 1
            cont = p.s0 * vals[:w] + p.s1 * vals[1 : w + 1] + p.s2 * vals[2 : w + 2]
            vals = np.maximum(cont, p.exercise_value(i, np.arange(w)))
            assert np.all(np.diff(vals) >= -1e-9 * spec.strike), f"row {i}"


class TestTheorem43:
    """BSM divider: green prefix, one-cell leftward movement."""

    @given(spec=put_specs(), T=st.sampled_from([32, 64, 128]))
    def test_divider_invariants(self, spec, T):
        try:
            BSMGridParams.from_spec(spec, T)
        except ValidationError:
            assume(False)
        r = price_bsm_fd(spec, T, return_boundary=True)
        assert (
            check_bsm_boundary_invariants(r.boundary, steps=T, missing=-(T + 1)) == []
        )


class TestLemma25:
    """G[i, j] >= G[i+2, j+1]: values grow toward the root on diagonals."""

    @given(spec=call_specs())
    def test_diagonal_dominance(self, spec):
        T = 24
        p = BinomialParams.from_spec(spec, T)
        rows = {}
        vals = np.maximum(p.exercise_value(T, np.arange(T + 1)), 0.0)
        rows[T] = vals.copy()
        for i in range(T - 1, -1, -1):
            cont = p.s0 * rows[i + 1][: i + 1] + p.s1 * rows[i + 1][1 : i + 2]
            rows[i] = np.maximum(cont, p.exercise_value(i, np.arange(i + 1)))
        for i in range(0, T - 1):
            lhs = rows[i][: i]  # j < i
            rhs = rows[i + 2][1 : i + 1]  # j+1
            assert np.all(lhs >= rhs - 1e-9 * spec.strike), f"row {i}"


class TestSolverEquivalences:
    """Ties between independently implemented pricing paths."""

    @given(spec=call_specs())
    def test_american_dominates_european_dominates_intrinsic_discount(self, spec):
        am = price_binomial(spec, 64).price
        eu = price_binomial(spec.with_style(Style.EUROPEAN), 64).price
        assert am >= eu - 1e-10 * spec.strike

    @given(spec=call_specs())
    def test_trinomial_binomial_consistency(self, spec):
        """Two different lattices must agree to discretisation accuracy."""
        a = price_binomial(spec, 256).price
        b = price_trinomial(spec, 256).price
        assert a == pytest.approx(b, abs=0.03 * spec.strike * spec.volatility + 0.05)

    @given(spec=put_specs())
    def test_put_value_increases_with_expiry(self, spec):
        """American options gain value with more time (no dividends)."""
        import dataclasses

        short = price_binomial(spec, 64).price
        long_spec = dataclasses.replace(spec, expiry_days=spec.expiry_days * 2)
        long = price_binomial(long_spec, 64).price
        assert long >= short - 1e-9 * spec.strike

    @given(spec=call_specs(), base=st.sampled_from([2, 8, 32]))
    def test_fft_base_case_height_never_changes_price(self, spec, base):
        params = BinomialParams.from_spec(spec, 64)
        a = solve_tree_fft(params, base=base).price
        b = price_binomial(spec, 64).price
        assert a == pytest.approx(b, abs=1e-8 * spec.strike)
