"""Chebyshev spectral backend: primitives, plans, accuracy vs the lattice.

The accuracy contract is the one the service surfaces as
``meta["tolerance"]``: at the default collocation order the spectral
price agrees with a converged lattice to :data:`SPECTRAL_TOL` relative
error (against ``max(price, 1% of strike)``) across a moneyness x vol x
expiry grid of genuinely-American contracts.  Contracts with exact
closed forms (zero-dividend calls, zero-rate puts, Europeans) are
compared against Black-Scholes instead — there the backend must be
exact, not merely within tolerance.
"""

import dataclasses
import math

import numpy as np
import pytest

from repro.core.api import price_american
from repro.core.backend import backend_names, get_backend
from repro.core.spectral import (
    DEFAULT_ORDER,
    SPECTRAL_TOL,
    SpectralBackend,
    chebyshev_basis,
    chebyshev_coefficients,
    chebyshev_nodes,
    clenshaw,
    tanhsinh_nodes,
)
from repro.options.analytic import black_scholes
from repro.options.contract import OptionSpec, Right, Style
from repro.util.validation import ValidationError

BASE = OptionSpec(
    spot=100.0, strike=100.0, rate=0.04, volatility=0.25,
    dividend_yield=0.02, expiry_days=252.0, right=Right.PUT,
    style=Style.AMERICAN,
)


def rel_err(approx: float, exact: float, strike: float) -> float:
    return abs(approx - exact) / max(exact, 0.01 * strike)


class TestChebyshevPrimitives:
    def test_nodes_ascend_from_zero_to_tau_max(self):
        z, x, tau = chebyshev_nodes(8, 2.0)
        assert z[0] == -1.0 and z[-1] == 1.0
        assert tau[0] == 0.0
        assert tau[-1] == pytest.approx(2.0)
        assert np.all(np.diff(tau) > 0)
        assert np.allclose(x * x, tau)

    def test_transform_roundtrip_is_exact_at_the_nodes(self):
        rng = np.random.default_rng(3)
        for order in (2, 5, 12):
            z, _, _ = chebyshev_nodes(order, 1.0)
            values = rng.normal(size=order + 1)
            coeffs = chebyshev_coefficients(values)
            assert np.allclose(clenshaw(z, coeffs), values, atol=1e-12)

    def test_interpolant_tracks_a_smooth_function_off_node(self):
        order = 12
        z, _, _ = chebyshev_nodes(order, 1.0)
        coeffs = chebyshev_coefficients(np.exp(z))
        probe = np.linspace(-1.0, 1.0, 101)
        assert np.max(np.abs(clenshaw(probe, coeffs) - np.exp(probe))) < 1e-6

    def test_basis_matmul_equals_clenshaw(self):
        # the boundary iteration's one-matmul-per-sweep form must agree
        # with the recurrence it replaced, bit-tight
        rng = np.random.default_rng(4)
        coeffs = rng.normal(size=DEFAULT_ORDER + 1)
        probe = np.linspace(-1.0, 1.0, 57).reshape(3, 19)
        basis = chebyshev_basis(probe, DEFAULT_ORDER)
        assert np.allclose(basis @ coeffs, clenshaw(probe, coeffs),
                           atol=1e-13)

    def test_tanhsinh_integrates_smooth_and_endpoint_singular(self):
        y, w = tanhsinh_nodes(41, 0.25)
        assert len(y) == 41
        # tails saturate to the endpoints in double precision, so the
        # node sequence is nondecreasing rather than strictly increasing
        assert np.all(np.diff(y) >= 0)
        # smooth: integral of e^y over [-1, 1]
        assert float(w @ np.exp(y)) == pytest.approx(
            math.e - 1.0 / math.e, abs=1e-10
        )
        # sqrt endpoint derivative singularity: integral of sqrt(1+y)
        assert float(w @ np.sqrt(1.0 + y)) == pytest.approx(
            2.0 ** 1.5 / 1.5, abs=1e-8
        )


class TestSpectralPlan:
    def test_boundary_starts_at_cap_and_decreases(self):
        plan = SpectralBackend().plan_for(0.04, 0.02, 0.25, 1.0)
        tau = np.linspace(0.0, 1.0, 33)
        bound = plan.boundary(tau)
        assert bound[0] == pytest.approx(plan.x_cap)
        assert np.all(bound > 0.0)
        assert np.all(bound <= plan.x_cap + 1e-12)
        # the put boundary falls as time to expiry grows
        assert np.all(np.diff(bound) <= 1e-10)

    def test_dividend_cap_is_r_over_q(self):
        plan = SpectralBackend().plan_for(0.02, 0.05, 0.25, 1.0)
        assert plan.x_cap == pytest.approx(0.4)
        plan = SpectralBackend().plan_for(0.05, 0.0, 0.25, 1.0)
        assert plan.x_cap == 1.0

    def test_deep_itm_put_prices_at_intrinsic(self):
        plan = SpectralBackend().plan_for(0.06, 0.0, 0.2, 1.0)
        spot = float(plan.boundary(np.asarray(1.0))) * 0.5
        assert plan.price_put(spot) == pytest.approx(1.0 - spot)

    def test_price_dominates_european_and_intrinsic(self):
        backend = SpectralBackend()
        plan = backend.plan_for(0.04, 0.02, 0.25, 1.0)
        for spot in (0.8, 0.95, 1.0, 1.1, 1.3):
            price = plan.price_put(spot)
            assert price >= max(1.0 - spot, 0.0) - 1e-12


class TestBackendContract:
    def test_registered_and_listed(self):
        backend = get_backend("spectral")
        assert backend.name == "spectral"
        assert backend.tolerance == SPECTRAL_TOL
        assert not backend.supports_boundary
        assert not backend.supports_divider
        assert not backend.supports_batching
        assert "spectral" in backend_names()

    def test_return_boundary_rejected(self):
        with pytest.raises(ValidationError):
            get_backend("spectral").price_spec(
                BASE, 64, return_boundary=True
            )

    def test_bermudan_rejected(self):
        spec = BASE.with_style(Style.BERMUDAN)
        with pytest.raises(ValidationError):
            get_backend("spectral").price_spec(spec, 64)

    def test_european_is_black_scholes_exact(self):
        spec = BASE.with_style(Style.EUROPEAN)
        result = get_backend("spectral").price_spec(spec, 64)
        assert result.price == black_scholes(spec).price
        assert result.meta["closed_form"] == "black-scholes"
        assert result.meta["backend"] == "spectral"

    def test_no_early_exercise_contracts_are_closed_form(self):
        zero_div_call = dataclasses.replace(
            BASE, right=Right.CALL, dividend_yield=0.0
        )
        zero_rate_put = dataclasses.replace(BASE, rate=0.0)
        for spec in (zero_div_call, zero_rate_put):
            result = get_backend("spectral").price_spec(spec, 64)
            assert result.price == black_scholes(spec).price
            assert result.meta["no_early_exercise"] is True

    def test_meta_carries_tier_contract(self):
        result = get_backend("spectral").price_spec(BASE, 64)
        assert result.meta["backend"] == "spectral"
        assert result.meta["tolerance"] == SPECTRAL_TOL
        assert result.meta["spectral"]["order"] == DEFAULT_ORDER
        assert result.stats["fixed_point_iterations"] >= 1

    def test_price_batch_matches_price_spec(self):
        backend = SpectralBackend()
        specs = [
            dataclasses.replace(BASE, spot=s) for s in (90.0, 100.0, 110.0)
        ]
        batch = backend.price_batch(specs, 64)
        singles = [backend.price_spec(s, 64) for s in specs]
        assert [r.price for r in batch] == [r.price for r in singles]

    def test_api_routes_by_backend_name(self):
        result = price_american(BASE, 64, backend="spectral")
        assert result.meta["backend"] == "spectral"
        lattice = price_american(BASE, 64)
        assert lattice.meta["backend"] == "lattice"
        assert rel_err(result.price, lattice.price, BASE.strike) < 0.01


class TestPlanCache:
    def test_repeat_and_strike_ladder_share_one_plan(self):
        backend = SpectralBackend()
        for strike in (90.0, 100.0, 110.0):
            backend.price_spec(dataclasses.replace(BASE, strike=strike), 64)
        info = backend.cache_info()
        # strike scaling folds the ladder onto one unit-strike plan; the
        # spot/strike ratio varies but the (r, q, sigma, T) key does not
        assert info["plans"] == 1
        assert info["misses"] == 1
        assert info["hits"] == 2

    def test_cache_evicts_fifo_at_capacity(self):
        backend = SpectralBackend(plan_cache_size=2)
        for vol in (0.2, 0.3, 0.4):
            backend.plan_for(0.04, 0.02, vol, 1.0)
        info = backend.cache_info()
        assert info["plans"] == 2
        assert info["misses"] == 3
        # the first plan was evicted: re-requesting it misses again
        backend.plan_for(0.04, 0.02, 0.2, 1.0)
        assert backend.cache_info()["misses"] == 4


class TestAccuracyVsLattice:
    STEPS_REF = 2048

    @pytest.mark.parametrize("right", [Right.PUT, Right.CALL])
    @pytest.mark.parametrize("moneyness", [0.85, 1.0, 1.15])
    @pytest.mark.parametrize("vol", [0.2, 0.35])
    def test_within_stated_tolerance(self, right, moneyness, vol):
        spec = dataclasses.replace(
            BASE, right=right, spot=100.0 * moneyness, volatility=vol,
        )
        approx = get_backend("spectral").price_spec(spec, self.STEPS_REF)
        exact = price_american(spec, self.STEPS_REF)
        assert rel_err(approx.price, exact.price, spec.strike) <= SPECTRAL_TOL

    def test_long_expiry_within_tolerance(self):
        spec = dataclasses.replace(BASE, expiry_days=504.0, volatility=0.3)
        approx = get_backend("spectral").price_spec(spec, self.STEPS_REF)
        exact = price_american(spec, self.STEPS_REF)
        assert rel_err(approx.price, exact.price, spec.strike) <= SPECTRAL_TOL

    def test_call_dualization_flagged(self):
        spec = dataclasses.replace(BASE, right=Right.CALL)
        result = get_backend("spectral").price_spec(spec, 64)
        assert result.meta["spectral"]["dualized"] is True
        put = get_backend("spectral").price_spec(BASE, 64)
        assert put.meta["spectral"]["dualized"] is False
