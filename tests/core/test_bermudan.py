"""Tests for the FFT European/Bermudan jump-chain solvers."""

import dataclasses

import pytest

from repro.core.bermudan import (
    price_bsm_european_fft,
    price_tree_bermudan_fft,
    price_tree_european_fft,
)
from repro.lattice.binomial import price_binomial
from repro.lattice.blackscholes_fd import price_bsm_fd
from repro.lattice.trinomial import price_trinomial
from repro.options.analytic import european_price
from repro.options.contract import OptionSpec, Right, Style, paper_benchmark_spec
from repro.options.params import BinomialParams, BSMGridParams, TrinomialParams
from repro.util.validation import ValidationError

SPEC = paper_benchmark_spec()


def make(**kw):
    defaults = dict(
        spot=100.0, strike=100.0, rate=0.04, volatility=0.25, dividend_yield=0.02
    )
    defaults.update(kw)
    return OptionSpec(**defaults)


class TestEuropeanTree:
    @pytest.mark.parametrize("right", [Right.CALL, Right.PUT])
    @pytest.mark.parametrize("T", [1, 2, 7, 64, 500])
    def test_matches_lattice_european(self, right, T):
        spec = make(right=right, style=Style.EUROPEAN)
        fft = price_tree_european_fft(BinomialParams.from_spec(spec, T)).price
        loop = price_binomial(spec, T).price
        assert fft == pytest.approx(loop, abs=1e-9 * spec.strike)

    def test_trinomial_matches(self):
        spec = make(style=Style.EUROPEAN)
        fft = price_tree_european_fft(TrinomialParams.from_spec(spec, 300)).price
        loop = price_trinomial(spec, 300).price
        assert fft == pytest.approx(loop, abs=1e-9 * spec.strike)

    def test_converges_to_black_scholes(self):
        spec = make(style=Style.EUROPEAN)
        fft = price_tree_european_fft(BinomialParams.from_spec(spec, 4096)).price
        assert fft == pytest.approx(european_price(spec), abs=0.01)

    def test_single_jump(self):
        r = price_tree_european_fft(BinomialParams.from_spec(make(), 512))
        assert r.stats.fft_calls + r.stats.direct_calls == 1
        assert r.meta["style"] == "european"


class TestBermudanTree:
    def test_matches_lattice_bermudan(self):
        spec = make(right=Right.PUT, style=Style.BERMUDAN)
        dates = [16, 32, 48]
        fft = price_tree_bermudan_fft(
            BinomialParams.from_spec(spec, 64), dates
        ).price
        loop = price_binomial(spec, 64, exercise_steps=dates).price
        assert fft == pytest.approx(loop, abs=1e-9 * spec.strike)

    def test_trinomial_matches_lattice(self):
        spec = make(right=Right.PUT, style=Style.BERMUDAN)
        dates = [10, 30]
        fft = price_tree_bermudan_fft(
            TrinomialParams.from_spec(spec, 48), dates
        ).price
        loop = price_trinomial(spec, 48, exercise_steps=dates).price
        assert fft == pytest.approx(loop, abs=1e-9 * spec.strike)

    def test_no_dates_is_european(self):
        spec = make(right=Right.PUT)
        a = price_tree_bermudan_fft(BinomialParams.from_spec(spec, 64), ()).price
        b = price_tree_european_fft(BinomialParams.from_spec(spec, 64)).price
        assert a == b

    def test_dense_dates_approach_american(self):
        spec = make(right=Right.PUT, style=Style.BERMUDAN)
        am = price_binomial(make(right=Right.PUT), 64).price
        dense = price_tree_bermudan_fft(
            BinomialParams.from_spec(spec, 64), range(64)
        ).price
        assert dense == pytest.approx(am, abs=1e-9 * spec.strike)

    def test_monotone_in_dates(self):
        spec = make(right=Right.PUT, style=Style.BERMUDAN)
        params = BinomialParams.from_spec(spec, 64)
        few = price_tree_bermudan_fft(params, [32]).price
        more = price_tree_bermudan_fft(params, [16, 32, 48]).price
        assert more >= few - 1e-12

    def test_exercise_at_root_allowed(self):
        spec = make(spot=200.0, strike=100.0, dividend_yield=0.2)
        params = BinomialParams.from_spec(spec, 32)
        with_root = price_tree_bermudan_fft(params, [0]).price
        assert with_root >= spec.intrinsic() - 1e-12

    def test_bad_exercise_step(self):
        with pytest.raises(ValidationError):
            price_tree_bermudan_fft(BinomialParams.from_spec(make(), 16), [17])

    def test_duplicate_steps_deduplicated(self):
        params = BinomialParams.from_spec(make(right=Right.PUT), 32)
        a = price_tree_bermudan_fft(params, [8, 8, 16]).price
        b = price_tree_bermudan_fft(params, [8, 16]).price
        assert a == b


class TestEuropeanBSM:
    @pytest.mark.parametrize("T", [1, 8, 64, 512])
    def test_matches_fd_european(self, T):
        spec = make(right=Right.PUT, dividend_yield=0.0, style=Style.EUROPEAN)
        fft = price_bsm_european_fft(BSMGridParams.from_spec(spec, T)).price
        loop = price_bsm_fd(spec, T).price
        assert fft == pytest.approx(loop, abs=1e-9 * spec.strike)

    def test_rejects_call_grid(self):
        # BSMGridParams itself rejects calls, so the error comes from params
        with pytest.raises(ValidationError):
            BSMGridParams.from_spec(make(right=Right.CALL), 16)
