"""Tests for the public API (dispatch, result envelope, boundary curves)."""

import dataclasses

import numpy as np
import pytest

from repro import (
    OptionSpec,
    Right,
    Style,
    exercise_boundary,
    paper_benchmark_spec,
    price_american,
    price_bermudan,
    price_european,
)
from repro.options.analytic import european_price
from repro.util.validation import ValidationError

SPEC = paper_benchmark_spec()
PUT = dataclasses.replace(SPEC, right=Right.PUT, dividend_yield=0.0)


class TestNoEarlyExerciseShortcut:
    """Never-exercised-early contracts answer from the closed form with
    zero lattice solves (guarded by counting the solver entry points)."""

    ZD_CALL = dataclasses.replace(SPEC, dividend_yield=0.0)
    ZR_PUT = dataclasses.replace(SPEC, right=Right.PUT, rate=0.0)

    def _forbid_lattice(self, monkeypatch):
        import repro.core.api as api

        def boom(*a, **kw):  # pragma: no cover — the shortcut must fire
            raise AssertionError("lattice solver called for a closed-form case")

        for name in (
            "solve_tree_fft", "solve_put_via_symmetry", "price_binomial",
            "price_trinomial",
        ):
            monkeypatch.setattr(api, name, boom)

    @pytest.mark.parametrize("model", ["binomial", "trinomial"])
    def test_zero_dividend_call_is_closed_form(self, model, monkeypatch):
        from repro.options.analytic import black_scholes

        self._forbid_lattice(monkeypatch)
        r = price_american(self.ZD_CALL, 128, model=model)
        assert r.price == black_scholes(self.ZD_CALL).price
        assert r.meta["no_early_exercise"]
        assert r.meta["closed_form"] == "black-scholes"

    @pytest.mark.parametrize("method", ["fft", "loop"])
    def test_zero_rate_put_keeps_the_lattice(self, method):
        # the dual fact (no_early_exercise_put) must NOT shortcut: rho
        # ladders and scenario rate bumps cross r=0, and a ladder mixing
        # an analytic r=0 leg with a lattice r=h leg would divide the
        # discretisation gap by h
        r = price_american(self.ZR_PUT, 128, method=method)
        assert "closed_form" not in r.meta
        assert r.workspan.work > 0

    def test_zero_rate_put_rho_ladder_unpoisoned(self):
        from repro.options.analytic import black_scholes
        from repro.options.greeks import american_greeks

        g = american_greeks(self.ZR_PUT, 256)
        bs = black_scholes(self.ZR_PUT)
        # an R=0 American put equals its European twin, so the one-sided
        # rho ladder must land near the analytic value — a mixed
        # analytic/lattice ladder blows this up by orders of magnitude
        assert g.rho == pytest.approx(bs.rho, rel=0.05)

    def test_shortcut_agrees_with_the_lattice_limit(self):
        from repro.lattice.binomial import price_binomial

        # the closed form is the lattice's converged value: at a real step
        # count they agree to discretisation accuracy
        lattice = price_binomial(self.ZD_CALL, 4096).price
        assert price_american(self.ZD_CALL, 4096).price == pytest.approx(
            lattice, abs=2e-3
        )

    def test_boundary_request_forces_the_lattice(self):
        r = price_american(
            self.ZD_CALL, 64, method="loop", return_boundary=True
        )
        assert "closed_form" not in r.meta
        assert r.boundary is not None
        assert r.workspan.work > 0

    def test_dividend_paying_call_still_solves(self, monkeypatch):
        self._forbid_lattice(monkeypatch)
        with pytest.raises(AssertionError, match="lattice solver called"):
            price_american(SPEC, 64)  # SPEC pays dividends: real solve


class TestPriceAmericanDispatch:
    @pytest.mark.parametrize("method", ["fft", "loop", "tiled", "oblivious", "ql", "zb"])
    def test_binomial_methods_agree(self, method):
        ref = price_american(SPEC, 128, model="binomial", method="loop").price
        v = price_american(SPEC, 128, model="binomial", method=method).price
        assert v == pytest.approx(ref, abs=1e-9 * SPEC.strike)

    @pytest.mark.parametrize("method", ["fft", "loop"])
    def test_trinomial_methods_agree(self, method):
        ref = price_american(SPEC, 96, model="trinomial", method="loop").price
        v = price_american(SPEC, 96, model="trinomial", method=method).price
        assert v == pytest.approx(ref, abs=1e-9 * SPEC.strike)

    @pytest.mark.parametrize("method", ["fft", "loop"])
    def test_bsm_methods_agree(self, method):
        ref = price_american(PUT, 96, model="bsm-fd", method="loop").price
        v = price_american(PUT, 96, model="bsm-fd", method=method).price
        assert v == pytest.approx(ref, abs=1e-9 * PUT.strike)

    def test_put_via_fft_uses_symmetry(self):
        spec = dataclasses.replace(SPEC, right=Right.PUT)
        fft = price_american(spec, 128, method="fft").price
        loop = price_american(spec, 128, method="loop").price
        assert fft == pytest.approx(loop, abs=1e-9 * spec.strike)

    def test_result_fields(self):
        r = price_american(SPEC, 64, method="fft")
        assert r.model == "binomial"
        assert r.method == "fft"
        assert r.steps == 64
        assert r.workspan.work > 0
        assert "trapezoids" in r.stats

    def test_style_forced_to_american(self):
        r = price_american(SPEC.with_style(Style.EUROPEAN), 64, method="loop")
        ref = price_american(SPEC, 64, method="loop")
        assert r.price == ref.price

    def test_unknown_model(self):
        with pytest.raises(ValidationError, match="model"):
            price_american(SPEC, 16, model="heston")

    def test_unknown_method(self):
        with pytest.raises(ValidationError, match="method"):
            price_american(SPEC, 16, method="magic")

    def test_trinomial_rejects_binomial_only_methods(self):
        with pytest.raises(ValidationError):
            price_american(SPEC, 16, model="trinomial", method="zb")

    def test_bsm_rejects_call(self):
        with pytest.raises(ValidationError):
            price_american(SPEC, 16, model="bsm-fd", method="fft")

    def test_baselines_reject_puts(self):
        spec = dataclasses.replace(SPEC, right=Right.PUT)
        with pytest.raises(ValidationError):
            price_american(spec, 16, method="zb")

    def test_baselines_reject_boundary_request(self):
        with pytest.raises(ValidationError):
            price_american(SPEC, 16, method="zb", return_boundary=True)

    def test_base_override(self):
        a = price_american(SPEC, 128, method="fft", base=4).price
        b = price_american(SPEC, 128, method="fft", base=32).price
        assert a == pytest.approx(b, abs=1e-10)


class TestPriceEuropean:
    @pytest.mark.parametrize("model", ["binomial", "trinomial", "bsm-fd"])
    def test_fft_matches_loop(self, model):
        spec = PUT if model == "bsm-fd" else SPEC
        fft = price_european(spec, 128, model=model, method="fft").price
        loop = price_european(spec, 128, model=model, method="loop").price
        assert fft == pytest.approx(loop, abs=1e-9 * spec.strike)

    def test_converges_to_closed_form(self):
        fft = price_european(SPEC, 4096, method="fft").price
        assert fft == pytest.approx(european_price(SPEC), abs=0.02)

    def test_european_leq_american(self):
        eu = price_european(PUT, 256, model="bsm-fd", method="fft").price
        am = price_american(PUT, 256, model="bsm-fd", method="fft").price
        assert eu <= am + 1e-10

    def test_rejects_baseline_methods(self):
        with pytest.raises(ValidationError):
            price_european(SPEC, 16, method="zb")


class TestPriceBermudan:
    def test_fft_matches_loop(self):
        spec = dataclasses.replace(SPEC, right=Right.PUT)
        dates = [16, 32, 48]
        fft = price_bermudan(spec, 64, dates, method="fft").price
        loop = price_bermudan(spec, 64, dates, method="loop").price
        assert fft == pytest.approx(loop, abs=1e-9 * spec.strike)

    def test_rejects_bsm(self):
        with pytest.raises(ValidationError):
            price_bermudan(PUT, 16, [8], model="bsm-fd")


class TestExerciseBoundary:
    def test_loop_dense_curve(self):
        curve = exercise_boundary(SPEC, 128, method="loop")
        assert len(curve.rows) > 0
        assert len(curve.rows) == len(curve.prices) == len(curve.times_years)
        # American call boundary prices must exceed the strike
        assert np.all(curve.prices >= SPEC.strike * 0.99)

    def test_fft_sparse_curve_agrees_with_loop(self):
        dense = exercise_boundary(SPEC, 128, method="loop")
        sparse = exercise_boundary(SPEC, 128, method="fft")
        dense_map = dict(zip(dense.rows.tolist(), dense.indices.tolist()))
        assert len(sparse.rows) > 5
        for row, idx in zip(sparse.rows.tolist(), sparse.indices.tolist()):
            assert dense_map.get(row) == idx, f"row {row}"

    def test_put_boundary_below_strike(self):
        spec = dataclasses.replace(SPEC, right=Right.PUT)
        curve = exercise_boundary(spec, 128, method="loop")
        assert np.all(curve.prices <= spec.strike * 1.01)

    def test_put_fft_matches_loop(self):
        # a high-rate zero-dividend put exercises early over a wide region,
        # giving the divider plenty of rows to compare on
        spec = OptionSpec(
            spot=100.0, strike=110.0, rate=0.06, volatility=0.25, right=Right.PUT
        )
        dense = exercise_boundary(spec, 96, method="loop")
        sparse = exercise_boundary(spec, 96, method="fft")
        dense_map = dict(zip(dense.rows.tolist(), dense.indices.tolist()))
        matched = 0
        for row, idx in zip(sparse.rows.tolist(), sparse.indices.tolist()):
            if row in dense_map:
                assert dense_map[row] == idx, f"row {row}"
                matched += 1
        assert matched > 5

    def test_bsm_boundary_monotone_in_time(self):
        curve = exercise_boundary(PUT, 128, model="bsm-fd", method="loop")
        # Thm 4.2: the boundary decreases with time-to-expiry tau; in
        # calendar order (valuation -> expiry, tau decreasing) the boundary
        # price therefore rises toward the strike
        order = np.argsort(curve.times_years)
        prices = curve.prices[order]
        assert np.all(np.diff(prices) >= -1e-6)
        assert prices[-1] == pytest.approx(PUT.strike, rel=0.05)

    def test_bsm_fft_boundary_agrees(self):
        dense = exercise_boundary(PUT, 96, model="bsm-fd", method="loop")
        sparse = exercise_boundary(PUT, 96, model="bsm-fd", method="fft")
        dense_map = dict(zip(dense.rows.tolist(), dense.indices.tolist()))
        for row, idx in zip(sparse.rows.tolist(), sparse.indices.tolist()):
            if row in dense_map:
                assert dense_map[row] == idx, f"row {row}"

    def test_rejects_baseline_method(self):
        with pytest.raises(ValidationError):
            exercise_boundary(SPEC, 16, method="zb")


class TestPriceManyDedup:
    """Bit-identical (spec, params) requests are solved once and fanned out."""

    def test_american_duplicates_solved_once(self, monkeypatch):
        from repro.core import api as api_module
        from repro.core.api import price_many

        solved = []
        real = api_module.solve_tree_fft_batch

        def counting(params_list, **kwargs):
            solved.extend(params_list)
            return real(params_list, **kwargs)

        monkeypatch.setattr(api_module, "solve_tree_fft_batch", counting)
        other = dataclasses.replace(SPEC, strike=120.0)
        specs = [SPEC, other, SPEC, SPEC, other]
        results = price_many(specs, 64)
        assert len(solved) == 2  # one solve per distinct contract
        singles = [api_module.price_american(s, 64).price for s in specs[:2]]
        assert [r.price for r in results] == [
            singles[0], singles[1], singles[0], singles[0], singles[1],
        ]
        assert "deduplicated_of" not in results[0].meta
        assert "deduplicated_of" not in results[1].meta
        assert results[2].meta["deduplicated_of"] == 0
        assert results[3].meta["deduplicated_of"] == 0
        assert results[4].meta["deduplicated_of"] == 1

    def test_european_duplicates_batch_once(self, monkeypatch):
        from repro.core.api import price_many
        from repro.core.fftstencil import AdvanceEngine

        batch_sizes = []
        real = AdvanceEngine.advance_batch

        def counting(self, xs, kernels, **kwargs):
            batch_sizes.append(len(xs))
            return real(self, xs, kernels, **kwargs)

        monkeypatch.setattr(AdvanceEngine, "advance_batch", counting)
        euro = SPEC.with_style(Style.EUROPEAN)
        results = price_many([euro, euro, euro], 64)
        assert batch_sizes == [1]  # three requests, one stacked transform row
        assert results[0].price == results[1].price == results[2].price

    def test_duplicate_results_do_not_alias(self):
        from repro.core.api import price_many

        results = price_many([SPEC, SPEC], 64)
        assert results[1].price == results[0].price
        results[1].stats["fft_calls"] = -999
        results[1].meta["tampered"] = True
        assert results[0].stats["fft_calls"] != -999
        assert "tampered" not in results[0].meta

    def test_mixed_styles_keep_input_order(self):
        from repro.core.api import price_many

        euro = SPEC.with_style(Style.EUROPEAN)
        put = dataclasses.replace(SPEC, right=Right.PUT)
        specs = [euro, SPEC, euro, put, SPEC, put]
        results = price_many(specs, 64)
        reference = [price_many([s], 64)[0].price for s in specs]
        assert [r.price for r in results] == reference
