"""Base-row lockstep protocol: ``BaseRowRequest`` batching vs serial rows.

``tests/core/test_solve_batch.py`` pins the *price-level* batch-vs-serial
contract; this file pins the **base-row half of the protocol** introduced
with :meth:`~repro.core.fftstencil.AdvanceEngine.base_rows_batch`
(docs/DESIGN.md §7.6):

* lockstep solves whose naive descents are served row-by-row through the
  batched engine call are **bit-identical** to their serial twins —
  prices, divider sequences, recursion statistics (hypothesis sweeps over
  mixed vol/rate/strike/right batches, trees and FD grids alike);
* the stacked multiply-accumulate + green gather + divider scan agrees
  bitwise with the one-row path for every request shape: ragged lengths,
  stride-1 and stride-2 green slices, extension columns, empty taps,
  ``keep="max"``/``scan=False`` rows, empty windows;
* the consolidation counters (``base_batch_calls``/``base_batch_rows``/
  ``base_block_hits``/``base_block_misses``) measure what the docstrings
  promise, pinned exactly for synchronized batches;
* the Numba fast-path flag degrades silently to the NumPy kernel when
  ``numba`` is absent (this container never ships it).
"""

import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bermudan import (
    price_tree_bermudan_fft,
    price_tree_bermudan_fft_batch,
)
from repro.core.boundary import scan_prefix_boundary
from repro.core.bsm_solver import solve_bsm_fft, solve_bsm_fft_batch
from repro.core.fftstencil import (
    MAC_STACK_MAX_KERNEL,
    NUMBA_ENV_FLAG,
    AdvanceEngine,
)
from repro.core.lockstep import BaseRowRequest
from repro.core.tree_solver import solve_tree_fft, solve_tree_fft_batch
from repro.options.contract import OptionSpec, Right, paper_benchmark_spec
from repro.options.params import BinomialParams, BSMGridParams, TrinomialParams

SPEC = paper_benchmark_spec()


def _strike(k):
    return dataclasses.replace(SPEC, strike=k)


def _call_spec(strike, vol, rate, dividend):
    return OptionSpec(
        spot=100.0, strike=strike, rate=rate, volatility=vol,
        dividend_yield=dividend, expiry_days=252.0, right=Right.CALL,
    )


tree_param_strategy = st.builds(
    _call_spec,
    strike=st.floats(70.0, 140.0),
    vol=st.floats(0.12, 0.5),
    rate=st.floats(0.0, 0.08),
    dividend=st.floats(0.005, 0.06),
)


class TestLockstepBitIdentity:
    """Batched base rows never change a solve: strict ``==``, no tolerance."""

    @settings(max_examples=15, deadline=None)
    @given(
        specs=st.lists(tree_param_strategy, min_size=1, max_size=5),
        model=st.sampled_from([BinomialParams, TrinomialParams]),
    )
    def test_tree_batches_bit_identical(self, specs, model):
        plist = [model.from_spec(s, 48) for s in specs]
        engine = AdvanceEngine()
        batch = solve_tree_fft_batch(plist, engine=engine)
        for p, b in zip(plist, batch):
            s = solve_tree_fft(p)
            assert b.price == s.price  # bitwise, not approx
            assert b.stats.base_rows == s.stats.base_rows
            assert b.meta["batched"] is True

    @settings(max_examples=10, deadline=None)
    @given(
        vols=st.lists(st.floats(0.12, 0.5), min_size=1, max_size=4),
        rate=st.floats(0.005, 0.08),
    )
    def test_fd_batches_bit_identical(self, vols, rate):
        specs = [
            dataclasses.replace(
                SPEC, right=Right.PUT, dividend_yield=0.0,
                volatility=v, rate=rate,
            )
            for v in vols
        ]
        plist = [BSMGridParams.from_spec(s, 48) for s in specs]
        batch = solve_bsm_fft_batch(plist)
        for p, b in zip(plist, batch):
            s = solve_bsm_fft(p)
            assert b.price == s.price
            assert b.meta["batched"] is True

    def test_mixed_tree_and_fd_rows_share_one_engine(self):
        """Tree (stride-2) and FD (stride-1) rows batched through the same
        engine in one session leave both bit-identical to serial."""
        engine = AdvanceEngine()
        tp = [BinomialParams.from_spec(_call_spec(k, 0.3, 0.04, 0.02), 48)
              for k in (90.0, 110.0)]
        fp = [BSMGridParams.from_spec(
            dataclasses.replace(
                SPEC, right=Right.PUT, dividend_yield=0.0, volatility=v
            ), 48)
            for v in (0.2, 0.35)]
        tb = solve_tree_fft_batch(tp, engine=engine)
        fb = solve_bsm_fft_batch(fp, engine=engine)
        assert [r.price for r in tb] == [solve_tree_fft(p).price for p in tp]
        assert [r.price for r in fb] == [solve_bsm_fft(p).price for p in fp]


class TestDividerSequences:
    """The batched divider scan reproduces the serial boundary exactly."""

    def test_paper_spec_boundary_pins(self):
        p = BinomialParams.from_spec(SPEC, 64)
        serial = solve_tree_fft(p, record_boundary=True)
        batch, other = solve_tree_fft_batch(
            [p, BinomialParams.from_spec(_strike(120.0), 64)],
            record_boundary=True,
        )
        assert batch.boundary.points == serial.boundary.points
        # literal pins for the paper benchmark contract at T=64: the naive
        # base fills the all-red ramp row-by-row and the deep rows settle
        # on the lattice's exercise column
        pts = serial.boundary.points
        assert {r: pts[r] for r in (0, 1, 2, 5)} == {0: 0, 1: 1, 2: 2, 5: 5}
        assert pts[63] == 32 and pts[64] == 32
        assert serial.price == pytest.approx(
            8.361549456522944, rel=1e-12, abs=0.0
        )
        assert other.boundary.points != serial.boundary.points

    @pytest.mark.parametrize("strikes", [(85.0, 100.0, 130.0)])
    def test_heterogeneous_boundaries_batch_equals_serial(self, strikes):
        plist = [BinomialParams.from_spec(_strike(k), 96)
                 for k in strikes]
        batch = solve_tree_fft_batch(plist, record_boundary=True)
        for p, b in zip(plist, batch):
            s = solve_tree_fft(p, record_boundary=True)
            assert b.boundary.points == s.boundary.points

    def test_divider_exit_rows_in_lockstep(self):
        """A deep-ITM dividend call exercises immediately (the naive strip
        hits the divider-exit path); batching it next to ordinary
        contracts changes nothing."""
        deep = _call_spec(60.0, 0.15, 0.01, 0.08)
        plain = _call_spec(100.0, 0.3, 0.04, 0.02)
        plist = [BinomialParams.from_spec(s, 64) for s in (deep, plain)]
        batch = solve_tree_fft_batch(plist)
        for p, b in zip(plist, batch):
            s = solve_tree_fft(p)
            assert b.price == s.price
            assert b.stats.base_rows == s.stats.base_rows
        assert batch[0].price == pytest.approx(
            deep.spot - deep.strike, rel=1e-10
        )


def _serve_rows_individually(engine, reqs):
    outs, divs = [], []
    for r in reqs:
        vs, ds, _ = engine.base_rows_batch([r])
        outs.append(vs[0])
        divs.append(ds[0])
    return outs, divs


def _req(values, taps, table, g_start, g_stride=1, e_len=0, e_start=0,
         keep="prefix", scan=True, green=None):
    return BaseRowRequest(
        values=np.asarray(values, dtype=np.float64),
        taps=np.asarray(taps, dtype=np.float64),
        table=table, g_start=g_start, g_stride=g_stride,
        e_start=e_start, e_len=e_len, green=green, keep=keep, scan=scan,
    )


class TestBaseRowsBatchUnit:
    """Direct engine calls: stacked path == one-row path, bit for bit."""

    def test_empty_window_row(self):
        # n = len(values) - (nt - 1) = 0: nothing to keep, divider -1
        r = _req([5.0], [0.5, 0.5], None, 0, green=np.array([]))
        outs, divs, _ = AdvanceEngine().base_rows_batch([r])
        assert outs[0].shape == (0,) and outs[0].dtype == np.float64
        assert divs[0] == -1

    def test_empty_taps_is_identity_max(self):
        # nt=0 (a Bermudan exercise date): pure max against green
        v = np.array([3.0, 1.0, 4.0, 1.0])
        g = np.array([2.0, 2.0, 2.0, 2.0])
        r = _req(v, [], None, 0, keep="max", scan=True, green=g)
        outs, divs, _ = AdvanceEngine().base_rows_batch([r])
        np.testing.assert_array_equal(outs[0], np.maximum(v, g))
        assert divs[0] == scan_prefix_boundary(g >= v)

    def test_scan_false_skips_divider(self):
        v = np.array([1.0, 2.0, 3.0])
        g = np.array([9.0, 9.0, 9.0])
        r = _req(v, [], None, 0, keep="max", scan=False, green=g)
        outs, divs, _ = AdvanceEngine().base_rows_batch([r])
        assert divs[0] == -1
        np.testing.assert_array_equal(outs[0], g)

    def test_prefix_row_matches_manual_numpy(self):
        rng = np.random.default_rng(3)
        table = rng.uniform(0.0, 50.0, size=64)
        v = rng.uniform(0.0, 50.0, size=12)
        taps = np.array([0.45, 0.55])
        r = _req(v, taps, table, g_start=10, g_stride=2)
        outs, divs, _ = AdvanceEngine().base_rows_batch([r])
        cont = np.correlate(v, taps, mode="valid")
        grn = table[10 : 10 + 2 * cont.shape[0] : 2]
        d = scan_prefix_boundary(cont >= grn)
        assert divs[0] == d
        np.testing.assert_array_equal(outs[0], cont[: d + 1])

    def test_extension_columns_match_manual_numpy(self):
        rng = np.random.default_rng(4)
        table = rng.uniform(0.0, 50.0, size=64)
        v = rng.uniform(0.0, 50.0, size=8)
        taps = np.array([0.3, 0.3, 0.4])
        e_start, e_len = 40, 3
        r = _req(v, taps, table, g_start=2, g_stride=2,
                 e_start=e_start, e_len=e_len)
        outs, divs, _ = AdvanceEngine().base_rows_batch([r])
        x = np.concatenate([v, table[e_start : e_start + 2 * e_len : 2]])
        cont = np.correlate(x, taps, mode="valid")
        grn = table[2 : 2 + 2 * cont.shape[0] : 2]
        d = scan_prefix_boundary(cont >= grn)
        assert divs[0] == d
        np.testing.assert_array_equal(outs[0], cont[: d + 1])

    def test_all_red_and_all_green_rows(self):
        v = np.array([10.0, 10.0, 10.0, 10.0])
        taps = np.array([0.5, 0.5])
        low = np.zeros(3)
        high = np.full(3, 99.0)
        r_red = _req(v, taps, None, 0, green=low)
        r_green = _req(v, taps, None, 0, green=high)
        outs, divs, _ = AdvanceEngine().base_rows_batch([r_red, r_green])
        assert divs[0] == 2 and outs[0].shape == (3,)  # whole row red
        assert divs[1] == -1 and outs[1].shape == (0,)  # divider before row

    def test_stacked_equals_one_row_path_ragged(self):
        """G>1 super-grouped serve == G separate G==1 serves, bitwise —
        ragged lengths across two length buckets, shared stride."""
        rng = np.random.default_rng(7)
        table = rng.uniform(0.0, 80.0, size=256)
        taps = np.array([0.48, 0.52])
        lens = [4, 9, 17, 33]  # spans >1 bit_length bucket
        def build():
            return [
                _req(rng.uniform(0.0, 80.0, size=L), taps, table,
                     g_start=2 * i, g_stride=2)
                for i, L in enumerate(lens)
            ]
        e1 = AdvanceEngine()
        outs_one, divs_one = _serve_rows_individually(e1, build())
        rng = np.random.default_rng(7)  # replay the same windows
        table = rng.uniform(0.0, 80.0, size=256)
        e2 = AdvanceEngine()
        outs_st, divs_st, _ = e2.base_rows_batch(build())
        assert divs_st == divs_one
        for a, b in zip(outs_st, outs_one):
            np.testing.assert_array_equal(a, b)

    def test_mixed_kinds_group_independently(self):
        """One call mixing prefix/stride-2, max/stride-1 and empty-taps
        rows groups by kcode and still matches per-row serves."""
        rng = np.random.default_rng(11)
        table = rng.uniform(0.0, 60.0, size=128)
        reqs = [
            _req(rng.uniform(0.0, 60.0, size=10), [0.45, 0.55], table,
                 g_start=4, g_stride=2),
            _req(rng.uniform(0.0, 60.0, size=7), [0.2, 0.5, 0.3], table,
                 g_start=1, g_stride=1, keep="max"),
            _req(rng.uniform(0.0, 60.0, size=5), [], None, 0,
                 keep="max", scan=False,
                 green=rng.uniform(0.0, 60.0, size=5)),
        ]
        ref_outs, ref_divs = _serve_rows_individually(AdvanceEngine(), reqs)
        outs, divs, _ = AdvanceEngine().base_rows_batch(reqs)
        assert divs == ref_divs
        for a, b in zip(outs, ref_outs):
            np.testing.assert_array_equal(a, b)

    def test_empty_batch(self):
        outs, divs, rec = AdvanceEngine().base_rows_batch([])
        assert outs == [] and divs == []


class TestAdvanceBatchMacBoundary:
    """advance_batch's stacked-MAC cutoff: both sides of
    ``MAC_STACK_MAX_KERNEL`` agree bitwise with per-row advances."""

    @pytest.mark.parametrize(
        "h", [MAC_STACK_MAX_KERNEL - 1, MAC_STACK_MAX_KERNEL]
    )
    def test_direct_group_both_sides_of_cutoff(self, h):
        # binomial taps (q=1): kernel_len = h + 1, so h=10 -> 11 (stacked
        # MAC) and h=11 -> 12 (per-row correlate fallback)
        rng = np.random.default_rng(h)
        taps = (0.47, 0.53)
        xs = [rng.uniform(0.0, 90.0, size=L) for L in (20, 25, 31)]
        engine = AdvanceEngine()
        ys, _ = engine.advance_batch(
            [np.asarray(x) for x in xs], [(taps, h)] * 3
        )
        ref = AdvanceEngine()
        for x, y in zip(xs, ys):
            y1, _ = ref.advance(np.asarray(x), taps, h)
            np.testing.assert_array_equal(y, y1)


class TestCounters:
    """The consolidation counters measure what the bench gates rely on."""

    def test_synchronized_batch_rows_per_call_is_exact(self):
        """B identical lattices stay live together: every base round
        serves exactly B rows, and each solver's table registers once."""
        B = 8
        plist = [BinomialParams.from_spec(SPEC, 64) for _ in range(B)]
        engine = AdvanceEngine()
        before = engine.cache_info()
        results = solve_tree_fft_batch(plist, engine=engine)
        after = engine.cache_info()
        calls = after["base_batch_calls"] - before["base_batch_calls"]
        rows = after["base_batch_rows"] - before["base_batch_rows"]
        misses = after["base_block_misses"] - before["base_block_misses"]
        assert calls > 0
        assert rows == B * calls  # perfect lockstep: B rows every round
        assert misses == B  # one green table per solver, registered once
        assert after["base_block_hits"] > before["base_block_hits"]
        assert rows == sum(r.stats.base_batch_rows for r in results)

    def test_engine_delta_carries_base_row_counters(self):
        plist = [BinomialParams.from_spec(_strike(k), 48)
                 for k in (90.0, 100.0, 110.0)]
        results = solve_tree_fft_batch(plist)
        delta = results[0].meta["engine"]
        for key in ("base_batch_calls", "base_batch_rows",
                    "base_block_hits", "base_block_misses"):
            assert key in delta
        assert delta["base_batch_rows"] > 0
        # consolidation: strictly fewer engine calls than rows served
        assert delta["base_batch_calls"] < delta["base_batch_rows"]

    def test_serial_path_never_counts_batch_rows(self):
        r = solve_tree_fft(BinomialParams.from_spec(SPEC, 48))
        assert r.stats.base_batch_rows == 0
        assert r.stats.base_rows > 0


class TestNumbaFallback:
    """No numba in this container: every spelling of "fast path on" must
    degrade silently to the NumPy kernel with identical results."""

    def test_numba_absent(self):
        try:
            import numba  # noqa: F401
            pytest.skip("container unexpectedly ships numba")
        except ImportError:
            pass

    @pytest.mark.parametrize("how", ["kwarg", "env"])
    def test_flag_on_without_numba_is_silent_and_identical(
        self, how, monkeypatch
    ):
        if how == "env":
            monkeypatch.setenv(NUMBA_ENV_FLAG, "1")
            engine = AdvanceEngine()
        else:
            monkeypatch.delenv(NUMBA_ENV_FLAG, raising=False)
            engine = AdvanceEngine(use_numba=True)
        plist = [BinomialParams.from_spec(_strike(k), 48)
                 for k in (95.0, 105.0)]
        flagged = solve_tree_fft_batch(plist, engine=engine)
        plain = solve_tree_fft_batch(plist, engine=AdvanceEngine())
        assert [r.price for r in flagged] == [r.price for r in plain]

    def test_env_flag_off_values(self, monkeypatch):
        for off in ("", "0"):
            monkeypatch.setenv(NUMBA_ENV_FLAG, off)
            assert AdvanceEngine()._numba_mac is None


class TestBermudanBatch:
    def test_shared_schedule_bit_identical(self):
        plist = [BinomialParams.from_spec(_strike(k), 64)
                 for k in (90.0, 100.0, 115.0)]
        schedule = (16, 32, 48)
        batch = price_tree_bermudan_fft_batch(plist, schedule)
        for p, b in zip(plist, batch):
            s = price_tree_bermudan_fft(p, schedule)
            assert b.price == s.price
            assert b.meta["batched"] is True

    def test_per_contract_schedules_bit_identical(self):
        plist = [BinomialParams.from_spec(_strike(k), 64)
                 for k in (95.0, 110.0)]
        schedules = [(8, 24), (16, 32, 48)]
        batch = price_tree_bermudan_fft_batch(plist, schedules)
        for p, sched, b in zip(plist, schedules, batch):
            assert b.price == price_tree_bermudan_fft(p, sched).price
