"""Tests for the plan-caching AdvanceEngine (docs/DESIGN.md §3)."""

import dataclasses

import numpy as np
import pytest

from repro.core.api import price_american, price_european, price_many
from repro.core.fftstencil import AdvanceEngine, AdvancePolicy, advance
from repro.core.tree_solver import solve_tree_fft
from repro.options.contract import Style, paper_benchmark_spec
from repro.options.params import BinomialParams, TrinomialParams
from repro.util.validation import ValidationError

SPEC = paper_benchmark_spec()
TAPS_2 = (0.45, 0.52)
TAPS_3 = (0.2, 0.5, 0.25)


def naive_steps(x, taps, h):
    y = np.asarray(x, dtype=np.float64)
    for _ in range(h):
        acc = taps[0] * y[: len(y) - len(taps) + 1]
        for k in range(1, len(taps)):
            acc = acc + taps[k] * y[k : k + len(y) - len(taps) + 1]
        y = acc
    return y


class TestEngineEquivalence:
    @pytest.mark.parametrize("mode", ["auto", "fft", "direct"])
    @pytest.mark.parametrize("taps", [TAPS_2, TAPS_3])
    @pytest.mark.parametrize("h", [2, 7, 33])
    def test_matches_legacy_advance(self, mode, taps, h):
        """Engine output == stateless advance() == fftconvolve reference."""
        rng = np.random.default_rng(7)
        x = rng.uniform(0, 100.0, size=(len(taps) - 1) * h + 41)
        policy = AdvancePolicy(mode=mode)
        engine = AdvanceEngine(policy)
        legacy = AdvanceEngine(policy, reuse=False)
        y_eng, rec_eng = engine.advance(x, taps, h, scale=100.0)
        y_fn, rec_fn = advance(x, taps, h, scale=100.0, policy=policy)
        y_old, rec_old = legacy.advance(x, taps, h, scale=100.0)
        ref = naive_steps(x, taps, h)
        for y in (y_eng, y_fn, y_old):
            np.testing.assert_allclose(y, ref, rtol=1e-9, atol=1e-9)
        assert rec_eng.method == rec_fn.method == rec_old.method
        # the legacy fftconvolve path never consults the spectrum cache
        assert rec_old.spectrum_hit is None

    @pytest.mark.parametrize("taps", [TAPS_2, TAPS_3])
    def test_h0_is_independent_copy(self, taps):
        engine = AdvanceEngine()
        x = np.ones(9)
        y, rec = engine.advance(x, taps, 0)
        y[0] = 5.0
        assert x[0] == 1.0
        assert rec.method == "copy" and rec.h == 0

    @pytest.mark.parametrize("taps", [TAPS_2, TAPS_3])
    def test_h1_matches_single_step(self, taps):
        rng = np.random.default_rng(3)
        x = rng.uniform(0, 10.0, size=25)
        y, _ = AdvanceEngine(AdvancePolicy(mode="fft")).advance(x, taps, 1)
        np.testing.assert_allclose(y, naive_steps(x, taps, 1), rtol=1e-12)

    def test_too_short_input(self):
        with pytest.raises(ValidationError, match="too short"):
            AdvanceEngine().advance(np.ones(5), TAPS_2, 10)

    def test_repeated_same_shape_hits_cache(self):
        engine = AdvanceEngine(AdvancePolicy(mode="fft"))
        x = np.linspace(0.0, 1.0, 200)
        engine.advance(x, TAPS_2, 40)
        assert engine.cache_info()["spectrum_misses"] == 1
        for _ in range(5):
            engine.advance(x, TAPS_2, 40)
        info = engine.cache_info()
        assert info["spectrum_hits"] == 5 and info["spectrum_misses"] == 1


class TestAdvanceMany:
    @pytest.mark.parametrize("mode", ["auto", "fft", "direct"])
    def test_batched_matches_sequential(self, mode):
        """Mixed lengths; batched outputs == per-input engine advances."""
        rng = np.random.default_rng(11)
        h = 20
        xs = [
            rng.uniform(0, 50.0, size=n)
            for n in (2 * h + 1, 2 * h + 1, 3 * h + 7, 2 * h + 1, 5 * h)
        ]
        policy = AdvancePolicy(mode=mode)
        ys, rec = AdvanceEngine(policy).advance_many(xs, TAPS_3, h, scale=50.0)
        assert rec.batch == len(xs)
        for x, y in zip(xs, ys):
            y_ref, _ = AdvanceEngine(policy).advance(x, TAPS_3, h, scale=50.0)
            np.testing.assert_allclose(y, y_ref, rtol=1e-10, atol=1e-10)

    def test_h0_and_empty(self):
        engine = AdvanceEngine()
        ys, rec = engine.advance_many([np.ones(4), np.zeros(6)], TAPS_2, 0)
        assert [len(y) for y in ys] == [4, 6] and rec.method == "copy"
        ys, rec = engine.advance_many([], TAPS_2, 5)
        assert ys == [] and rec.batch == 0

    def test_same_length_inputs_share_one_spectrum(self):
        rng = np.random.default_rng(2)
        engine = AdvanceEngine(AdvancePolicy(mode="fft"))
        xs = [rng.uniform(0, 1.0, size=300) for _ in range(8)]
        engine.advance_many(xs, TAPS_2, 60)
        info = engine.cache_info()
        assert info["spectrum_misses"] == 1
        assert info["batched_inputs"] == 8

    def test_mixed_group_record_counts_exactly(self):
        """Record carries per-group hit/miss counts; all-hit only when true."""
        rng = np.random.default_rng(4)
        engine = AdvanceEngine(AdvancePolicy(mode="fft"))
        engine.advance(rng.uniform(0, 1.0, size=300), TAPS_2, 60)  # warm len 300
        xs = [rng.uniform(0, 1.0, size=n) for n in (300, 300, 450)]
        _, rec = engine.advance_many(xs, TAPS_2, 60)
        assert rec.spectrum_hits == 1 and rec.spectrum_misses == 1
        assert rec.spectrum_hit is False  # one group missed
        _, rec2 = engine.advance_many(xs, TAPS_2, 60)
        assert rec2.spectrum_hit is True and rec2.spectrum_misses == 0


class TestEngineInSolvers:
    def test_solve_tree_fft_reuses_spectra(self):
        """Regression: a T=4096 solve must hit the kernel-spectrum cache."""
        params = BinomialParams.from_spec(SPEC, 4096)
        engine = AdvanceEngine()
        r = solve_tree_fft(params, engine=engine)
        assert engine.cache_info()["spectrum_hits"] > 0
        assert r.stats.spectrum_hits > 0
        assert r.meta["engine"]["spectrum_hits"] == engine.spectrum_hits
        # amortisation: strictly fewer kernel transforms than fft advances
        assert r.stats.spectrum_misses < r.stats.fft_calls

    @pytest.mark.parametrize("T", [512, 1023])
    @pytest.mark.parametrize("cls", [BinomialParams, TrinomialParams])
    def test_engine_price_matches_legacy_solver(self, T, cls):
        params = cls.from_spec(SPEC, T)
        new = solve_tree_fft(params, engine=AdvanceEngine())
        old = solve_tree_fft(params, engine=AdvanceEngine(reuse=False))
        assert new.price == pytest.approx(old.price, rel=1e-10)

    def test_shared_engine_across_solves(self):
        """A second same-parameter solve starts warm (cross-solve reuse)."""
        params = BinomialParams.from_spec(SPEC, 2048)
        engine = AdvanceEngine()
        solve_tree_fft(params, engine=engine)
        misses_first = engine.spectrum_misses
        solve_tree_fft(params, engine=engine)
        assert engine.spectrum_misses == misses_first

    def test_meta_engine_reports_per_solve_deltas(self):
        """With a shared engine, each result's meta shows its own activity."""
        params = BinomialParams.from_spec(SPEC, 2048)
        engine = AdvanceEngine()
        r1 = solve_tree_fft(params, engine=engine)
        r2 = solve_tree_fft(params, engine=engine)
        assert r1.meta["engine"]["advances"] == r2.meta["engine"]["advances"]
        # warm second solve transforms no kernels at all
        assert r2.meta["engine"]["spectrum_misses"] == 0
        assert r2.meta["engine"]["spectrum_hits"] > 0

    def test_default_engine_is_thread_safe(self):
        """Concurrent stateless advance() calls don't share scratch buffers."""
        import threading

        rng = np.random.default_rng(5)
        xs = [rng.uniform(0, 100.0, size=400) for _ in range(4)]
        refs = [naive_steps(x, TAPS_2, 80) for x in xs]
        errors = []

        def worker(x, ref):
            for _ in range(50):
                y, _ = advance(x, TAPS_2, 80)
                if not np.allclose(y, ref, rtol=1e-9, atol=1e-9):
                    errors.append("corrupted advance output")
                    return

        threads = [
            threading.Thread(target=worker, args=(x, r)) for x, r in zip(xs, refs)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors


class TestPriceMany:
    def test_portfolio_matches_individual_pricing(self):
        specs = [
            dataclasses.replace(SPEC, strike=k, style=Style.EUROPEAN)
            for k in (80.0, 100.0, 120.0)
        ] + [dataclasses.replace(SPEC, strike=k) for k in (95.0, 105.0)]
        results = price_many(specs, 256)
        assert len(results) == len(specs)
        for spec, r in zip(specs, results):
            if spec.style is Style.EUROPEAN:
                ref = price_european(spec, 256).price
                assert r.meta.get("batched") is True
            else:
                ref = price_american(spec, 256).price
            assert r.price == pytest.approx(ref, rel=1e-10)

    def test_bermudan_specs_rejected(self):
        with pytest.raises(ValidationError, match="Bermudan"):
            price_many([dataclasses.replace(SPEC, style=Style.BERMUDAN)], 64)

    def test_batched_group_charges_one_kernel_transform(self):
        """N same-kernel European contracts report one transform total."""
        specs = [
            dataclasses.replace(SPEC, strike=k, style=Style.EUROPEAN)
            for k in (80.0, 90.0, 100.0, 110.0)
        ]
        results = price_many(specs, 512)
        assert sum(r.stats["spectrum_misses"] for r in results) == 1
        assert all(r.meta["batch_size"] == 4 for r in results)


class TestPrepare:
    def test_prepared_bermudan_jump_hits_spectrum_cache(self):
        """price_tree_bermudan_fft pre-plans its statically known jumps."""
        from repro.core.bermudan import price_tree_bermudan_fft

        params = BinomialParams.from_spec(
            dataclasses.replace(SPEC, style=Style.BERMUDAN), 1024
        )
        engine = AdvanceEngine()
        r = price_tree_bermudan_fft(params, (256, 512, 768), engine=engine)
        # every fft jump found its spectrum precomputed by prepare()
        assert r.stats.spectrum_hits == r.stats.fft_calls > 0

    def test_prepare_skips_invalid_and_zero_heights(self):
        engine = AdvanceEngine()
        engine.prepare(TAPS_2, [(0, 100), (50, 10), (20, 100)])
        # only the (20, 100) job is a valid advance shape
        assert engine.cache_info()["cached_spectra"] == 1
