"""SolveStats/SolveReport: the counter surface the harness reports on."""

import dataclasses

from repro.core.metrics import SolveReport, SolveStats


class TestAsDict:
    def test_every_declared_field_is_reported(self):
        # as_dict is derived from the dataclass fields, so a counter added
        # to the class can never be silently missing from reports (the
        # base_batch_rows drift this guards against)
        stats = SolveStats()
        d = stats.as_dict()
        assert set(d) == {f.name for f in dataclasses.fields(SolveStats)}

    def test_dict_order_matches_declaration_order(self):
        names = [f.name for f in dataclasses.fields(SolveStats)]
        assert list(SolveStats().as_dict()) == names

    def test_values_are_live_not_defaults(self):
        stats = SolveStats()
        stats.note_advance("fft", 128, spectrum_hit=True)
        stats.note_advance("direct", 16)
        stats.base_batch_rows += 7
        d = stats.as_dict()
        assert d["fft_calls"] == 1
        assert d["fft_points"] == 128
        assert d["spectrum_hits"] == 1
        assert d["direct_calls"] == 1
        assert d["direct_points"] == 16
        assert d["base_batch_rows"] == 7

    def test_note_depth_keeps_the_maximum(self):
        stats = SolveStats()
        for depth in (2, 5, 3):
            stats.note_depth(depth)
        assert stats.as_dict()["max_depth"] == 5


class TestSolveReport:
    def test_fresh_report_carries_zeroed_stats(self):
        report = SolveReport()
        assert all(v == 0 for v in report.stats.as_dict().values())
        assert report.notes == []
