"""Tests for exact put–call symmetry pricing."""

import dataclasses

import pytest
from hypothesis import given

from repro.core.symmetry import solve_put_via_symmetry
from repro.lattice.binomial import price_binomial
from repro.lattice.trinomial import price_trinomial
from repro.options.contract import OptionSpec, Right, paper_benchmark_spec
from repro.util.validation import ValidationError
from tests.conftest import put_specs


def make_put(**kw):
    defaults = dict(
        spot=100.0,
        strike=110.0,
        rate=0.04,
        volatility=0.25,
        dividend_yield=0.015,
        right=Right.PUT,
    )
    defaults.update(kw)
    return OptionSpec(**defaults)


class TestBinomialSymmetry:
    @pytest.mark.parametrize("T", [1, 2, 5, 16, 64, 257])
    def test_matches_vanilla_put(self, T):
        """The symmetry is exact on CRR lattices — machine-precision match."""
        spec = make_put()
        sym = solve_put_via_symmetry(spec, T).price
        direct = price_binomial(spec, T).price
        assert sym == pytest.approx(direct, abs=1e-10 * spec.strike)

    def test_paper_spec_put(self):
        spec = dataclasses.replace(paper_benchmark_spec(), right=Right.PUT)
        sym = solve_put_via_symmetry(spec, 512).price
        direct = price_binomial(spec, 512).price
        assert sym == pytest.approx(direct, abs=1e-10 * spec.strike)

    def test_zero_rate_put(self):
        """R=0 put maps to a zero-dividend dual call (all-red dual)."""
        spec = make_put(rate=0.0, dividend_yield=0.03)
        sym = solve_put_via_symmetry(spec, 128).price
        assert sym == pytest.approx(
            price_binomial(spec, 128).price, abs=1e-10 * spec.strike
        )

    @given(spec=put_specs())
    def test_property_exactness(self, spec):
        sym = solve_put_via_symmetry(spec, 64).price
        direct = price_binomial(spec, 64).price
        assert sym == pytest.approx(direct, abs=1e-9 * spec.strike)


class TestTrinomialSymmetry:
    @pytest.mark.parametrize("T", [1, 2, 5, 16, 64])
    def test_matches_vanilla_put(self, T):
        spec = make_put()
        sym = solve_put_via_symmetry(spec, T, model="trinomial").price
        direct = price_trinomial(spec, T).price
        assert sym == pytest.approx(direct, abs=1e-10 * spec.strike)


class TestErrors:
    def test_rejects_call(self):
        with pytest.raises(ValidationError):
            solve_put_via_symmetry(make_put().with_right(Right.CALL), 16)

    def test_rejects_unknown_model(self):
        with pytest.raises(ValidationError):
            solve_put_via_symmetry(make_put(), 16, model="quadrinomial")

    def test_meta_records_dual(self):
        spec = make_put()
        r = solve_put_via_symmetry(spec, 16)
        assert r.meta["symmetric_dual_of"] == spec
