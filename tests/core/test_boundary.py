"""Tests for divider scanning, recording and invariant checking."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.boundary import (
    BoundaryRecorder,
    check_bsm_boundary_invariants,
    check_tree_boundary_invariants,
    is_prefix_mask,
    scan_prefix_boundary,
)


class TestScanPrefixBoundary:
    def test_empty(self):
        assert scan_prefix_boundary(np.array([], dtype=bool)) == -1

    def test_all_true(self):
        assert scan_prefix_boundary(np.array([True, True, True])) == 2

    def test_all_false(self):
        assert scan_prefix_boundary(np.array([False, False])) == -1

    def test_proper_prefix(self):
        assert scan_prefix_boundary(np.array([True, True, False, False])) == 1

    def test_noise_after_divider_ignored(self):
        """First-False semantics: a stray True past the divider is ignored."""
        assert scan_prefix_boundary(np.array([True, False, True])) == 0

    @given(st.integers(0, 20), st.integers(0, 20))
    def test_property_constructed_prefix(self, a, b):
        mask = np.array([True] * a + [False] * b)
        assert scan_prefix_boundary(mask) == a - 1


class TestIsPrefixMask:
    def test_valid_prefixes(self):
        assert is_prefix_mask(np.array([], dtype=bool))
        assert is_prefix_mask(np.array([True, False]))
        assert is_prefix_mask(np.array([False, False]))
        assert is_prefix_mask(np.array([True, True]))

    def test_invalid(self):
        assert not is_prefix_mask(np.array([False, True]))
        assert not is_prefix_mask(np.array([True, False, True]))


class TestRecorder:
    def test_record_and_expand(self):
        r = BoundaryRecorder()
        r.record(3, 5)
        r.record(0, 1)
        arr = r.as_array(4, fill=-99)
        assert arr[3] == 5
        assert arr[0] == 1
        assert arr[1] == -99

    def test_overwrite_keeps_latest(self):
        r = BoundaryRecorder()
        r.record(2, 1)
        r.record(2, 4)
        assert r.points[2] == 4

    def test_out_of_range_rows_dropped_in_array(self):
        r = BoundaryRecorder()
        r.record(10, 3)
        arr = r.as_array(4)
        assert arr.shape == (5,)


class TestTreeInvariantChecker:
    def test_clean_boundary_passes(self):
        # divider drops by one every other row: legal
        b = np.array([0, 1, 1, 2, 3], dtype=np.int64)
        assert check_tree_boundary_invariants(b, steps=4, columns_per_row=1) == []

    def test_fast_drop_flagged(self):
        # j_1 = 0 while j_2 = 2: a two-cell drop in one step
        b = np.array([0, 0, 2, 3, 4], dtype=np.int64)
        v = check_tree_boundary_invariants(b, steps=4, columns_per_row=1)
        assert any(x.kind == "movement" for x in v)

    def test_rightward_jump_flagged(self):
        b = np.array([3, 1, 2, 3, 4], dtype=np.int64)
        v = check_tree_boundary_invariants(b, steps=4, columns_per_row=1)
        assert v  # j_0=3 > j_1=1

    def test_row_end_clamp_allowed_q2(self):
        # fully red rows pin the divider to 2i; the drop of 2 between
        # consecutive fully-red rows is legal clamping, not a violation
        b = np.array([0, 2, 4, 6, 8], dtype=np.int64)
        assert check_tree_boundary_invariants(b, steps=4, columns_per_row=2) == []

    def test_out_of_range_flagged(self):
        b = np.array([0, 5, 2, 3, 4], dtype=np.int64)
        v = check_tree_boundary_invariants(b, steps=4, columns_per_row=1)
        assert any(x.kind == "range" for x in v)


class TestBSMInvariantChecker:
    def test_monotone_decreasing_passes(self):
        b = np.array([5, 5, 4, 4, 3], dtype=np.int64)
        assert check_bsm_boundary_invariants(b, steps=4) == []

    def test_increase_flagged(self):
        b = np.array([3, 4, 4, 4, 4], dtype=np.int64)
        assert check_bsm_boundary_invariants(b, steps=4)

    def test_fast_drop_flagged(self):
        b = np.array([5, 3, 3, 3, 3], dtype=np.int64)
        assert check_bsm_boundary_invariants(b, steps=4)

    def test_missing_rows_skipped(self):
        b = np.array([5, -99, 4, -99, 3], dtype=np.int64)
        assert check_bsm_boundary_invariants(b, steps=4, missing=-99) == []
