"""Tests for fft-bopm / fft-topm against the vanilla oracle.

The central correctness contract of the reproduction: the O(T log²T)
trapezoid-decomposition solver must agree with the Θ(T²) sweep to floating-
point noise for *every* parameter regime, including the degenerate ones
(all-red, all-green, divider at row ends, tiny T).
"""

import dataclasses

import numpy as np
import pytest
from hypothesis import given

from repro.core.fftstencil import AdvancePolicy
from repro.core.tree_solver import solve_tree_fft
from repro.lattice.binomial import price_binomial
from repro.lattice.trinomial import price_trinomial
from repro.options.contract import OptionSpec, Right, Style, paper_benchmark_spec
from repro.options.params import BinomialParams, TrinomialParams
from repro.util.validation import ValidationError
from tests.conftest import call_specs, small_steps

SPEC = paper_benchmark_spec()


def fft_price(spec, T, model="binomial", **kw):
    params = (
        BinomialParams.from_spec(spec, T)
        if model == "binomial"
        else TrinomialParams.from_spec(spec, T)
    )
    return solve_tree_fft(params, **kw)


def loop_price(spec, T, model="binomial"):
    fn = price_binomial if model == "binomial" else price_trinomial
    return fn(spec, T).price


class TestAgreementBOPM:
    @pytest.mark.parametrize("T", [1, 2, 3, 4, 7, 8, 9, 15, 16, 17, 63, 100, 256, 999])
    def test_paper_spec_all_T(self, T):
        assert fft_price(SPEC, T).price == pytest.approx(
            loop_price(SPEC, T), abs=1e-9 * SPEC.strike
        )

    @pytest.mark.parametrize(
        "kw",
        [
            dict(spot=50.0, strike=150.0),  # deep OTM
            dict(spot=300.0, strike=100.0),  # deep ITM
            dict(spot=300.0, strike=100.0, dividend_yield=0.15),  # huge yield
            dict(dividend_yield=0.0),  # all-red regime (no early exercise)
            dict(rate=0.0, dividend_yield=0.05),  # zero rate
            dict(volatility=0.02, expiry_days=504.0, dividend_yield=0.0),
            dict(volatility=0.9),
        ],
    )
    def test_parameter_extremes(self, kw):
        defaults = dict(
            spot=100.0, strike=100.0, rate=0.02, volatility=0.2, dividend_yield=0.03
        )
        defaults.update(kw)
        spec = OptionSpec(**defaults)
        for T in (5, 64, 257):
            assert fft_price(spec, T).price == pytest.approx(
                loop_price(spec, T), abs=1e-8 * spec.strike
            ), (kw, T)

    @given(spec=call_specs(), T=small_steps())
    def test_property_agreement(self, spec, T):
        assert fft_price(spec, T).price == pytest.approx(
            loop_price(spec, T), abs=1e-8 * spec.strike
        )

    @pytest.mark.parametrize("base", [1, 2, 4, 8, 21, 64])
    def test_base_invariance(self, base):
        """The recursion base-case height must not change the answer."""
        assert fft_price(SPEC, 300, base=base).price == pytest.approx(
            loop_price(SPEC, 300), abs=1e-9 * SPEC.strike
        )

    @pytest.mark.parametrize("tail", [1, 8, 64, 300])
    def test_tail_invariance(self, tail):
        assert fft_price(SPEC, 300, tail=tail).price == pytest.approx(
            loop_price(SPEC, 300), abs=1e-9 * SPEC.strike
        )

    @pytest.mark.parametrize("mode", ["fft", "direct", "auto"])
    def test_policy_invariance(self, mode):
        price = fft_price(SPEC, 300, policy=AdvancePolicy(mode=mode)).price
        assert price == pytest.approx(loop_price(SPEC, 300), abs=1e-9 * SPEC.strike)


class TestAgreementTOPM:
    @pytest.mark.parametrize("T", [1, 2, 3, 5, 8, 13, 16, 33, 100, 256, 500])
    def test_paper_spec_all_T(self, T):
        assert fft_price(SPEC, T, "trinomial").price == pytest.approx(
            loop_price(SPEC, T, "trinomial"), abs=1e-9 * SPEC.strike
        )

    @given(spec=call_specs(), T=small_steps())
    def test_property_agreement(self, spec, T):
        assert fft_price(spec, T, "trinomial").price == pytest.approx(
            loop_price(spec, T, "trinomial"), abs=1e-8 * spec.strike
        )

    def test_zero_dividend_all_red(self):
        spec = dataclasses.replace(SPEC, dividend_yield=0.0)
        assert fft_price(spec, 400, "trinomial").price == pytest.approx(
            loop_price(spec, 400, "trinomial"), abs=1e-8 * spec.strike
        )


class TestStructure:
    def test_uses_fft_at_scale(self):
        r = fft_price(SPEC, 2048)
        assert r.stats.fft_calls > 0
        assert r.stats.trapezoids > 0

    def test_subquadratic_cells(self):
        """The solver must evaluate far fewer cells than the T²/2 grid."""
        T = 4096
        r = fft_price(SPEC, T)
        assert r.stats.cells_evaluated < 0.2 * T * T / 2

    def test_workspan_subquadratic(self):
        w1 = fft_price(SPEC, 1024).workspan.work
        w2 = fft_price(SPEC, 4096).workspan.work
        # quadrupling T must grow work far less than 16x (Θ(T log²T))
        assert w2 / w1 < 8.0

    def test_span_linear(self):
        s1 = fft_price(SPEC, 1024).workspan.span
        s2 = fft_price(SPEC, 4096).workspan.span
        assert s2 / s1 < 6.0  # Θ(T) with log wiggle

    def test_all_red_uses_pure_fft(self):
        """Y=0: no green region, the whole solve is linear jumps."""
        spec = dataclasses.replace(SPEC, dividend_yield=0.0)
        r = fft_price(spec, 1024)
        assert r.stats.base_rows <= 2 * 32 + 64  # only the sqrt(T) tail

    def test_result_metadata(self):
        r = fft_price(SPEC, 100)
        assert r.steps == 100
        assert r.meta["model"] == "binomial"
        assert r.meta["base"] == 8


class TestBoundaryRecorder:
    def test_recorded_rows_match_vanilla(self):
        T = 256
        vanilla = price_binomial(SPEC, T, return_boundary=True).boundary
        r = fft_price(SPEC, T, record_boundary=True)
        assert r.boundary is not None
        assert len(r.boundary.points) > 10
        for row, j in r.boundary.points.items():
            assert j == vanilla[row], f"row {row}: fft divider {j} != {vanilla[row]}"

    def test_trinomial_recorded_rows_match_vanilla(self):
        T = 128
        vanilla = price_trinomial(SPEC, T, return_boundary=True).boundary
        r = fft_price(SPEC, T, "trinomial", record_boundary=True)
        for row, j in r.boundary.points.items():
            assert j == vanilla[row], f"row {row}"

    def test_disabled_by_default(self):
        assert fft_price(SPEC, 64).boundary is None


def _exhaust(gen):
    """Run a serial-mode solver generator (no yields) to its return value."""
    try:
        next(gen)
    except StopIteration as stop:
        return stop.value
    raise AssertionError("serial-mode generator yielded a request")


class TestDividerExit:
    """naive_descend's early exit when the divider leaves the window."""

    def _solver(self, T=16):
        from repro.core.fftstencil import AdvanceEngine
        from repro.core.tree_solver import _TreeSolver

        return _TreeSolver(
            BinomialParams.from_spec(SPEC, T), base=8, engine=AdvanceEngine(),
            recorder=None,
        )

    def test_early_exit_returns_float64_empty(self):
        solver = self._solver()
        # window start c0=10 lies right of row_end(3)=3, so the divider
        # leaves the window on the first descend step
        vals, jb, ws = _exhaust(
            solver.naive_descend(4, 10, np.zeros(1, dtype=np.float64), 10, 2)
        )
        assert vals.shape == (0,)
        assert vals.dtype == np.float64  # PR-1 empty-array dtype convention
        assert jb == 9  # c0 - 1: no red cell remains at or right of c0

    def test_early_exit_counts_remaining_rows(self):
        solver = self._solver()
        _exhaust(solver.naive_descend(4, 10, np.zeros(1, dtype=np.float64), 10, 3))
        assert solver.stats.base_rows == 3  # all rows accounted, none computed


class TestErrors:
    def test_put_rejected_with_pointer(self):
        spec = dataclasses.replace(SPEC, right=Right.PUT)
        params = BinomialParams.from_spec(spec, 16)
        with pytest.raises(ValidationError, match="symmetry"):
            solve_tree_fft(params)

    def test_european_rejected_with_pointer(self):
        spec = SPEC.with_style(Style.EUROPEAN)
        params = BinomialParams.from_spec(spec, 16)
        with pytest.raises(ValidationError, match="bermudan"):
            solve_tree_fft(params)

    def test_bad_base(self):
        params = BinomialParams.from_spec(SPEC, 16)
        with pytest.raises(ValidationError):
            solve_tree_fft(params, base=0)
