"""Tests for h-step stencil kernels (exact vs FFT-power vs brute force)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.weights import (
    binomial_weights,
    convolution_power_weights,
    hstep_weights,
    symbol_power_weights,
    weights_checksum,
)
from repro.util.validation import ValidationError


class TestBinomialWeights:
    def test_h0_identity(self):
        np.testing.assert_allclose(binomial_weights(0.4, 0.5, 0), [1.0])

    def test_h1_is_taps(self):
        np.testing.assert_allclose(binomial_weights(0.4, 0.5, 1), [0.4, 0.5])

    def test_matches_brute_force(self):
        w = binomial_weights(0.45, 0.52, 20)
        ref = convolution_power_weights((0.45, 0.52), 20)
        np.testing.assert_allclose(w, ref, rtol=1e-11)

    def test_rejects_zero_tap(self):
        with pytest.raises(ValidationError):
            binomial_weights(0.0, 0.5, 3)

    def test_large_h_sum(self):
        w = binomial_weights(0.49, 0.505, 100_000)
        assert w.sum() == pytest.approx((0.49 + 0.505) ** 100_000, rel=1e-8)
        assert np.all(w >= 0)


class TestSymbolPowerWeights:
    def test_h0_identity(self):
        np.testing.assert_allclose(symbol_power_weights((0.3, 0.3, 0.3), 0), [1.0])

    def test_matches_brute_force_3tap(self):
        taps = (0.25, 0.40, 0.33)
        w = symbol_power_weights(taps, 15)
        ref = convolution_power_weights(taps, 15)
        np.testing.assert_allclose(w, ref, rtol=0, atol=1e-13)

    def test_matches_binomial_2tap(self):
        w1 = symbol_power_weights((0.45, 0.52), 64)
        w2 = binomial_weights(0.45, 0.52, 64)
        np.testing.assert_allclose(w1, w2, rtol=0, atol=1e-13)

    def test_length(self):
        assert len(symbol_power_weights((0.3, 0.3, 0.3), 7)) == 15  # q*h+1

    def test_nonnegative_clipping(self):
        w = symbol_power_weights((0.5, 0.5), 200)
        assert np.all(w >= 0.0)

    def test_single_tap_rejected(self):
        with pytest.raises(ValidationError):
            symbol_power_weights((1.0,), 2)

    @given(
        h=st.integers(1, 60),
        taps=st.lists(st.floats(0.01, 0.33), min_size=2, max_size=4),
    )
    def test_property_sum_identity(self, h, taps):
        w = symbol_power_weights(tuple(taps), h)
        assert w.sum() == pytest.approx(weights_checksum(taps, h), rel=1e-8)


class TestHstepWeights:
    def test_cached_readonly(self):
        w = hstep_weights((0.4, 0.5), 8)
        with pytest.raises(ValueError):
            w[0] = 99.0

    def test_cache_returns_same_object(self):
        assert hstep_weights((0.4, 0.5), 9) is hstep_weights((0.4, 0.5), 9)

    def test_rejects_negative_taps(self):
        with pytest.raises(ValidationError):
            hstep_weights((-0.1, 0.5), 2)

    def test_rejects_superstochastic(self):
        with pytest.raises(ValidationError):
            hstep_weights((0.7, 0.7), 2)

    def test_three_taps_route_to_symbol_power(self):
        taps = (0.2, 0.5, 0.25)
        w = hstep_weights(taps, 12)
        ref = convolution_power_weights(taps, 12)
        np.testing.assert_allclose(w, ref, atol=1e-13)

    @given(h=st.integers(0, 50))
    def test_property_composition(self, h):
        """W_{h+1} = W_h convolved with the taps (semigroup property)."""
        taps = (0.48, 0.51)
        w_h = hstep_weights(taps, h)
        w_h1 = hstep_weights(taps, h + 1)
        np.testing.assert_allclose(
            w_h1, np.convolve(w_h, taps), rtol=1e-9, atol=1e-15
        )
