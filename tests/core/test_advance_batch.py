"""Tests for multi-kernel ``AdvanceEngine.advance_batch`` (DESIGN.md §7)."""

import numpy as np
import pytest

from repro.core.fftstencil import (
    AdvanceEngine,
    AdvancePolicy,
    engine_delta,
)
from repro.util.validation import ValidationError

TAPS_A = (0.45, 0.52)
TAPS_B = (0.2, 0.5, 0.25)
TAPS_C = (0.48, 0.50)


def _mixed_batch(rng):
    """Inputs spanning lengths, tap counts, and step counts."""
    xs = [
        rng.uniform(0.0, 100.0, size=n)
        for n in (200, 195, 200, 400, 121, 90)
    ]
    kernels = [
        (TAPS_A, 40),
        (TAPS_B, 35),
        (TAPS_C, 40),
        (TAPS_A, 80),
        (TAPS_B, 30),
        (TAPS_A, 0),
    ]
    return xs, kernels


class TestBitIdentity:
    def test_rows_match_standalone_advances_bitwise(self):
        """Every batch row == the standalone advance of that row, bit for bit."""
        rng = np.random.default_rng(7)
        xs, kernels = _mixed_batch(rng)
        outs, rec = AdvanceEngine().advance_batch(xs, kernels, scales=100.0)
        assert rec.batch == len(xs)
        for x, (taps, h), y, row in zip(xs, kernels, outs, rec.rows):
            y_ref, rec_ref = AdvanceEngine().advance(x, taps, h, scale=100.0)
            np.testing.assert_array_equal(y, y_ref)
            assert row.method == rec_ref.method
            assert row.input_len == rec_ref.input_len and row.h == rec_ref.h

    def test_batch_width_does_not_change_values(self):
        """The same row gives the same bits whatever batch it rides in."""
        rng = np.random.default_rng(3)
        x = rng.uniform(0.0, 50.0, size=300)
        alone, _ = AdvanceEngine().advance_batch([x], [(TAPS_A, 60)])
        for width in (2, 5):
            xs = [x] + [rng.uniform(0.0, 50.0, size=300) for _ in range(width)]
            kernels = [(TAPS_A, 60)] + [(TAPS_B, 50)] * width
            outs, _ = AdvanceEngine().advance_batch(xs, kernels)
            np.testing.assert_array_equal(outs[0], alone[0])

    def test_empty_and_single(self):
        engine = AdvanceEngine()
        outs, rec = engine.advance_batch([], [])
        assert outs == [] and rec.batch == 0 and rec.rows == []
        x = np.linspace(0.0, 1.0, 150)
        outs, rec = engine.advance_batch([x], [(TAPS_A, 30)])
        y_ref, _ = AdvanceEngine().advance(x, TAPS_A, 30)
        np.testing.assert_array_equal(outs[0], y_ref)
        assert rec.batch == 1 and len(rec.rows) == 1

    def test_h0_rows_are_independent_copies(self):
        engine = AdvanceEngine()
        x = np.ones(9)
        outs, rec = engine.advance_batch([x], [(TAPS_A, 0)])
        outs[0][0] = 5.0
        assert x[0] == 1.0
        assert rec.rows[0].method == "copy"


class TestPerRowPolicy:
    def test_outlier_row_goes_direct_others_stay_fft(self):
        """The robustness guard is per row: one huge-magnitude row must not
        force its batch siblings off the FFT fast path."""
        rng = np.random.default_rng(11)
        xs = [rng.uniform(0.0, 100.0, size=300) for _ in range(3)]
        xs.append(rng.uniform(0.0, 1e18, size=300))
        kernels = [(TAPS_A, 60)] * 4
        outs, rec = AdvanceEngine().advance_batch(xs, kernels, scales=100.0)
        assert [r.method for r in rec.rows] == ["fft", "fft", "fft", "direct"]
        assert rec.method == "mixed"
        for x, (taps, h), y in zip(xs, kernels, outs):
            y_ref, _ = AdvanceEngine().advance(x, taps, h, scale=100.0)
            np.testing.assert_array_equal(y, y_ref)

    def test_per_row_scales(self):
        rng = np.random.default_rng(2)
        x = rng.uniform(0.0, 1e6, size=300)
        # scale 1.0 trips the guard for this magnitude; scale None disables it
        _, rec = AdvanceEngine(
            AdvancePolicy(max_amplification=1e3)
        ).advance_batch([x, x], [(TAPS_A, 60)] * 2, scales=[1.0, None])
        assert [r.method for r in rec.rows] == ["direct", "fft"]


class TestBlockCache:
    def test_recurring_shape_materialises_then_hits(self):
        """Blocks are built on a key's *second* sight (one-shot shapes never
        pay the stacking copies) and served whole from the third on."""
        rng = np.random.default_rng(5)
        xs = [rng.uniform(0.0, 10.0, size=250) for _ in range(4)]
        kernels = [(TAPS_A, 50), (TAPS_B, 40), (TAPS_C, 50), (TAPS_A, 70)]
        engine = AdvanceEngine()
        _, rec1 = engine.advance_batch(xs, kernels)
        assert rec1.block_misses == 1 and rec1.block_hits == 0
        assert rec1.spectrum_misses == 4  # one consult per distinct kernel
        assert engine.cache_info()["cached_blocks"] == 0  # seen once: no copy
        _, rec2 = engine.advance_batch(xs, kernels)
        assert rec2.block_misses == 1 and rec2.block_hits == 0
        assert rec2.spectrum_hits == 4  # rows still served per-key, warm
        assert engine.cache_info()["cached_blocks"] == 1  # recurred: built
        outs3, rec3 = engine.advance_batch(xs, kernels)
        assert rec3.block_hits == 1 and rec3.block_misses == 0
        assert rec3.spectrum_hits == rec3.spectrum_misses == 0
        outs1, _ = AdvanceEngine().advance_batch(xs, kernels)
        for a, b in zip(outs1, outs3):
            np.testing.assert_array_equal(a, b)

    def test_duplicate_kernels_consult_once(self):
        rng = np.random.default_rng(6)
        xs = [rng.uniform(0.0, 10.0, size=250) for _ in range(4)]
        kernels = [(TAPS_A, 50)] * 4
        _, rec = AdvanceEngine().advance_batch(xs, kernels)
        assert rec.spectrum_misses == 1 and rec.spectrum_hits == 0

    def test_engine_counters_and_delta(self):
        rng = np.random.default_rng(8)
        engine = AdvanceEngine()
        before = engine.cache_info()
        xs = [rng.uniform(0.0, 10.0, size=250) for _ in range(3)]
        kernels = [(TAPS_A, 50), (TAPS_B, 40), (TAPS_C, 50)]
        engine.advance_batch(xs, kernels)
        engine.advance_batch(xs, kernels)
        engine.advance_batch(xs, kernels)
        delta = engine_delta(before, engine.cache_info())
        assert delta["advances"] == 3
        assert delta["batch_advances"] == 3
        assert delta["batched_inputs"] == 9
        assert delta["block_misses"] == 2 and delta["block_hits"] == 1
        assert delta["spectrum_misses"] == 3
        assert engine.cache_info()["cached_blocks"] == 1

    def test_block_cache_eviction_is_bounded(self):
        rng = np.random.default_rng(9)
        engine = AdvanceEngine(max_blocks=2)
        for _ in range(2):  # every shape recurs, so every block materialises
            for h in (40, 41, 42, 43):
                xs = [rng.uniform(0.0, 10.0, size=300) for _ in range(2)]
                engine.advance_batch(xs, [(TAPS_A, h), (TAPS_B, h)])
        assert engine.cache_info()["cached_blocks"] == 2


class TestLegacyAndValidation:
    def test_reuse_false_matches_legacy_per_row(self):
        rng = np.random.default_rng(4)
        xs = [rng.uniform(0.0, 10.0, size=260) for _ in range(3)]
        kernels = [(TAPS_A, 50), (TAPS_B, 45), (TAPS_C, 60)]
        legacy = AdvanceEngine(reuse=False)
        outs, rec = legacy.advance_batch(xs, kernels)
        assert rec.block_misses == 0 and rec.spectrum_misses == 0
        for x, (taps, h), y in zip(xs, kernels, outs):
            y_ref, _ = AdvanceEngine().advance(x, taps, h)
            np.testing.assert_allclose(y, y_ref, rtol=1e-10, atol=1e-10)

    def test_kernel_count_mismatch(self):
        with pytest.raises(ValidationError, match="one kernel per input"):
            AdvanceEngine().advance_batch([np.ones(50)], [])

    def test_scales_count_mismatch(self):
        with pytest.raises(ValidationError, match="scales"):
            AdvanceEngine().advance_batch(
                [np.ones(50)], [(TAPS_A, 3)], scales=[1.0, 2.0]
            )

    def test_too_short_row_raises(self):
        with pytest.raises(ValidationError, match="too short"):
            AdvanceEngine().advance_batch([np.ones(5)], [(TAPS_A, 10)])


class TestAdvanceManyPerGroup:
    """Satellite regression: advance_many chooses fft-vs-direct per group."""

    def test_outlier_group_does_not_poison_the_batch(self):
        rng = np.random.default_rng(12)
        normal = [rng.uniform(0.0, 100.0, size=300) for _ in range(3)]
        outlier = rng.uniform(0.0, 1e18, size=450)
        engine = AdvanceEngine()
        ys, rec = engine.advance_many(normal + [outlier], TAPS_A, 60, scale=100.0)
        # the normal group still consulted the spectrum cache (fft path) …
        assert rec.spectrum_hits + rec.spectrum_misses == 1
        assert rec.method == "mixed"
        # … and its outputs are the FFT outputs, bit for bit
        for x, y in zip(normal, ys[:3]):
            y_fft, _ = AdvanceEngine(AdvancePolicy(mode="fft")).advance(
                x, TAPS_A, 60
            )
            np.testing.assert_array_equal(y, y_fft)
        # the outlier row fell back to exact direct correlation
        y_direct, _ = AdvanceEngine(AdvancePolicy(mode="direct")).advance(
            outlier, TAPS_A, 60
        )
        np.testing.assert_array_equal(ys[3], y_direct)

    def test_uniform_batch_record_unchanged(self):
        rng = np.random.default_rng(13)
        xs = [rng.uniform(0.0, 1.0, size=300) for _ in range(4)]
        _, rec = AdvanceEngine().advance_many(xs, TAPS_A, 60, scale=1.0)
        assert rec.method == "fft" and rec.spectrum_hit is False
        assert rec.batch == 4

    def test_legacy_loop_spans_compose_in_parallel(self):
        """reuse=False workspan: independent rows must not chain spans."""
        rng = np.random.default_rng(14)
        xs = [rng.uniform(0.0, 1.0, size=300) for _ in range(4)]
        legacy = AdvanceEngine(reuse=False)
        _, one = legacy.advance_many(xs[:1], TAPS_A, 60)
        _, four = legacy.advance_many(xs, TAPS_A, 60)
        assert four.workspan.work == pytest.approx(4.0 * one.workspan.work)
        assert four.workspan.span == pytest.approx(one.workspan.span)
