"""Shared fixtures and hypothesis strategies for the test suite."""

from __future__ import annotations

import dataclasses

import pytest
from hypothesis import HealthCheck, settings
from hypothesis import strategies as st

from repro.options.contract import OptionSpec, Right, Style, paper_benchmark_spec

# Keep property tests fast and deterministic-ish on a single core.
settings.register_profile(
    "repro",
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
    derandomize=True,
)
settings.load_profile("repro")


@pytest.fixture
def spec() -> OptionSpec:
    """The paper's §5 benchmark contract (American call)."""
    return paper_benchmark_spec()


@pytest.fixture
def put_spec() -> OptionSpec:
    """Zero-dividend American put matching the BSM model's preconditions."""
    return dataclasses.replace(
        paper_benchmark_spec(), right=Right.PUT, dividend_yield=0.0
    )


def call_specs() -> st.SearchStrategy[OptionSpec]:
    """Random valid American-call contracts (tree-model domain).

    Ranges keep the CRR probability in (0,1) at the step counts the tests
    use and avoid degenerate (deep ITM/OTM beyond float interest) regimes —
    those get dedicated edge-case tests instead.
    """
    return st.builds(
        OptionSpec,
        spot=st.floats(40.0, 250.0),
        strike=st.floats(40.0, 250.0),
        rate=st.floats(0.0, 0.10),
        volatility=st.floats(0.08, 0.6),
        dividend_yield=st.floats(0.0, 0.12),
        expiry_days=st.sampled_from([63.0, 126.0, 252.0, 504.0]),
        right=st.just(Right.CALL),
        style=st.just(Style.AMERICAN),
    )


def put_specs() -> st.SearchStrategy[OptionSpec]:
    """Random zero-dividend American puts (BSM-model domain)."""
    return st.builds(
        OptionSpec,
        spot=st.floats(60.0, 220.0),
        strike=st.floats(60.0, 220.0),
        rate=st.floats(0.005, 0.10),
        volatility=st.floats(0.10, 0.6),
        dividend_yield=st.just(0.0),
        expiry_days=st.sampled_from([126.0, 252.0, 504.0]),
        right=st.just(Right.PUT),
        style=st.just(Style.AMERICAN),
    )


def small_steps() -> st.SearchStrategy[int]:
    """Step counts spanning base-case, mixed and recursive regimes."""
    return st.sampled_from([1, 2, 3, 5, 7, 8, 9, 13, 16, 31, 64, 100, 257])
