"""Tests for the explicit FD Black–Scholes–Merton cone solver."""

import dataclasses

import numpy as np
import pytest

from repro.core.boundary import check_bsm_boundary_invariants
from repro.lattice.binomial import price_binomial
from repro.lattice.blackscholes_fd import price_bsm_fd
from repro.options.analytic import european_price, perpetual_american_put
from repro.options.contract import OptionSpec, Right, Style
from repro.util.validation import ValidationError


def make(**kw):
    defaults = dict(
        spot=100.0,
        strike=100.0,
        rate=0.04,
        volatility=0.25,
        dividend_yield=0.0,
        right=Right.PUT,
    )
    defaults.update(kw)
    return OptionSpec(**defaults)


class TestEuropeanConvergence:
    def test_converges_to_black_scholes_put(self):
        s = make(style=Style.EUROPEAN)
        exact = european_price(s)
        err_128 = abs(price_bsm_fd(s, 128).price - exact)
        err_1024 = abs(price_bsm_fd(s, 1024).price - exact)
        assert err_1024 < 0.02
        assert err_1024 < err_128


class TestAmericanProperties:
    def test_american_geq_european(self):
        am = price_bsm_fd(make(), 256).price
        eu = price_bsm_fd(make(style=Style.EUROPEAN), 256).price
        assert am >= eu - 1e-12

    def test_dominates_intrinsic(self):
        for spot in (70.0, 100.0, 130.0):
            s = make(spot=spot)
            assert price_bsm_fd(s, 256).price >= s.intrinsic() - 1e-9

    def test_close_to_binomial_american_put(self):
        s = make()
        fd = price_bsm_fd(s, 2048).price
        tree = price_binomial(s, 2048).price
        assert fd == pytest.approx(tree, abs=0.05)

    def test_below_perpetual_put(self):
        s = make(rate=0.03)
        finite = price_bsm_fd(s, 512).price
        assert finite <= perpetual_american_put(s) + 1e-6

    def test_bounded_by_strike(self):
        assert price_bsm_fd(make(), 128).price <= 100.0

    def test_monotone_in_volatility(self):
        prices = [
            price_bsm_fd(make(volatility=v), 256).price for v in (0.15, 0.25, 0.4)
        ]
        assert prices[0] < prices[1] < prices[2]

    def test_deep_otm_near_zero(self):
        s = make(spot=400.0)
        assert price_bsm_fd(s, 128).price < 0.05

    def test_deep_itm_near_intrinsic(self):
        s = make(spot=25.0)
        assert price_bsm_fd(s, 256).price == pytest.approx(75.0, abs=0.5)


class TestBoundary:
    def test_thm43_movement(self):
        r = price_bsm_fd(make(), 256, return_boundary=True)
        violations = check_bsm_boundary_invariants(
            r.boundary, steps=256, missing=-(256 + 1)
        )
        assert violations == []

    def test_boundary_starts_near_strike(self):
        r = price_bsm_fd(make(), 128, return_boundary=True)
        # at tau=0 the exercise boundary is at s=0, i.e. x=K: index near
        # -ln(S/K)/ds = 0 for the at-the-money contract
        assert abs(int(r.boundary[0])) <= 1

    def test_boundary_decreases(self):
        r = price_bsm_fd(make(), 256, return_boundary=True)
        b = r.boundary
        valid = b > -(256 + 1)
        assert b[valid][0] >= b[valid][-1]


class TestValidationAndMeta:
    def test_rejects_call(self):
        with pytest.raises(ValidationError):
            price_bsm_fd(make(right=Right.CALL), 16)

    def test_rejects_bermudan(self):
        with pytest.raises(ValidationError):
            price_bsm_fd(make(style=Style.BERMUDAN), 16)

    def test_lam_passthrough(self):
        a = price_bsm_fd(make(), 128, lam=0.3).price
        b = price_bsm_fd(make(), 128, lam=0.45).price
        # different discretisations, same limit: close but not identical
        assert a == pytest.approx(b, abs=0.2)
        assert a != b

    def test_cells_count(self):
        r = price_bsm_fd(make(), 16)
        assert r.cells == sum(2 * (16 - n) + 1 for n in range(17))
