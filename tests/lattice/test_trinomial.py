"""Tests for the vanilla trinomial (Boyle) sweep."""

import pytest

from repro.core.boundary import check_tree_boundary_invariants
from repro.lattice.binomial import price_binomial
from repro.lattice.trinomial import price_trinomial
from repro.options.analytic import european_price, intrinsic_bounds
from repro.options.contract import OptionSpec, Right, Style, paper_benchmark_spec
from repro.util.validation import ValidationError


def make(**kw):
    defaults = dict(
        spot=100.0, strike=100.0, rate=0.05, volatility=0.2, dividend_yield=0.03
    )
    defaults.update(kw)
    return OptionSpec(**defaults)


class TestEuropeanConvergence:
    @pytest.mark.parametrize("right", [Right.CALL, Right.PUT])
    def test_converges_to_black_scholes(self, right):
        s = make(right=right, style=Style.EUROPEAN)
        exact = european_price(s)
        assert price_trinomial(s, 1024).price == pytest.approx(exact, abs=0.02)

    def test_faster_convergence_than_binomial(self):
        """Langat et al. (paper §3): TOPM needs roughly half the steps.

        We verify the weaker, robust form: at equal steps the trinomial
        error is not worse than the binomial error at half the steps.
        """
        s = make(style=Style.EUROPEAN)
        exact = european_price(s)
        tri = abs(price_trinomial(s, 128).price - exact)
        bino_half = abs(price_binomial(s, 64).price - exact)
        assert tri <= bino_half * 2.0  # generous: CRR error oscillates


class TestAmericanProperties:
    def test_american_geq_european(self):
        am = price_trinomial(make(right=Right.PUT), 200).price
        eu = price_trinomial(make(right=Right.PUT, style=Style.EUROPEAN), 200).price
        assert am >= eu - 1e-12

    def test_close_to_binomial_american(self):
        s = make()
        tri = price_trinomial(s, 400).price
        bino = price_binomial(s, 400).price
        assert tri == pytest.approx(bino, abs=0.05)

    def test_zero_dividend_call_equals_european(self):
        s = make(dividend_yield=0.0)
        am = price_trinomial(s, 300).price
        eu = price_trinomial(s.with_style(Style.EUROPEAN), 300).price
        assert am == pytest.approx(eu, abs=1e-10)

    def test_respects_bounds(self):
        for right in (Right.CALL, Right.PUT):
            s = make(right=right)
            lo, hi = intrinsic_bounds(s)
            assert lo - 1e-9 <= price_trinomial(s, 128).price <= hi + 1e-9

    def test_t1_matches_hand_computation(self):
        s = make(style=Style.EUROPEAN, dividend_yield=0.0)
        from repro.options.params import TrinomialParams

        p = TrinomialParams.from_spec(s, 1)
        payoffs = [
            max(s.spot * p.down - s.strike, 0.0),
            max(s.spot - s.strike, 0.0),
            max(s.spot * p.up - s.strike, 0.0),
        ]
        expected = p.s0 * payoffs[0] + p.s1 * payoffs[1] + p.s2 * payoffs[2]
        assert price_trinomial(s, 1).price == pytest.approx(expected, rel=1e-14)


class TestBoundaryAndBermudan:
    def test_boundary_invariants_paper_spec(self):
        r = price_trinomial(paper_benchmark_spec(), 128, return_boundary=True)
        violations = check_tree_boundary_invariants(
            r.boundary, steps=128, columns_per_row=2
        )
        assert violations == []

    def test_bermudan_sandwich(self):
        s = make(right=Right.PUT, style=Style.BERMUDAN)
        eu = price_trinomial(make(right=Right.PUT, style=Style.EUROPEAN), 48).price
        am = price_trinomial(make(right=Right.PUT), 48).price
        bm = price_trinomial(s, 48, exercise_steps=[12, 24, 36]).price
        assert eu - 1e-12 <= bm <= am + 1e-12

    def test_cells_count(self):
        r = price_trinomial(make(), 16)
        assert r.cells == sum(2 * i + 1 for i in range(17))


class TestErrors:
    def test_zero_steps(self):
        with pytest.raises(ValidationError):
            price_trinomial(make(), 0)
